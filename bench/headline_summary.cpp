// Headline numbers of the paper's abstract / Sec. 4.3:
//  - average model accuracy        (paper: 97.6 %)
//  - average prediction accuracy   (paper: 93.6 %, at ~4x the modeling scale)
//  - average profiling-time reduction from the efficient sampling strategy
//    (paper: ~94.9 %)
// computed over all five benchmarks with data parallelism on both systems.

#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "dnn/datasets.hpp"
#include "profiling/profiler.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Headline summary: accuracy & sampling reduction",
                        "Abstract and Section 4.3");

    std::vector<double> accuracy_errors;
    std::vector<double> prediction_errors_4x;
    std::vector<double> reductions;

    for (const auto& system :
         {hw::SystemSpec::deep(), hw::SystemSpec::jureca()}) {
        for (const auto& dataset : dnn::benchmark_names()) {
            for (const auto scaling : {parallel::ScalingMode::Weak,
                                       parallel::ScalingMode::Strong}) {
                const ExperimentSpec spec = bench::make_spec(
                    dataset, system, parallel::StrategyKind::Data, scaling);
                const bench::SeriesResult series = bench::run_series(spec);
                for (const auto& [node, err] : series.accuracy_pct) {
                    accuracy_errors.push_back(err);
                }
                // "evaluated at an evaluation point four times the scale
                // than the ones used for modeling": modeling tops out at 10
                // nodes, so the 4x point is 40 nodes.
                prediction_errors_4x.push_back(series.prediction_pct.at(40));

                // Sampling savings are quantified at the 64-node scale
                // under weak scaling, as in the paper's Fig. 8 experiment
                // (strong scaling at 64 nodes leaves only a handful of steps
                // per epoch, so there is nothing to save).
                if (scaling == parallel::ScalingMode::Weak) {
                    const sim::TrainingSimulator simulator(
                        ExperimentRunner(spec).workload_for(
                            bench::ranks_for_nodes(system, 64)));
                    const double eff = profiling::Profiler(
                                           profiling::SamplingStrategy::efficient())
                                           .profiling_cost(simulator);
                    const double std_cost = profiling::Profiler(
                                                profiling::SamplingStrategy::standard())
                                                .profiling_cost(simulator);
                    reductions.push_back(100.0 * (1.0 - eff / std_cost));
                }
            }
        }
        std::printf("evaluated %s\n", system.name.c_str());
    }

    const double avg_accuracy = 100.0 - stats::mean(accuracy_errors);
    const double avg_prediction = 100.0 - stats::mean(prediction_errors_4x);
    const double avg_reduction = stats::mean(reductions);

    std::printf("\n%-42s %10s %10s\n", "metric", "this repo", "paper");
    std::printf("%-42s %9.1f%% %10s\n", "average model accuracy",
                avg_accuracy, "97.6%");
    std::printf("%-42s %9.1f%% %10s\n",
                "average prediction accuracy (4x scale)", avg_prediction,
                "93.6%");
    std::printf("%-42s %9.1f%% %10s\n",
                "average profiling-time reduction", avg_reduction, "94.9%");
    return 0;
}
