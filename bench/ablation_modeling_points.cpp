// Ablation: number (and reach) of modeling points vs. extrapolation error.
// The paper (Sec. 4.3) argues the presented results are the worst case -
// a minimal, cheap set of five small-scale points - and that measuring one
// or two additional points closer to the target drastically reduces the
// error. This bench quantifies that claim on the CIFAR-10 case study.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Ablation: modeling-point count vs. predictive power",
                        "the worst-case discussion in Section 4.3");

    const std::vector<std::vector<int>> modeling_sets = {
        {2, 4, 6, 8, 10},
        {2, 4, 6, 8, 10, 12},
        {2, 4, 6, 8, 10, 12, 16},
        {2, 4, 6, 8, 10, 12, 16, 24},
        {2, 4, 6, 8, 10, 12, 16, 24, 32},
        {8, 16, 32, 48, 64},  // same count, but placed near the target
    };
    const int target = 96;

    Table table({"modeling points", "largest", "model", "err@96"});
    for (const auto& points : modeling_sets) {
        ExperimentSpec spec = bench::make_spec("CIFAR-10",
                                               hw::SystemSpec::deep(),
                                               parallel::StrategyKind::Data,
                                               parallel::ScalingMode::Weak);
        spec.modeling_ranks = points;
        spec.evaluation_ranks = {target};
        const ExperimentRunner runner(spec);
        const ExperimentResult result = runner.run();
        const double pred = result.epoch_time.evaluate(target);
        const double meas = runner.measured_epoch_time(target);
        std::string set;
        for (const int p : points) {
            if (!set.empty()) set += ",";
            set += std::to_string(p);
        }
        table.add_row({set, std::to_string(points.back()),
                       result.epoch_time.to_string(),
                       fmtx::percent(100.0 * std::abs(pred - meas) / meas)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Expected: more points and especially points closer to the target\n"
        "scale reduce the extrapolation error; the {8..64} set sees the\n"
        "collective-algorithm switches that the {2..10} set cannot.\n");
    return 0;
}
