// Fig. 7: predictive power of the runtime-per-epoch models per benchmark
// (application type / DNN architecture) for data-parallel training on DEEP.
// One column per benchmark, percentage error at each evaluation node count.

#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dnn/datasets.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Fig. 7: application types & DNN architectures",
                        "Figure 7, Section 4.2.3");
    const hw::SystemSpec deep = hw::SystemSpec::deep();
    std::printf("System: %s\n\n", deep.describe().c_str());

    const auto names = dnn::benchmark_names();
    std::vector<std::vector<bench::SeriesResult>> per_benchmark(names.size());
    for (std::size_t b = 0; b < names.size(); ++b) {
        for (const auto scaling :
             {parallel::ScalingMode::Weak, parallel::ScalingMode::Strong}) {
            per_benchmark[b].push_back(bench::run_series(
                bench::make_spec(names[b], deep,
                                 parallel::StrategyKind::Data, scaling)));
        }
    }

    std::vector<std::string> headers = {"nodes"};
    for (const auto& n : names) headers.push_back(n);
    Table table(std::move(headers));
    for (const int node : bench::evaluation_nodes()) {
        std::vector<std::string> row = {std::to_string(node)};
        for (std::size_t b = 0; b < names.size(); ++b) {
            row.push_back(
                fmtx::percent(bench::mpe_at(per_benchmark[b], node, true)));
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());

    // Model accuracy summary (the paper omits the plot: 0.4-1.4 %).
    std::printf("Model accuracy at the modeling points (median over nodes):\n");
    for (std::size_t b = 0; b < names.size(); ++b) {
        std::vector<double> acc;
        for (const int node : bench::modeling_nodes()) {
            acc.push_back(bench::mpe_at(per_benchmark[b], node, false));
        }
        std::printf("  %-16s %s\n", names[b].c_str(),
                    fmtx::percent(stats::median(acc)).c_str());
    }
    std::printf(
        "\nPaper shape: errors grow with node count for every benchmark; the\n"
        "small NNLM/IMDB benchmark is the easiest to predict, the large\n"
        "EfficientNet-B0/ImageNet benchmark the hardest (max 13.9%% at 64\n"
        "nodes, max spread between benchmarks ~4.1%%).\n");
    return 0;
}
