// Fig. 4(b): identification of cost-effective training configurations for
// strong scaling - predicted training time and cost per epoch over the node
// count, a target training time and a budget, the feasible intervals, and
// the most cost-effective configuration (highest Eq. 13 efficiency among the
// feasible candidates). Also prints the trivial weak-scaling determination
// (Sec. 3.3: the smallest allocation always wins).

#include <cstdio>

#include "analysis/config_search.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

namespace {

void print_search(const analysis::ConfigSearchResult& search,
                  const analysis::ConfigSearchLimits& limits) {
    Table table({"nodes", "time [s]", "cost [core-h]", "efficiency",
                 "time ok", "cost ok", "chosen"});
    for (std::size_t i = 0; i < search.candidates.size(); ++i) {
        const auto& c = search.candidates[i];
        table.add_row({fmtx::fixed(c.ranks, 0), fmtx::fixed(c.time_s, 2),
                       fmtx::fixed(c.cost, 3), fmtx::percent(c.efficiency_pct),
                       c.feasible_time ? "yes" : "no",
                       c.feasible_cost ? "yes" : "no",
                       search.best && *search.best == i ? "<== best" : ""});
    }
    std::printf("limits: max time %.1f s, budget %.2f core hours\n%s\n",
                limits.max_time_s, limits.max_cost,
                table.to_string().c_str());
    if (!search.best) {
        std::printf("no configuration is both technically possible and "
                    "economically feasible\n\n");
    }
}

}  // namespace

int main() {
    bench::print_header(
        "Fig. 4: cost-effective training configurations",
        "Figure 4(b), Section 3.3");

    // Strong-scaling example: ResNet-50/CIFAR-10 on DEEP with a fixed
    // dataset; training time falls with nodes while cost rises.
    ExperimentSpec spec = bench::make_spec("CIFAR-10", hw::SystemSpec::deep(),
                                           parallel::StrategyKind::Data,
                                           parallel::ScalingMode::Strong);
    std::printf("Experiment: %s\n\n", spec.describe().c_str());
    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    std::printf("runtime model: T_epoch(x1) = %s\n\n",
                result.epoch_time.to_string().c_str());

    const auto cost_fn = analysis::core_hours_cost(spec.system.cores_per_rank);
    const std::vector<double> candidates = {16, 24, 32, 40, 48, 56, 64};

    // Choose the targets like Fig. 4(b): the time limit cuts off the small
    // configurations, the budget cuts off the large ones.
    analysis::ConfigSearchLimits limits;
    limits.max_time_s = result.epoch_time.evaluate(28.0);
    limits.max_cost = cost_fn(result.epoch_time.evaluate(48.0), 48.0);

    std::printf("--- strong scaling (Fig. 4b) ---\n");
    const auto strong = analysis::find_cost_effective_config(
        [&](double x) { return result.epoch_time.evaluate(x); }, candidates,
        cost_fn, limits, parallel::ScalingMode::Strong);
    print_search(strong, limits);

    std::printf("--- strong scaling, infeasible budget ---\n");
    analysis::ConfigSearchLimits tight = limits;
    tight.max_cost = limits.max_cost / 100.0;
    print_search(analysis::find_cost_effective_config(
                     [&](double x) { return result.epoch_time.evaluate(x); },
                     candidates, cost_fn, tight,
                     parallel::ScalingMode::Strong),
                 tight);

    // Weak scaling: smallest allocation always wins (paper Sec. 3.3).
    std::printf("--- weak scaling ---\n");
    ExperimentSpec weak_spec = bench::make_spec(
        "CIFAR-10", hw::SystemSpec::deep(), parallel::StrategyKind::Data,
        parallel::ScalingMode::Weak);
    const ExperimentRunner weak_runner(weak_spec);
    const ExperimentResult weak_result = weak_runner.run();
    analysis::ConfigSearchLimits weak_limits;
    weak_limits.max_time_s = weak_result.epoch_time.evaluate(40.0);
    const auto weak = analysis::find_cost_effective_config(
        [&](double x) { return weak_result.epoch_time.evaluate(x); },
        {2, 4, 8, 16, 32, 64}, cost_fn, weak_limits,
        parallel::ScalingMode::Weak);
    print_search(weak, weak_limits);
    return 0;
}
