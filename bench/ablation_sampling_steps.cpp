// Ablation: how many training steps per epoch must the efficient sampling
// strategy profile? The paper uses 5 (plus warm-up discarding). This bench
// sweeps the step count and reports model error and profiling cost, plus
// the effect of *not* discarding the warm-up epoch.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "profiling/profiler.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

namespace {

struct Variant {
    std::string name;
    profiling::SamplingStrategy strategy;
};

}  // namespace

int main() {
    bench::print_header("Ablation: sampled steps per epoch & warm-up discard",
                        "the sampling strategy of Section 2.2");

    std::vector<Variant> variants;
    for (const int steps : {1, 2, 5, 10, 20}) {
        profiling::SamplingStrategy s = profiling::SamplingStrategy::efficient();
        s.train_steps_per_epoch = steps;
        s.val_steps_per_epoch = std::min<std::int64_t>(steps, 5);
        variants.push_back({std::to_string(steps) + " steps", s});
    }
    {
        // Keep the warm-up epoch in the data (epoch 0 not discarded).
        profiling::SamplingStrategy s = profiling::SamplingStrategy::efficient();
        s.discard_warmup_epochs = 0;
        variants.push_back({"5 steps, keep warm-up", s});
    }

    Table table({"variant", "bias@10", "err@40", "err@64",
                 "profiling cost [s]"});
    for (const auto& v : variants) {
        ExperimentSpec spec = bench::make_spec("CIFAR-10",
                                               hw::SystemSpec::deep(),
                                               parallel::StrategyKind::Data,
                                               parallel::ScalingMode::Weak);
        spec.sampling = v.strategy;
        spec.evaluation_ranks = {40, 64};
        const ExperimentRunner runner(spec);
        const ExperimentResult result = runner.run();
        // Bias inside the modeled range: warm-up contamination inflates the
        // model uniformly, visible against an independent steady-state run.
        const double meas10 = runner.measured_epoch_time(10);
        const double bias10 =
            100.0 * (result.epoch_time.evaluate(10) - meas10) / meas10;
        double errs[2];
        int i = 0;
        for (const int x : spec.evaluation_ranks) {
            const double meas = runner.measured_epoch_time(x);
            errs[i++] =
                100.0 * std::abs(result.epoch_time.evaluate(x) - meas) / meas;
        }
        const double cost =
            profiling::Profiler(v.strategy)
                .profiling_cost(sim::TrainingSimulator(runner.workload_for(10)));
        table.add_row({v.name, fmtx::percent(bias10), fmtx::percent(errs[0]),
                       fmtx::percent(errs[1]), fmtx::fixed(cost, 2)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Expected: ~5 steps are enough (more steps cost profiling time with\n"
        "little accuracy gain). Keeping the warm-up epoch inflates the model\n"
        "uniformly (positive bias@10, from autotuning/retracing in the first\n"
        "steps); at far extrapolation that bias can accidentally cancel the\n"
        "systematic underprediction - the model is wrong even where the\n"
        "error looks small.\n");
    return 0;
}
