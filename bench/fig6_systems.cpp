// Fig. 6: model accuracy and predictive power of the training-time-per-epoch
// models for data parallelism on the two evaluation systems: DEEP (1 GPU per
// node, MPI only) vs JURECA (4 GPUs per node, NCCL). Bars are the MPE over
// all five benchmarks, weak and strong scaling combined.

#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "dnn/datasets.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Fig. 6: system architectures & communication",
                        "Figure 6, Section 4.2.2");

    const hw::SystemSpec systems[] = {hw::SystemSpec::deep(),
                                      hw::SystemSpec::jureca()};
    std::vector<std::vector<bench::SeriesResult>> per_system(2);
    for (int i = 0; i < 2; ++i) {
        std::printf("System: %s\n", systems[i].describe().c_str());
        for (const auto& dataset : dnn::benchmark_names()) {
            for (const auto scaling : {parallel::ScalingMode::Weak,
                                       parallel::ScalingMode::Strong}) {
                per_system[i].push_back(bench::run_series(
                    bench::make_spec(dataset, systems[i],
                                     parallel::StrategyKind::Data, scaling)));
            }
        }
    }
    std::printf("\n");

    Table table({"nodes", "kind", "DEEP (1x GPU, no NCCL)",
                 "JURECA (4x GPU, NCCL)"});
    for (const int node : bench::modeling_nodes()) {
        table.add_row({std::to_string(node), "accuracy",
                       fmtx::percent(bench::mpe_at(per_system[0], node, false)),
                       fmtx::percent(bench::mpe_at(per_system[1], node, false))});
    }
    for (const int node : bench::evaluation_nodes()) {
        table.add_row({std::to_string(node), "prediction",
                       fmtx::percent(bench::mpe_at(per_system[0], node, true)),
                       fmtx::percent(bench::mpe_at(per_system[1], node, true))});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Paper shape: accuracy MPE 0.3-1.2%% on both systems; prediction MPE\n"
        "grows with node count, reaching at most ~15.4%% (JURECA, 64 nodes);\n"
        "JURECA is slightly less predictable (NCCL + inter-node effects,\n"
        "higher run-to-run noise).\n");
    return 0;
}
