// Fig. 3 + the running CIFAR-10 case study (Secs. 2.3 and 3): training time
// per epoch of ResNet-50/CIFAR-10 on DEEP, data parallel, weak scaling,
// B = 256 per rank; modeling points x1 = {2,4,6,10,12}, evaluation points up
// to 64 ranks; 95 % confidence intervals and run-to-run variation; plus the
// Q1-Q5 answers (epoch-time model, communication bottleneck, cost model,
// most cost-effective configuration).

#include <cmath>
#include <cstdio>

#include "analysis/bottleneck.hpp"
#include "analysis/config_search.hpp"
#include "analysis/cost.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Fig. 3 + case study: training time per epoch model",
                        "Figure 3, Sections 2.3 and 3.1-3.3");

    ExperimentSpec spec;
    spec.dataset = "CIFAR-10";
    spec.system = hw::SystemSpec::deep();
    spec.strategy = parallel::StrategyKind::Data;
    spec.scaling = parallel::ScalingMode::Weak;
    spec.batch_per_worker = 256;
    spec.modeling_ranks = bench::case_study_modeling_ranks();
    spec.evaluation_ranks = bench::case_study_evaluation_ranks();
    spec.repetitions = 5;
    spec.seed = 7;
    std::printf("Experiment: %s\n", spec.describe().c_str());
    std::printf("System:     %s\n\n", spec.system.describe().c_str());

    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();

    std::printf("Q1 model: T_epoch(x1) = %s\n", result.epoch_time.to_string().c_str());
    std::printf("          (paper: 158.58 + 0.58 * x1^(2/3) * log2(x1)^2)\n");
    std::printf("          T_epoch(40) = %.2f s  (paper: 352.37 s)\n\n",
                result.epoch_time.evaluate(40.0));

    Table table({"x1", "kind", "predicted [s]", "measured [s]", "err",
                 "95% CI", "in CI", "run-to-run"});
    std::vector<double> accuracy_errors;
    std::vector<double> prediction_errors;
    auto add_row = [&](int x, bool modeling) {
        const auto ci = result.epoch_time.predict_interval(x, 0.95);
        const auto reps = runner.measured_epoch_times_all_reps(x);
        double reference;
        if (modeling) {
            // Model accuracy: error vs. the data point used for modeling.
            std::size_t idx = 0;
            for (std::size_t i = 0; i < result.modeling_xs.size(); ++i) {
                if (result.modeling_xs[i] == x) idx = i;
            }
            reference = result.epoch_time_values[idx];
        } else {
            reference = stats::median(reps);
        }
        const double err = 100.0 * std::abs(ci.prediction - reference) /
                           reference;
        (modeling ? accuracy_errors : prediction_errors).push_back(err);
        // Built with += because `"[" + std::string&&` trips GCC 12's
        // -Wrestrict false positive (PR 105651) under -Werror.
        std::string interval = "[";
        interval += fmtx::fixed(ci.lower, 1);
        interval += ", ";
        interval += fmtx::fixed(ci.upper, 1);
        interval += "]";
        table.add_row(
            {std::to_string(x), modeling ? "model" : "eval",
             fmtx::fixed(ci.prediction, 2), fmtx::fixed(reference, 2),
             fmtx::percent(err), interval,
             (reference >= ci.lower && reference <= ci.upper) ? "yes" : "no",
             fmtx::percent(stats::run_to_run_variation(reps))});
    };
    for (const int x : spec.modeling_ranks) add_row(x, true);
    for (const int x : spec.evaluation_ranks) add_row(x, false);
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Model accuracy (modeling pts):  max err %s (paper: 0.1-1.2%%)\n",
                fmtx::percent(stats::max(accuracy_errors)).c_str());
    std::printf("Predictive power (eval pts):    max err %s (paper: up to 28.8%%)\n\n",
                fmtx::percent(stats::max(prediction_errors)).c_str());

    // Q2/Q3: scalability and the communication bottleneck.
    const auto& comm =
        result.phase_time[static_cast<int>(trace::Phase::Communication)];
    std::printf("Q3 bottleneck: T_comm(x1) = %s\n", comm.to_string().c_str());
    std::printf("   T_comm(2) = %.2f s, T_comm(64) = %.2f s"
                "  (paper: 34.41 s -> 296.57 s)\n",
                comm.evaluate(2.0), comm.evaluate(64.0));
    {
        std::vector<analysis::NamedModel> phases;
        const char* names[] = {"computation", "communication", "memory ops"};
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            phases.push_back(
                {names[p], result.phase_time[p].train_step_model()});
        }
        const auto ranked = analysis::rank_by_growth(phases, 64.0);
        std::printf("   fastest-growing phase: %s %s\n\n",
                    ranked.front().name.c_str(), ranked.front().growth.c_str());
    }

    // Q4: cost model (Eq. 14).
    std::vector<double> xs;
    std::vector<double> runtimes;
    for (const int x : spec.modeling_ranks) {
        xs.push_back(x);
        std::size_t idx = 0;
        for (std::size_t i = 0; i < result.modeling_xs.size(); ++i) {
            if (result.modeling_xs[i] == x) idx = i;
        }
        runtimes.push_back(result.epoch_time_values[idx]);
    }
    const auto cost_fn =
        analysis::core_hours_cost(spec.system.cores_per_rank);
    const auto cost_model = analysis::model_cost(xs, runtimes, cost_fn);
    std::printf("Q4 cost model: C_epoch(x1) = %s core hours\n",
                cost_model.to_string().c_str());
    std::printf("   (paper: 0.082 * x1^1.62;  C(32) = %.2f core hours, paper: 22.49)\n\n",
                cost_model.evaluate(32.0));

    // Q5: most cost-effective configuration under weak scaling.
    std::vector<double> candidates;
    for (const int x : spec.modeling_ranks) candidates.push_back(x);
    for (const int x : spec.evaluation_ranks) candidates.push_back(x);
    const auto search = analysis::find_cost_effective_config(
        [&](double x) { return result.epoch_time.evaluate(x); }, candidates,
        cost_fn, {}, parallel::ScalingMode::Weak);
    if (search.best) {
        std::printf("Q5: most cost-effective weak-scaling configuration: x1 = %d"
                    "  (paper: x1 = 2)\n",
                    static_cast<int>(search.candidates[*search.best].ranks));
    }
    return 0;
}
