// Ablation: PMNF search-space design vs. extrapolation behaviour. Compares
// the default 1-term hypotheses (Extra-P's choice, used throughout the
// paper) with 2-term hypotheses and with narrowed exponent sets, exposing
// the overfitting risk the search space controls.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Ablation: PMNF search space vs. extrapolation",
                        "the model-creation methodology of Section 2.3");

    struct Variant {
        std::string name;
        modeling::FitOptions options;
    };
    std::vector<Variant> variants;
    variants.push_back({"default (1 term, full exponents)", {}});
    {
        modeling::FitOptions o;
        o.space.max_terms = 2;
        variants.push_back({"2 terms", o});
    }
    {
        modeling::FitOptions o;
        o.space.poly_exponents = {0.0, 1.0, 2.0};
        variants.push_back({"integer exponents only", o});
    }
    {
        modeling::FitOptions o;
        o.space.log_exponents = {0};
        variants.push_back({"no logarithmic factors", o});
    }

    const ExperimentSpec spec = [&] {
        ExperimentSpec s = bench::make_spec("CIFAR-10", hw::SystemSpec::deep(),
                                            parallel::StrategyKind::Data,
                                            parallel::ScalingMode::Weak);
        s.evaluation_ranks = {40, 64};
        return s;
    }();
    const ExperimentRunner runner(spec);

    Table table({"search space", "hypotheses", "model", "fit SMAPE", "err@40",
                 "err@64"});
    for (const auto& v : variants) {
        const ExperimentResult result =
            runner.run(modeling::ModelGenerator(v.options));
        double errs[2];
        int i = 0;
        for (const int x : spec.evaluation_ranks) {
            const double meas = runner.measured_epoch_time(x);
            errs[i++] =
                100.0 * std::abs(result.epoch_time.evaluate(x) - meas) / meas;
        }
        table.add_row({v.name,
                       std::to_string(result.epoch_time.quality().hypotheses_searched),
                       result.epoch_time.to_string(),
                       fmtx::percent(result.epoch_time.quality().fit_smape, 2),
                       fmtx::percent(errs[0]), fmtx::percent(errs[1])});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Expected: 2-term hypotheses chase noise with extra terms and\n"
        "extrapolate worse despite equal fit quality. Narrow spaces can win\n"
        "on individual series whose truth happens to be polynomial-like (as\n"
        "here, where the contention term is ~sqrt(x1)), but lose generality:\n"
        "latency-bound collectives and tree algorithms need the logarithmic\n"
        "factors. The 1-term full space is Extra-P's robust default.\n");
    return 0;
}
