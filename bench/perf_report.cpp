// extradeep-perf: the performance harness behind BENCH_perf.json and the
// `perf_gate` ctest, mirroring extradeep-eval's record/threshold machinery.
//
// Three sections:
//   ingest    - writes a synthetic multi-configuration EDP corpus to disk,
//               then times ingest_edp_files in streaming and materialising
//               mode (MB/s each) and records the peak-RSS growth of the
//               streaming pass (getrusage ru_maxrss delta), which must stay
//               bounded by the largest rank block, not the corpus size.
//   fitter    - hypothesis-search throughput (hypotheses/sec) over the
//               two-term PMNF space, for the scalar and vector simd
//               backends at 1 and 4 threads.
//   gate      - optional perf_thresholds.json enforcement (exit 1 on
//               violation), with deliberately loose machine-independent
//               bounds: the gate catches order-of-magnitude cliffs (a
//               quadratic ingest path, a serialised fitter), not jitter.
//
// Usage:
//   extradeep-perf                      # full corpus (~128 MB)
//   extradeep-perf --quick              # gate subset (~24 MB corpus)
//   extradeep-perf --out BENCH_perf.json
//   extradeep-perf --thresholds perf_thresholds.json
//   extradeep-perf --corpus-mb 64 --keep-files

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/simd.hpp"
#include "common/table.hpp"
#include "eval/report.hpp"
#include "extradeep/ingest.hpp"
#include "modeling/fitter.hpp"
#include "profiling/edp_io.hpp"
#include "profiling/profiler.hpp"
#include "sim/simulator.hpp"

using namespace extradeep;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--corpus-mb N] [--threads N]\n"
                 "          [--out FILE] [--thresholds FILE] [--keep-files]\n",
                 argv0);
}

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Peak resident set size of this process so far, in MB. Monotonic, so the
/// streaming-ingest RSS budget is measured as a delta across that pass, and
/// the streaming pass runs before the materialising one.
double peak_rss_mb() {
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

std::string git_revision() {
    std::string rev = "unknown";
    if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            std::string s(buf);
            while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
                s.pop_back();
            }
            if (!s.empty()) {
                rev = s;
            }
        }
        pclose(p);
    }
    return rev;
}

void add_record(std::vector<eval::MetricRecord>& out, const std::string& name,
                const std::string& metric, double value) {
    eval::MetricRecord r;
    r.case_name = name;
    r.metric = metric;
    r.value = value;
    out.push_back(std::move(r));
}

struct Corpus {
    std::string dir;
    std::vector<std::string> paths;
    double total_mb = 0.0;
};

/// Writes a balanced multi-configuration EDP corpus (x1 in {2,4,8,16}, equal
/// repetitions per configuration) of at least `target_mb`, bulking each run
/// up with long profiled epochs so a handful of repetitions reaches hundreds
/// of megabytes.
Corpus write_corpus(double target_mb) {
    Corpus corpus;
    char tmpl[] = "/tmp/extradeep-perf-XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
        throw Error("extradeep-perf: mkdtemp failed");
    }
    corpus.dir = tmpl;

    profiling::SamplingStrategy strategy;
    strategy.epochs = 2;
    strategy.train_steps_per_epoch = 60;
    strategy.val_steps_per_epoch = 20;
    const profiling::Profiler profiler(strategy);

    const std::vector<int> scales = {2, 4, 8, 16};
    std::vector<sim::TrainingSimulator> simulators;
    simulators.reserve(scales.size());
    for (const int ranks : scales) {
        simulators.emplace_back(sim::Workload::make(
            "CIFAR-10", hw::SystemSpec::deep(),
            parallel::ParallelConfig::data(ranks),
            parallel::ScalingMode::Weak, 256));
    }

    std::uintmax_t total_bytes = 0;
    const auto target_bytes =
        static_cast<std::uintmax_t>(target_mb * 1024.0 * 1024.0);
    // Full rounds (one repetition per configuration) keep the corpus
    // balanced regardless of where the size target lands.
    for (int rep = 0; total_bytes < target_bytes; ++rep) {
        for (std::size_t c = 0; c < scales.size(); ++c) {
            const auto run = profiler.profile(
                simulators[c], {{"x1", static_cast<double>(scales[c])}}, rep);
            const std::string path = corpus.dir + "/run_x" +
                                     std::to_string(scales[c]) + "_r" +
                                     std::to_string(rep) + ".edp";
            profiling::write_edp_file(path, run);
            total_bytes += std::filesystem::file_size(path);
            corpus.paths.push_back(path);
        }
    }
    corpus.total_mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    return corpus;
}

void remove_corpus(const Corpus& corpus) {
    std::error_code ec;
    std::filesystem::remove_all(corpus.dir, ec);
}

struct IngestTiming {
    double seconds = 0.0;
    double rss_delta_mb = 0.0;
    std::size_t configs_kept = 0;
    std::size_t runs_kept = 0;
};

IngestTiming time_ingest(const Corpus& corpus, bool streaming, int threads) {
    IngestOptions options;
    options.streaming = streaming;
    options.num_threads = threads;
    const double rss_before = peak_rss_mb();
    const double t0 = now_seconds();
    const IngestResult result = ingest_edp_files(corpus.paths, options);
    IngestTiming timing;
    timing.seconds = now_seconds() - t0;
    timing.rss_delta_mb = peak_rss_mb() - rss_before;
    timing.configs_kept = result.configs_kept;
    timing.runs_kept = result.runs_kept;
    if (!result.ok()) {
        throw Error("extradeep-perf: ingest of the synthetic corpus failed: " +
                    result.summary());
    }
    return timing;
}

struct FitterTiming {
    double hypotheses_per_sec = 0.0;
    int hypotheses_per_fit = 0;
};

/// Times ModelGenerator::fit over the two-term search space until
/// `budget_seconds` elapses (at least one fit).
FitterTiming time_fitter(simd::Backend backend, int threads,
                         double budget_seconds) {
    simd::set_backend(backend);
    std::vector<double> xs = {2, 4, 6, 8, 10, 12, 16, 24, 32, 48};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back(10.0 + 3.0 * x + 0.5 * x * std::log2(x));
    }
    modeling::FitOptions opts;
    opts.space.max_terms = 2;
    opts.num_threads = threads;
    const modeling::ModelGenerator gen(opts);

    FitterTiming timing;
    timing.hypotheses_per_fit = gen.fit(xs, ys).quality().hypotheses_searched;
    const double t0 = now_seconds();
    int fits = 0;
    double elapsed = 0.0;
    do {
        gen.fit(xs, ys);
        ++fits;
        elapsed = now_seconds() - t0;
    } while (elapsed < budget_seconds);
    timing.hypotheses_per_sec =
        static_cast<double>(fits) * timing.hypotheses_per_fit / elapsed;
    return timing;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool keep_files = false;
    double corpus_mb = -1.0;
    int threads = 4;
    std::string out_path;
    std::string thresholds_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                throw InvalidArgumentError(std::string(flag) +
                                           " requires a value");
            }
            return argv[++i];
        };
        try {
            if (arg == "--quick") {
                quick = true;
            } else if (arg == "--keep-files") {
                keep_files = true;
            } else if (arg == "--corpus-mb") {
                corpus_mb = std::stod(next_value("--corpus-mb"));
            } else if (arg == "--threads") {
                threads = std::stoi(next_value("--threads"));
            } else if (arg == "--out") {
                out_path = next_value("--out");
            } else if (arg == "--thresholds") {
                thresholds_path = next_value("--thresholds");
            } else if (arg == "-h" || arg == "--help") {
                usage(argv[0]);
                return 0;
            } else {
                std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    if (corpus_mb <= 0.0) {
        corpus_mb = quick ? 24.0 : 128.0;
    }
    const double fit_budget = quick ? 0.2 : 1.0;

    try {
        std::vector<eval::MetricRecord> records;

        // --- ingest: streaming first, so its RSS delta is measured before
        // the materialising pass inflates the (monotonic) peak.
        std::printf("writing ~%.0f MB synthetic EDP corpus...\n", corpus_mb);
        const Corpus corpus = write_corpus(corpus_mb);
        std::printf("corpus: %zu files, %.1f MB in %s\n", corpus.paths.size(),
                    corpus.total_mb, corpus.dir.c_str());
        add_record(records, "corpus", "total_mb", corpus.total_mb);
        add_record(records, "corpus", "files",
                   static_cast<double>(corpus.paths.size()));

        const IngestTiming stream = time_ingest(corpus, true, threads);
        const IngestTiming mat = time_ingest(corpus, false, threads);
        if (keep_files) {
            std::printf("keeping corpus in %s\n", corpus.dir.c_str());
        } else {
            remove_corpus(corpus);
        }
        if (stream.configs_kept != mat.configs_kept ||
            stream.runs_kept != mat.runs_kept) {
            throw Error(
                "extradeep-perf: streaming and materialising ingest "
                "disagree on kept runs/configs");
        }
        add_record(records, "ingest_stream", "mb_per_sec",
                   corpus.total_mb / stream.seconds);
        add_record(records, "ingest_stream", "rss_delta_mb",
                   stream.rss_delta_mb);
        add_record(records, "ingest_materialize", "mb_per_sec",
                   corpus.total_mb / mat.seconds);
        add_record(records, "ingest_materialize", "rss_delta_mb",
                   mat.rss_delta_mb);

        // --- fitter: hypotheses/sec per backend x thread count.
        const simd::Backend saved = simd::active_backend();
        std::vector<int> fit_threads = {1};
        if (threads != 1) {
            fit_threads.push_back(threads);
        }
        for (const simd::Backend backend :
             {simd::Backend::Scalar, simd::Backend::Vector}) {
            for (const int t : fit_threads) {
                const FitterTiming ft = time_fitter(backend, t, fit_budget);
                const std::string name = std::string("fitter_") +
                                         simd::backend_name(backend) + "_t" +
                                         std::to_string(t);
                add_record(records, name, "hypotheses_per_sec",
                           ft.hypotheses_per_sec);
                if (backend == simd::Backend::Scalar && t == 1) {
                    add_record(records, name, "hypotheses_per_fit",
                               static_cast<double>(ft.hypotheses_per_fit));
                }
            }
        }
        simd::set_backend(saved);

        Table table({"case", "metric", "value"});
        for (const auto& r : records) {
            table.add_row({r.case_name, r.metric,
                           json::number(r.value)});
        }
        std::printf("%s\n", table.to_string().c_str());

        if (!out_path.empty()) {
            std::ofstream out(out_path);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             out_path.c_str());
                return 2;
            }
            out << eval::bench_json(records, git_revision(),
                                    "extradeep-perf/1");
            std::printf("wrote %zu records to %s\n", records.size(),
                        out_path.c_str());
        }

        if (!thresholds_path.empty()) {
            const auto thresholds =
                eval::load_thresholds_file(thresholds_path);
            const eval::GateResult gate = eval::check_gate(records, thresholds);
            std::printf("gate: %zu rules, %zu records matched\n",
                        gate.rules_checked, gate.records_matched);
            if (!gate.pass) {
                for (const auto& v : gate.violations) {
                    std::fprintf(stderr, "GATE VIOLATION: %s\n", v.c_str());
                }
                std::fprintf(stderr, "perf gate FAILED (%zu violations)\n",
                             gate.violations.size());
                return 1;
            }
            std::printf("perf gate passed\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
