// Fig. 8: profiling overhead of standard full-epoch profiling vs. the
// efficient measurement sampling strategy, for data-parallel training of all
// five benchmarks with 64 nodes on DEEP. Reports the median execution time
// per epoch, the profiling time per epoch under both strategies, and the
// resulting reduction (paper: ~94.9 % on average; profiler overhead ~5.4 %
// of execution time).

#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dnn/datasets.hpp"
#include "profiling/profiler.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Fig. 8: profiling overhead & efficient sampling",
                        "Figure 8, Section 4.2.4");
    const hw::SystemSpec deep = hw::SystemSpec::deep();
    const int ranks = 64;
    std::printf("System: %s, %d ranks, data parallelism, weak scaling\n\n",
                deep.describe().c_str(), ranks);

    Table table({"benchmark", "exec/epoch", "standard prof/epoch",
                 "efficient prof/epoch", "steps/epoch", "reduction"});
    std::vector<double> reductions;
    for (const auto& dataset : dnn::benchmark_names()) {
        const sim::Workload w = sim::Workload::make(
            dataset, deep, parallel::ParallelConfig::data(ranks),
            parallel::ScalingMode::Weak,
            bench::batch_for(dataset, parallel::ScalingMode::Weak));
        const sim::TrainingSimulator simulator(w);

        std::vector<double> walls;
        for (std::uint64_t rep = 0; rep < 5; ++rep) {
            walls.push_back(simulator.measure_epoch_wall(1000 + rep));
        }
        const double exec_epoch = stats::median(walls);

        const profiling::Profiler standard(
            profiling::SamplingStrategy::standard());
        const profiling::Profiler efficient(
            profiling::SamplingStrategy::efficient());
        // Both strategies run two epochs; report the per-epoch median cost.
        const double standard_epoch =
            standard.profiling_cost(simulator) / 2.0;
        const double efficient_epoch =
            efficient.profiling_cost(simulator) / 2.0;
        const double reduction =
            100.0 * (1.0 - efficient_epoch / standard_epoch);
        reductions.push_back(reduction);
        table.add_row({dataset, fmtx::fixed(exec_epoch, 2),
                       fmtx::fixed(standard_epoch, 2),
                       fmtx::fixed(efficient_epoch, 2),
                       std::to_string(simulator.step_math().train_steps),
                       fmtx::percent(reduction)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Average profiling-time reduction: %s   (paper: ~94.9%%)\n",
                fmtx::percent(stats::mean(reductions)).c_str());
    std::printf("Profiler overhead per step/epoch:  5.4%% of execution time\n"
                "(unchanged by the strategy - only fewer steps are profiled).\n\n");
    std::printf(
        "Paper shape: the strategy is most effective for long-running\n"
        "benchmarks (ImageNet) and least effective for short-running ones\n"
        "(IMDB), because initialisation and the sampled steps amortise over\n"
        "fewer saved steps.\n");
    return 0;
}
