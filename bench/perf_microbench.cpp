// google-benchmark microbenchmarks of the framework's own hot paths:
// PMNF model fitting, measurement aggregation, trace generation, and EDP
// serialisation. These are the costs a user pays per modeled kernel /
// profiled run, independent of the simulated application.

#include <benchmark/benchmark.h>

#include <cmath>
#include <sstream>

#include "aggregation/aggregate.hpp"
#include "common/rng.hpp"
#include "modeling/fitter.hpp"
#include "obs/trace.hpp"
#include "profiling/edp_io.hpp"
#include "profiling/profiler.hpp"
#include "serve/query.hpp"
#include "serve/serialize.hpp"
#include "sim/simulator.hpp"

using namespace extradeep;

namespace {

sim::Workload bench_workload(int ranks) {
    return sim::Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                               parallel::ParallelConfig::data(ranks),
                               parallel::ScalingMode::Weak, 256);
}

std::vector<profiling::ProfiledRun> sample_runs(int ranks, int reps) {
    const sim::TrainingSimulator simulator(bench_workload(ranks));
    const profiling::Profiler profiler(profiling::SamplingStrategy::efficient());
    std::vector<profiling::ProfiledRun> runs;
    for (int rep = 0; rep < reps; ++rep) {
        runs.push_back(profiler.profile(
            simulator, {{"x1", static_cast<double>(ranks)}}, rep));
    }
    return runs;
}

void BM_ModelFit_1Term(benchmark::State& state) {
    Rng rng(1);
    std::vector<double> xs = {2, 4, 6, 8, 10};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back((10.0 + 3.0 * x) * rng.lognormal_factor(0.03));
    }
    const modeling::ModelGenerator gen;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.fit(xs, ys));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelFit_1Term)->Unit(benchmark::kMillisecond);

void BM_ModelFit_2Terms(benchmark::State& state) {
    Rng rng(1);
    std::vector<double> xs = {2, 4, 6, 8, 10, 12, 16};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back((10.0 + 3.0 * x) * rng.lognormal_factor(0.03));
    }
    modeling::FitOptions opts;
    opts.space.max_terms = 2;
    const modeling::ModelGenerator gen(opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.fit(xs, ys));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelFit_2Terms)->Unit(benchmark::kMillisecond);

// Fitter throughput over the full two-term hypothesis space (~1.4k
// hypotheses per fit with the default exponent sets). Arg(0) is the thread
// count, so comparing the Arg(1) and Arg(4) rows gives serial vs. parallel
// hypotheses/sec directly; items_per_second is the headline number.
void BM_FitterHypothesisSearch(benchmark::State& state) {
    const int threads = static_cast<int>(state.range(0));
    Rng rng(7);
    const std::vector<double> xs = {2, 4, 6, 8, 10, 12, 16, 24, 32, 48};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back((10.0 + 3.0 * x + 0.5 * x * std::log2(x)) *
                     rng.lognormal_factor(0.03));
    }
    modeling::FitOptions opts;
    opts.space.max_terms = 2;
    opts.num_threads = threads;
    const modeling::ModelGenerator gen(opts);
    const int hypotheses_per_fit =
        gen.fit(xs, ys).quality().hypotheses_searched;
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.fit(xs, ys));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(hypotheses_per_fit));
    state.counters["hypotheses_per_fit"] =
        static_cast<double>(hypotheses_per_fit);
}
BENCHMARK(BM_FitterHypothesisSearch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
    const sim::TrainingSimulator simulator(
        bench_workload(static_cast<int>(state.range(0))));
    sim::TraceOptions opts;
    opts.epochs = 2;
    opts.train_steps_per_epoch = 5;
    opts.val_steps_per_epoch = 5;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        opts.run_seed = ++seed;
        benchmark::DoNotOptimize(simulator.trace_rank(0, opts));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration)->Arg(4)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_Aggregation(benchmark::State& state) {
    const auto runs = sample_runs(static_cast<int>(state.range(0)), 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aggregation::aggregate_runs(runs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Aggregation)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_EdpWrite(benchmark::State& state) {
    const auto runs = sample_runs(4, 1);
    for (auto _ : state) {
        std::ostringstream os;
        profiling::write_edp(os, runs.front());
        benchmark::DoNotOptimize(os.str());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdpWrite)->Unit(benchmark::kMillisecond);

void BM_EdpRead(benchmark::State& state) {
    const auto runs = sample_runs(4, 1);
    std::ostringstream os;
    profiling::write_edp(os, runs.front());
    const std::string text = os.str();
    for (auto _ : state) {
        std::istringstream is(text);
        benchmark::DoNotOptimize(profiling::read_edp(is));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_EdpRead)->Unit(benchmark::kMillisecond);

/// A serving engine over one fitted model, shared by every benchmark thread
/// (the engine is thread-safe; that contention is exactly what the
/// multi-threaded rows measure).
serve::QueryEngine& bench_engine() {
    static serve::QueryEngine* engine = [] {
        ExperimentSpec spec;
        spec.repetitions = 2;
        auto registry = std::make_shared<serve::ModelRegistry>();
        registry->add(std::make_shared<const serve::ServableModel>(
            serve::make_servable(spec, ExperimentRunner(spec).run(),
                                 "bench-model")));
        return new serve::QueryEngine(std::move(registry));
    }();
    return *engine;
}

// Query-serving throughput: one request of each analysis kind per
// iteration, answered by QueryEngine::execute (the daemon is a pure
// transport over it, so this is the per-request serving cost minus the
// network). ->Threads(1) vs ->Threads(4) shows how the registry's
// shared-lock reads and the stats mutex scale under concurrent clients.
void BM_ServeQuery(benchmark::State& state) {
    serve::QueryEngine& engine = bench_engine();
    static const std::vector<std::string> requests = {
        "predict bench-model 16",
        "speedup bench-model 2 4 8 16 32",
        "efficiency bench-model 2 4 8 16 32",
        "cost bench-model 16",
        "search bench-model inf inf 2 4 8 16 32",
    };
    for (auto _ : state) {
        for (const auto& request : requests) {
            benchmark::DoNotOptimize(engine.execute(request));
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_ServeQuery)->Threads(1)->Threads(4)->Unit(benchmark::kMicrosecond);

// Cost of one obs::Span construction+destruction. Arg(0) is the disabled
// path (a relaxed atomic load and a branch — the tax every instrumented
// call site pays in normal runs; the ISSUE budget is <= 5 ns/op), Arg(1)
// the enabled path (full record into the per-thread buffer). The enabled
// variant clears the tracer periodically so a long --benchmark_min_time
// run cannot grow the span buffers without bound.
void BM_ObsSpanOverhead(benchmark::State& state) {
    const bool enabled = state.range(0) != 0;
    obs::set_trace_enabled(enabled);
    std::uint64_t sinceClear = 0;
    for (auto _ : state) {
        {
            const obs::Span span{"bench.span"};
            benchmark::DoNotOptimize(span);
        }
        if (enabled && ++sinceClear >= (1u << 20)) {
            state.PauseTiming();
            obs::global_tracer().clear();
            sinceClear = 0;
            state.ResumeTiming();
        }
    }
    obs::set_trace_enabled(false);
    obs::global_tracer().clear();
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_ObsSpanOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

void BM_EpochMeasurement(benchmark::State& state) {
    const sim::TrainingSimulator simulator(bench_workload(32));
    std::uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulator.measure_epoch_wall(++seed));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochMeasurement)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
