#include "bench_util.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace extradeep::bench {

std::vector<int> modeling_nodes() { return {2, 4, 6, 8, 10}; }

std::vector<int> evaluation_nodes() {
    return {12, 16, 24, 32, 40, 48, 56, 64};
}

std::vector<int> case_study_modeling_ranks() { return {2, 4, 6, 10, 12}; }

std::vector<int> case_study_evaluation_ranks() {
    return {14, 16, 18, 20, 24, 28, 32, 36, 40, 48, 56, 64};
}

std::int64_t batch_for(const std::string& dataset,
                       parallel::ScalingMode mode) {
    if (mode == parallel::ScalingMode::Weak) {
        // 224x224 activations of EfficientNet-B0 do not fit a 16 GiB V100 at
        // B=256; ImageNet trains with 64 samples per worker.
        return dataset == "ImageNet" ? 64 : 256;
    }
    // Strong scaling shards a fixed dataset; the batch must stay small
    // enough that the largest configuration still completes a step.
    if (dataset == "IMDB") {
        return 32;
    }
    return 64;
}

int ranks_for_nodes(const hw::SystemSpec& system, int nodes) {
    return nodes * system.gpus_per_node;
}

ExperimentSpec make_spec(const std::string& dataset,
                         const hw::SystemSpec& system,
                         parallel::StrategyKind strategy,
                         parallel::ScalingMode scaling) {
    ExperimentSpec spec;
    spec.dataset = dataset;
    spec.system = system;
    spec.strategy = strategy;
    spec.scaling = scaling;
    spec.batch_per_worker = batch_for(dataset, scaling);
    spec.model_parallel_degree = 4;
    spec.modeling_ranks.clear();
    for (const int n : modeling_nodes()) {
        spec.modeling_ranks.push_back(ranks_for_nodes(system, n));
    }
    spec.evaluation_ranks.clear();
    for (const int n : evaluation_nodes()) {
        spec.evaluation_ranks.push_back(ranks_for_nodes(system, n));
    }
    // Tensor/pipeline parallelism needs ranks divisible by M.
    if (strategy != parallel::StrategyKind::Data) {
        auto divisible = [&](std::vector<int>& ranks) {
            std::vector<int> ok;
            for (const int r : ranks) {
                if (r % spec.model_parallel_degree == 0 &&
                    r / spec.model_parallel_degree >= 2) {
                    ok.push_back(r);
                }
            }
            ranks = ok;
        };
        divisible(spec.modeling_ranks);
        divisible(spec.evaluation_ranks);
        if (spec.modeling_ranks.size() < 5) {
            // One GPU per node: use multiples of M directly (M..5M).
            spec.modeling_ranks.clear();
            for (int i = 2; spec.modeling_ranks.size() < 5; ++i) {
                spec.modeling_ranks.push_back(i * spec.model_parallel_degree);
            }
            spec.evaluation_ranks.clear();
            for (const int n : evaluation_nodes()) {
                const int r = ranks_for_nodes(system, n);
                if (r % spec.model_parallel_degree == 0 &&
                    r > spec.modeling_ranks.back()) {
                    spec.evaluation_ranks.push_back(r);
                }
            }
        }
    }
    spec.repetitions = 5;
    spec.seed = 7;
    return spec;
}

SeriesResult run_series(const ExperimentSpec& spec) {
    SeriesResult out;
    out.spec = spec;
    const ExperimentRunner runner(spec);
    out.result = runner.run();

    const int gpus = spec.system.gpus_per_node;
    for (std::size_t i = 0; i < out.result.modeling_xs.size(); ++i) {
        const double x = out.result.modeling_xs[i];
        const int node = static_cast<int>(x) / gpus;
        const double pred = out.result.epoch_time.evaluate(x);
        const double data_value = out.result.epoch_time_values[i];
        out.accuracy_pct[node] =
            100.0 * std::abs(pred - data_value) / data_value;
        out.predicted_s[node] = pred;
        out.measured_s[node] = data_value;
    }
    for (const int ranks : spec.evaluation_ranks) {
        const int node = ranks / gpus;
        const double pred = out.result.epoch_time.evaluate(ranks);
        const double measured = runner.measured_epoch_time(ranks);
        out.prediction_pct[node] =
            100.0 * std::abs(pred - measured) / measured;
        out.predicted_s[node] = pred;
        out.measured_s[node] = measured;
    }
    return out;
}

double mpe_at(const std::vector<SeriesResult>& series, int node,
              bool prediction) {
    std::vector<double> errors;
    for (const auto& s : series) {
        const auto& m = prediction ? s.prediction_pct : s.accuracy_pct;
        const auto it = m.find(node);
        if (it != m.end()) {
            errors.push_back(it->second);
        }
    }
    if (errors.empty()) {
        throw InvalidArgumentError("mpe_at: no series covers node count " +
                                   std::to_string(node));
    }
    return stats::median(errors);
}

void print_header(const std::string& title, const std::string& paper_ref) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s of \"Extra-Deep: Automated Empirical\n",
                paper_ref.c_str());
    std::printf("Performance Modeling for Distributed Deep Learning\" (SC-W 2023)\n");
    std::printf("Substrate: simulated DEEP/JURECA clusters (see DESIGN.md)\n");
    std::printf("==============================================================\n\n");
}

}  // namespace extradeep::bench
