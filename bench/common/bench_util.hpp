#pragma once

#include <map>
#include <string>
#include <vector>

#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"

namespace extradeep::bench {

/// The node grids of the paper's evaluation (Sec. 4.1 / Figs. 5-7 x-axes).
/// On DEEP one rank per node; on JURECA four (one per GPU), so ranks =
/// nodes * gpus_per_node on both systems.
std::vector<int> modeling_nodes();    // {2, 4, 6, 8, 10}
std::vector<int> evaluation_nodes();  // {12, 16, 24, 32, 40, 48, 56, 64}

/// Case-study grids (Sec. 2.3): P(x1) = {2,4,6,10,12} and twelve
/// evaluation points up to 64 ranks.
std::vector<int> case_study_modeling_ranks();
std::vector<int> case_study_evaluation_ranks();

/// Batch size per worker used for a benchmark/scaling combination. Weak
/// scaling uses the paper's 256; strong scaling uses smaller batches so the
/// sharded dataset still yields at least one step at 64 nodes.
std::int64_t batch_for(const std::string& dataset, parallel::ScalingMode mode);

/// Builds the standard evaluation spec: node grids mapped to ranks for the
/// system, per-benchmark batch size, 5 repetitions.
ExperimentSpec make_spec(const std::string& dataset,
                         const hw::SystemSpec& system,
                         parallel::StrategyKind strategy,
                         parallel::ScalingMode scaling);

/// One fully evaluated experiment series: the fitted application model, its
/// accuracy at the modeling points (vs. the data used for modeling, the
/// paper's "model accuracy") and its predictive power at the evaluation
/// points (vs. independent measured runs), keyed by *node* count.
struct SeriesResult {
    ExperimentSpec spec;
    ExperimentResult result;
    std::map<int, double> accuracy_pct;
    std::map<int, double> prediction_pct;
    std::map<int, double> predicted_s;
    std::map<int, double> measured_s;
};

/// Runs one experiment series end to end.
SeriesResult run_series(const ExperimentSpec& spec);

/// Median of the values at `node` over several series (the MPE bars of
/// Figs. 5-7); series lacking the node are skipped. Throws if none has it.
double mpe_at(const std::vector<SeriesResult>& series, int node,
              bool prediction);

/// Nodes -> ranks for a system.
int ranks_for_nodes(const hw::SystemSpec& system, int nodes);

/// Prints the standard bench header (paper reference + system line).
void print_header(const std::string& title, const std::string& paper_ref);

}  // namespace extradeep::bench
