// Table 2: median percentage error of the *kernel-level* models by model
// type (CUDA kernels, NVTX functions, OS functions, cuBLAS, cuDNN, MPI,
// memory operations) and metric (time / visits / bytes), evaluated at nodes
// 24-64, aggregated over all five benchmarks and both systems with data
// parallelism; plus the number of models per row.

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dnn/datasets.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

namespace {

/// Table 2 row key: model type (paper's grouping) + metric.
struct RowKey {
    std::string type;
    aggregation::Metric metric;
    bool operator<(const RowKey& o) const {
        if (type != o.type) return type < o.type;
        return metric < o.metric;
    }
};

std::string model_type_of(trace::KernelCategory cat) {
    switch (cat) {
        case trace::KernelCategory::CudaKernel:
        case trace::KernelCategory::Nccl:  // GPU kernels launched by NCCL
            return "CUDA kernels";
        case trace::KernelCategory::NvtxFunction: return "NVTX func.";
        case trace::KernelCategory::Os: return "OS func.";
        case trace::KernelCategory::Cublas: return "cuBLAS";
        case trace::KernelCategory::Cudnn: return "cuDNN";
        case trace::KernelCategory::Mpi: return "MPI";
        case trace::KernelCategory::Memcpy:
        case trace::KernelCategory::Memset: return "Memory ops.";
        case trace::KernelCategory::CudaApi: return "CUDA API";
    }
    return "other";
}

}  // namespace

int main() {
    bench::print_header("Table 2: kernel-model accuracy by model type",
                        "Table 2, Section 4.2.5");
    const std::vector<int> eval_nodes = {24, 32, 40, 48, 56, 64};
    const std::vector<aggregation::Metric> metrics = {
        aggregation::Metric::Time, aggregation::Metric::Visits,
        aggregation::Metric::Bytes};

    // errors[row][node] -> list of percentage errors over all models.
    std::map<RowKey, std::map<int, std::vector<double>>> errors;
    std::map<RowKey, int> model_counts;

    for (const auto& system :
         {hw::SystemSpec::deep(), hw::SystemSpec::jureca()}) {
        for (const auto& dataset : dnn::benchmark_names()) {
            const ExperimentSpec spec =
                bench::make_spec(dataset, system, parallel::StrategyKind::Data,
                                 parallel::ScalingMode::Weak);
            const ExperimentRunner runner(spec);
            const ExperimentResult result = runner.run();
            const auto entries =
                model_kernels(result.data, result.step_math_fn, metrics);

            // Ground truth per evaluation node, indexed by kernel name.
            for (const int node : eval_nodes) {
                const int ranks = bench::ranks_for_nodes(system, node);
                const auto measured = runner.measured_kernel_totals(ranks);
                std::map<std::string, const sim::KernelTotals*> by_name;
                for (const auto& m : measured) {
                    by_name[m.name] = &m;
                }
                for (const auto& e : entries) {
                    const auto it = by_name.find(e.name);
                    if (it == by_name.end()) continue;
                    double truth = 0.0;
                    switch (e.metric) {
                        case aggregation::Metric::Time:
                            truth = it->second->time;
                            break;
                        case aggregation::Metric::Visits:
                            truth = static_cast<double>(it->second->visits);
                            break;
                        case aggregation::Metric::Bytes:
                            truth = it->second->bytes;
                            break;
                    }
                    if (truth <= 0.0) continue;
                    const double pred = e.model.evaluate(ranks);
                    const RowKey key{model_type_of(e.category), e.metric};
                    errors[key][node].push_back(
                        100.0 * std::abs(pred - truth) / truth);
                }
            }
            for (const auto& e : entries) {
                ++model_counts[{model_type_of(e.category), e.metric}];
            }
        }
        std::printf("evaluated %s\n", system.name.c_str());
    }
    std::printf("\n");

    // Paper row order.
    const std::vector<RowKey> row_order = {
        {"CUDA kernels", aggregation::Metric::Time},
        {"CUDA kernels", aggregation::Metric::Visits},
        {"NVTX func.", aggregation::Metric::Time},
        {"NVTX func.", aggregation::Metric::Visits},
        {"OS func.", aggregation::Metric::Time},
        {"cuBLAS", aggregation::Metric::Time},
        {"cuDNN", aggregation::Metric::Time},
        {"MPI", aggregation::Metric::Time},
        {"Memory ops.", aggregation::Metric::Time},
        {"Memory ops.", aggregation::Metric::Bytes},
    };

    Table table({"model type", "metric", "24", "32", "40", "48", "56", "64",
                 "models"});
    for (const auto& key : row_order) {
        const auto it = errors.find(key);
        if (it == errors.end()) continue;
        std::vector<std::string> row = {
            key.type, std::string(aggregation::metric_name(key.metric))};
        for (const int node : eval_nodes) {
            const auto nit = it->second.find(node);
            row.push_back(nit == it->second.end()
                              ? "-"
                              : fmtx::percent(stats::median(nit->second)));
        }
        row.push_back(std::to_string(model_counts[key]));
        table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Paper shape: visits are easier to predict than runtime (they are\n"
        "deterministic per step); MPI runtime is the hardest (22.4%% at 64\n"
        "nodes); memory-operation runtime and bytes are very accurate\n"
        "(7.9%% / 7.2%% at 64 nodes); errors grow with the node count.\n");
    return 0;
}
