// Fig. 5: model accuracy (modeling nodes 2-10) and predictive power
// (evaluation nodes 12-64) of the training-time-per-epoch models for data,
// tensor, and pipeline parallelism on JURECA. Bars are the median percentage
// error (MPE) over all five benchmarks, weak and strong scaling combined.

#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "dnn/datasets.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Fig. 5: parallel strategies on JURECA",
                        "Figure 5, Section 4.2.1");
    const hw::SystemSpec jureca = hw::SystemSpec::jureca();
    std::printf("System: %s\n", jureca.describe().c_str());
    std::printf("Degrees: data G=x1, M=1; tensor/pipeline G=x1, M=4 "
                "(Sec. 4.2.1)\n\n");

    const parallel::StrategyKind strategies[] = {
        parallel::StrategyKind::Data, parallel::StrategyKind::Tensor,
        parallel::StrategyKind::Pipeline};

    std::vector<std::vector<bench::SeriesResult>> per_strategy(3);
    for (int s = 0; s < 3; ++s) {
        for (const auto& dataset : dnn::benchmark_names()) {
            for (const auto scaling : {parallel::ScalingMode::Weak,
                                       parallel::ScalingMode::Strong}) {
                const ExperimentSpec spec =
                    bench::make_spec(dataset, jureca, strategies[s], scaling);
                per_strategy[s].push_back(bench::run_series(spec));
            }
        }
        std::printf("ran %zu series for %s\n", per_strategy[s].size(),
                    std::string(parallel::strategy_name(strategies[s])).c_str());
    }
    std::printf("\n");

    Table table({"nodes", "kind", "data parallelism", "tensor parallelism",
                 "pipeline parallelism"});
    for (const int node : bench::modeling_nodes()) {
        std::vector<std::string> row = {std::to_string(node), "accuracy"};
        for (int s = 0; s < 3; ++s) {
            row.push_back(
                fmtx::percent(bench::mpe_at(per_strategy[s], node, false)));
        }
        table.add_row(row);
    }
    for (const int node : bench::evaluation_nodes()) {
        std::vector<std::string> row = {std::to_string(node), "prediction"};
        for (int s = 0; s < 3; ++s) {
            row.push_back(
                fmtx::percent(bench::mpe_at(per_strategy[s], node, true)));
        }
        table.add_row(row);
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Paper shape: accuracy MPE 0.4-1.4%%; prediction MPE grows with the\n"
        "extrapolation distance; tensor/pipeline slightly worse than data\n"
        "parallelism (max 18.4%% for tensor at 64 nodes).\n");
    return 0;
}
