// Ablation: system-noise magnitude vs. model quality. The paper attributes
// a large share of its prediction error at scale to run-to-run variation
// (avg 12.6 % on DEEP, 17.4 % on JURECA, Sec. 4.3). This bench scales the
// simulated noise and shows how accuracy and predictive power respond.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace extradeep;
namespace fmtx = extradeep::fmt;

int main() {
    bench::print_header("Ablation: noise magnitude vs. model quality",
                        "the noise discussion in Section 4.3");

    Table table({"noise scale", "run-to-run@64", "max acc err", "err@64"});
    for (const double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        ExperimentSpec spec = bench::make_spec("CIFAR-10",
                                               hw::SystemSpec::deep(),
                                               parallel::StrategyKind::Data,
                                               parallel::ScalingMode::Weak);
        spec.system.noise.base_sigma *= scale;
        spec.system.noise.sigma_per_sqrt_rank *= scale;
        spec.system.noise.comm_sigma_extra *= scale;
        spec.system.noise.os_spike_probability *= scale;
        spec.evaluation_ranks = {64};
        const ExperimentRunner runner(spec);
        const ExperimentResult result = runner.run();

        double max_acc = 0.0;
        for (std::size_t i = 0; i < result.modeling_xs.size(); ++i) {
            const double pred =
                result.epoch_time.evaluate(result.modeling_xs[i]);
            max_acc = std::max(max_acc,
                               100.0 * std::abs(pred - result.epoch_time_values[i]) /
                                   result.epoch_time_values[i]);
        }
        const double meas = runner.measured_epoch_time(64);
        const double err =
            100.0 * std::abs(result.epoch_time.evaluate(64.0) - meas) / meas;
        const double variation = stats::run_to_run_variation(
            runner.measured_epoch_times_all_reps(64));
        table.add_row({fmtx::fixed(scale, 1), fmtx::percent(variation),
                       fmtx::percent(max_acc), fmtx::percent(err)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf(
        "Expected: fit accuracy degrades with the noise level, while the\n"
        "run-to-run variation tracks the injected sigma. The far-\n"
        "extrapolation error is dominated by *structural* scale-dependent\n"
        "behaviour (collective-algorithm switches outside the PMNF space):\n"
        "it stays ~15%% even at zero noise - evidence for the paper's\n"
        "Sec. 4.3 argument that such errors are expected and not a fitting\n"
        "artifact.\n");
    return 0;
}
