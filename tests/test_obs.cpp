#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parallel_for.hpp"
#include "extradeep/ingest.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/selfprofile.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "profiling/edp_io.hpp"

// The observability subsystem (src/obs): deterministic span tracing under a
// FakeClock, Chrome/text export, the metrics registry and its Prometheus
// exposition, span-context propagation across ThreadPool::parallel_for, and
// the self-profiling .edp round-trip through the real ingestion pipeline.

using namespace extradeep;

namespace fs = std::filesystem;

namespace {

fs::path temp_dir(const std::string& tag) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("obs-" + tag);
    fs::create_directories(dir);
    return dir;
}

/// Restores the global tracing switch (and empties the global tracer) on
/// scope exit, so tests that flip it cannot leak state into later suites.
struct TraceStateGuard {
    ~TraceStateGuard() {
        obs::set_trace_enabled(false);
        obs::global_tracer().clear();
    }
};

}  // namespace

TEST(FakeClock, AutoStepAdvancesPerReading) {
    const obs::FakeClock clock(100, 10);
    EXPECT_EQ(clock.now_ns(), 100u);
    EXPECT_EQ(clock.now_ns(), 110u);
    EXPECT_EQ(clock.now_ns(), 120u);
}

TEST(FakeClock, FrozenUntilAdvanced) {
    obs::FakeClock clock;
    EXPECT_EQ(clock.now_ns(), 0u);
    EXPECT_EQ(clock.now_ns(), 0u);
    clock.advance(7);
    EXPECT_EQ(clock.now_ns(), 7u);
    clock.set(1000);
    EXPECT_EQ(clock.now_ns(), 1000u);
}

TEST(Tracer, DeterministicNestedSpansUnderFakeClock) {
    const obs::FakeClock clock(1000, 1000);
    obs::Tracer tracer(&clock);
    {
        const obs::Span outer(tracer, "outer");
        EXPECT_NE(outer.id(), 0u);
        {
            const obs::Span inner(tracer, "inner");
            EXPECT_EQ(obs::current_span_id(), inner.id());
        }
        EXPECT_EQ(obs::current_span_id(), outer.id());
    }
    EXPECT_EQ(obs::current_span_id(), 0u);

    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by start time: outer opened first (t=1000), inner at t=2000.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].start_ns, 1000u);
    EXPECT_EQ(spans[0].end_ns, 4000u);
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].start_ns, 2000u);
    EXPECT_EQ(spans[1].end_ns, 3000u);
    EXPECT_EQ(spans[1].parent, spans[0].id);
    EXPECT_DOUBLE_EQ(spans[1].duration_us(), 1.0);
    EXPECT_EQ(spans[0].thread, 0);
}

TEST(Tracer, ClearKeepsIdentitySequence) {
    const obs::FakeClock clock(0, 1);
    obs::Tracer tracer(&clock);
    std::uint64_t first_id = 0;
    {
        const obs::Span span(tracer, "a");
        first_id = span.id();
    }
    EXPECT_EQ(tracer.span_count(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.span_count(), 0u);
    {
        const obs::Span span(tracer, "b");
        EXPECT_GT(span.id(), first_id);  // ids never recycle across clear()
    }
}

TEST(Tracer, DisabledGlobalSpanRecordsNothing) {
    const TraceStateGuard guard;
    obs::set_trace_enabled(false);
    obs::global_tracer().clear();
    const std::size_t before = obs::global_tracer().span_count();
    {
        const obs::Span span{"noop"};
        EXPECT_EQ(span.id(), 0u);
        EXPECT_EQ(obs::current_span_id(), 0u);
    }
    EXPECT_EQ(obs::global_tracer().span_count(), before);
}

TEST(Tracer, ConcurrentSpansFromManyThreads) {
    const obs::FakeClock clock(0, 1);
    obs::Tracer tracer(&clock);
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 100;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tracer] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                const obs::Span span(tracer, "worker.span");
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }

    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    std::set<std::uint64_t> ids;
    std::set<int> thread_indices;
    for (const obs::SpanRecord& span : spans) {
        ids.insert(span.id);
        thread_indices.insert(span.thread);
        EXPECT_EQ(span.parent, 0u);
        EXPECT_GE(span.end_ns, span.start_ns);
    }
    EXPECT_EQ(ids.size(), spans.size());  // ids unique across threads
    EXPECT_EQ(thread_indices.size(), static_cast<std::size_t>(kThreads));
    // Dense registration-order indices.
    EXPECT_GE(*thread_indices.begin(), 0);
    EXPECT_LT(*thread_indices.rbegin(), kThreads);
}

TEST(Tracer, ParallelForPropagatesAmbientSpan) {
    const TraceStateGuard guard;
    obs::set_trace_enabled(true);
    obs::global_tracer().clear();

    std::uint64_t outer_id = 0;
    std::mutex mutex;
    std::vector<std::uint64_t> observed_parents;
    {
        const obs::Span outer{"dispatch"};
        outer_id = outer.id();
        ASSERT_NE(outer_id, 0u);
        ThreadPool pool(3);
        pool.parallel_for(16, [&](int, std::size_t, std::size_t) {
            // The dispatching span must be ambient on the worker thread.
            const std::lock_guard<std::mutex> lock(mutex);
            observed_parents.push_back(obs::current_span_id());
        });
    }

    ASSERT_FALSE(observed_parents.empty());
    for (const std::uint64_t parent : observed_parents) {
        EXPECT_EQ(parent, outer_id);
    }
}

TEST(Tracer, ParallelForChunkSpansNestUnderCaller) {
    const TraceStateGuard guard;
    obs::set_trace_enabled(true);
    obs::global_tracer().clear();

    std::uint64_t outer_id = 0;
    {
        const obs::Span outer{"dispatch"};
        outer_id = outer.id();
        ThreadPool pool(4);
        pool.parallel_for(32, [](int, std::size_t, std::size_t) {
            const obs::Span chunk{"chunk"};
        });
    }
    obs::set_trace_enabled(false);

    int chunks = 0;
    for (const obs::SpanRecord& span : obs::global_tracer().snapshot()) {
        if (span.name == "chunk") {
            ++chunks;
            EXPECT_EQ(span.parent, outer_id);
        }
    }
    EXPECT_GE(chunks, 1);
    EXPECT_LE(chunks, 4);
}

TEST(TraceExport, ChromeJsonParsesWithCommonJson) {
    const obs::FakeClock clock(5000, 500);
    obs::Tracer tracer(&clock);
    {
        const obs::Span outer(tracer, "stage \"one\"");  // exercises quoting
        const obs::Span inner(tracer, "stage.two");
    }
    const std::string text = tracer.snapshot().empty()
                                 ? std::string()
                                 : obs::chrome_trace_json(tracer.snapshot());
    ASSERT_FALSE(text.empty());

    const json::Value doc = json::parse(text, "chrome trace");
    ASSERT_EQ(doc.kind, json::Value::Kind::Object);
    const json::Value* unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->string, "ms");
    const json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, json::Value::Kind::Array);
    ASSERT_EQ(events->array.size(), 2u);
    for (const json::Value& event : events->array) {
        ASSERT_EQ(event.kind, json::Value::Kind::Object);
        EXPECT_EQ(event.find("ph")->string, "X");
        EXPECT_NE(event.find("name"), nullptr);
        EXPECT_NE(event.find("ts"), nullptr);
        EXPECT_NE(event.find("dur"), nullptr);
        EXPECT_NE(event.find("pid"), nullptr);
        EXPECT_NE(event.find("tid"), nullptr);
        const json::Value* args = event.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_NE(args->find("id"), nullptr);
        EXPECT_NE(args->find("parent"), nullptr);
    }
    // ts/dur are microseconds on the fake timeline.
    EXPECT_DOUBLE_EQ(events->array[0].find("ts")->number, 5.0);
}

TEST(TraceExport, TextSummaryAggregatesPerName) {
    const obs::FakeClock clock(0, 1000);
    obs::Tracer tracer(&clock);
    for (int i = 0; i < 3; ++i) {
        const obs::Span span(tracer, "repeated.stage");
    }
    { const obs::Span span(tracer, "single.stage"); }
    const std::string summary = obs::text_summary(tracer.snapshot());
    EXPECT_NE(summary.find("repeated.stage"), std::string::npos);
    EXPECT_NE(summary.find("single.stage"), std::string::npos);
    EXPECT_NE(summary.find("count"), std::string::npos);
    EXPECT_NE(summary.find("p95_us"), std::string::npos);
}

TEST(Metrics, CounterGaugeBasics) {
    obs::MetricsRegistry registry;
    obs::Counter& counter = registry.counter("test_total");
    counter.increment();
    counter.increment(2);
    EXPECT_EQ(counter.value(), 3u);
    // Find-or-create returns the same instrument.
    EXPECT_EQ(&registry.counter("test_total"), &counter);

    obs::Gauge& gauge = registry.gauge("test_gauge");
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
    obs::MetricsRegistry registry;
    obs::Histogram& hist = registry.histogram("test_hist", {1.0, 2.0, 5.0});
    hist.observe(0.5);  // le="1"
    hist.observe(1.0);  // le="1" (edge values land in their own bucket)
    hist.observe(1.5);  // le="2"
    hist.observe(5.0);  // le="5"
    hist.observe(9.0);  // +Inf
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.sum(), 17.0);
    const std::vector<std::uint64_t> counts = hist.bucket_counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);

    // Nearest-rank over buckets: quantiles resolve to bucket upper edges;
    // the +Inf bucket reports the largest finite edge.
    EXPECT_DOUBLE_EQ(hist.quantile(0.50), 2.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.95), 5.0);
    EXPECT_DOUBLE_EQ(registry.histogram("test_empty", {1.0}).quantile(0.5),
                     0.0);
}

TEST(Metrics, ExpositionFormat) {
    obs::MetricsRegistry registry;
    registry.counter("req_total", "kind", "predict").increment(3);
    registry.counter("req_total", "kind", "ping").increment();
    registry.gauge("temp").set(1.5);
    obs::Histogram& hist = registry.histogram("lat_us", {1.0, 10.0});
    hist.observe(0.5);
    hist.observe(100.0);

    const std::string text = registry.exposition();
    // One TYPE line per family even with several labeled samples.
    const std::string type_line = "# TYPE req_total counter";
    std::size_t occurrences = 0;
    for (std::size_t pos = text.find(type_line); pos != std::string::npos;
         pos = text.find(type_line, pos + 1)) {
        ++occurrences;
    }
    EXPECT_EQ(occurrences, 1u);
    EXPECT_NE(text.find("req_total{kind=\"predict\"} 3"), std::string::npos);
    EXPECT_NE(text.find("req_total{kind=\"ping\"} 1"), std::string::npos);
    EXPECT_NE(text.find("# TYPE temp gauge"), std::string::npos);
    EXPECT_NE(text.find("temp 1.5"), std::string::npos);
    // Histogram samples: cumulative buckets, +Inf, sum and count.
    EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 1"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
    EXPECT_NE(text.find("lat_us_sum 100.5"), std::string::npos);
    EXPECT_NE(text.find("lat_us_count 2"), std::string::npos);
}

TEST(Metrics, RejectsInvalidNamesAndFamilyConflicts) {
    obs::MetricsRegistry registry;
    EXPECT_THROW(registry.counter("bad name"), InvalidArgumentError);
    EXPECT_THROW(registry.counter("0leading"), InvalidArgumentError);
    EXPECT_THROW(registry.counter(""), InvalidArgumentError);

    registry.counter("family");
    EXPECT_THROW(registry.gauge("family"), InvalidArgumentError);

    registry.histogram("h", {1.0, 2.0}, "kind", "a");
    EXPECT_THROW(registry.histogram("h", {1.0, 3.0}, "kind", "b"),
                 InvalidArgumentError);
    EXPECT_THROW(registry.histogram("decreasing", {2.0, 1.0}),
                 InvalidArgumentError);
}

TEST(Metrics, DefaultLatencyBuckets) {
    const std::vector<double> bounds =
        obs::MetricsRegistry::default_latency_buckets_us();
    ASSERT_FALSE(bounds.empty());
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
    EXPECT_DOUBLE_EQ(bounds.back(), 1e7);
}

TEST(SelfProfile, RejectsEmptyInputs) {
    const obs::FakeClock clock(0, 1000);
    obs::Tracer tracer(&clock);
    { const obs::Span span(tracer, "stage"); }

    obs::SelfProfileOptions options;
    options.params = {{"x1", 4.0}};
    EXPECT_THROW(obs::spans_to_run({}, options), InvalidArgumentError);
    EXPECT_THROW(obs::spans_to_run(tracer.snapshot(), {}),
                 InvalidArgumentError);
}

TEST(SelfProfile, SanitizesSpanNamesAndShapesRun) {
    const obs::FakeClock clock(0, 1000);
    obs::Tracer tracer(&clock);
    { const obs::Span span(tracer, "bad\tname\nhere"); }
    { const obs::Span span(tracer, "good.name"); }

    obs::SelfProfileOptions options;
    options.params = {{"x1", 4.0}};
    options.repetition = 2;
    const profiling::ProfiledRun run =
        obs::spans_to_run(tracer.snapshot(), options);

    EXPECT_EQ(run.repetition, 2);
    ASSERT_EQ(run.ranks.size(), 1u);
    ASSERT_EQ(run.params.at("x1"), 4.0);
    // obs_warmup + one event per span; names EDP-safe.
    ASSERT_EQ(run.ranks[0].events.size(), 3u);
    EXPECT_EQ(run.ranks[0].events[0].name, "obs_warmup");
    EXPECT_EQ(run.ranks[0].events[1].name, "bad name here");
    EXPECT_EQ(run.ranks[0].events[2].name, "good.name");
    EXPECT_EQ(run.ranks[0].marks.size(), 8u);  // 2 epochs x 4 marks
}

TEST(SelfProfile, EdpRoundTripThroughIngestion) {
    const obs::FakeClock clock(0, 1'000'000);  // 1 ms per reading
    obs::Tracer tracer(&clock);
    for (int i = 0; i < 4; ++i) {
        const obs::Span outer(tracer, "pipeline.outer");
        const obs::Span inner(tracer, "pipeline.inner");
    }

    obs::SelfProfileOptions options;
    options.params = {{"x1", 8.0}};
    const fs::path path = temp_dir("roundtrip") / "self.edp";
    obs::write_selfprofile_edp(path.string(), tracer.snapshot(), options);

    // Strict parse back.
    const profiling::ProfiledRun run = profiling::read_edp_file(path.string());
    ASSERT_EQ(run.ranks.size(), 1u);
    EXPECT_EQ(run.ranks[0].events.size(), 9u);  // warmup + 8 spans
    EXPECT_DOUBLE_EQ(run.params.at("x1"), 8.0);

    // The warmup epoch is discarded by default aggregation, the span
    // kernels survive.
    const aggregation::ConfigurationData config =
        aggregation::aggregate_runs(std::vector<profiling::ProfiledRun>{run});
    EXPECT_EQ(config.find_kernel("obs_warmup"), nullptr);
    EXPECT_NE(config.find_kernel("pipeline.outer"), nullptr);
    EXPECT_NE(config.find_kernel("pipeline.inner"), nullptr);

    // And the full ingestion pipeline keeps the run.
    const std::vector<std::vector<profiling::ProfiledRun>> configs = {{run}};
    const IngestResult result = ingest_runs(configs);
    EXPECT_TRUE(result.ok()) << result.diagnostics.summary();
    EXPECT_EQ(result.runs_kept, 1u);
    EXPECT_EQ(result.configs_kept, 1u);
}

TEST(ObsConfig, ParsesSinkSpecs) {
    EXPECT_FALSE(obs::parse_obs_config("").enabled);
    EXPECT_FALSE(obs::parse_obs_config("0").enabled);
    EXPECT_FALSE(obs::parse_obs_config("off").enabled);

    const obs::ObsConfig plain = obs::parse_obs_config("1");
    EXPECT_TRUE(plain.enabled);
    EXPECT_EQ(plain.summary_path, "-");

    const obs::ObsConfig full = obs::parse_obs_config(
        "chrome:t.json,text:-,metrics:m.prom,edp:s.edp,param:x1=8");
    EXPECT_TRUE(full.enabled);
    EXPECT_EQ(full.chrome_path, "t.json");
    EXPECT_EQ(full.summary_path, "-");
    EXPECT_EQ(full.metrics_path, "m.prom");
    EXPECT_EQ(full.edp_path, "s.edp");
    ASSERT_EQ(full.params.size(), 1u);
    EXPECT_DOUBLE_EQ(full.params.at("x1"), 8.0);

    EXPECT_THROW(obs::parse_obs_config("bogus:x"), InvalidArgumentError);
}

TEST(ObsSession, WritesConfiguredSinksOnFlush) {
    const TraceStateGuard guard;
    const fs::path dir = temp_dir("session");

    obs::ObsConfig config;
    config.enabled = true;
    config.chrome_path = (dir / "trace.json").string();
    config.metrics_path = (dir / "metrics.prom").string();
    config.edp_path = (dir / "self.edp").string();
    {
        obs::ObsSession session(std::move(config));
        EXPECT_TRUE(obs::trace_enabled());
        session.set_param("x1", 2.0);
        {
            const obs::Span outer{"session.stage"};
            const obs::Span inner{"session.substage"};
        }
        session.flush();
        EXPECT_FALSE(obs::trace_enabled());
    }

    const json::Value doc = json::parse(
        [&] {
            std::ifstream in(dir / "trace.json", std::ios::binary);
            std::ostringstream buffer;
            buffer << in.rdbuf();
            return buffer.str();
        }(),
        "session chrome trace");
    const json::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->array.size(), 2u);

    EXPECT_TRUE(fs::exists(dir / "metrics.prom"));

    const profiling::ProfiledRun run =
        profiling::read_edp_file((dir / "self.edp").string());
    EXPECT_DOUBLE_EQ(run.params.at("x1"), 2.0);
    ASSERT_EQ(run.ranks.size(), 1u);
    EXPECT_EQ(run.ranks[0].events.size(), 3u);  // warmup + 2 spans
}
