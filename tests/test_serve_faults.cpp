// Fault injection against the EDPM model format, reusing the seeded EDP
// mutator library (tests/fault_injection): whatever bytes arrive, the
// tolerant loader must never throw or crash, the strict loader must either
// succeed or raise a structured ParseError, and any model that does load
// must be fully usable. Crucially, a tolerant load that reports a clean log
// yields predictions bit-identical to the original model — corruption can
// quarantine a file or degrade metadata, but it can never silently change
// what the model predicts.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault_injection.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"
#include "serve/serialize.hpp"

using namespace extradeep;

namespace {

const serve::ServableModel& original_model() {
    static const serve::ServableModel model = [] {
        ExperimentSpec spec;
        spec.repetitions = 2;
        spec.seed = 11;
        const ExperimentResult result = ExperimentRunner(spec).run();
        return serve::make_servable(spec, result, "fuzz-target");
    }();
    return model;
}

const std::string& clean_text() {
    static const std::string text = [] {
        std::ostringstream os;
        serve::write_edpm(os, original_model());
        return os.str();
    }();
    return text;
}

/// Exercises every access path of a loaded model; ASan/UBSan turn latent
/// memory bugs in partially-degraded models into failures here.
void use_model(const serve::ServableModel& model) {
    for (const double x : {2.0, 16.0, 128.0}) {
        const double t = model.epoch_time.evaluate(x);
        (void)t;
        (void)model.epoch_time.predict_interval(x);
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            (void)model.phase_time[p].evaluate(x);
        }
    }
    for (const double x : model.modeling_xs) {
        (void)model.step_math(static_cast<int>(std::lround(x)));
    }
}

void check_mutated(const std::string& mutated) {
    // Tolerant mode: never throws, whatever the bytes.
    serve::EdpmReadOptions tolerant;
    tolerant.mode = ParseMode::Tolerant;
    serve::EdpmReadResult result;
    {
        std::istringstream is(mutated);
        ASSERT_NO_THROW(result = serve::read_edpm(is, tolerant));
    }
    if (result.model.has_value()) {
        use_model(*result.model);
    } else {
        EXPECT_TRUE(result.diagnostics.has_errors())
            << "quarantined without an error diagnostic";
    }

    // Strict mode: clean parse or a structured ParseError, nothing else. A
    // strict success means the input had no detectable problem at all, so
    // the tolerant pass must agree bit for bit (the two modes only differ
    // in how problems are reported, never in what a clean load produces).
    try {
        std::istringstream is(mutated);
        const serve::ServableModel model = serve::read_edpm(is);
        use_model(model);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result.model->epoch_time.evaluate(16.0),
                  model.epoch_time.evaluate(16.0));
        EXPECT_TRUE(result.diagnostics.empty());
    } catch (const ParseError&) {
        // expected for most mutations
    }
}

TEST(EdpmFaults, EveryMutatorEverySeed) {
    for (const auto& [name, mutator] : edpfuzz::mutators()) {
        for (std::uint64_t seed = 1; seed <= 40; ++seed) {
            Rng rng(seed);
            const std::string mutated = mutator(clean_text(), rng);
            SCOPED_TRACE(name + " seed " + std::to_string(seed));
            check_mutated(mutated);
        }
    }
}

TEST(EdpmFaults, StackedRandomMutations) {
    for (std::uint64_t seed = 1; seed <= 150; ++seed) {
        Rng rng(seed);
        const std::string mutated =
            edpfuzz::apply_random_mutations(clean_text(), rng, 3);
        SCOPED_TRACE("seed " + std::to_string(seed));
        check_mutated(mutated);
    }
}

TEST(EdpmFaults, TolerantSurvivesDegenerateInputs) {
    serve::EdpmReadOptions tolerant;
    tolerant.mode = ParseMode::Tolerant;
    for (const std::string& text : {
             std::string(),
             std::string("\n\n\n"),
             std::string("EDPM\t1\n"),
             std::string("EDPM\t1\nEND\n"),
             std::string("garbage"),
             std::string(1 << 16, '\t'),
             std::string("EDPM\t1\nMODEL\t\nENDMODEL\nEND\n"),
         }) {
        std::istringstream is(text);
        serve::EdpmReadResult result;
        ASSERT_NO_THROW(result = serve::read_edpm(is, tolerant));
        EXPECT_FALSE(result.ok());
    }
}

TEST(ScenarioFaults, MutatedSpecsAlwaysGetAProtocolResponse) {
    // Fault injection on what-if scenario specs: run the same seeded mutator
    // library over a well-formed spec and push every mutant through the query
    // engine. Whatever the bytes, the engine must answer with a protocol line
    // ("ok ..." or "err ...") and never throw or crash.
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->add(
        std::make_shared<const serve::ServableModel>(original_model()));
    serve::QueryEngine engine(std::move(registry));

    const std::string clean_spec =
        "interconnect:2+latency:4+overlap:0.5+collective:ring+fuse:4";
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        Rng rng(seed);
        const std::string mutated =
            edpfuzz::apply_random_mutations(clean_spec, rng, 2);
        SCOPED_TRACE("seed " + std::to_string(seed) + " spec " + mutated);
        std::string response;
        ASSERT_NO_THROW(
            response = engine.execute("whatif fuzz-target 8 " + mutated));
        EXPECT_TRUE(response.rfind("ok ", 0) == 0 ||
                    response.rfind("err ", 0) == 0)
            << response;
    }
}

TEST(EdpmFaults, DiagnosticStorageIsCapped) {
    // A pathological file with thousands of bad records must not blow up the
    // diagnostic log (storage is capped, counts keep accumulating).
    std::string text = "EDPM\t1\n";
    for (int i = 0; i < 5000; ++i) {
        text += "WAT\t" + std::to_string(i) + "\n";
    }
    text += "END\n";
    serve::EdpmReadOptions tolerant;
    tolerant.mode = ParseMode::Tolerant;
    tolerant.max_diagnostics = 100;
    std::istringstream is(text);
    const serve::EdpmReadResult result = serve::read_edpm(is, tolerant);
    EXPECT_FALSE(result.ok());
    EXPECT_LE(result.diagnostics.entries().size(), 100u);
    EXPECT_GE(result.diagnostics.total(), 5000u);
}

}  // namespace
