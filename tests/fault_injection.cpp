#include "fault_injection.hpp"

#include <algorithm>
#include <sstream>

namespace extradeep::edpfuzz {

namespace {

using trace::KernelCategory;
using trace::NvtxMark;
using trace::StepKind;

std::vector<std::string> split_lines(const std::string& input) {
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (true) {
        const std::size_t nl = input.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(input.substr(pos));
            break;
        }
        lines.push_back(input.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i > 0) out += '\n';
        out += lines[i];
    }
    return out;
}

std::vector<std::string> split_fields(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            out.push_back(line.substr(pos));
            break;
        }
        out.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return out;
}

std::string join_fields(const std::vector<std::string>& fields) {
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += '\t';
        out += fields[i];
    }
    return out;
}

std::size_t pick_index(Rng& rng, std::size_t size) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

/// A double on the 1/16 grid in [0, max_sixteenths/16]; exact both in
/// binary and in the <= 12-significant-digit EDP text encoding.
double grid(Rng& rng, std::int64_t max_sixteenths) {
    return static_cast<double>(rng.uniform_int(0, max_sixteenths)) / 16.0;
}

}  // namespace

std::string truncate_bytes(const std::string& input, Rng& rng) {
    if (input.empty()) return input;
    return input.substr(0, pick_index(rng, input.size()));
}

std::string delete_field(const std::string& input, Rng& rng) {
    std::vector<std::string> lines = split_lines(input);
    std::string& line = lines[pick_index(rng, lines.size())];
    std::vector<std::string> fields = split_fields(line);
    fields.erase(fields.begin() +
                 static_cast<std::ptrdiff_t>(pick_index(rng, fields.size())));
    line = join_fields(fields);
    return join_lines(lines);
}

std::string delete_line(const std::string& input, Rng& rng) {
    std::vector<std::string> lines = split_lines(input);
    lines.erase(lines.begin() +
                static_cast<std::ptrdiff_t>(pick_index(rng, lines.size())));
    return join_lines(lines);
}

std::string duplicate_line(const std::string& input, Rng& rng) {
    std::vector<std::string> lines = split_lines(input);
    const std::size_t i = pick_index(rng, lines.size());
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
    return join_lines(lines);
}

std::string inject_whitespace(const std::string& input, Rng& rng) {
    std::string out = input;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size())));
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
               rng.bernoulli(0.5) ? '\t' : '\n');
    return out;
}

std::string duplicate_rank_block(const std::string& input, Rng& rng) {
    std::vector<std::string> lines = split_lines(input);
    std::vector<std::size_t> rank_lines;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].rfind("RANK\t", 0) == 0) {
            rank_lines.push_back(i);
        }
    }
    if (rank_lines.empty()) {
        return duplicate_line(input, rng);
    }
    const std::size_t start = rank_lines[pick_index(rng, rank_lines.size())];
    std::size_t end = start + 1;
    while (end < lines.size() && lines[end].rfind("RANK\t", 0) != 0 &&
           lines[end] != "END") {
        ++end;
    }
    std::vector<std::string> block(lines.begin() +
                                       static_cast<std::ptrdiff_t>(start),
                                   lines.begin() +
                                       static_cast<std::ptrdiff_t>(end));
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(end),
                 block.begin(), block.end());
    return join_lines(lines);
}

std::string corrupt_number(const std::string& input, Rng& rng) {
    static const char* kJunk[] = {
        "nan", "-nan", "inf",   "-inf",  "1e999", "-1",
        "12x", "",     "0.0.0", "+-3",   "0x",    "999999999999999999999999",
    };
    std::vector<std::string> lines = split_lines(input);
    std::string& line = lines[pick_index(rng, lines.size())];
    std::vector<std::string> fields = split_fields(line);
    fields[pick_index(rng, fields.size())] =
        kJunk[pick_index(rng, std::size(kJunk))];
    line = join_fields(fields);
    return join_lines(lines);
}

std::string shuffle_lines(const std::string& input, Rng& rng) {
    std::vector<std::string> lines = split_lines(input);
    // Fisher-Yates with our own Rng: the permutation is a pure function of
    // the seed, independent of the standard library's std::shuffle details.
    for (std::size_t i = lines.size(); i > 1; --i) {
        const std::size_t j = pick_index(rng, i);
        std::swap(lines[i - 1], lines[j]);
    }
    return join_lines(lines);
}

const std::vector<std::pair<std::string, MutatorFn>>& mutators() {
    static const std::vector<std::pair<std::string, MutatorFn>> kMutators = {
        {"truncate_bytes", truncate_bytes},
        {"delete_field", delete_field},
        {"delete_line", delete_line},
        {"duplicate_line", duplicate_line},
        {"inject_whitespace", inject_whitespace},
        {"duplicate_rank_block", duplicate_rank_block},
        {"corrupt_number", corrupt_number},
        {"shuffle_lines", shuffle_lines},
    };
    return kMutators;
}

std::string apply_random_mutations(const std::string& input, Rng& rng,
                                   int count) {
    std::string out = input;
    for (int i = 0; i < count; ++i) {
        out = mutators()[pick_index(rng, mutators().size())].second(out, rng);
    }
    return out;
}

profiling::ProfiledRun random_run(Rng& rng) {
    profiling::ProfiledRun run;
    const int n_params = static_cast<int>(rng.uniform_int(0, 3));
    for (int p = 0; p < n_params; ++p) {
        std::string key("x");
        key += std::to_string(p + 1);
        run.params[std::move(key)] = grid(rng, 4096);
    }
    run.repetition = static_cast<int>(rng.uniform_int(0, 20));
    run.profiling_wall_time = grid(rng, 1 << 16);

    static const char kNameChars[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    const int n_ranks = static_cast<int>(rng.uniform_int(0, 4));
    for (int r = 0; r < n_ranks; ++r) {
        trace::RankTrace t;
        t.rank = r;
        const int n_marks = static_cast<int>(rng.uniform_int(0, 5));
        for (int m = 0; m < n_marks; ++m) {
            NvtxMark mark;
            mark.kind = static_cast<NvtxMark::Kind>(rng.uniform_int(0, 3));
            mark.epoch = static_cast<int>(rng.uniform_int(0, 3));
            mark.step = static_cast<int>(rng.uniform_int(-1, 6));
            mark.step_kind =
                rng.bernoulli(0.5) ? StepKind::Train : StepKind::Validation;
            mark.time = grid(rng, 1 << 12);
            t.marks.push_back(mark);
        }
        const int n_events = static_cast<int>(rng.uniform_int(0, 8));
        for (int e = 0; e < n_events; ++e) {
            trace::TraceEvent ev;
            const int name_len = static_cast<int>(rng.uniform_int(1, 12));
            for (int c = 0; c < name_len; ++c) {
                ev.name += kNameChars[pick_index(
                    rng, sizeof(kNameChars) - 1)];
            }
            ev.category = static_cast<KernelCategory>(rng.uniform_int(0, 9));
            ev.start = grid(rng, 1 << 12);
            ev.duration = grid(rng, 1 << 10);
            ev.visits = rng.uniform_int(0, 1000);
            ev.bytes = grid(rng, 1 << 20);
            t.events.push_back(std::move(ev));
        }
        run.ranks.push_back(std::move(t));
    }
    return run;
}

profiling::ProfiledRun coherent_run(Rng& rng,
                                    std::map<std::string, double> params,
                                    int repetition, int n_ranks) {
    struct Kernel {
        const char* name;
        KernelCategory category;
        bool carries_bytes;
    };
    static const Kernel kPool[] = {
        {"gemm", KernelCategory::CudaKernel, false},
        {"allreduce", KernelCategory::Nccl, true},
        {"h2d", KernelCategory::Memcpy, true},
        {"relu", KernelCategory::CudaKernel, false},
        {"mpi_wait", KernelCategory::Mpi, false},
        {"memset0", KernelCategory::Memset, true},
    };

    profiling::ProfiledRun run;
    run.params = std::move(params);
    run.repetition = repetition;

    double wall = 0.0;
    for (int r = 0; r < n_ranks; ++r) {
        trace::RankTrace t;
        t.rank = r;
        double cursor = 0.0;
        auto mark = [&](NvtxMark::Kind kind, int epoch, int step,
                        StepKind step_kind, double time) {
            NvtxMark m;
            m.kind = kind;
            m.epoch = epoch;
            m.step = step;
            m.step_kind = step_kind;
            m.time = time;
            t.marks.push_back(m);
        };
        auto event = [&](const Kernel& k, double start) {
            trace::TraceEvent e;
            e.name = k.name;
            e.category = k.category;
            e.start = start;
            e.duration = grid(rng, 64);
            e.visits = rng.uniform_int(1, 5);
            e.bytes = k.carries_bytes ? grid(rng, 1 << 16) : 0.0;
            t.events.push_back(std::move(e));
        };

        for (int epoch = 0; epoch < 2; ++epoch) {
            mark(NvtxMark::Kind::EpochStart, epoch, -1, StepKind::Train,
                 cursor);
            const int n_train = 2 + static_cast<int>(rng.uniform_int(0, 2));
            const int n_val = static_cast<int>(rng.uniform_int(0, 2));
            for (int s = 0; s < n_train + n_val; ++s) {
                const StepKind kind =
                    s < n_train ? StepKind::Train : StepKind::Validation;
                const double start = cursor;
                mark(NvtxMark::Kind::StepStart, epoch, s, kind, start);
                event(kPool[0], start + 0.0625);  // gemm in every step
                for (std::size_t k = 1; k < std::size(kPool); ++k) {
                    if (rng.bernoulli(0.7)) {
                        event(kPool[k],
                              start + 0.0625 * static_cast<double>(k + 1));
                    }
                }
                cursor = start + 2.0;
                mark(NvtxMark::Kind::StepEnd, epoch, s, kind, cursor);
                // Async gap before the next step/epoch boundary.
                if (rng.bernoulli(0.3)) {
                    event(kPool[2], cursor + 0.0625);  // async h2d
                }
                cursor += 0.5;
            }
            mark(NvtxMark::Kind::EpochEnd, epoch, -1, StepKind::Train,
                 cursor);
            cursor += 0.5;
        }
        wall = std::max(wall, cursor);
        run.ranks.push_back(std::move(t));
    }
    run.profiling_wall_time = wall;
    return run;
}

}  // namespace extradeep::edpfuzz
