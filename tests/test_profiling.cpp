#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "profiling/edp_io.hpp"
#include "profiling/profiler.hpp"
#include "profiling/sampling.hpp"

using namespace extradeep;
using namespace extradeep::profiling;

namespace {

sim::Workload small_workload(int ranks = 2) {
    return sim::Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                               parallel::ParallelConfig::data(ranks),
                               parallel::ScalingMode::Weak, 256);
}

}  // namespace

TEST(Sampling, EfficientDefaultsMatchPaper) {
    const SamplingStrategy s = SamplingStrategy::efficient();
    EXPECT_EQ(s.epochs, 2);
    EXPECT_EQ(s.train_steps_per_epoch, 5);
    EXPECT_EQ(s.discard_warmup_epochs, 1);
    EXPECT_NE(s.describe().find("efficient"), std::string::npos);
}

TEST(Sampling, StandardProfilesFullEpochs) {
    const SamplingStrategy s = SamplingStrategy::standard();
    EXPECT_EQ(s.train_steps_per_epoch, -1);
    EXPECT_EQ(s.val_steps_per_epoch, -1);
}

TEST(Sampling, TraceOptionsCarrySeed) {
    const auto o = SamplingStrategy::efficient().trace_options(77);
    EXPECT_EQ(o.run_seed, 77u);
    EXPECT_EQ(o.train_steps_per_epoch, 5);
}

TEST(Profiler, ProfilesAllRanks) {
    const sim::TrainingSimulator sim(small_workload(3));
    const Profiler profiler(SamplingStrategy::efficient());
    const ProfiledRun run = profiler.profile(sim, {{"x1", 3.0}}, 0);
    ASSERT_EQ(run.ranks.size(), 3u);
    for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(run.ranks[r].rank, r);
        EXPECT_FALSE(run.ranks[r].events.empty());
    }
    EXPECT_GT(run.profiling_wall_time, 0.0);
    EXPECT_EQ(run.params.at("x1"), 3.0);
}

TEST(Profiler, RepetitionsDiffer) {
    const sim::TrainingSimulator sim(small_workload());
    const Profiler profiler(SamplingStrategy::efficient());
    const ProfiledRun a = profiler.profile(sim, {{"x1", 2.0}}, 0);
    const ProfiledRun b = profiler.profile(sim, {{"x1", 2.0}}, 1);
    EXPECT_NE(a.profiling_wall_time, b.profiling_wall_time);
}

TEST(Profiler, EfficientMuchCheaperThanStandard) {
    // The headline Fig. 8 property: ~95 % profiling-time reduction.
    const sim::TrainingSimulator sim(small_workload());
    const double efficient =
        Profiler(SamplingStrategy::efficient()).profiling_cost(sim);
    const double standard =
        Profiler(SamplingStrategy::standard()).profiling_cost(sim);
    EXPECT_LT(efficient, 0.15 * standard);
}

TEST(Profiler, OverheadFractionApplied) {
    const sim::TrainingSimulator sim(small_workload());
    const double with = Profiler(SamplingStrategy::efficient(), 0.10)
                            .profiling_cost(sim);
    const double without = Profiler(SamplingStrategy::efficient(), 0.0)
                               .profiling_cost(sim);
    EXPECT_NEAR(with / without, 1.10, 1e-9);
    EXPECT_THROW(Profiler(SamplingStrategy::efficient(), -0.1),
                 InvalidArgumentError);
}

TEST(RunSeed, DependsOnAllComponents) {
    const std::map<std::string, double> p1 = {{"x1", 4.0}};
    const std::map<std::string, double> p2 = {{"x1", 8.0}};
    EXPECT_NE(run_seed_for(p1, 0, 0), run_seed_for(p2, 0, 0));
    EXPECT_NE(run_seed_for(p1, 0, 0), run_seed_for(p1, 1, 0));
    EXPECT_NE(run_seed_for(p1, 0, 0), run_seed_for(p1, 0, 1));
    EXPECT_EQ(run_seed_for(p1, 3, 9), run_seed_for(p1, 3, 9));
}

TEST(EdpIo, RoundTripPreservesEverything) {
    const sim::TrainingSimulator sim(small_workload());
    const Profiler profiler(SamplingStrategy::efficient());
    const ProfiledRun run = profiler.profile(sim, {{"x1", 2.0}}, 1);

    std::stringstream buffer;
    write_edp(buffer, run);
    const ProfiledRun back = read_edp(buffer);

    EXPECT_EQ(back.params, run.params);
    EXPECT_EQ(back.repetition, run.repetition);
    // Bit-exact: the writer emits shortest-round-trip decimals, so a
    // write/read cycle is the identity on every double.
    EXPECT_EQ(back.profiling_wall_time, run.profiling_wall_time);
    ASSERT_EQ(back.ranks.size(), run.ranks.size());
    for (std::size_t r = 0; r < run.ranks.size(); ++r) {
        ASSERT_EQ(back.ranks[r].events.size(), run.ranks[r].events.size());
        ASSERT_EQ(back.ranks[r].marks.size(), run.ranks[r].marks.size());
        for (std::size_t i = 0; i < run.ranks[r].events.size(); ++i) {
            const auto& a = run.ranks[r].events[i];
            const auto& b = back.ranks[r].events[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.category, b.category);
            EXPECT_EQ(a.visits, b.visits);
            EXPECT_EQ(a.start, b.start);
            EXPECT_EQ(a.duration, b.duration);
        }
    }
}

TEST(EdpIo, RoundTripIsBitExactOffTheTwelveDigitGrid) {
    // Regression: the writer used a fixed 12-significant-digit encoding, so
    // any value off that grid (0.1 + 0.2, 1/3, nextafter(1, 2), ...) came
    // back with its low mantissa bits changed. The shortest-round-trip
    // encoding must reproduce every bit.
    const double awkward[] = {0.1 + 0.2,
                              1.0 / 3.0,
                              std::nextafter(1.0, 2.0),
                              3.141592653589793,
                              6.02214076e23,
                              2.2250738585072014e-308 /* DBL_MIN */};
    ProfiledRun run;
    run.params = {{"x1", 2.0}};
    run.repetition = 0;
    run.profiling_wall_time = awkward[0];
    trace::RankTrace rank;
    rank.rank = 0;
    for (const double v : awkward) {
        trace::TraceEvent e;
        e.name = "k";
        e.category = trace::KernelCategory::CudaKernel;
        e.start = v;
        e.duration = v;
        e.bytes = v;
        rank.events.push_back(e);
    }
    run.ranks.push_back(rank);

    std::stringstream buffer;
    write_edp(buffer, run);
    const ProfiledRun back = read_edp(buffer);
    EXPECT_EQ(back.profiling_wall_time, run.profiling_wall_time);
    ASSERT_EQ(back.ranks.size(), 1u);
    ASSERT_EQ(back.ranks[0].events.size(), std::size(awkward));
    for (std::size_t i = 0; i < std::size(awkward); ++i) {
        EXPECT_EQ(back.ranks[0].events[i].start, awkward[i]) << i;
        EXPECT_EQ(back.ranks[0].events[i].duration, awkward[i]) << i;
        EXPECT_EQ(back.ranks[0].events[i].bytes, awkward[i]) << i;
    }
}

TEST(EdpIo, FileRoundTrip) {
    const sim::TrainingSimulator sim(small_workload());
    const ProfiledRun run = Profiler(SamplingStrategy::efficient())
                                .profile(sim, {{"x1", 2.0}}, 0);
    const std::string path = ::testing::TempDir() + "/run.edp";
    write_edp_file(path, run);
    const ProfiledRun back = read_edp_file(path);
    EXPECT_EQ(back.ranks.size(), run.ranks.size());
    std::remove(path.c_str());
}

TEST(EdpIo, RejectsMissingHeader) {
    std::stringstream s("nonsense\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsWrongVersion) {
    std::stringstream s("EDP\t99\nEND\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsTruncatedFile) {
    std::stringstream s("EDP\t1\nRANK\t0\n");  // no END
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsEventBeforeRank) {
    std::stringstream s(
        "EDP\t1\nE\tk\tCUDA kernel\t0\t1\t1\t0\nEND\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsMalformedNumbers) {
    std::stringstream s(
        "EDP\t1\nRANK\t0\nE\tk\tCUDA kernel\tabc\t1\t1\t0\nEND\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsUnknownCategory) {
    std::stringstream s(
        "EDP\t1\nRANK\t0\nE\tk\tWarpDrive\t0\t1\t1\t0\nEND\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsUnknownTag) {
    std::stringstream s("EDP\t1\nXYZ\t1\nEND\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpIo, RejectsTabInKernelName) {
    ProfiledRun run;
    trace::RankTrace t;
    trace::TraceEvent e;
    e.name = "bad\tname";
    t.events.push_back(e);
    run.ranks.push_back(t);
    std::stringstream s;
    EXPECT_THROW(write_edp(s, run), InvalidArgumentError);
}

TEST(EdpIo, MissingFileThrows) {
    EXPECT_THROW(read_edp_file("/nonexistent/path/profile.edp"), Error);
}

TEST(EdpIo, EmptyRunRoundTrips) {
    ProfiledRun run;
    run.repetition = 7;
    std::stringstream s;
    write_edp(s, run);
    const ProfiledRun back = read_edp(s);
    EXPECT_EQ(back.repetition, 7);
    EXPECT_TRUE(back.ranks.empty());
}

namespace {

EdpReadResult tolerant_parse(const std::string& text) {
    std::istringstream is(text);
    EdpReadOptions options;
    options.mode = ParseMode::Tolerant;
    return read_edp(is, options);
}

const char* const kCleanEdp =
    "EDP\t1\n"
    "P\tx1\t4\n"
    "REP\t0\n"
    "WALL\t2.5\n"
    "RANK\t0\n"
    "M\tepoch_start\t0\t-1\ttrain\t0\n"
    "M\tepoch_end\t0\t-1\ttrain\t2\n"
    "E\tgemm\tCUDA kernel\t0.5\t0.25\t3\t0\n"
    "END\n";

}  // namespace

TEST(EdpTolerant, SkipsCorruptEventLineAndKeepsTheRest) {
    const EdpReadResult result = tolerant_parse(
        "EDP\t1\n"
        "P\tx1\t4\n"
        "REP\t0\n"
        "WALL\t2.5\n"
        "RANK\t0\n"
        "E\tgemm\tCUDA kernel\tabc\t0.25\t3\t0\n"
        "E\tgemm\tCUDA kernel\t0.5\t0.25\t3\t0\n"
        "END\n");
    EXPECT_TRUE(result.ok()) << result.diagnostics.summary();
    EXPECT_EQ(result.diagnostics.count(Severity::Warning), 1u);
    ASSERT_EQ(result.run.ranks.size(), 1u);
    ASSERT_EQ(result.run.ranks[0].events.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events[0].start, 0.5);
    const auto& d = result.diagnostics.entries()[0];
    EXPECT_EQ(d.line, 6);
    EXPECT_EQ(d.rank, 0);
}

TEST(EdpTolerant, DuplicateRankBlockIsQuarantined) {
    const std::string text =
        "EDP\t1\n"
        "RANK\t0\n"
        "E\tgemm\tCUDA kernel\t0.5\t0.25\t3\t0\n"
        "RANK\t0\n"
        "E\tother\tCUDA kernel\t1\t1\t1\t0\n"
        "END\n";
    const EdpReadResult result = tolerant_parse(text);
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.run.ranks.size(), 1u);
    ASSERT_EQ(result.run.ranks[0].events.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events[0].name, "gemm");
    EXPECT_GE(result.diagnostics.count(Severity::Warning), 1u);
    EXPECT_GE(result.diagnostics.count(Severity::Info), 1u);

    std::istringstream is(text);
    EXPECT_THROW(read_edp(is), ParseError);
}

TEST(EdpTolerant, BadRankHeaderQuarantinesBlockThenRecovers) {
    const EdpReadResult result = tolerant_parse(
        "EDP\t1\n"
        "RANK\tabc\n"
        "M\tepoch_start\t0\t-1\ttrain\t0\n"
        "E\tlost\tCUDA kernel\t0\t1\t1\t0\n"
        "RANK\t1\n"
        "E\tkept\tCUDA kernel\t0\t1\t1\t0\n"
        "END\n");
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.run.ranks.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].rank, 1);
    ASSERT_EQ(result.run.ranks[0].events.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events[0].name, "kept");
    // One warning for the header, one for the first quarantined record, one
    // info summarising the quarantined block.
    EXPECT_EQ(result.diagnostics.count(Severity::Warning), 2u);
    EXPECT_EQ(result.diagnostics.count(Severity::Info), 1u);
}

TEST(EdpStrict, RejectsNonFiniteAndNegativeMetrics) {
    const char* const bad_lines[] = {
        "E\tk\tCUDA kernel\t0\tnan\t1\t0",    // NaN duration
        "E\tk\tCUDA kernel\t-1\t1\t1\t0",     // negative start
        "E\tk\tCUDA kernel\t0\t1\t1\tinf",    // infinite bytes
        "E\tk\tCUDA kernel\t0\t1\t-3\t0",     // negative visits
        "M\tepoch_start\t-1\t-1\ttrain\t0",   // negative epoch
        "M\tstep_start\t0\t-2\ttrain\t0",     // step below -1
        "M\tstep_start\t0\t0\ttrain\tinf",    // non-finite mark time
        "WALL\t-1",                           // negative wall time
        "REP\t-1",                            // negative repetition
        "RANK\t-1",                           // negative rank id
    };
    for (const char* bad : bad_lines) {
        std::stringstream s("EDP\t1\nRANK\t0\n" + std::string(bad) + "\nEND\n");
        EXPECT_THROW(read_edp(s), ParseError) << bad;
    }
}

TEST(EdpStrict, RejectsTrailingDataAfterEnd) {
    std::stringstream s(std::string(kCleanEdp) + "E\tk\tMPI\t0\t1\t1\t0\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpTolerant, WarnsOnTrailingDataAfterEnd) {
    const EdpReadResult result =
        tolerant_parse(std::string(kCleanEdp) + "E\tk\tMPI\t0\t1\t1\t0\n");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.diagnostics.count(Severity::Warning), 1u);
    ASSERT_EQ(result.run.ranks.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events.size(), 1u);  // trailing E ignored
}

TEST(EdpIo, RejectsCarriageReturnInNameOnBothPaths) {
    ProfiledRun run;
    trace::RankTrace t;
    trace::TraceEvent e;
    e.name = "bad\rname";
    t.events.push_back(e);
    run.ranks.push_back(t);
    std::stringstream w;
    EXPECT_THROW(write_edp(w, run), InvalidArgumentError);

    // Mid-line CR is not CRLF tolerance; the read path rejects it too.
    std::stringstream r(
        "EDP\t1\nRANK\t0\nE\tbad\rname\tCUDA kernel\t0\t1\t1\t0\nEND\n");
    EXPECT_THROW(read_edp(r), ParseError);
}

TEST(EdpIo, ParsesCrlfLineEndings) {
    std::string crlf(kCleanEdp);
    std::string::size_type pos = 0;
    while ((pos = crlf.find('\n', pos)) != std::string::npos) {
        crlf.replace(pos, 1, "\r\n");
        pos += 2;
    }
    std::stringstream s(crlf);
    const ProfiledRun run = read_edp(s);
    ASSERT_EQ(run.ranks.size(), 1u);
    EXPECT_EQ(run.ranks[0].events[0].name, "gemm");
    EXPECT_EQ(run.params.at("x1"), 4.0);
}

TEST(EdpTolerant, EmptyInputIsAnError) {
    const EdpReadResult result = tolerant_parse("");
    EXPECT_FALSE(result.ok());
}

TEST(EdpTolerant, MissingHeaderSalvagesRecordsButQuarantinesRun) {
    const EdpReadResult result = tolerant_parse(
        "P\tx1\t4\n"
        "RANK\t0\n"
        "E\tgemm\tCUDA kernel\t0.5\t0.25\t3\t0\n"
        "END\n");
    EXPECT_FALSE(result.ok());  // header loss makes the file untrustworthy
    EXPECT_EQ(result.run.params.at("x1"), 4.0);  // still salvaged
    ASSERT_EQ(result.run.ranks.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events.size(), 1u);
}

TEST(EdpTolerant, MissingEndIsAnErrorButDataIsKept) {
    const EdpReadResult result = tolerant_parse(
        "EDP\t1\n"
        "RANK\t0\n"
        "E\tgemm\tCUDA kernel\t0.5\t0.25\t3\t0\n");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.run.ranks.size(), 1u);
    EXPECT_EQ(result.run.ranks[0].events.size(), 1u);
}

TEST(EdpStrict, RejectsMalformedEndLine) {
    std::stringstream s("EDP\t1\nEND\textra\n");
    EXPECT_THROW(read_edp(s), ParseError);
}

TEST(EdpTolerant, OrphanRecordsBeforeAnyRankAreCounted) {
    const EdpReadResult result = tolerant_parse(
        "EDP\t1\n"
        "M\tepoch_start\t0\t-1\ttrain\t0\n"
        "E\tk\tCUDA kernel\t0\t1\t1\t0\n"
        "RANK\t0\n"
        "END\n");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.run.ranks.size(), 1u);
    EXPECT_TRUE(result.run.ranks[0].events.empty());
    EXPECT_EQ(result.diagnostics.count(Severity::Warning), 1u);
    EXPECT_EQ(result.diagnostics.count(Severity::Info), 1u);
}
