#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "profiling/profiler.hpp"

/// Deterministic fault-injection library for the EDP ingestion path.
///
/// All mutators are pure functions of (input bytes, Rng state): the same
/// seed always produces the same mutated corpus, so every fuzz failure is
/// reproducible from its seed alone. The mutators model the corruption
/// modes of real multi-rank profile collection: truncated transfers,
/// dropped fields, editor-injected whitespace, duplicated rank blocks,
/// corrupted numbers, and reordered lines.
namespace extradeep::edpfuzz {

using MutatorFn = std::string (*)(const std::string&, Rng&);

/// Cuts the input at a random byte offset (lost trailing data).
std::string truncate_bytes(const std::string& input, Rng& rng);

/// Removes one tab-separated field from a random line.
std::string delete_field(const std::string& input, Rng& rng);

/// Removes one whole line.
std::string delete_line(const std::string& input, Rng& rng);

/// Duplicates one whole line.
std::string duplicate_line(const std::string& input, Rng& rng);

/// Inserts a tab or newline at a random byte offset.
std::string inject_whitespace(const std::string& input, Rng& rng);

/// Duplicates one RANK block (header through the line before the next
/// RANK/END). Falls back to duplicate_line when the input has no RANK line.
std::string duplicate_rank_block(const std::string& input, Rng& rng);

/// Replaces one field of a random line with a corrupt numeric token
/// ("nan", "inf", "1e999", "-7", "12x", ...).
std::string corrupt_number(const std::string& input, Rng& rng);

/// Deterministically shuffles all lines (Fisher-Yates over rng, so the
/// permutation does not depend on the standard library).
std::string shuffle_lines(const std::string& input, Rng& rng);

/// All mutators with stable names, for parameterised tests and reporting.
const std::vector<std::pair<std::string, MutatorFn>>& mutators();

/// Applies `count` randomly chosen mutators in sequence.
std::string apply_random_mutations(const std::string& input, Rng& rng,
                                   int count);

/// A randomized ProfiledRun for round-trip fuzzing. All floating-point
/// values lie on a 1/16 grid so that the 12-significant-digit EDP encoding
/// is exact and round-trips bit-identically. Includes empty-rank and
/// zero-event edge cases (and, with some probability, zero ranks).
profiling::ProfiledRun random_run(Rng& rng);

/// A structurally coherent run (properly nested epoch/step marks, events
/// inside their step windows, consistent kernel categories) suitable for
/// aggregation property tests. All values lie on the exact 1/16 grid.
profiling::ProfiledRun coherent_run(Rng& rng,
                                    std::map<std::string, double> params,
                                    int repetition, int n_ranks);

}  // namespace extradeep::edpfuzz
