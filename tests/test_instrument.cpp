#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "instrument/pyinstrument.hpp"

using namespace extradeep::instrument;

TEST(Instrument, AnnotatesFunctionDefinitions) {
    const std::string src =
        "def train(self):\n"
        "    pass\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.functions_annotated, 1);
    EXPECT_NE(r.source.find("@nvtx.annotate(\"train\")\ndef train(self):"),
              std::string::npos);
}

TEST(Instrument, AnnotatesNestedFunctionsWithIndent) {
    const std::string src =
        "class Trainer:\n"
        "    def step(self):\n"
        "        pass\n";
    const auto r = instrument_python(src);
    EXPECT_NE(r.source.find("    @nvtx.annotate(\"step\")\n    def step"),
              std::string::npos);
}

TEST(Instrument, AnnotatesAsyncDef) {
    const auto r = instrument_python("async def fetch():\n    pass\n");
    EXPECT_EQ(r.functions_annotated, 1);
    EXPECT_NE(r.source.find("@nvtx.annotate(\"fetch\")"), std::string::npos);
}

TEST(Instrument, AddsImportOnce) {
    const auto r = instrument_python("def f():\n    pass\n");
    EXPECT_TRUE(r.import_added);
    EXPECT_EQ(r.source.find("import nvtx"), 0u);
}

TEST(Instrument, ImportAfterLeadingComments) {
    const std::string src =
        "#!/usr/bin/env python\n"
        "# a training script\n"
        "def f():\n"
        "    pass\n";
    const auto r = instrument_python(src);
    const auto shebang = r.source.find("#!");
    const auto import_pos = r.source.find("import nvtx");
    const auto def_pos = r.source.find("def f");
    EXPECT_LT(shebang, import_pos);
    EXPECT_LT(import_pos, def_pos);
}

TEST(Instrument, DoesNotDuplicateExistingImport) {
    const std::string src =
        "import nvtx\n"
        "def f():\n"
        "    pass\n";
    const auto r = instrument_python(src);
    EXPECT_FALSE(r.import_added);
    EXPECT_EQ(r.source.find("import nvtx"),
              r.source.rfind("import nvtx"));
}

TEST(Instrument, NoImportWhenNothingAnnotated) {
    const auto r = instrument_python("x = 1\n");
    EXPECT_FALSE(r.import_added);
    EXPECT_EQ(r.source.find("import nvtx"), std::string::npos);
}

TEST(Instrument, IdempotentOnFunctions) {
    const auto once = instrument_python("def f():\n    pass\n");
    const auto twice = instrument_python(once.source);
    EXPECT_EQ(twice.functions_annotated, 0);
    EXPECT_EQ(twice.source, once.source);
}

TEST(Instrument, SkipsAlreadyDecoratedEvenWithOtherDecorators) {
    const std::string src =
        "@nvtx.annotate(\"custom\")\n"
        "@staticmethod\n"
        "def f():\n"
        "    pass\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.functions_annotated, 0);
}

TEST(Instrument, WrapsEpochLoop) {
    const std::string src =
        "def train():\n"
        "    for epoch in range(EPOCHS):\n"
        "        run_one_epoch()\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.loops_annotated, 1);
    EXPECT_NE(r.source.find("with nvtx.annotate(\"epoch\"):"),
              std::string::npos);
    // Body re-indented under the with-statement.
    EXPECT_NE(r.source.find("            run_one_epoch()"), std::string::npos);
}

TEST(Instrument, WrapsStepLoopPatterns) {
    // The paper's Fig. 1 pattern: enumerate over a tf.data dataset.
    const std::string src =
        "for b, (images, labels) in enumerate(train_ds.take(s)):\n"
        "    loss = training_step(images, labels)\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.loops_annotated, 1);
    EXPECT_NE(r.source.find("with nvtx.annotate(\"step\"):"),
              std::string::npos);
}

TEST(Instrument, NestedEpochAndStepLoops) {
    const std::string src =
        "for epoch in range(10):\n"
        "    for batch in loader:\n"
        "        step(batch)\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.loops_annotated, 2);
    // Both ranges present, step nested deeper than epoch.
    const auto epoch_pos = r.source.find("with nvtx.annotate(\"epoch\")");
    const auto step_pos = r.source.find("with nvtx.annotate(\"step\")");
    ASSERT_NE(epoch_pos, std::string::npos);
    ASSERT_NE(step_pos, std::string::npos);
    EXPECT_LT(epoch_pos, step_pos);
}

TEST(Instrument, LeavesUnrelatedLoopsAlone) {
    const auto r = instrument_python(
        "for item in inventory:\n"
        "    print(item)\n");
    EXPECT_EQ(r.loops_annotated, 0);
}

TEST(Instrument, LoopAnnotationIdempotent) {
    const auto once = instrument_python(
        "for epoch in range(3):\n"
        "    work()\n");
    const auto twice = instrument_python(once.source);
    EXPECT_EQ(twice.loops_annotated, 0);
    EXPECT_EQ(twice.source, once.source);
}

TEST(Instrument, PreservesUnrelatedCode) {
    const std::string src =
        "import os\n"
        "\n"
        "CONFIG = {'lr': 0.1}\n"
        "def f():\n"
        "    return CONFIG\n"
        "\n"
        "print(f())\n";
    const auto r = instrument_python(src);
    EXPECT_NE(r.source.find("CONFIG = {'lr': 0.1}"), std::string::npos);
    EXPECT_NE(r.source.find("print(f())"), std::string::npos);
    EXPECT_NE(r.source.find("import os"), std::string::npos);
}

TEST(Instrument, OptionsDisablePasses) {
    InstrumentOptions opts;
    opts.annotate_functions = false;
    const auto r = instrument_python(
        "def f():\n"
        "    for epoch in range(2):\n"
        "        g()\n",
        opts);
    EXPECT_EQ(r.functions_annotated, 0);
    EXPECT_EQ(r.loops_annotated, 1);
}

TEST(Instrument, EmptyLoopBodyIgnored) {
    const auto r = instrument_python("for epoch in range(2):\n");
    EXPECT_EQ(r.loops_annotated, 0);
}

TEST(Instrument, PaperFigure1Example) {
    // The instrumented shape shown in the paper's Fig. 1.
    const std::string src =
        "class Trainer:\n"
        "    def train(self):\n"
        "        for epoch in range(EPOCHS):\n"
        "            for b, (i, l) in enumerate(train_ds.take(s)):\n"
        "                loss_value = training_step(images, labels, b == 0)\n";
    const auto r = instrument_python(src);
    EXPECT_EQ(r.functions_annotated, 1);
    EXPECT_EQ(r.loops_annotated, 2);
    EXPECT_TRUE(r.import_added);
}

TEST(Instrument, FileRoundTrip) {
    const std::string in_path = ::testing::TempDir() + "/train_in.py";
    const std::string out_path = ::testing::TempDir() + "/train_out.py";
    {
        std::ofstream os(in_path);
        os << "def main():\n    pass\n";
    }
    const auto r = instrument_python_file(in_path, out_path);
    EXPECT_EQ(r.functions_annotated, 1);
    std::ifstream is(out_path);
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("@nvtx.annotate(\"main\")"), std::string::npos);
    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
}

TEST(Instrument, MissingInputFileThrows) {
    EXPECT_THROW(
        instrument_python_file("/nonexistent/x.py", "/tmp/out.py"),
        extradeep::Error);
}
