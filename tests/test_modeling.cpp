#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "modeling/fitter.hpp"
#include "modeling/model.hpp"
#include "modeling/search_space.hpp"

using namespace extradeep::modeling;
using extradeep::InvalidArgumentError;
using extradeep::Rng;

namespace {

const std::vector<double> kXs = {2, 4, 8, 16, 32, 64};

std::vector<double> map_values(const std::vector<double>& xs,
                          double (*f)(double)) {
    std::vector<double> ys;
    for (const double x : xs) ys.push_back(f(x));
    return ys;
}

}  // namespace

TEST(Factor, Evaluate) {
    Factor f{0, 2.0, 1};
    EXPECT_DOUBLE_EQ(f.evaluate(4.0), 16.0 * 2.0);  // 4^2 * log2(4)
    Factor constant{0, 0.0, 0};
    EXPECT_DOUBLE_EQ(constant.evaluate(4.0), 1.0);
    EXPECT_DOUBLE_EQ(constant.evaluate(-1.0), 1.0);  // never touches the value
    EXPECT_THROW(f.evaluate(0.0), InvalidArgumentError);
}

TEST(Factor, FractionalExponent) {
    Factor f{0, 2.0 / 3.0, 0};
    EXPECT_NEAR(f.evaluate(8.0), 4.0, 1e-12);
}

TEST(Factor, ToStringRendering) {
    EXPECT_EQ((Factor{0, 1.0, 0}).to_string("x1"), "x1");
    EXPECT_EQ((Factor{0, 2.0, 0}).to_string("x1"), "x1^2");
    EXPECT_EQ((Factor{0, 0.0, 1}).to_string("x1"), "log2(x1)");
    EXPECT_EQ((Factor{0, 2.0 / 3.0, 2}).to_string("x1"),
              "x1^(2/3) * log2(x1)^2");
    EXPECT_EQ((Factor{0, 0.0, 0}).to_string("x1"), "1");
}

TEST(Term, EvaluateProductOfFactors) {
    Term t;
    t.coefficient = 1.5;
    t.factors = {Factor{0, 1.0, 0}, Factor{1, 0.0, 1}};
    const std::vector<double> point = {4.0, 8.0};
    EXPECT_DOUBLE_EQ(t.evaluate(point), 1.5 * 4.0 * 3.0);
    EXPECT_THROW(
        t.evaluate(std::vector<double>{4.0}),  // missing parameter 1
        InvalidArgumentError);
}

TEST(Model, EvaluateAndToString) {
    Term t;
    t.coefficient = 0.58;
    t.factors = {Factor{0, 2.0 / 3.0, 2}};
    PerformanceModel m(158.58, {t}, {"x1"});
    // The paper's case-study model: T(40) ~ 352 s.
    EXPECT_NEAR(m.evaluate(40.0), 352.0, 2.0);
    EXPECT_EQ(m.to_string(), "158.6 + 0.58 * x1^(2/3) * log2(x1)^2");
}

TEST(Model, GrowthComparison) {
    Term linear;
    linear.coefficient = 1.0;
    linear.factors = {Factor{0, 1.0, 0}};
    Term quad;
    quad.coefficient = 0.001;
    quad.factors = {Factor{0, 2.0, 0}};
    Term logt;
    logt.coefficient = 100.0;
    logt.factors = {Factor{0, 0.0, 1}};
    PerformanceModel ml(0, {linear}, {"x1"});
    PerformanceModel mq(0, {quad}, {"x1"});
    PerformanceModel mlog(0, {logt}, {"x1"});
    EXPECT_LT(ml.compare_growth(mq), 0);
    EXPECT_GT(mq.compare_growth(mlog), 0);
    EXPECT_EQ(ml.compare_growth(ml), 0);
    EXPECT_EQ(mq.growth_to_string(), "O(x1^2)");
    EXPECT_EQ(mlog.growth_to_string(), "O(log2(x1))");
}

TEST(Model, NegativeCoefficientTermsDoNotDriveGrowth) {
    Term shrink;
    shrink.coefficient = -2.0;
    shrink.factors = {Factor{0, 3.0, 0}};
    PerformanceModel m(10.0, {shrink}, {"x1"});
    EXPECT_EQ(m.dominant_growth(), (std::pair<double, int>{0.0, 0}));
    EXPECT_EQ(m.growth_to_string(), "O(1)");
}

TEST(SearchSpace, DefaultExponentsSaneAndSorted) {
    const auto exps = SearchSpace::default_poly_exponents();
    EXPECT_EQ(exps.front(), 0.0);
    EXPECT_EQ(exps.back(), 3.0);
    for (std::size_t i = 1; i < exps.size(); ++i) {
        EXPECT_LT(exps[i - 1], exps[i]);
    }
}

TEST(SearchSpace, SingleParameterHypothesisCount) {
    SearchSpace space;
    space.max_terms = 1;
    const auto h = space.single_parameter_hypotheses(0);
    // constant + (|I| * |J| - 1) one-term hypotheses
    const std::size_t factors =
        space.poly_exponents.size() * space.log_exponents.size() - 1;
    EXPECT_EQ(h.size(), 1 + factors);
    space.max_terms = 2;
    const auto h2 = space.single_parameter_hypotheses(0);
    EXPECT_EQ(h2.size(), 1 + factors + factors * (factors - 1) / 2);
}

// --- Recovery sweeps: fit exact PMNF functions and verify the selected
// model reproduces them (the core Extra-P property). ---

struct RecoveryCase {
    double poly;
    int log;
};

class RecoveryTest : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoveryTest, RecoversPlantedSingleTermModel) {
    const auto [poly, log] = GetParam();
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back(10.0 + 2.5 * std::pow(x, poly) *
                                std::pow(std::log2(x), log));
    }
    const ModelGenerator gen;
    const PerformanceModel m = gen.fit(kXs, ys);
    // Perfect recovery on the sampled range and beyond.
    for (const double x : {3.0, 24.0, 128.0, 256.0}) {
        const double truth =
            10.0 + 2.5 * std::pow(x, poly) * std::pow(std::log2(x), log);
        EXPECT_NEAR(m.evaluate(x), truth, 0.02 * truth)
            << "poly=" << poly << " log=" << log << " x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ExponentGrid, RecoveryTest,
    ::testing::Values(RecoveryCase{0.0, 1}, RecoveryCase{0.0, 2},
                      RecoveryCase{0.5, 0}, RecoveryCase{0.5, 1},
                      RecoveryCase{1.0, 0}, RecoveryCase{1.0, 1},
                      RecoveryCase{2.0 / 3.0, 2}, RecoveryCase{1.5, 0},
                      RecoveryCase{2.0, 0}, RecoveryCase{2.0, 1},
                      RecoveryCase{3.0, 0}, RecoveryCase{1.0 / 3.0, 1}));

TEST(Fitter, ConstantDataYieldsConstantModel) {
    const std::vector<double> ys(kXs.size(), 7.5);
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    EXPECT_TRUE(m.terms().empty());
    EXPECT_NEAR(m.constant(), 7.5, 1e-9);
    EXPECT_NEAR(m.evaluate(1000.0), 7.5, 1e-9);
}

TEST(Fitter, NearConstantNoisyDataStaysBounded) {
    // Noise around a constant must not produce an exploding polynomial.
    Rng rng(3);
    std::vector<double> ys;
    for (std::size_t i = 0; i < kXs.size(); ++i) {
        ys.push_back(100.0 * rng.lognormal_factor(0.02));
    }
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    EXPECT_LT(std::abs(m.evaluate(256.0)), 300.0);
    EXPECT_GT(m.evaluate(256.0), 30.0);
}

TEST(Fitter, NoiseRobustRecovery) {
    // 3 % multiplicative noise on a linear trend: the model must stay within
    // a few percent of the truth at 4x extrapolation.
    Rng rng(11);
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back((5.0 + 2.0 * x) * rng.lognormal_factor(0.03));
    }
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    const double truth = 5.0 + 2.0 * 256.0;
    EXPECT_NEAR(m.evaluate(256.0), truth, 0.15 * truth);
}

TEST(Fitter, QualityMetricsPopulated) {
    const auto ys = map_values(kXs, [](double x) { return 3.0 * x + 1.0; });
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    EXPECT_LT(m.quality().fit_smape, 0.01);
    EXPECT_GT(m.quality().r_squared, 0.9999);
    EXPECT_GT(m.quality().hypotheses_searched, 30);
}

TEST(Fitter, RequiresMinimumPoints) {
    // Paper Sec. 2.3: at least five measurement points per parameter.
    const std::vector<double> xs = {2, 4, 8, 16};
    const std::vector<double> ys = {1, 2, 3, 4};
    EXPECT_THROW(ModelGenerator().fit(xs, ys), InvalidArgumentError);
}

TEST(Fitter, RejectsInconsistentInput) {
    EXPECT_THROW(ModelGenerator().fit(std::vector<double>{1, 2, 3, 4, 5},
                                      std::vector<double>{1, 2}),
                 InvalidArgumentError);
    const std::vector<std::vector<double>> pts = {
        {1.0}, {2.0}, {3.0, 4.0}, {4.0}, {5.0}};
    EXPECT_THROW(ModelGenerator().fit(pts, {1, 2, 3, 4, 5}),
                 InvalidArgumentError);
    EXPECT_THROW(
        ModelGenerator().fit(kXs, {1.0, 2.0, std::nan(""), 4.0, 5.0, 6.0}),
        InvalidArgumentError);
}

TEST(Fitter, PredictionIntervalCoversTruth) {
    // With noisy data, the 95 % interval at a modeling point should contain
    // the noise-free truth in the vast majority of trials.
    int covered = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
        Rng rng(1000 + trial);
        std::vector<double> ys;
        for (const double x : kXs) {
            ys.push_back((10.0 + 3.0 * x) * rng.lognormal_factor(0.05));
        }
        const PerformanceModel m = ModelGenerator().fit(kXs, ys);
        const auto pi = m.predict_interval(16.0, 0.95);
        const double truth = 10.0 + 3.0 * 16.0;
        if (truth >= pi.lower && truth <= pi.upper) {
            ++covered;
        }
        EXPECT_LT(pi.lower, pi.upper);
    }
    EXPECT_GE(covered, trials * 8 / 10);
}

TEST(Fitter, PredictionIntervalWidensWithExtrapolation) {
    Rng rng(5);
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back((10.0 + 3.0 * x) * rng.lognormal_factor(0.05));
    }
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    const auto near = m.predict_interval(16.0);
    const auto far = m.predict_interval(512.0);
    EXPECT_GT(far.upper - far.lower, near.upper - near.lower);
}

// --- Uncertainty API: prediction_stddev / interval_half_width /
// coefficient_covariance, including the degenerate fits the adaptive
// planner must survive (no fit info, zero residual variance). ---

TEST(Uncertainty, HandConstructedModelHasCollapsedIntervals) {
    // A model built from truth terms (the oracle pattern) carries no OLS
    // fit information: every uncertainty quantity must degrade to zero
    // rather than throw or emit garbage.
    const PerformanceModel m(10.0, {}, {"x1"});
    EXPECT_DOUBLE_EQ(m.prediction_stddev(16.0), 0.0);
    EXPECT_DOUBLE_EQ(m.interval_half_width(16.0), 0.0);
    EXPECT_EQ(m.coefficient_covariance().rows(), 0u);
    const auto pi = m.predict_interval(16.0);
    EXPECT_DOUBLE_EQ(pi.lower, pi.prediction);
    EXPECT_DOUBLE_EQ(pi.upper, pi.prediction);
}

TEST(Uncertainty, ZeroVarianceFitHasZeroWidth) {
    // Exact data: residual variance is zero, so the interval collapses even
    // though the fit info (covariance, dof) is present.
    const auto ys = map_values(kXs, [](double x) { return 3.0 * x + 1.0; });
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    EXPECT_NEAR(m.prediction_stddev(16.0), 0.0, 1e-9);
    EXPECT_NEAR(m.interval_half_width(512.0), 0.0, 1e-6);
}

TEST(Uncertainty, PredictIntervalIsPredictionPlusMinusHalfWidth) {
    Rng rng(17);
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back((10.0 + 3.0 * x) * rng.lognormal_factor(0.05));
    }
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    for (const double x : {4.0, 16.0, 256.0}) {
        for (const double conf : {0.8, 0.95, 0.99}) {
            const auto pi = m.predict_interval(x, conf);
            const double half = m.interval_half_width(x, conf);
            // Bit-for-bit: predict_interval is defined as +- half width.
            EXPECT_EQ(pi.lower, pi.prediction - half);
            EXPECT_EQ(pi.upper, pi.prediction + half);
            EXPECT_GT(half, 0.0);
        }
        // Wider confidence, wider interval.
        EXPECT_LT(m.interval_half_width(x, 0.8),
                  m.interval_half_width(x, 0.99));
    }
    // The half width is Student-t scaled prediction stddev.
    EXPECT_GT(m.prediction_stddev(16.0), 0.0);
    EXPECT_NEAR(m.interval_half_width(16.0, 0.95) /
                    m.prediction_stddev(16.0),
                m.interval_half_width(256.0, 0.95) /
                    m.prediction_stddev(256.0),
                1e-9);
}

TEST(Uncertainty, CoefficientCovarianceIsSymmetricKxK) {
    Rng rng(23);
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back((4.0 + 0.5 * x) * rng.lognormal_factor(0.05));
    }
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    const auto cov = m.coefficient_covariance();
    const std::size_t k = m.terms().size() + 1;  // constant + terms
    ASSERT_EQ(cov.rows(), k);
    ASSERT_EQ(cov.cols(), k);
    for (std::size_t r = 0; r < k; ++r) {
        EXPECT_GE(cov(r, r), 0.0);  // variances on the diagonal
        for (std::size_t c = 0; c < k; ++c) {
            EXPECT_NEAR(cov(r, c), cov(c, r), 1e-12);
        }
    }
}

TEST(Fitter, MultiParameterAdditiveRecovery) {
    // f(x, y) = 5 + 2x + 3*log2(y) on a 5x5 grid.
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (const double y : {2.0, 4.0, 8.0, 16.0, 32.0}) {
            pts.push_back({x, y});
            ys.push_back(5.0 + 2.0 * x + 3.0 * std::log2(y));
        }
    }
    const PerformanceModel m = ModelGenerator().fit(pts, ys, {"x1", "x2"});
    const std::vector<double> probe = {64.0, 64.0};
    const double truth = 5.0 + 2.0 * 64.0 + 3.0 * 6.0;
    EXPECT_NEAR(m.evaluate(probe), truth, 0.05 * truth);
}

TEST(Fitter, MultiParameterMultiplicativeRecovery) {
    // f(x, y) = 1 + 0.5 * x * log2(y).
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (const double y : {2.0, 4.0, 8.0, 16.0, 32.0}) {
            pts.push_back({x, y});
            ys.push_back(1.0 + 0.5 * x * std::log2(y));
        }
    }
    const PerformanceModel m = ModelGenerator().fit(pts, ys, {"x1", "x2"});
    const std::vector<double> probe = {64.0, 16.0};
    EXPECT_NEAR(m.evaluate(probe), 1.0 + 0.5 * 64.0 * 4.0, 8.0);
}

TEST(Fitter, TwoTermSearchRecoversTwoTermFunction) {
    // With max_terms = 2 and clean data, f = 4 + x + 0.1 x^2 is recovered.
    FitOptions opts;
    opts.space.max_terms = 2;
    const std::vector<double> xs = {2, 4, 8, 12, 16, 24, 32, 48};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back(4.0 + x + 0.1 * x * x);
    }
    const PerformanceModel m = ModelGenerator(opts).fit(xs, ys);
    const double truth = 4.0 + 96.0 + 0.1 * 96.0 * 96.0;
    EXPECT_NEAR(m.evaluate(96.0), truth, 0.05 * truth);
}

TEST(Fitter, ParamNamesAutofilled) {
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        pts.push_back({x, x});
        ys.push_back(x);
    }
    const PerformanceModel m = ModelGenerator().fit(pts, ys, {});
    ASSERT_EQ(m.param_names().size(), 2u);
    EXPECT_EQ(m.param_names()[0], "x1");
    EXPECT_EQ(m.param_names()[1], "x2");
}

TEST(Fitter, EmptyParamNamesDefaultedEvenWhenCorrectlySized) {
    // Regression: a correctly-sized vector of empty names used to pass
    // through untouched, producing unlabeled models.
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        pts.push_back({x, x});
        ys.push_back(x);
    }
    const PerformanceModel m = ModelGenerator().fit(pts, ys, {"", ""});
    ASSERT_EQ(m.param_names().size(), 2u);
    EXPECT_EQ(m.param_names()[0], "x1");
    EXPECT_EQ(m.param_names()[1], "x2");
    // Partially-named input keeps the given names and fills only the gaps.
    const PerformanceModel m2 = ModelGenerator().fit(pts, ys, {"ranks", ""});
    EXPECT_EQ(m2.param_names()[0], "ranks");
    EXPECT_EQ(m2.param_names()[1], "x2");
}

TEST(Fitter, ExactInterpolationHypothesesAreExcluded) {
    // Regression: with n == k the model interpolates exactly, fit_smape ~ 0,
    // and the old fallback score (fit_smape * 4 + 1) collapsed to ~1 % for
    // *every* richest hypothesis — beating genuinely cross-validated simpler
    // models whose CV error exceeds 1 % and making the winner arbitrary.
    // Exact-interpolation fits are now rejected, so with 3 noisy linear
    // points the search must pick a cross-validatable model (<= 1 term), not
    // a 2-term interpolator.
    FitOptions opts;
    opts.min_points = 3;
    opts.space.max_terms = 2;
    const std::vector<double> xs = {2, 4, 8};
    const std::vector<double> ys = {3.2, 5.4, 8.7};  // noisy 1 + x
    const PerformanceModel m = ModelGenerator(opts).fit(xs, ys);
    EXPECT_LE(m.terms().size(), 1u);
    // The selected model must stay sane under extrapolation instead of
    // following an arbitrary interpolator.
    EXPECT_GT(m.evaluate(64.0), 0.0);
    EXPECT_LT(m.evaluate(64.0), 10.0 * (1.0 + 64.0));
}

TEST(Fitter, ExactLinearDataPinsLinearModelAtMinimumPoints) {
    // With exactly linear data on 3 points, leave-one-out reproduces the
    // third point exactly only for the linear hypothesis, so the selection
    // is pinned: constant + x with cv_smape == 0.
    FitOptions opts;
    opts.min_points = 3;
    opts.space.max_terms = 2;
    const std::vector<double> xs = {2, 4, 8};
    const std::vector<double> ys = {3, 5, 9};  // exactly 1 + x
    const PerformanceModel m = ModelGenerator(opts).fit(xs, ys);
    ASSERT_EQ(m.terms().size(), 1u);
    EXPECT_EQ(m.dominant_growth(), (std::pair<double, int>{1.0, 0}));
    EXPECT_NEAR(m.constant(), 1.0, 1e-8);
    EXPECT_NEAR(m.terms()[0].coefficient, 1.0, 1e-8);
    EXPECT_NEAR(m.quality().cv_smape, 0.0, 1e-8);
}

TEST(Fitter, DuplicateHypothesesAreSearchedOnce) {
    // Regression: with a constant second parameter, every x2 hypothesis is
    // rank deficient, so the multi-parameter generator re-emits the best x1
    // single-term candidates as "additive" hypotheses — duplicates that used
    // to inflate hypotheses_searched and waste fits.
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        pts.push_back({x, 4.0});
        ys.push_back(1.0 + 2.0 * x);
    }
    const ModelGenerator gen;
    const PerformanceModel m = gen.fit(pts, ys, {"x1", "x2"});
    const auto n_factors =
        gen.options().space.single_parameter_factors(0).size();
    // constant + one 1-term hypothesis per factor and per parameter; the
    // re-emitted additive duplicates must not be counted (or fitted) again.
    EXPECT_EQ(m.quality().hypotheses_searched,
              static_cast<int>(1 + 2 * n_factors));
}

TEST(Fitter, DecreasingDataGetsNegativeTerm) {
    // Strong-scaling runtimes decrease; the model must follow.
    const auto ys = map_values(kXs, [](double x) { return 100.0 / x + 5.0; });
    const PerformanceModel m = ModelGenerator().fit(kXs, ys);
    EXPECT_LT(m.evaluate(64.0), m.evaluate(2.0));
}

TEST(Fitter, NegativeExponentsRecoverStrongScalingShape) {
    // f(x) = 5 + 100/x: only representable with negative exponents.
    FitOptions opts;
    opts.space.include_negative_exponents = true;
    std::vector<double> ys;
    for (const double x : kXs) {
        ys.push_back(5.0 + 100.0 / x);
    }
    const PerformanceModel m = ModelGenerator(opts).fit(kXs, ys);
    for (const double x : {3.0, 128.0, 512.0}) {
        const double truth = 5.0 + 100.0 / x;
        EXPECT_NEAR(m.evaluate(x), truth, 0.03 * truth) << x;
    }
}

TEST(Fitter, NegativeExponentsOffByDefault) {
    SearchSpace space;
    for (const auto& f : space.single_parameter_factors(0)) {
        EXPECT_GE(f.poly_exp, 0.0);
    }
    space.include_negative_exponents = true;
    bool has_negative = false;
    for (const auto& f : space.single_parameter_factors(0)) {
        if (f.poly_exp < 0.0) has_negative = true;
    }
    EXPECT_TRUE(has_negative);
}

// ---------------------------------------------------------------------------
// Selection-score behaviour: the parsimony bias and the leave-one-out CV
// score that drive hypothesis selection (paper Sec. 2.3.1).

TEST(Selection, TermPenaltyPrefersSimplerHypothesisOnNearTie) {
    // A weak trend buried in alternating jitter: the linear hypothesis
    // scores a slightly better (but nonzero) cv_smape than the constant
    // one. With the penalty disabled the fitter must chase that margin;
    // with a strong penalty the constant hypothesis must win. This pins
    // the *direction* of the parsimony bias - a regression that flipped
    // the score to cv_smape / (1 + p*#terms) or dropped the term count
    // would invert one of the two outcomes. (The trend must not be exactly
    // representable, or the winning cv_smape would be 0 and a
    // multiplicative penalty could never flip the choice.)
    const std::vector<double> xs = {2, 4, 8, 16, 32, 64};
    std::vector<double> ys;
    double sign = 1.0;
    for (const double x : xs) {
        ys.push_back(100.0 + 0.05 * x + sign * 0.3);
        sign = -sign;
    }

    FitOptions greedy;
    greedy.term_penalty = 0.0;
    const auto complex_fit = ModelGenerator(greedy).fit(xs, ys);
    EXPECT_FALSE(complex_fit.terms().empty())
        << "without a penalty the marginally better non-constant hypothesis "
           "must be selected: " << complex_fit.to_string();

    FitOptions parsimonious;
    parsimonious.term_penalty = 10.0;
    const auto simple_fit = ModelGenerator(parsimonious).fit(xs, ys);
    EXPECT_TRUE(simple_fit.terms().empty())
        << "a strong penalty must make the constant hypothesis win: "
        << simple_fit.to_string();
    // The constant hypothesis fits the data mean: 100 + 0.05 * mean(xs).
    EXPECT_NEAR(simple_fit.constant(), 101.05, 0.01);

    // The default mild penalty must not override a *real* improvement:
    // clearly linear data still selects a linear term.
    std::vector<double> linear_ys;
    for (const double x : xs) linear_ys.push_back(100.0 + 5.0 * x);
    const auto default_fit = ModelGenerator().fit(xs, linear_ys);
    ASSERT_EQ(default_fit.terms().size(), 1u);
    EXPECT_DOUBLE_EQ(default_fit.terms()[0].factors[0].poly_exp, 1.0);
    EXPECT_EQ(default_fit.terms()[0].factors[0].log_exp, 0);
}

TEST(Selection, LeaveOneOutCvIsZeroOnExactData) {
    // y = 3 + 2x is inside the hypothesis space, so every leave-one-out
    // refit reproduces the held-out point exactly: cv_smape ~ 0 and the
    // exact exponents are recovered with the exact coefficients.
    const std::vector<double> xs = {2, 4, 8, 16, 32, 64};
    std::vector<double> ys;
    for (const double x : xs) ys.push_back(3.0 + 2.0 * x);
    const auto m = ModelGenerator().fit(xs, ys);
    ASSERT_EQ(m.terms().size(), 1u);
    EXPECT_DOUBLE_EQ(m.terms()[0].factors[0].poly_exp, 1.0);
    EXPECT_EQ(m.terms()[0].factors[0].log_exp, 0);
    EXPECT_NEAR(m.constant(), 3.0, 1e-6);
    EXPECT_NEAR(m.terms()[0].coefficient, 2.0, 1e-6);
    EXPECT_NEAR(m.quality().cv_smape, 0.0, 1e-6);
    EXPECT_NEAR(m.quality().fit_smape, 0.0, 1e-6);
    EXPECT_NEAR(m.quality().r_squared, 1.0, 1e-9);
}

TEST(Selection, CvScoreSeparatesInAndOutOfSpaceShapes) {
    // 1/x is outside the PMNF search space: its cv_smape must stay clearly
    // above the in-space linear case's, making the score a meaningful
    // ranking signal rather than a constant.
    const std::vector<double> xs = {2, 4, 8, 16, 32, 64};
    std::vector<double> inv_ys;
    for (const double x : xs) inv_ys.push_back(100.0 / x);
    const auto inv_fit = ModelGenerator().fit(xs, inv_ys);
    EXPECT_GT(inv_fit.quality().cv_smape, 1.0)
        << inv_fit.to_string();
}
