#include "common/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

using namespace extradeep::linalg;
using extradeep::InvalidArgumentError;
using extradeep::NumericalError;
using extradeep::Rng;

TEST(Matrix, ConstructionAndIndexing) {
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, Transpose) {
    Matrix m(2, 3);
    m(0, 0) = 1;
    m(0, 1) = 2;
    m(0, 2) = 3;
    m(1, 0) = 4;
    m(1, 1) = 5;
    m(1, 2) = 6;
    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
}

TEST(Matrix, Multiply) {
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    Matrix b(2, 2);
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
    Matrix a(2, 3);
    Matrix b(2, 2);
    EXPECT_THROW(a * b, InvalidArgumentError);
}

TEST(SolveSpd, Identity) {
    Matrix s(2, 2);
    s(0, 0) = 1.0;
    s(1, 1) = 1.0;
    const auto x = solve_spd(s, {3.0, -4.0});
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], -4.0);
}

TEST(SolveSpd, KnownSystem) {
    // [[4,1],[1,3]] x = [1, 2]  ->  x = [1/11, 7/11]
    Matrix s(2, 2);
    s(0, 0) = 4;
    s(0, 1) = 1;
    s(1, 0) = 1;
    s(1, 1) = 3;
    const auto x = solve_spd(s, {1.0, 2.0});
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(SolveSpd, ThrowsOnIndefinite) {
    Matrix s(2, 2);
    s(0, 0) = 1;
    s(0, 1) = 2;
    s(1, 0) = 2;
    s(1, 1) = 1;  // eigenvalues 3, -1
    EXPECT_THROW(solve_spd(s, {1.0, 1.0}), NumericalError);
}

TEST(InvertSpd, InverseTimesOriginalIsIdentity) {
    Matrix s(3, 3);
    s(0, 0) = 4;
    s(0, 1) = 1;
    s(0, 2) = 0.5;
    s(1, 0) = 1;
    s(1, 1) = 3;
    s(1, 2) = 0.2;
    s(2, 0) = 0.5;
    s(2, 1) = 0.2;
    s(2, 2) = 2;
    const Matrix inv = invert_spd(s);
    const Matrix prod = s * inv;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-10);
        }
    }
}

TEST(LeastSquares, ExactLineRecovery) {
    // y = 2 + 3x on 4 points: exact solution, zero residual.
    Matrix a(4, 2);
    std::vector<double> b(4);
    for (int i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = i;
        b[i] = 2.0 + 3.0 * i;
    }
    const auto r = least_squares(a, b);
    ASSERT_FALSE(r.rank_deficient);
    EXPECT_NEAR(r.coefficients[0], 2.0, 1e-10);
    EXPECT_NEAR(r.coefficients[1], 3.0, 1e-10);
    EXPECT_NEAR(r.residual_norm, 0.0, 1e-9);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
    // Points (0,0), (1,1), (2,1): LS line is y = 1/6 + x/2.
    Matrix a(3, 2);
    a(0, 0) = 1;
    a(0, 1) = 0;
    a(1, 0) = 1;
    a(1, 1) = 1;
    a(2, 0) = 1;
    a(2, 1) = 2;
    const auto r = least_squares(a, {0.0, 1.0, 1.0});
    EXPECT_NEAR(r.coefficients[0], 1.0 / 6.0, 1e-10);
    EXPECT_NEAR(r.coefficients[1], 0.5, 1e-10);
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
    // Normal-equation property: A^T (A beta - b) == 0.
    Rng rng(7);
    Matrix a(8, 3);
    std::vector<double> b(8);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            a(i, j) = rng.uniform(-2.0, 2.0);
        }
        b[i] = rng.uniform(-5.0, 5.0);
    }
    const auto r = least_squares(a, b);
    ASSERT_FALSE(r.rank_deficient);
    for (std::size_t j = 0; j < 3; ++j) {
        double dot = 0.0;
        for (std::size_t i = 0; i < 8; ++i) {
            double pred = 0.0;
            for (std::size_t c = 0; c < 3; ++c) {
                pred += a(i, c) * r.coefficients[c];
            }
            dot += a(i, j) * (pred - b[i]);
        }
        EXPECT_NEAR(dot, 0.0, 1e-9);
    }
}

TEST(LeastSquares, FlagsRankDeficiency) {
    // Duplicate columns.
    Matrix a(4, 2);
    for (int i = 0; i < 4; ++i) {
        a(i, 0) = i + 1.0;
        a(i, 1) = 2.0 * (i + 1.0);
    }
    const auto r = least_squares(a, {1.0, 2.0, 3.0, 4.0});
    EXPECT_TRUE(r.rank_deficient);
}

TEST(LeastSquares, ThrowsOnUnderdetermined) {
    Matrix a(2, 3);
    EXPECT_THROW(least_squares(a, {1.0, 2.0}), InvalidArgumentError);
}

TEST(LeastSquares, CovarianceMatchesNormalEquations) {
    Matrix a(5, 2);
    std::vector<double> b(5);
    for (int i = 0; i < 5; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = i + 1.0;
        b[i] = 3.0 * (i + 1.0) + (i % 2 ? 0.1 : -0.1);
    }
    const auto r = least_squares(a, b);
    ASSERT_FALSE(r.rank_deficient);
    // (A^T A) * cov == I
    const Matrix ata = a.transposed() * a;
    const Matrix prod = ata * r.covariance_unscaled;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
        }
    }
}

// Property sweep: random well-conditioned systems are solved to high
// accuracy.
class LeastSquaresRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LeastSquaresRandomTest, RecoversPlantedCoefficients) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 10;
    const std::size_t k = 3;
    Matrix a(n, k);
    std::vector<double> truth = {rng.uniform(-3, 3), rng.uniform(-3, 3),
                                 rng.uniform(-3, 3)};
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = rng.uniform(0.5, 4.0);
        a(i, 2) = a(i, 1) * a(i, 1) + rng.uniform(0.0, 1.0);
        for (std::size_t c = 0; c < k; ++c) {
            b[i] += a(i, c) * truth[c];
        }
    }
    const auto r = least_squares(a, b);
    ASSERT_FALSE(r.rank_deficient);
    for (std::size_t c = 0; c < k; ++c) {
        EXPECT_NEAR(r.coefficients[c], truth[c], 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeastSquaresRandomTest,
                         ::testing::Range(1, 11));
