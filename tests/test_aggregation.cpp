#include <gtest/gtest.h>

#include "aggregation/aggregate.hpp"
#include "aggregation/experiment.hpp"
#include "common/error.hpp"

using namespace extradeep;
using namespace extradeep::aggregation;
using trace::KernelCategory;
using trace::NvtxMark;
using trace::StepKind;

namespace {

void add_mark(trace::RankTrace& t, NvtxMark::Kind kind, int epoch, int step,
              double time, StepKind sk = StepKind::Train) {
    NvtxMark m;
    m.kind = kind;
    m.epoch = epoch;
    m.step = step;
    m.step_kind = sk;
    m.time = time;
    t.marks.push_back(m);
}

void add_event(trace::RankTrace& t, const std::string& name,
               KernelCategory cat, double start, double duration,
               std::int64_t visits = 1, double bytes = 0.0) {
    trace::TraceEvent e;
    e.name = name;
    e.category = cat;
    e.start = start;
    e.duration = duration;
    e.visits = visits;
    e.bytes = bytes;
    t.events.push_back(e);
}

/// One epoch (index 0, NOT discarded in these tests), three train steps with
/// kernel "k" of the given per-step durations.
trace::RankTrace trace_with_step_durations(int rank,
                                           const std::vector<double>& durs) {
    trace::RankTrace t;
    t.rank = rank;
    add_mark(t, NvtxMark::Kind::EpochStart, 0, -1, 0.0);
    double cursor = 0.0;
    for (std::size_t s = 0; s < durs.size(); ++s) {
        add_mark(t, NvtxMark::Kind::StepStart, 0, static_cast<int>(s), cursor);
        add_event(t, "k", KernelCategory::CudaKernel, cursor + 0.001, durs[s]);
        cursor += 1.0;
        add_mark(t, NvtxMark::Kind::StepEnd, 0, static_cast<int>(s), cursor);
        cursor += 0.1;
    }
    add_mark(t, NvtxMark::Kind::EpochEnd, 0, -1, cursor);
    return t;
}

profiling::ProfiledRun run_with_ranks(std::vector<trace::RankTrace> ranks,
                                      int rep = 0) {
    profiling::ProfiledRun run;
    run.params = {{"x1", 2.0}};
    run.repetition = rep;
    run.ranks = std::move(ranks);
    return run;
}

const AggregationOptions kNoDiscard{.discard_warmup_epochs = 0};

}  // namespace

TEST(Aggregate, MedianOverStepsWithinRank) {
    // Per-step sums 1, 5, 100 -> median 5.
    const auto run =
        run_with_ranks({trace_with_step_durations(0, {1.0, 5.0, 100.0})});
    const ConfigurationData d =
        aggregate_runs(std::vector<profiling::ProfiledRun>{run}, kNoDiscard);
    const KernelStats* k = d.find_kernel("k");
    ASSERT_NE(k, nullptr);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Time), 5.0);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Visits), 1.0);
}

TEST(Aggregate, SumsMultipleExecutionsPerStep) {
    // Two executions of "k" inside one step: Eq. 1's per-step sum.
    trace::RankTrace t;
    t.rank = 0;
    add_mark(t, NvtxMark::Kind::EpochStart, 0, -1, 0.0);
    add_mark(t, NvtxMark::Kind::StepStart, 0, 0, 0.0);
    add_event(t, "k", KernelCategory::CudaKernel, 0.01, 2.0, 1, 10.0);
    add_event(t, "k", KernelCategory::CudaKernel, 0.05, 3.0, 2, 30.0);
    add_mark(t, NvtxMark::Kind::StepEnd, 0, 0, 1.0);
    add_mark(t, NvtxMark::Kind::EpochEnd, 0, -1, 1.1);
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})}, kNoDiscard);
    const KernelStats* k = d.find_kernel("k");
    ASSERT_NE(k, nullptr);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Time), 5.0);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Visits), 3.0);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Bytes), 40.0);
}

TEST(Aggregate, MedianOverRanks) {
    // Rank step-medians 2, 4, 10 -> rank median 4.
    const auto run = run_with_ranks({
        trace_with_step_durations(0, {2.0, 2.0, 2.0}),
        trace_with_step_durations(1, {4.0, 4.0, 4.0}),
        trace_with_step_durations(2, {10.0, 10.0, 10.0}),
    });
    const ConfigurationData d =
        aggregate_runs(std::vector<profiling::ProfiledRun>{run}, kNoDiscard);
    EXPECT_DOUBLE_EQ(d.find_kernel("k")->train_metric(Metric::Time), 4.0);
}

TEST(Aggregate, MedianOverRepetitions) {
    std::vector<profiling::ProfiledRun> runs;
    for (int rep = 0; rep < 3; ++rep) {
        const double v = 1.0 + rep * rep;  // 1, 2, 5 -> median 2
        runs.push_back(
            run_with_ranks({trace_with_step_durations(0, {v, v, v})}, rep));
    }
    const ConfigurationData d = aggregate_runs(runs, kNoDiscard);
    EXPECT_DOUBLE_EQ(d.find_kernel("k")->train_metric(Metric::Time), 2.0);
    EXPECT_EQ(d.repetitions, 3);
    EXPECT_EQ(d.find_kernel("k")->reps_seen, 3);
}

TEST(Aggregate, KernelMissingInSomeStepsCountsZero) {
    // Kernel appears in 1 of 3 steps: median over {v, 0, 0} == 0, so one-off
    // kernels are naturally suppressed (paper Sec. 2.2).
    trace::RankTrace t = trace_with_step_durations(0, {1.0, 1.0, 1.0});
    add_event(t, "one_off", KernelCategory::Os, 0.5, 50.0);
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})}, kNoDiscard);
    const KernelStats* k = d.find_kernel("one_off");
    ASSERT_NE(k, nullptr);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Time), 0.0);
}

TEST(Aggregate, AsyncGapEventsCreditedToPrecedingStep) {
    trace::RankTrace t = trace_with_step_durations(0, {1.0, 1.0, 1.0});
    // Gap after each step is [k, k+0.1); add async copies there.
    for (int s = 0; s < 3; ++s) {
        add_event(t, "async_dtoh", KernelCategory::Memcpy, (s + 1.0) + 0.01,
                  0.5, 1, 8.0);
    }
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})}, kNoDiscard);
    const KernelStats* k = d.find_kernel("async_dtoh");
    ASSERT_NE(k, nullptr);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Time), 0.5);
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Bytes), 8.0);
}

TEST(Aggregate, DiscardWarmupEpochExcludesEpoch0) {
    // Epoch 0 has huge durations, epoch 1 small ones; with the default
    // discard, only epoch 1 counts.
    trace::RankTrace t;
    t.rank = 0;
    double cursor = 0.0;
    for (int epoch = 0; epoch < 2; ++epoch) {
        add_mark(t, NvtxMark::Kind::EpochStart, epoch, -1, cursor);
        for (int s = 0; s < 2; ++s) {
            add_mark(t, NvtxMark::Kind::StepStart, epoch, s, cursor);
            add_event(t, "k", KernelCategory::CudaKernel, cursor + 0.01,
                      epoch == 0 ? 100.0 : 1.0);
            cursor += 1.0;
            add_mark(t, NvtxMark::Kind::StepEnd, epoch, s, cursor);
        }
        add_mark(t, NvtxMark::Kind::EpochEnd, epoch, -1, cursor);
        cursor += 0.5;
    }
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})},
        AggregationOptions{.discard_warmup_epochs = 1});
    EXPECT_DOUBLE_EQ(d.find_kernel("k")->train_metric(Metric::Time), 1.0);
}

TEST(Aggregate, TrainAndValidationSeparated) {
    trace::RankTrace t;
    t.rank = 0;
    add_mark(t, NvtxMark::Kind::EpochStart, 0, -1, 0.0);
    add_mark(t, NvtxMark::Kind::StepStart, 0, 0, 0.0, StepKind::Train);
    add_event(t, "k", KernelCategory::CudaKernel, 0.01, 2.0);
    add_mark(t, NvtxMark::Kind::StepEnd, 0, 0, 1.0, StepKind::Train);
    add_mark(t, NvtxMark::Kind::StepStart, 0, 1, 1.0, StepKind::Validation);
    add_event(t, "k", KernelCategory::CudaKernel, 1.01, 0.5);
    add_mark(t, NvtxMark::Kind::StepEnd, 0, 1, 2.0, StepKind::Validation);
    add_mark(t, NvtxMark::Kind::EpochEnd, 0, -1, 2.0);
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})}, kNoDiscard);
    const KernelStats* k = d.find_kernel("k");
    EXPECT_DOUBLE_EQ(k->train_metric(Metric::Time), 2.0);
    EXPECT_DOUBLE_EQ(k->val_metric(Metric::Time), 0.5);
}

TEST(Aggregate, PhaseTotalsSumKernelsByCategory) {
    trace::RankTrace t;
    t.rank = 0;
    add_mark(t, NvtxMark::Kind::EpochStart, 0, -1, 0.0);
    add_mark(t, NvtxMark::Kind::StepStart, 0, 0, 0.0);
    add_event(t, "compute", KernelCategory::CudaKernel, 0.01, 3.0);
    add_event(t, "allreduce", KernelCategory::Mpi, 0.2, 2.0);
    add_event(t, "copy", KernelCategory::Memcpy, 0.4, 1.0, 1, 100.0);
    add_mark(t, NvtxMark::Kind::StepEnd, 0, 0, 1.0);
    add_mark(t, NvtxMark::Kind::EpochEnd, 0, -1, 1.0);
    const ConfigurationData d = aggregate_runs(
        std::vector<profiling::ProfiledRun>{run_with_ranks({t})}, kNoDiscard);
    EXPECT_DOUBLE_EQ(
        d.phase_metric(trace::Phase::Computation, Metric::Time, true), 3.0);
    EXPECT_DOUBLE_EQ(
        d.phase_metric(trace::Phase::Communication, Metric::Time, true), 2.0);
    EXPECT_DOUBLE_EQ(
        d.phase_metric(trace::Phase::MemoryOp, Metric::Time, true), 1.0);
    EXPECT_DOUBLE_EQ(
        d.phase_metric(trace::Phase::MemoryOp, Metric::Bytes, true), 100.0);
}

TEST(Aggregate, ValidatesInput) {
    EXPECT_THROW(aggregate_runs({}), InvalidArgumentError);
    auto r1 = run_with_ranks({trace_with_step_durations(0, {1.0})});
    auto r2 = r1;
    r2.params = {{"x1", 4.0}};
    std::vector<profiling::ProfiledRun> runs = {r1, r2};
    EXPECT_THROW(aggregate_runs(runs), InvalidArgumentError);
}

TEST(ExperimentData, SortsAndFindsConfigurations) {
    ExperimentData data("x1");
    for (const double x : {8.0, 2.0, 4.0}) {
        ConfigurationData c;
        c.params = {{"x1", x}};
        data.add(c);
    }
    EXPECT_EQ(data.parameter_values(), (std::vector<double>{2.0, 4.0, 8.0}));
    EXPECT_NE(data.find(4.0), nullptr);
    EXPECT_EQ(data.find(5.0), nullptr);
}

TEST(ExperimentData, RejectsDuplicatesAndMissingParam) {
    ExperimentData data("x1");
    ConfigurationData c;
    c.params = {{"x1", 2.0}};
    data.add(c);
    EXPECT_THROW(data.add(c), InvalidArgumentError);
    ConfigurationData bad;
    bad.params = {{"other", 1.0}};
    EXPECT_THROW(data.add(bad), InvalidArgumentError);
}

TEST(ExperimentData, KernelFilteringRequiresFiveConfigs) {
    ExperimentData data("x1");
    for (int i = 0; i < 6; ++i) {
        ConfigurationData c;
        c.params = {{"x1", static_cast<double>(2 * (i + 1))}};
        KernelStats everywhere;
        everywhere.name = "common_kernel";
        c.kernels.push_back(everywhere);
        if (i < 3) {
            KernelStats rare;
            rare.name = "rare_kernel";
            c.kernels.push_back(rare);
            std::sort(c.kernels.begin(), c.kernels.end(),
                      [](const KernelStats& a, const KernelStats& b) {
                          return a.name < b.name;
                      });
        }
        data.add(c);
    }
    const auto modelable = data.modelable_kernels(5);
    ASSERT_EQ(modelable.size(), 1u);
    EXPECT_EQ(modelable.front(), "common_kernel");
    // With a lower threshold the rare kernel qualifies.
    EXPECT_EQ(data.modelable_kernels(3).size(), 2u);
}

TEST(DerivedMetrics, KernelEpochValueEq4) {
    KernelStats k;
    k.train[0] = 2.0;  // time per training step
    k.val[0] = 1.0;    // time per validation step
    parallel::StepMath sm;
    sm.train_steps = 100;
    sm.val_steps = 10;
    EXPECT_DOUBLE_EQ(derived_kernel_epoch_value(k, sm, Metric::Time),
                     100 * 2.0 + 10 * 1.0);
}

TEST(DerivedMetrics, EpochTotalSumsAllPhases) {
    ConfigurationData c;
    c.phase_train[0][0] = 3.0;  // computation time
    c.phase_train[1][0] = 2.0;  // communication time
    c.phase_train[2][0] = 1.0;  // memory time
    c.phase_val[0][0] = 0.5;
    parallel::StepMath sm;
    sm.train_steps = 10;
    sm.val_steps = 4;
    EXPECT_DOUBLE_EQ(derived_epoch_total(c, sm, Metric::Time),
                     10 * 6.0 + 4 * 0.5);
    EXPECT_DOUBLE_EQ(derived_phase_epoch_value(c, trace::Phase::Communication,
                                               sm, Metric::Time),
                     20.0);
}
