// Equivalence tests for the parallel PMNF hypothesis search: at any thread
// count the fitter must return *bit-identical* models to the serial path —
// same terms, same coefficients, same quality metrics — because every
// hypothesis fit is an independent computation over the shared factor-column
// cache and the reduction breaks score ties by hypothesis index.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "eval/oracle.hpp"
#include "modeling/fitter.hpp"
#include "modeling/model.hpp"

using namespace extradeep;
using namespace extradeep::modeling;

namespace {

/// Asserts two fitted models are identical down to the last bit.
void expect_identical(const PerformanceModel& a, const PerformanceModel& b) {
    EXPECT_EQ(a.constant(), b.constant());
    ASSERT_EQ(a.terms().size(), b.terms().size());
    for (std::size_t t = 0; t < a.terms().size(); ++t) {
        EXPECT_EQ(a.terms()[t].coefficient, b.terms()[t].coefficient);
        ASSERT_EQ(a.terms()[t].factors.size(), b.terms()[t].factors.size());
        for (std::size_t f = 0; f < a.terms()[t].factors.size(); ++f) {
            EXPECT_EQ(a.terms()[t].factors[f], b.terms()[t].factors[f]);
        }
    }
    EXPECT_EQ(a.quality().fit_smape, b.quality().fit_smape);
    EXPECT_EQ(a.quality().cv_smape, b.quality().cv_smape);
    EXPECT_EQ(a.quality().rss, b.quality().rss);
    EXPECT_EQ(a.quality().r_squared, b.quality().r_squared);
    EXPECT_EQ(a.quality().hypotheses_searched, b.quality().hypotheses_searched);
    EXPECT_EQ(a.param_names(), b.param_names());
    EXPECT_EQ(a.to_string(), b.to_string());
}

ModelGenerator generator_with_threads(int threads, int max_terms = 2) {
    FitOptions opts;
    opts.space.max_terms = max_terms;
    opts.num_threads = threads;
    return ModelGenerator(opts);
}

}  // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    for (const int threads : {1, 2, 4, 7}) {
        std::vector<std::atomic<int>> hits(103);
        for (auto& h : hits) h = 0;
        parallel_for(hits.size(), threads,
                     [&](int, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                             ++hits[i];
                         }
                     });
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads;
        }
    }
}

TEST(ParallelFor, ZeroCountRunsNothing) {
    bool ran = false;
    parallel_for(0, 4, [&](int, std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesLowestChunkException) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    try {
        pool.parallel_for(100, [&](int chunk, std::size_t, std::size_t) {
            throw std::runtime_error("chunk " + std::to_string(chunk));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 0");
    }
}

TEST(ParallelFor, PoolIsReusableAcrossCalls) {
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<long> sum{0};
        pool.parallel_for(1000, [&](int, std::size_t begin, std::size_t end) {
            long local = 0;
            for (std::size_t i = begin; i < end; ++i) {
                local += static_cast<long>(i);
            }
            sum += local;
        });
        EXPECT_EQ(sum, 999L * 1000L / 2);
    }
}

/// Countdown latch for the submit() tests: tasks signal, the test waits.
class Latch {
public:
    explicit Latch(int count) : count_(count) {}
    void count_down() {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--count_ == 0) {
            cv_.notify_all();
        }
    }
    void wait() {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return count_ <= 0; });
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    int count_;
};

TEST(ThreadPoolSubmit, RunsEveryTask) {
    ThreadPool pool(4);
    constexpr int kTasks = 200;
    std::atomic<int> ran{0};
    Latch done(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            ran.fetch_add(1);
            done.count_down();
        });
    }
    done.wait();
    EXPECT_EQ(ran.load(), kTasks);
    EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolSubmit, SingleWorkerRunsFifo) {
    // ThreadPool(2) = caller + exactly one background worker, so submitted
    // tasks must execute in submission order.
    ThreadPool pool(2);
    constexpr int kTasks = 64;
    std::vector<int> order;
    std::mutex order_mutex;
    Latch done(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&, i] {
            {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(i);
            }
            done.count_down();
        });
    }
    done.wait();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(ThreadPoolSubmit, ThrowsOnWorkerlessPool) {
    // A degenerate pool has no background worker to ever run the task; the
    // contract is to fail loudly instead of queueing forever.
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPoolSubmit, QueuedTasksReportsBacklog) {
    ThreadPool pool(2);  // one background worker
    std::mutex gate;
    std::condition_variable gate_cv;
    bool open = false;
    Latch started(1);
    pool.submit([&] {
        started.count_down();
        std::unique_lock<std::mutex> lock(gate);
        gate_cv.wait(lock, [&] { return open; });
    });
    started.wait();  // the worker is now parked inside the first task
    Latch rest(3);
    for (int i = 0; i < 3; ++i) {
        pool.submit([&] { rest.count_down(); });
    }
    EXPECT_EQ(pool.queued_tasks(), 3u);
    {
        std::lock_guard<std::mutex> lock(gate);
        open = true;
    }
    gate_cv.notify_all();
    rest.wait();
    EXPECT_EQ(pool.queued_tasks(), 0u);
}

TEST(ThreadPoolSubmit, CoexistsWithParallelFor) {
    // The serve daemon's usage pattern: detached tasks in flight while the
    // same pool also serves fork-join loops. Both must complete, and the
    // fork-join job must not deadlock behind queued tasks.
    ThreadPool pool(4);
    constexpr int kTasks = 100;
    std::atomic<int> ran{0};
    Latch done(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        pool.submit([&] {
            ran.fetch_add(1);
            done.count_down();
        });
    }
    std::atomic<long> sum{0};
    pool.parallel_for(1000, [&](int, std::size_t begin, std::size_t end) {
        long local = 0;
        for (std::size_t i = begin; i < end; ++i) {
            local += static_cast<long>(i);
        }
        sum += local;
    });
    EXPECT_EQ(sum, 999L * 1000L / 2);
    done.wait();
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ResolveNumThreads, Semantics) {
    EXPECT_EQ(resolve_num_threads(1), 1);
    EXPECT_EQ(resolve_num_threads(7), 7);
    EXPECT_GE(resolve_num_threads(0), 1);
    EXPECT_GE(resolve_num_threads(-3), 1);
}

TEST(ParallelFitter, Identical1D) {
    Rng rng(42);
    const std::vector<double> xs = {2, 4, 6, 8, 10, 12, 16, 24, 32, 48};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back((10.0 + 3.0 * x + 0.5 * x * std::log2(x)) *
                     rng.lognormal_factor(0.03));
    }
    const PerformanceModel serial = generator_with_threads(1).fit(xs, ys);
    const PerformanceModel parallel = generator_with_threads(4).fit(xs, ys);
    expect_identical(serial, parallel);
}

TEST(ParallelFitter, Identical2D) {
    Rng rng(7);
    std::vector<std::vector<double>> pts;
    std::vector<double> ys;
    for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (const double y : {2.0, 4.0, 8.0, 16.0, 32.0}) {
            pts.push_back({x, y});
            ys.push_back((5.0 + 2.0 * x + 3.0 * std::log2(y)) *
                         rng.lognormal_factor(0.02));
        }
    }
    const PerformanceModel serial =
        generator_with_threads(1).fit(pts, ys, {"x1", "x2"});
    const PerformanceModel parallel =
        generator_with_threads(4).fit(pts, ys, {"x1", "x2"});
    expect_identical(serial, parallel);
}

TEST(ParallelFitter, IdenticalWithRankDeficientHypotheses) {
    // Only two distinct x values: every 2-term basis (3 columns) has rank at
    // most 2, so a large share of the hypothesis space is rank deficient and
    // must be skipped identically by both paths.
    const std::vector<double> xs = {2, 2, 2, 8, 8, 8};
    const std::vector<double> ys = {1.1, 0.9, 1.0, 4.1, 3.9, 4.0};
    const PerformanceModel serial = generator_with_threads(1).fit(xs, ys);
    const PerformanceModel parallel = generator_with_threads(4).fit(xs, ys);
    expect_identical(serial, parallel);
    EXPECT_LE(serial.terms().size(), 1u);
}

TEST(ParallelFitter, IdenticalWithNonFiniteBasisHypotheses) {
    // x = 1e120 overflows the cubic (and most higher) basis columns to
    // infinity; those hypotheses are invalid and both paths must reject them
    // the same way without poisoning the rest of the search.
    const std::vector<double> xs = {2, 4, 8, 16, 1e120};
    const std::vector<double> ys = {1.0, 2.0, 3.0, 4.0, 400.0};
    const PerformanceModel serial = generator_with_threads(1).fit(xs, ys);
    const PerformanceModel parallel = generator_with_threads(4).fit(xs, ys);
    expect_identical(serial, parallel);
}

TEST(ParallelFitter, HardwareThreadCountAlsoIdentical) {
    // num_threads = 0 resolves to the hardware concurrency, whatever it is
    // on the machine running the tests.
    Rng rng(3);
    const std::vector<double> xs = {2, 4, 8, 16, 32, 64};
    std::vector<double> ys;
    for (const double x : xs) {
        ys.push_back((4.0 + 2.0 * x) * rng.lognormal_factor(0.05));
    }
    const PerformanceModel serial = generator_with_threads(1, 1).fit(xs, ys);
    const PerformanceModel parallel = generator_with_threads(0, 1).fit(xs, ys);
    expect_identical(serial, parallel);
}

// ---------------------------------------------------------------------------
// simd backend equivalence: the vector kernels only widen elementwise
// operations and share the scalar path's reduction trees, so a fit under the
// Vector backend must be bit-identical to the Scalar reference — at every
// thread count, including the stored covariance that feeds
// predict_interval.

namespace {

/// RAII backend override, so a failing assertion cannot leak the scalar
/// backend into later tests.
class ScopedBackend {
public:
    explicit ScopedBackend(simd::Backend b) : saved_(simd::active_backend()) {
        simd::set_backend(b);
    }
    ~ScopedBackend() { simd::set_backend(saved_); }

private:
    simd::Backend saved_;
};

/// Fits the same data under both backends at `threads` and asserts the
/// models — including prediction intervals at interpolated and extrapolated
/// points — are bit-identical.
void expect_backend_identical(const std::vector<std::vector<double>>& pts,
                              const std::vector<double>& ys,
                              std::vector<std::string> names, int threads,
                              int max_terms = 2) {
    FitOptions opts;
    opts.space.max_terms = max_terms;
    opts.num_threads = threads;
    const ModelGenerator gen(opts);
    PerformanceModel scalar = [&] {
        const ScopedBackend b(simd::Backend::Scalar);
        return gen.fit(pts, ys, names);
    }();
    PerformanceModel vector = [&] {
        const ScopedBackend b(simd::Backend::Vector);
        return gen.fit(pts, ys, names);
    }();
    expect_identical(scalar, vector);
    // Prediction intervals exercise the covariance path (the normal
    // equations), which the model comparison above does not cover.
    for (const double scale : {1.0, 2.0, 8.0}) {
        std::vector<double> probe = pts.back();
        for (double& v : probe) {
            v *= scale;
        }
        const auto a = scalar.predict_interval(probe);
        const auto b = vector.predict_interval(probe);
        EXPECT_EQ(a.prediction, b.prediction) << "scale " << scale;
        EXPECT_EQ(a.lower, b.lower) << "scale " << scale;
        EXPECT_EQ(a.upper, b.upper) << "scale " << scale;
    }
}

}  // namespace

TEST(SimdBackend, ScalarVsVectorIdenticalOnOracleCases) {
    for (const auto& oracle : eval::default_oracle_cases()) {
        std::vector<double> ys;
        ys.reserve(oracle.points.size());
        for (const auto& p : oracle.points) {
            ys.push_back(oracle.truth_value(p));
        }
        for (const int threads : {1, 2, 4}) {
            SCOPED_TRACE(oracle.name + " threads " + std::to_string(threads));
            expect_backend_identical(oracle.points, ys,
                                     oracle.truth.param_names(), threads);
        }
    }
}

TEST(SimdBackend, ScalarVsVectorIdenticalOnRandomSpaces) {
    // Randomised PMNF data: noisy samples of random-growth functions over
    // 1-D and 2-D grids, single- and two-term search spaces.
    for (const std::uint64_t seed : {11u, 23u, 57u}) {
        Rng rng(seed);
        std::vector<std::vector<double>> pts;
        std::vector<double> ys;
        const double slope = 0.5 + 5.0 * rng.uniform01();
        const double curve = rng.uniform01();
        for (const double x : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0}) {
            pts.push_back({x});
            ys.push_back((3.0 + slope * x + curve * x * std::log2(x)) *
                         rng.lognormal_factor(0.04));
        }
        for (const int threads : {1, 2, 4}) {
            for (const int max_terms : {1, 2}) {
                SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                             std::to_string(threads) + " terms " +
                             std::to_string(max_terms));
                expect_backend_identical(pts, ys, {"x1"}, threads, max_terms);
            }
        }
    }
    for (const std::uint64_t seed : {5u, 91u}) {
        Rng rng(seed);
        std::vector<std::vector<double>> pts;
        std::vector<double> ys;
        const double a = 1.0 + 3.0 * rng.uniform01();
        const double b = 1.0 + 2.0 * rng.uniform01();
        for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
            for (const double y : {2.0, 4.0, 8.0, 16.0, 32.0}) {
                pts.push_back({x, y});
                ys.push_back((4.0 + a * x + b * std::log2(y)) *
                             rng.lognormal_factor(0.03));
            }
        }
        for (const int threads : {1, 2, 4}) {
            SCOPED_TRACE("2d seed " + std::to_string(seed) + " threads " +
                         std::to_string(threads));
            expect_backend_identical(pts, ys, {"x1", "x2"}, threads);
        }
    }
}
