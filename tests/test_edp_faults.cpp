#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "aggregation/validate.hpp"
#include "common/rng.hpp"
#include "fault_injection.hpp"
#include "profiling/edp_io.hpp"
#include "profiling/profiler.hpp"
#include "profiling/sampling.hpp"
#include "sim/simulator.hpp"

// Seeded fault-injection and property tests for the EDP ingestion path.
// Every randomized case derives from an explicit integer seed, so a failure
// message names the exact seed that reproduces it.

using namespace extradeep;

namespace {

std::string to_edp(const profiling::ProfiledRun& run) {
    std::ostringstream os;
    profiling::write_edp(os, run);
    return os.str();
}

profiling::EdpReadResult tolerant_read(const std::string& bytes) {
    std::istringstream is(bytes);
    profiling::EdpReadOptions options;
    options.mode = profiling::ParseMode::Tolerant;
    return profiling::read_edp(is, options);
}

void expect_runs_equal(const profiling::ProfiledRun& a,
                       const profiling::ProfiledRun& b, std::uint64_t seed) {
    EXPECT_EQ(a.params, b.params) << "seed " << seed;
    EXPECT_EQ(a.repetition, b.repetition) << "seed " << seed;
    EXPECT_EQ(a.profiling_wall_time, b.profiling_wall_time) << "seed " << seed;
    ASSERT_EQ(a.ranks.size(), b.ranks.size()) << "seed " << seed;
    for (std::size_t r = 0; r < a.ranks.size(); ++r) {
        const trace::RankTrace& ra = a.ranks[r];
        const trace::RankTrace& rb = b.ranks[r];
        EXPECT_EQ(ra.rank, rb.rank) << "seed " << seed;
        ASSERT_EQ(ra.events.size(), rb.events.size()) << "seed " << seed;
        for (std::size_t e = 0; e < ra.events.size(); ++e) {
            EXPECT_EQ(ra.events[e].name, rb.events[e].name) << "seed " << seed;
            EXPECT_EQ(ra.events[e].category, rb.events[e].category)
                << "seed " << seed;
            EXPECT_EQ(ra.events[e].start, rb.events[e].start)
                << "seed " << seed;
            EXPECT_EQ(ra.events[e].duration, rb.events[e].duration)
                << "seed " << seed;
            EXPECT_EQ(ra.events[e].bytes, rb.events[e].bytes)
                << "seed " << seed;
            EXPECT_EQ(ra.events[e].visits, rb.events[e].visits)
                << "seed " << seed;
        }
        ASSERT_EQ(ra.marks.size(), rb.marks.size()) << "seed " << seed;
        for (std::size_t m = 0; m < ra.marks.size(); ++m) {
            EXPECT_EQ(ra.marks[m].kind, rb.marks[m].kind) << "seed " << seed;
            EXPECT_EQ(ra.marks[m].epoch, rb.marks[m].epoch) << "seed " << seed;
            EXPECT_EQ(ra.marks[m].step, rb.marks[m].step) << "seed " << seed;
            EXPECT_EQ(ra.marks[m].step_kind, rb.marks[m].step_kind)
                << "seed " << seed;
            EXPECT_EQ(ra.marks[m].time, rb.marks[m].time) << "seed " << seed;
        }
    }
}

/// The parser's output contract: whatever survives a tolerant parse must be
/// safe to hand to aggregation - finite values, non-negative where the
/// format requires it, no control characters in names.
void expect_run_sane(const profiling::ProfiledRun& run, std::uint64_t seed) {
    for (const auto& [name, value] : run.params) {
        EXPECT_TRUE(std::isfinite(value)) << "seed " << seed;
        EXPECT_EQ(name.find_first_of("\t\n\r"), std::string::npos)
            << "seed " << seed;
    }
    EXPECT_GE(run.repetition, 0) << "seed " << seed;
    EXPECT_TRUE(std::isfinite(run.profiling_wall_time)) << "seed " << seed;
    EXPECT_GE(run.profiling_wall_time, 0.0) << "seed " << seed;
    for (const trace::RankTrace& rank : run.ranks) {
        EXPECT_GE(rank.rank, 0) << "seed " << seed;
        for (const trace::TraceEvent& e : rank.events) {
            EXPECT_EQ(e.name.find_first_of("\t\n\r"), std::string::npos)
                << "seed " << seed;
            EXPECT_TRUE(std::isfinite(e.start)) << "seed " << seed;
            EXPECT_GE(e.start, 0.0) << "seed " << seed;
            EXPECT_TRUE(std::isfinite(e.duration)) << "seed " << seed;
            EXPECT_GE(e.duration, 0.0) << "seed " << seed;
            EXPECT_TRUE(std::isfinite(e.bytes)) << "seed " << seed;
            EXPECT_GE(e.bytes, 0.0) << "seed " << seed;
            EXPECT_GE(e.visits, 0) << "seed " << seed;
        }
        for (const trace::NvtxMark& m : rank.marks) {
            EXPECT_GE(m.epoch, 0) << "seed " << seed;
            EXPECT_GE(m.step, -1) << "seed " << seed;
            EXPECT_TRUE(std::isfinite(m.time)) << "seed " << seed;
            EXPECT_GE(m.time, 0.0) << "seed " << seed;
        }
    }
}

void expect_config_finite(const aggregation::ConfigurationData& config,
                          std::uint64_t seed) {
    for (const aggregation::KernelStats& k : config.kernels) {
        for (int m = 0; m < aggregation::kMetricCount; ++m) {
            EXPECT_TRUE(std::isfinite(k.train[m])) << "seed " << seed;
            EXPECT_TRUE(std::isfinite(k.val[m])) << "seed " << seed;
            EXPECT_GE(k.train[m], 0.0) << "seed " << seed;
            EXPECT_GE(k.val[m], 0.0) << "seed " << seed;
        }
    }
    for (int p = 0; p < trace::kPhaseCount; ++p) {
        for (int m = 0; m < aggregation::kMetricCount; ++m) {
            EXPECT_TRUE(std::isfinite(config.phase_train[p][m]))
                << "seed " << seed;
            EXPECT_TRUE(std::isfinite(config.phase_val[p][m]))
                << "seed " << seed;
        }
    }
}

template <typename T>
void seeded_shuffle(std::vector<T>& v, Rng& rng) {
    for (std::size_t i = v.size(); i > 1; --i) {
        const std::size_t j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
        std::swap(v[i - 1], v[j]);
    }
}

void expect_configs_identical(const aggregation::ConfigurationData& a,
                              const aggregation::ConfigurationData& b,
                              std::uint64_t seed) {
    ASSERT_EQ(a.kernels.size(), b.kernels.size()) << "seed " << seed;
    for (std::size_t k = 0; k < a.kernels.size(); ++k) {
        EXPECT_EQ(a.kernels[k].name, b.kernels[k].name) << "seed " << seed;
        EXPECT_EQ(a.kernels[k].category, b.kernels[k].category)
            << "seed " << seed;
        for (int m = 0; m < aggregation::kMetricCount; ++m) {
            // EXPECT_EQ, not NEAR: the medians must be bit-identical, since
            // reordering ranks/repetitions must not change what is computed.
            EXPECT_EQ(a.kernels[k].train[m], b.kernels[k].train[m])
                << a.kernels[k].name << " seed " << seed;
            EXPECT_EQ(a.kernels[k].val[m], b.kernels[k].val[m])
                << a.kernels[k].name << " seed " << seed;
        }
    }
    for (int p = 0; p < trace::kPhaseCount; ++p) {
        for (int m = 0; m < aggregation::kMetricCount; ++m) {
            EXPECT_EQ(a.phase_train[p][m], b.phase_train[p][m])
                << "seed " << seed;
            EXPECT_EQ(a.phase_val[p][m], b.phase_val[p][m]) << "seed " << seed;
        }
    }
}

}  // namespace

TEST(EdpRoundTrip, FuzzedRunsRoundTripExactly) {
    // 250 randomized runs (including zero-rank and zero-event shapes): the
    // write->read->write cycle must reproduce both the struct and the bytes
    // exactly. All generated doubles sit on a 1/16 grid, so the
    // 12-significant-digit text encoding loses nothing.
    for (std::uint64_t seed = 0; seed < 250; ++seed) {
        Rng rng(seed);
        const profiling::ProfiledRun original = edpfuzz::random_run(rng);
        const std::string bytes = to_edp(original);
        std::istringstream is(bytes);
        const profiling::ProfiledRun reread = profiling::read_edp(is);
        expect_runs_equal(original, reread, seed);
        EXPECT_EQ(to_edp(reread), bytes) << "seed " << seed;
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(EdpRoundTrip, TolerantEqualsStrictOnCleanInput) {
    // The tolerant parser on clean input must be byte-for-byte the strict
    // parser: same run, zero diagnostics.
    for (std::uint64_t seed = 0; seed < 250; ++seed) {
        Rng rng(seed);
        const profiling::ProfiledRun original = edpfuzz::random_run(rng);
        const std::string bytes = to_edp(original);
        const profiling::EdpReadResult result = tolerant_read(bytes);
        EXPECT_TRUE(result.ok()) << "seed " << seed;
        EXPECT_EQ(result.diagnostics.total(), 0u)
            << "seed " << seed << ": " << result.diagnostics.summary();
        expect_runs_equal(original, result.run, seed);
        EXPECT_EQ(to_edp(result.run), bytes) << "seed " << seed;
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(EdpFaultInjection, EveryMutatorCorpusParsesWithoutThrowing) {
    // Each mutator applied to a structurally coherent profile: the tolerant
    // parser must terminate normally, and whatever it salvages must satisfy
    // the finite/non-negative output contract. Mutated input that still
    // parses clean is fine; mutated input must never escape as an exception.
    for (const auto& [name, mutate] : edpfuzz::mutators()) {
        for (std::uint64_t seed = 0; seed < 40; ++seed) {
            Rng rng(mix64(seed, std::hash<std::string>{}(name)));
            const profiling::ProfiledRun run =
                edpfuzz::coherent_run(rng, {{"x1", 4.0}}, 0, 2);
            const std::string mutated = mutate(to_edp(run), rng);
            profiling::EdpReadResult result;
            ASSERT_NO_THROW(result = tolerant_read(mutated))
                << name << " seed " << seed;
            expect_run_sane(result.run, seed);
            if (::testing::Test::HasFailure()) {
                FAIL() << "mutator " << name << " seed " << seed;
            }
        }
    }
}

TEST(EdpFaultInjection, CompoundMutationsParseWithoutThrowing) {
    // Stacked corruption (1-3 random mutators per case, 200 cases).
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed * 2654435761u + 17);
        const profiling::ProfiledRun run =
            edpfuzz::coherent_run(rng, {{"x1", 8.0}}, 1, 3);
        const int count = static_cast<int>(rng.uniform_int(1, 3));
        const std::string mutated =
            edpfuzz::apply_random_mutations(to_edp(run), rng, count);
        profiling::EdpReadResult result;
        ASSERT_NO_THROW(result = tolerant_read(mutated)) << "seed " << seed;
        expect_run_sane(result.run, seed);
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(EdpFaultInjection, SurvivingRunsAggregateWithoutThrowing) {
    // Pipeline property: if a mutated profile still passes validate_run,
    // aggregation over it must neither throw nor produce non-finite output.
    // This is the end-to-end guarantee behind graceful degradation.
    int aggregated = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
        const profiling::ProfiledRun run =
            edpfuzz::coherent_run(rng, {{"x1", 2.0}}, 0, 2);
        const std::string mutated =
            edpfuzz::apply_random_mutations(to_edp(run), rng, 2);
        profiling::EdpReadResult result;
        ASSERT_NO_THROW(result = tolerant_read(mutated)) << "seed " << seed;
        if (!result.ok()) continue;
        const aggregation::RunVerdict verdict =
            aggregation::validate_run(result.run);
        if (!verdict.keep) continue;
        const std::vector<profiling::ProfiledRun> runs = {result.run};
        aggregation::ConfigurationData config;
        ASSERT_NO_THROW(config = aggregation::aggregate_runs(runs))
            << "seed " << seed;
        expect_config_finite(config, seed);
        ++aggregated;
        if (::testing::Test::HasFailure()) break;
    }
    // The property must actually exercise the aggregation branch: plenty of
    // mutations (e.g. duplicated event lines, corrupted numbers on skipped
    // records) leave a validatable run behind.
    EXPECT_GT(aggregated, 10);
}

TEST(AggregationInvariance, RankAndRepetitionOrderDoNotMatter) {
    // Property over seeded coherent runs: permuting the rank order inside
    // every repetition and the repetition order itself must leave every
    // kernel median and phase total bit-identical (satellite: medians are
    // order statistics, not accumulation order artifacts).
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(7000 + seed);
        std::vector<profiling::ProfiledRun> runs;
        for (int rep = 0; rep < 4; ++rep) {
            runs.push_back(edpfuzz::coherent_run(rng, {{"x1", 16.0}}, rep, 3));
        }
        const aggregation::ConfigurationData baseline =
            aggregation::aggregate_runs(runs);

        Rng shuffle_rng(rng.fork(99));
        std::vector<profiling::ProfiledRun> shuffled = runs;
        for (profiling::ProfiledRun& run : shuffled) {
            seeded_shuffle(run.ranks, shuffle_rng);
        }
        seeded_shuffle(shuffled, shuffle_rng);
        const aggregation::ConfigurationData permuted =
            aggregation::aggregate_runs(shuffled);

        expect_configs_identical(baseline, permuted, seed);
        if (::testing::Test::HasFailure()) break;
    }
}

TEST(AggregationInvariance, HoldsForSimulatorProfiles) {
    // The same invariance over real Profiler output rather than synthetic
    // traces, so the property covers the simulator's event shapes too.
    const sim::TrainingSimulator simulator(
        sim::Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                            parallel::ParallelConfig::data(3),
                            parallel::ScalingMode::Weak, 256));
    const profiling::Profiler profiler(profiling::SamplingStrategy::efficient());
    std::vector<profiling::ProfiledRun> runs;
    for (int rep = 0; rep < 3; ++rep) {
        runs.push_back(profiler.profile(simulator, {{"x1", 3.0}}, rep));
    }
    const aggregation::ConfigurationData baseline =
        aggregation::aggregate_runs(runs);

    Rng rng(424242);
    std::vector<profiling::ProfiledRun> shuffled = runs;
    for (profiling::ProfiledRun& run : shuffled) {
        seeded_shuffle(run.ranks, rng);
    }
    seeded_shuffle(shuffled, rng);
    const aggregation::ConfigurationData permuted =
        aggregation::aggregate_runs(shuffled);
    expect_configs_identical(baseline, permuted, 424242);
}

TEST(EdpFaultInjection, MutatorsAreDeterministic) {
    // Reproducibility guarantee of the harness itself: same seed, same
    // mutated corpus, byte for byte.
    Rng gen(31337);
    const profiling::ProfiledRun run =
        edpfuzz::coherent_run(gen, {{"x1", 4.0}}, 0, 2);
    const std::string bytes = to_edp(run);
    for (const auto& [name, mutate] : edpfuzz::mutators()) {
        Rng a(555), b(555);
        EXPECT_EQ(mutate(bytes, a), mutate(bytes, b)) << name;
    }
    Rng a(556), b(556);
    EXPECT_EQ(edpfuzz::apply_random_mutations(bytes, a, 3),
              edpfuzz::apply_random_mutations(bytes, b, 3));
}
