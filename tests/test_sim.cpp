#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "sim/simulator.hpp"

using namespace extradeep;
using namespace extradeep::sim;
using trace::KernelCategory;
using trace::Phase;

namespace {

Workload cifar_workload(int ranks = 4) {
    return Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                          parallel::ParallelConfig::data(ranks),
                          parallel::ScalingMode::Weak, 256);
}

TraceOptions sampled_options(std::uint64_t seed = 1) {
    TraceOptions o;
    o.epochs = 2;
    o.train_steps_per_epoch = 5;
    o.val_steps_per_epoch = 2;
    o.run_seed = seed;
    return o;
}

const KernelDesc* find_kernel(const StepSchedule& s, const std::string& name) {
    for (const auto& k : s.kernels) {
        if (k.name == name) return &k;
    }
    return nullptr;
}

}  // namespace

TEST(Workload, DescribeAndStepMath) {
    const Workload w = cifar_workload(8);
    EXPECT_NE(w.describe().find("CIFAR-10"), std::string::npos);
    EXPECT_EQ(w.step_math().train_steps, 195);
    EXPECT_FALSE(w.streams_from_disk());
}

TEST(Workload, ImageNetStreamsFromDisk) {
    const Workload w =
        Workload::make("ImageNet", hw::SystemSpec::deep(),
                       parallel::ParallelConfig::data(4),
                       parallel::ScalingMode::Weak, 256);
    EXPECT_TRUE(w.streams_from_disk());
}

TEST(Schedule, ContainsExpectedKernelPopulation) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    // The Nsight-style population the paper profiles (Sec. 2.1 step 2).
    for (const char* name :
         {"EigenMetaKernel", "volta_scudnn_winograd_fprop", "Memcpy HtoD",
          "Memset", "MPI_Allreduce", "cudaLaunchKernel", "cublasSgemm",
          "cudnnConvolutionForward", "preprocess_batch", "training_step",
          "futex_wait", "sgd_momentum_update_kernel"}) {
        EXPECT_NE(find_kernel(s, name), nullptr) << name;
    }
}

TEST(Schedule, DeepUsesMpiNotNccl) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    EXPECT_EQ(find_kernel(s, "ncclAllReduce_RingLL"), nullptr);
    const KernelDesc* ar = find_kernel(s, "MPI_Allreduce");
    ASSERT_NE(ar, nullptr);
    EXPECT_GT(ar->train_time, 0.0);
}

TEST(Schedule, JurecaUsesNccl) {
    const Workload w =
        Workload::make("CIFAR-10", hw::SystemSpec::jureca(),
                       parallel::ParallelConfig::data(8),
                       parallel::ScalingMode::Weak, 256);
    const StepSchedule s = build_step_schedule(w);
    const KernelDesc* nccl = find_kernel(s, "ncclAllReduce_RingLL");
    ASSERT_NE(nccl, nullptr);
    EXPECT_EQ(nccl->category, KernelCategory::Nccl);
    // Horovod's tiny coordination allreduce still goes through MPI.
    EXPECT_NE(find_kernel(s, "MPI_Allreduce"), nullptr);
}

TEST(Schedule, PipelineUsesTorchKernelsAndSendRecv) {
    const Workload w =
        Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                       parallel::ParallelConfig::pipeline(8, 4),
                       parallel::ScalingMode::Weak, 256);
    const StepSchedule s = build_step_schedule(w);
    EXPECT_NE(find_kernel(s, "vectorized_elementwise_kernel"), nullptr);
    EXPECT_EQ(find_kernel(s, "EigenMetaKernel"), nullptr);
    EXPECT_NE(find_kernel(s, "MPI_Sendrecv"), nullptr);
}

TEST(Schedule, ValidationCheaperThanTraining) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    EXPECT_LT(s.val_step_time(), 0.7 * s.train_step_time());
    EXPECT_GT(s.val_step_time(), 0.0);
}

TEST(Schedule, CommunicationGrowsWithRanks) {
    const StepSchedule s4 = build_step_schedule(cifar_workload(4));
    const StepSchedule s32 = build_step_schedule(cifar_workload(32));
    EXPECT_GT(s32.train_phase_time(Phase::Communication),
              s4.train_phase_time(Phase::Communication));
    // Computation per step is rank independent under weak scaling.
    EXPECT_NEAR(s32.train_phase_time(Phase::Computation),
                s4.train_phase_time(Phase::Computation),
                0.02 * s4.train_phase_time(Phase::Computation));
}

TEST(Schedule, MemsetMatchesGradientBytes) {
    const Workload w = cifar_workload();
    const StepSchedule s = build_step_schedule(w);
    const KernelDesc* memset = find_kernel(s, "Memset");
    ASSERT_NE(memset, nullptr);
    EXPECT_DOUBLE_EQ(memset->train_bytes, w.app.network.gradient_bytes());
    EXPECT_EQ(memset->val_visits, 0);  // no gradient clear in validation
}

TEST(Schedule, DtoHCopyIsAsync) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    const KernelDesc* dtoh = find_kernel(s, "Memcpy DtoH");
    ASSERT_NE(dtoh, nullptr);
    EXPECT_TRUE(dtoh->async_after_step);
}

TEST(Schedule, LaunchCountsMatchGpuKernelVisits) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    std::int64_t gpu_visits = 0;
    for (const auto& k : s.kernels) {
        if (k.on_gpu) gpu_visits += k.train_visits;
    }
    const KernelDesc* launch = find_kernel(s, "cudaLaunchKernel");
    ASSERT_NE(launch, nullptr);
    EXPECT_EQ(launch->train_visits, gpu_visits);
}

TEST(Schedule, InitPhaseHasIoAndBroadcast) {
    const StepSchedule s = build_step_schedule(cifar_workload());
    std::set<std::string> names;
    for (const auto& i : s.init) names.insert(i.name);
    EXPECT_TRUE(names.count("load_data"));
    EXPECT_TRUE(names.count("MPI_Bcast"));
    EXPECT_TRUE(names.count("cudnnCreate"));
}

TEST(Schedule, StreamingDatasetReadsPerStep) {
    const Workload w =
        Workload::make("ImageNet", hw::SystemSpec::deep(),
                       parallel::ParallelConfig::data(4),
                       parallel::ScalingMode::Weak, 64);
    const StepSchedule s = build_step_schedule(w);
    const KernelDesc* read = find_kernel(s, "read");
    ASSERT_NE(read, nullptr);
    EXPECT_GT(read->train_bytes, 0.0);
}

TEST(Noise, RunFactorsDeterministicPerSeed) {
    const hw::NoiseSpec spec = hw::SystemSpec::deep().noise;
    const NoiseModel a(spec, 16, 42);
    const NoiseModel b(spec, 16, 42);
    EXPECT_DOUBLE_EQ(a.run_factor(KernelCategory::CudaKernel),
                     b.run_factor(KernelCategory::CudaKernel));
    const NoiseModel c(spec, 16, 43);
    EXPECT_NE(a.run_factor(KernelCategory::CudaKernel),
              c.run_factor(KernelCategory::CudaKernel));
}

TEST(Noise, CommunicationNoisierThanCompute) {
    const hw::NoiseSpec spec = hw::SystemSpec::deep().noise;
    const NoiseModel n(spec, 64, 1);
    EXPECT_GT(n.comm_sigma(), n.comp_sigma());
}

TEST(Noise, RunToRunVariationGrowsWithScale) {
    // Sample many runs and check the spread of run factors grows with ranks,
    // reproducing the paper's observation (Sec. 4.3).
    const hw::NoiseSpec spec = hw::SystemSpec::deep().noise;
    auto spread = [&](int ranks) {
        std::vector<double> f;
        for (std::uint64_t seed = 0; seed < 200; ++seed) {
            f.push_back(NoiseModel(spec, ranks, seed)
                            .run_factor(KernelCategory::CudaKernel));
        }
        return stats::stddev(f);
    };
    EXPECT_LT(spread(2), spread(64));
}

TEST(Noise, RankFactorsClusterAroundOne) {
    const NoiseModel n(hw::SystemSpec::deep().noise, 64, 7);
    std::vector<double> f;
    for (int r = 0; r < 64; ++r) {
        f.push_back(n.rank_factor(r));
    }
    EXPECT_NEAR(stats::median(f), 1.0, 0.02);
    EXPECT_LT(stats::stddev(f), 0.05);
}

TEST(Simulator, TraceIsDeterministic) {
    const TrainingSimulator sim(cifar_workload());
    const auto t1 = sim.trace_rank(0, sampled_options(5));
    const auto t2 = sim.trace_rank(0, sampled_options(5));
    ASSERT_EQ(t1.events.size(), t2.events.size());
    for (std::size_t i = 0; i < t1.events.size(); ++i) {
        EXPECT_DOUBLE_EQ(t1.events[i].duration, t2.events[i].duration);
        EXPECT_EQ(t1.events[i].name, t2.events[i].name);
    }
}

TEST(Simulator, DifferentSeedsGiveDifferentDurations) {
    const TrainingSimulator sim(cifar_workload());
    const auto t1 = sim.trace_rank(0, sampled_options(5));
    const auto t2 = sim.trace_rank(0, sampled_options(6));
    EXPECT_NE(t1.wall_time(), t2.wall_time());
}

TEST(Simulator, TraceStructureMatchesOptions) {
    const TrainingSimulator sim(cifar_workload());
    const auto t = sim.trace_rank(0, sampled_options());
    EXPECT_EQ(trace::epoch_count(t), 2);
    for (int e = 0; e < 2; ++e) {
        EXPECT_EQ(trace::step_count(t, e, trace::StepKind::Train), 5);
        EXPECT_EQ(trace::step_count(t, e, trace::StepKind::Validation), 2);
    }
}

TEST(Simulator, FirstEpochIsSlower) {
    // Warm-up effects (cuDNN autotuning, graph tracing) make epoch 0 steps
    // slower - the reason the sampling strategy discards them.
    const TrainingSimulator sim(cifar_workload());
    const auto t = sim.trace_rank(0, sampled_options());
    const auto windows = trace::segment_steps(t);
    std::map<int, double> epoch_train_time;
    for (const auto& w : windows) {
        if (!w.async_gap && w.kind == trace::StepKind::Train) {
            for (const auto idx : w.event_indices) {
                epoch_train_time[w.epoch] += t.events[idx].duration;
            }
        }
    }
    EXPECT_GT(epoch_train_time[0], 1.2 * epoch_train_time[1]);
}

TEST(Simulator, WarmupContainsAutotuneKernels) {
    const TrainingSimulator sim(cifar_workload());
    const auto t = sim.trace_rank(0, sampled_options());
    bool found = false;
    for (const auto& e : t.events) {
        if (e.name == "cudnnFindConvolutionForwardAlgorithm") found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Simulator, CollapsedAndExpandedTracesAgree) {
    const TrainingSimulator sim(cifar_workload());
    TraceOptions collapsed = sampled_options();
    TraceOptions expanded = sampled_options();
    expanded.collapse_repeats = false;
    const auto tc = sim.trace_rank(0, collapsed);
    const auto te = sim.trace_rank(0, expanded);
    EXPECT_GT(te.events.size(), tc.events.size());
    // Total visits and durations must agree between the two representations.
    auto totals = [](const trace::RankTrace& t) {
        std::map<std::string, std::pair<std::int64_t, double>> m;
        for (const auto& e : t.events) {
            m[e.name].first += e.visits;
            m[e.name].second += e.duration;
        }
        return m;
    };
    const auto mc = totals(tc);
    const auto me = totals(te);
    ASSERT_EQ(mc.size(), me.size());
    for (const auto& [name, v] : mc) {
        ASSERT_TRUE(me.count(name)) << name;
        EXPECT_EQ(me.at(name).first, v.first) << name;
        EXPECT_NEAR(me.at(name).second, v.second, 1e-9 * (1.0 + v.second))
            << name;
    }
}

TEST(Simulator, AsyncEventsLandBetweenSteps) {
    const TrainingSimulator sim(cifar_workload());
    const auto t = sim.trace_rank(0, sampled_options());
    const auto windows = trace::segment_steps(t);
    bool found_async_copy = false;
    for (const auto& w : windows) {
        for (const auto idx : w.event_indices) {
            if (t.events[idx].name == "Memcpy DtoH") {
                EXPECT_TRUE(w.async_gap);
                found_async_copy = true;
            }
        }
    }
    EXPECT_TRUE(found_async_copy);
}

TEST(Simulator, RankOutOfRangeThrows) {
    const TrainingSimulator sim(cifar_workload(4));
    EXPECT_THROW(sim.trace_rank(4, sampled_options()), InvalidArgumentError);
    EXPECT_THROW(sim.measure_epoch(-1, 1), InvalidArgumentError);
}

TEST(Simulator, MeasureEpochConsistentWithSchedule) {
    // With noise factors of mean one, the measured epoch should be close to
    // the deterministic expectation n_t * step + n_v * val.
    const TrainingSimulator sim(cifar_workload());
    const auto& s = sim.schedule();
    const auto& m = sim.step_math();
    const double expected =
        m.train_steps * s.train_step_time() + m.val_steps * s.val_step_time();
    std::vector<double> walls;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        walls.push_back(sim.measure_epoch_wall(seed));
    }
    EXPECT_NEAR(stats::median(walls), expected, 0.06 * expected);
}

TEST(Simulator, EpochMeasurementPhasesSumToWall) {
    const TrainingSimulator sim(cifar_workload());
    const EpochMeasurement m = sim.measure_epoch(0, 3);
    const double phases =
        m.phase_time[0] + m.phase_time[1] + m.phase_time[2];
    // Wall additionally includes epoch overhead (and spikes are folded into
    // the computation phase).
    EXPECT_NEAR(m.wall_time, phases + sim.schedule().epoch_overhead_s, 1e-9);
}

TEST(Simulator, TraceAndFastPathAgreeOnStepTime) {
    // Median per-step kernel totals from the trace should be close to the
    // fast path's per-step base (both share run factors; warm epoch 1 only).
    const TrainingSimulator sim(cifar_workload());
    TraceOptions o = sampled_options(9);
    const auto t = sim.trace_rank(0, o);
    const auto windows = trace::segment_steps(t);
    std::vector<double> step_times;
    for (const auto& w : windows) {
        if (w.epoch == 1 && !w.async_gap && w.kind == trace::StepKind::Train) {
            double sum = 0.0;
            for (const auto idx : w.event_indices) {
                sum += t.events[idx].duration;
            }
            step_times.push_back(sum);
        }
    }
    ASSERT_EQ(step_times.size(), 5u);
    const double deterministic = sim.schedule().train_step_time();
    EXPECT_NEAR(stats::median(step_times), deterministic, 0.25 * deterministic);
}

TEST(Simulator, RunWallTimeTracksTraceWallTime) {
    const TrainingSimulator sim(cifar_workload());
    const TraceOptions o = sampled_options(11);
    const double predicted = sim.run_wall_time(o);
    const double actual = sim.trace_rank(0, o).wall_time();
    EXPECT_NEAR(predicted, actual, 0.25 * actual);
}

TEST(Simulator, WeakScalingEpochGrowsWithRanks) {
    // The headline case-study behaviour: under weak scaling the epoch time
    // rises with the communication overhead.
    const TrainingSimulator s2(cifar_workload(2));
    const TrainingSimulator s64(cifar_workload(64));
    EXPECT_GT(s64.measure_epoch_wall(1), 1.5 * s2.measure_epoch_wall(1));
}

TEST(Simulator, StrongScalingEpochShrinksWithRanks) {
    auto strong = [](int ranks) {
        return Workload::make("CIFAR-10", hw::SystemSpec::deep(),
                              parallel::ParallelConfig::data(ranks),
                              parallel::ScalingMode::Strong, 64);
    };
    const TrainingSimulator s2(strong(2));
    const TrainingSimulator s16(strong(16));
    EXPECT_LT(s16.measure_epoch_wall(1), s2.measure_epoch_wall(1));
}

TEST(Simulator, TypicalRankMeasurementLessExtremeThanWall) {
    const TrainingSimulator sim(cifar_workload(32));
    // Wall includes the slowest rank; the typical (median) rank is faster or
    // equal in computation terms.
    const double wall = sim.measure_epoch_wall(5);
    const EpochMeasurement typical = sim.measure_epoch_typical(5);
    EXPECT_LE(typical.wall_time, wall * 1.001);
}
