#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/kernel.hpp"
#include "trace/timeline.hpp"

using namespace extradeep::trace;
using extradeep::ParseError;

namespace {

NvtxMark mark(NvtxMark::Kind kind, int epoch, int step, double time,
              StepKind sk = StepKind::Train) {
    NvtxMark m;
    m.kind = kind;
    m.epoch = epoch;
    m.step = step;
    m.step_kind = sk;
    m.time = time;
    return m;
}

TraceEvent event(const std::string& name, double start, double duration,
                 KernelCategory cat = KernelCategory::CudaKernel) {
    TraceEvent e;
    e.name = name;
    e.category = cat;
    e.start = start;
    e.duration = duration;
    return e;
}

/// Two epochs, two train steps each, with gaps between steps.
RankTrace simple_trace() {
    RankTrace t;
    t.rank = 0;
    double cursor = 0.0;
    for (int epoch = 0; epoch < 2; ++epoch) {
        t.marks.push_back(mark(NvtxMark::Kind::EpochStart, epoch, -1, cursor));
        for (int s = 0; s < 2; ++s) {
            t.marks.push_back(mark(NvtxMark::Kind::StepStart, epoch, s, cursor));
            t.events.push_back(event("kernel_a", cursor + 0.01, 0.02));
            t.events.push_back(event("kernel_b", cursor + 0.04, 0.01));
            cursor += 0.1;
            t.marks.push_back(
                mark(NvtxMark::Kind::StepEnd, epoch, s, cursor));
            // Async event in the gap after the step.
            t.events.push_back(event("async_copy", cursor + 0.001, 0.002,
                                     KernelCategory::Memcpy));
            cursor += 0.01;
        }
        t.marks.push_back(mark(NvtxMark::Kind::EpochEnd, epoch, -1, cursor));
        cursor += 0.05;
    }
    return t;
}

}  // namespace

TEST(KernelCategory, PhaseMapping) {
    EXPECT_EQ(phase_of(KernelCategory::Mpi), Phase::Communication);
    EXPECT_EQ(phase_of(KernelCategory::Nccl), Phase::Communication);
    EXPECT_EQ(phase_of(KernelCategory::Memcpy), Phase::MemoryOp);
    EXPECT_EQ(phase_of(KernelCategory::Memset), Phase::MemoryOp);
    EXPECT_EQ(phase_of(KernelCategory::CudaKernel), Phase::Computation);
    EXPECT_EQ(phase_of(KernelCategory::Cudnn), Phase::Computation);
    EXPECT_EQ(phase_of(KernelCategory::Cublas), Phase::Computation);
    EXPECT_EQ(phase_of(KernelCategory::Os), Phase::Computation);
    EXPECT_EQ(phase_of(KernelCategory::NvtxFunction), Phase::Computation);
    EXPECT_EQ(phase_of(KernelCategory::CudaApi), Phase::Computation);
}

TEST(KernelCategory, NameRoundTrip) {
    for (int i = 0; i < kKernelCategoryCount; ++i) {
        const auto cat = static_cast<KernelCategory>(i);
        EXPECT_EQ(parse_category(category_name(cat)), cat);
    }
}

TEST(KernelCategory, ParseUnknownThrows) {
    EXPECT_THROW(parse_category("definitely not a category"), ParseError);
}

TEST(PhaseName, AllDistinct) {
    EXPECT_NE(phase_name(Phase::Computation), phase_name(Phase::Communication));
    EXPECT_NE(phase_name(Phase::Communication), phase_name(Phase::MemoryOp));
}

TEST(RankTrace, WallTimeIsMaxEnd) {
    RankTrace t = simple_trace();
    EXPECT_DOUBLE_EQ(t.wall_time(), 0.49);  // last epoch end mark
}

TEST(SegmentSteps, ProducesStepAndGapWindows) {
    const auto windows = segment_steps(simple_trace());
    int steps = 0;
    int gaps = 0;
    for (const auto& w : windows) {
        if (w.async_gap) {
            ++gaps;
        } else {
            ++steps;
        }
    }
    EXPECT_EQ(steps, 4);  // 2 epochs x 2 steps
    EXPECT_EQ(gaps, 4);   // gap after every step (closed by next start / epoch end)
}

TEST(SegmentSteps, AssignsEventsToCorrectWindows) {
    const RankTrace t = simple_trace();
    const auto windows = segment_steps(t);
    for (const auto& w : windows) {
        if (!w.async_gap) {
            EXPECT_EQ(w.event_indices.size(), 2u)
                << "epoch " << w.epoch << " step " << w.step;
            for (const auto idx : w.event_indices) {
                EXPECT_NE(t.events[idx].name, "async_copy");
            }
        } else {
            ASSERT_EQ(w.event_indices.size(), 1u);
            EXPECT_EQ(t.events[w.event_indices[0]].name, "async_copy");
        }
    }
}

TEST(SegmentSteps, GapWindowInheritsStepIdentity) {
    const auto windows = segment_steps(simple_trace());
    for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
        if (windows[i + 1].async_gap) {
            EXPECT_EQ(windows[i].step, windows[i + 1].step);
            EXPECT_EQ(windows[i].epoch, windows[i + 1].epoch);
        }
    }
}

TEST(SegmentSteps, IgnoresEventsBeforeFirstEpoch) {
    RankTrace t = simple_trace();
    // Shift everything and insert an init event before epoch 0.
    t.events.push_back(event("init_work", -1.0, 0.5));
    const auto windows = segment_steps(t);
    for (const auto& w : windows) {
        for (const auto idx : w.event_indices) {
            EXPECT_NE(t.events[idx].name, "init_work");
        }
    }
}

TEST(SegmentSteps, IgnoresEventsBetweenEpochs) {
    RankTrace t = simple_trace();
    // Epoch 0 ends at 0.22, epoch 1 starts at 0.27 in simple_trace geometry.
    t.events.push_back(event("checkpoint", 0.23, 0.01, KernelCategory::Os));
    const auto windows = segment_steps(t);
    for (const auto& w : windows) {
        for (const auto idx : w.event_indices) {
            EXPECT_NE(t.events[idx].name, "checkpoint");
        }
    }
}

TEST(SegmentSteps, ValidationStepsKeepKind) {
    RankTrace t;
    t.marks.push_back(mark(NvtxMark::Kind::EpochStart, 0, -1, 0.0));
    t.marks.push_back(
        mark(NvtxMark::Kind::StepStart, 0, 0, 0.0, StepKind::Validation));
    t.marks.push_back(
        mark(NvtxMark::Kind::StepEnd, 0, 0, 0.1, StepKind::Validation));
    t.marks.push_back(mark(NvtxMark::Kind::EpochEnd, 0, -1, 0.2));
    const auto windows = segment_steps(t);
    ASSERT_FALSE(windows.empty());
    EXPECT_EQ(windows.front().kind, StepKind::Validation);
}

TEST(SegmentSteps, UnsortedMarksAreSorted) {
    RankTrace t = simple_trace();
    std::swap(t.marks.front(), t.marks.back());
    EXPECT_NO_THROW(segment_steps(t));
}

TEST(SegmentSteps, ThrowsOnNestedEpoch) {
    RankTrace t;
    t.marks.push_back(mark(NvtxMark::Kind::EpochStart, 0, -1, 0.0));
    t.marks.push_back(mark(NvtxMark::Kind::EpochStart, 1, -1, 0.1));
    EXPECT_THROW(segment_steps(t), ParseError);
}

TEST(SegmentSteps, ThrowsOnStepOutsideEpoch) {
    RankTrace t;
    t.marks.push_back(mark(NvtxMark::Kind::StepStart, 0, 0, 0.0));
    EXPECT_THROW(segment_steps(t), ParseError);
}

TEST(SegmentSteps, ThrowsOnUnmatchedStepEnd) {
    RankTrace t;
    t.marks.push_back(mark(NvtxMark::Kind::EpochStart, 0, -1, 0.0));
    t.marks.push_back(mark(NvtxMark::Kind::StepStart, 0, 0, 0.1));
    t.marks.push_back(mark(NvtxMark::Kind::StepEnd, 0, 1, 0.2));
    EXPECT_THROW(segment_steps(t), ParseError);
}

TEST(SegmentSteps, ThrowsOnTruncatedTrace) {
    RankTrace t;
    t.marks.push_back(mark(NvtxMark::Kind::EpochStart, 0, -1, 0.0));
    EXPECT_THROW(segment_steps(t), ParseError);
}

TEST(SegmentSteps, EmptyTraceGivesNoWindows) {
    RankTrace t;
    EXPECT_TRUE(segment_steps(t).empty());
}

TEST(WindowsOfEpoch, FiltersByEpoch) {
    const auto windows = segment_steps(simple_trace());
    const auto e1 = windows_of_epoch(windows, 1);
    for (const auto& w : e1) {
        EXPECT_EQ(w.epoch, 1);
    }
    EXPECT_EQ(e1.size(), 4u);  // 2 steps + 2 gaps
}

TEST(EpochCount, CountsEpochs) {
    EXPECT_EQ(epoch_count(simple_trace()), 2);
    EXPECT_EQ(epoch_count(RankTrace{}), 0);
}

TEST(StepCount, CountsByKind) {
    const RankTrace t = simple_trace();
    EXPECT_EQ(step_count(t, 0, StepKind::Train), 2);
    EXPECT_EQ(step_count(t, 0, StepKind::Validation), 0);
}
