#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"

using extradeep::InvalidArgumentError;
using extradeep::Table;
namespace fmt = extradeep::fmt;

TEST(Table, RendersHeaderAndRows) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1.5"});
    t.add_row({"beta", "22.0"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22.0"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericColumnsRightAligned) {
    Table t({"k", "v"});
    t.add_row({"a", "1"});
    t.add_row({"b", "100"});
    const std::string s = t.to_string();
    // "  1" must be padded to the width of "100".
    EXPECT_NE(s.find("|   1 |"), std::string::npos);
}

TEST(Table, ThrowsOnWrongCellCount) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), InvalidArgumentError);
}

TEST(Table, ThrowsOnNoHeaders) {
    EXPECT_THROW(Table({}), InvalidArgumentError);
}

TEST(Table, CsvEscapesCommas) {
    Table t({"name", "desc"});
    t.add_row({"x", "a,b"});
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_EQ(csv.find("name,desc"), 0u);
}

TEST(Format, Fixed) {
    EXPECT_EQ(fmt::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fmt::fixed(-1.0, 0), "-1");
}

TEST(Format, Percent) {
    EXPECT_EQ(fmt::percent(12.34), "12.3%");
    EXPECT_EQ(fmt::percent(5.0, 0), "5%");
}

TEST(Format, SecondsAdaptiveUnits) {
    EXPECT_EQ(fmt::seconds(1.23e-6), "1.23 us");
    EXPECT_EQ(fmt::seconds(0.00123), "1.23 ms");
    EXPECT_EQ(fmt::seconds(12.3), "12.3 s");
    EXPECT_EQ(fmt::seconds(600.0), "10 min");
    EXPECT_EQ(fmt::seconds(7200.0), "2 h");
}

TEST(Format, BytesAdaptiveUnits) {
    EXPECT_EQ(fmt::bytes(512), "512 B");
    EXPECT_EQ(fmt::bytes(2048), "2.00 KiB");
    EXPECT_EQ(fmt::bytes(3.5 * 1024 * 1024), "3.50 MiB");
    EXPECT_EQ(fmt::bytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Format, CountThousandsSeparators) {
    EXPECT_EQ(fmt::count(0), "0");
    EXPECT_EQ(fmt::count(999), "999");
    EXPECT_EQ(fmt::count(1000), "1,000");
    EXPECT_EQ(fmt::count(1234567), "1,234,567");
    EXPECT_EQ(fmt::count(-42000), "-42,000");
}

TEST(Format, Coeff) {
    EXPECT_EQ(fmt::coeff(0.0), "0");
    EXPECT_EQ(fmt::coeff(1.5), "1.5");
    // Tiny magnitudes switch to scientific notation.
    EXPECT_NE(fmt::coeff(1e-7).find("e-"), std::string::npos);
    EXPECT_NE(fmt::coeff(1e9).find("e+"), std::string::npos);
}

TEST(Format, ShortestRoundTripsEveryBit) {
    const double cases[] = {0.0,
                            -0.0,
                            0.1,
                            0.1 + 0.2,
                            1.0 / 3.0,
                            std::nextafter(1.0, 2.0),
                            3.141592653589793,
                            -6.02214076e23,
                            2.2250738585072014e-308,
                            1.7976931348623157e308};
    for (const double v : cases) {
        const std::string s = fmt::shortest(v);
        double back = 0.0;
        ASSERT_TRUE(fmt::parse_double(s, back)) << s;
        EXPECT_EQ(back, v) << s;
        EXPECT_EQ(std::signbit(back), std::signbit(v)) << s;
    }
    // Shortest means *shortest*: values with a short exact decimal keep it.
    EXPECT_EQ(fmt::shortest(0.1), "0.1");
    EXPECT_EQ(fmt::shortest(2.0), "2");
    EXPECT_EQ(fmt::shortest(0.0), "0");
}

TEST(Format, ShortestNonFinite) {
    EXPECT_EQ(fmt::shortest(std::numeric_limits<double>::quiet_NaN()), "nan");
    EXPECT_EQ(fmt::shortest(std::numeric_limits<double>::infinity()), "inf");
    EXPECT_EQ(fmt::shortest(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(Format, HexfloatRoundTripsEveryBit) {
    const double cases[] = {0.0, -0.0, 0.1 + 0.2, 1.0 / 3.0,
                            std::nextafter(1.0, 2.0), -1.5e-300, 1.5e300};
    for (const double v : cases) {
        const std::string s = fmt::hexfloat(v);
        double back = 0.0;
        ASSERT_TRUE(fmt::parse_double(s, back)) << s;
        EXPECT_EQ(back, v) << s;
        EXPECT_EQ(std::signbit(back), std::signbit(v)) << s;
    }
}

TEST(Format, ParseDoubleRejectsJunk) {
    double v = 0.0;
    EXPECT_FALSE(fmt::parse_double("", v));
    EXPECT_FALSE(fmt::parse_double("12x", v));
    EXPECT_FALSE(fmt::parse_double("1.5 ", v));
    EXPECT_FALSE(fmt::parse_double("1e999", v));  // overflow, not literal inf
    EXPECT_TRUE(fmt::parse_double("inf", v));
    EXPECT_TRUE(std::isinf(v));
    EXPECT_TRUE(fmt::parse_double("nan", v));
    EXPECT_TRUE(std::isnan(v));
    EXPECT_TRUE(fmt::parse_double("0x1.8p+1", v));
    EXPECT_EQ(v, 3.0);
}
