// Fault injection against the fleet `ingest` verb: every seeded mutator in
// the edpfuzz library is thrown at a live QueryEngine + FleetService and
// the loop must hold three properties for every mutant:
//
//   1. the response is exactly one line, `ok ...` or `err ...` - never a
//      crash, never a multi-line reply that would desynchronise the
//      protocol framing;
//   2. the engine keeps answering afterwards (the loop is never poisoned);
//   3. with refit dispatch held off, the exported model bytes never move -
//      no mutant, accepted or quarantined, may perturb served models
//      without going through a legitimate refit.
//
// Counter consistency is checked per push: an `ok` response bumps exactly
// `accepted`, an `err` response bumps `quarantined` at most once (payloads
// rejected at the protocol-usage layer bump neither).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault_injection.hpp"
#include "fleet/continuous.hpp"
#include "profiling/edp_io.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"

using namespace extradeep;

namespace {

namespace fs = std::filesystem;

const ExperimentSpec& test_spec() {
    static const ExperimentSpec spec = [] {
        ExperimentSpec s;
        s.repetitions = 1;
        s.seed = 23;
        return s;
    }();
    return spec;
}

std::string run_edp_bytes(int ranks, int rep) {
    const ExperimentSpec& spec = test_spec();
    const ExperimentRunner runner(spec);
    const sim::TrainingSimulator simulator(runner.workload_for(ranks));
    const profiling::Profiler profiler(spec.sampling);
    const profiling::ProfiledRun run = profiler.profile(
        simulator, {{"x1", static_cast<double>(ranks)}}, rep, spec.seed);
    std::ostringstream os;
    profiling::write_edp(os, run);
    return os.str();
}

std::string read_file(const fs::path& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Engine + fleet service over a fresh models dir. min_runs is set far
/// above anything the suite pushes and nothing calls poll_once/drain during
/// fuzzing, so no refit can be dispatched: the exported bytes are an
/// invariant of the whole fuzz run by construction.
struct FuzzRig {
    std::shared_ptr<serve::ModelRegistry> registry;
    std::shared_ptr<fleet::FleetService> service;
    std::unique_ptr<serve::QueryEngine> engine;
    fs::path models;

    FuzzRig() {
        models = fs::path(::testing::TempDir()) / "fleet-fuzz-models";
        fs::remove_all(models);
        fleet::FleetOptions opts;
        opts.models_dir = models.string();
        opts.spec = test_spec();
        opts.min_runs = 1;
        opts.max_pending = 1'000'000;
        registry = std::make_shared<serve::ModelRegistry>();
        service = std::make_shared<fleet::FleetService>(opts, registry);
        engine = std::make_unique<serve::QueryEngine>(registry);
        engine->set_fleet_handler(service);
    }

    /// Seeds one fitted model, then rebuilds the service with dispatch held
    /// off (min_runs huge) so fuzz pushes can never trigger a refit.
    void fit_baseline() {
        for (const int r : {2, 4, 6, 8, 10}) {
            engine->execute("ingest fuzz " +
                            serve::escape_lines(run_edp_bytes(r, 0)));
        }
        service->drain();
        ASSERT_NE(registry->find("fuzz"), nullptr);

        engine.reset();
        service.reset();
        fleet::FleetOptions opts;
        opts.models_dir = models.string();
        opts.spec = test_spec();
        opts.min_runs = 1'000'000;
        opts.max_pending = 2'000'000;
        service = std::make_shared<fleet::FleetService>(opts, registry);
        engine = std::make_unique<serve::QueryEngine>(registry);
        engine->set_fleet_handler(service);
    }

    std::string push(const std::string& payload) {
        return engine->execute("ingest fuzz " + serve::escape_lines(payload));
    }
};

}  // namespace

TEST(FleetFaults, EveryMutatorEverySeed) {
    FuzzRig rig;
    rig.fit_baseline();
    const std::string model_path = (rig.models / "fuzz.edpm").string();
    const std::string baseline_bytes = read_file(model_path);
    ASSERT_FALSE(baseline_bytes.empty());

    const std::string good = run_edp_bytes(6, 1);
    int accepted_mutants = 0;
    int quarantined_mutants = 0;
    for (const auto& [name, mutate] : edpfuzz::mutators()) {
        for (std::uint64_t seed = 1; seed <= 6; ++seed) {
            Rng rng(seed);
            const std::string mutant = mutate(good, rng);
            const fleet::FleetStats before = rig.service->stats();

            std::string response;
            ASSERT_NO_THROW(response = rig.push(mutant))
                << name << " seed " << seed;

            // Exactly one line, ok or err.
            EXPECT_EQ(response.find('\n'), std::string::npos)
                << name << " seed " << seed;
            const bool ok = response.rfind("ok ", 0) == 0;
            const bool err = response.rfind("err ", 0) == 0;
            EXPECT_TRUE(ok || err)
                << name << " seed " << seed << ": " << response;

            // Counter consistency per push.
            const fleet::FleetStats after = rig.service->stats();
            if (ok) {
                ++accepted_mutants;
                EXPECT_EQ(after.accepted, before.accepted + 1)
                    << name << " seed " << seed;
                EXPECT_EQ(after.quarantined, before.quarantined)
                    << name << " seed " << seed;
            } else {
                ++quarantined_mutants;
                EXPECT_EQ(after.accepted, before.accepted)
                    << name << " seed " << seed;
                EXPECT_LE(after.quarantined, before.quarantined + 1)
                    << name << " seed " << seed;
            }

            // The engine is alive after every mutant.
            ASSERT_EQ(rig.engine->execute("ping"), "ok pong")
                << name << " seed " << seed;
        }
    }
    // The corpus must exercise both outcomes: some mutants survive
    // validation (e.g. a shuffled comment line), most do not.
    EXPECT_GT(quarantined_mutants, 0);
    EXPECT_GT(accepted_mutants + quarantined_mutants, 0);

    // No refit was dispatched, so no mutant - accepted or not - moved the
    // served model bytes.
    EXPECT_EQ(read_file(model_path), baseline_bytes);
    EXPECT_EQ(rig.service->stats().refits, 0u);
    EXPECT_EQ(rig.service->stats().swaps, 0u);
}

TEST(FleetFaults, StackedMutationsAndRecovery) {
    FuzzRig rig;
    rig.fit_baseline();
    const std::string model_path = (rig.models / "fuzz.edpm").string();
    const std::string baseline_bytes = read_file(model_path);

    const std::string good = run_edp_bytes(8, 1);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Rng rng(seed);
        const std::string mutant = edpfuzz::apply_random_mutations(
            good, rng, 1 + static_cast<int>(seed % 5));
        std::string response;
        ASSERT_NO_THROW(response = rig.push(mutant)) << "seed " << seed;
        EXPECT_TRUE(response.rfind("ok ", 0) == 0 ||
                    response.rfind("err ", 0) == 0)
            << "seed " << seed << ": " << response;
        ASSERT_EQ(rig.engine->execute("ping"), "ok pong") << "seed " << seed;
    }
    EXPECT_EQ(read_file(model_path), baseline_bytes);

    // After the storm, a pristine run is still accepted - the aggregate was
    // never poisoned into rejecting good input.
    const std::string response = rig.push(run_edp_bytes(10, 2));
    EXPECT_EQ(response.rfind("ok accepted=1", 0), 0u) << response;
    EXPECT_EQ(rig.service->stats().refit_failures, 0u);
}
