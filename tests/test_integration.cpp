// End-to-end integration tests: simulate -> profile -> aggregate -> model ->
// predict, mirroring the paper's CIFAR-10 case study at reduced scale so the
// suite stays fast.

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"
#include "common/stats.hpp"
#include "profiling/edp_io.hpp"

using namespace extradeep;

namespace {

ExperimentSpec small_spec() {
    ExperimentSpec spec;
    spec.dataset = "CIFAR-10";
    spec.system = hw::SystemSpec::deep();
    spec.strategy = parallel::StrategyKind::Data;
    spec.scaling = parallel::ScalingMode::Weak;
    spec.batch_per_worker = 256;
    spec.modeling_ranks = {2, 4, 6, 8, 10};
    spec.evaluation_ranks = {16, 32};
    spec.repetitions = 3;
    spec.seed = 1;
    return spec;
}

}  // namespace

TEST(Integration, CaseStudyEpochModelIsAccurateAtModelingPoints) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    // Paper's "model accuracy": prediction vs the data used for modeling.
    for (std::size_t i = 0; i < result.modeling_xs.size(); ++i) {
        const double pred = result.epoch_time.evaluate(result.modeling_xs[i]);
        const double err =
            std::abs(pred - result.epoch_time_values[i]) /
            result.epoch_time_values[i];
        EXPECT_LT(err, 0.05) << "x1=" << result.modeling_xs[i];
    }
}

TEST(Integration, PredictivePowerWithinPaperBounds) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    for (const int x : {16, 32}) {
        const double pred = result.epoch_time.evaluate(x);
        const double measured = runner.measured_epoch_time(x);
        const double err = std::abs(pred - measured) / measured;
        EXPECT_LT(err, 0.30) << "x1=" << x;  // paper's worst case is 28.8 %
    }
}

TEST(Integration, EpochTimeGrowsUnderWeakScaling) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    EXPECT_GT(result.epoch_time.evaluate(64.0),
              result.epoch_time.evaluate(2.0));
}

TEST(Integration, CommunicationDominatesGrowth) {
    // The case study's bottleneck: communication grows, computation stays
    // nearly constant under weak scaling (Sec. 3.1).
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    const auto& comp =
        result.phase_time[static_cast<int>(trace::Phase::Computation)];
    const auto& comm =
        result.phase_time[static_cast<int>(trace::Phase::Communication)];
    const double comp_growth = comp.evaluate(64.0) - comp.evaluate(2.0);
    const double comm_growth = comm.evaluate(64.0) - comm.evaluate(2.0);
    EXPECT_GT(comm_growth, 4.0 * std::abs(comp_growth));
}

TEST(Integration, PhaseModelsSumToEpochModel) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    for (const double x : {4.0, 10.0, 32.0}) {
        double phases = 0.0;
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            phases += result.phase_time[p].evaluate(x);
        }
        const double total = result.epoch_time.evaluate(x);
        EXPECT_NEAR(phases, total, 0.05 * total) << "x=" << x;
    }
}

TEST(Integration, KernelModelsCoverPopulationAndPredict) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    const auto entries = model_kernels(
        result.data, result.step_math_fn,
        {aggregation::Metric::Time, aggregation::Metric::Visits});
    EXPECT_GT(entries.size(), 30u);

    // Visits models must be near exact: visit counts are deterministic.
    int visits_models = 0;
    for (const auto& e : entries) {
        if (e.metric == aggregation::Metric::Visits) {
            ++visits_models;
            EXPECT_LT(e.model.quality().fit_smape, 1.0) << e.name;
        }
    }
    EXPECT_GT(visits_models, 10);

    // The MPI allreduce time model must grow with scale.
    bool found_mpi = false;
    for (const auto& e : entries) {
        if (e.name == "MPI_Allreduce" && e.metric == aggregation::Metric::Time) {
            found_mpi = true;
            EXPECT_GT(e.model.evaluate(64.0), e.model.evaluate(2.0));
        }
    }
    EXPECT_TRUE(found_mpi);
}

TEST(Integration, ParallelKernelModelingMatchesSerial) {
    // model_kernels spends FitOptions::num_threads on the per-kernel loop;
    // the fits are independent, so entry order, selected terms and quality
    // metrics must be bit-identical to the serial pass.
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    modeling::FitOptions serial_opts;
    serial_opts.num_threads = 1;
    modeling::FitOptions parallel_opts;
    parallel_opts.num_threads = 4;
    const auto serial = model_kernels(
        result.data, result.step_math_fn,
        {aggregation::Metric::Time, aggregation::Metric::Visits},
        modeling::ModelGenerator(serial_opts));
    const auto parallel = model_kernels(
        result.data, result.step_math_fn,
        {aggregation::Metric::Time, aggregation::Metric::Visits},
        modeling::ModelGenerator(parallel_opts));
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_GT(serial.size(), 30u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name, parallel[i].name);
        EXPECT_EQ(serial[i].metric, parallel[i].metric);
        EXPECT_EQ(serial[i].model.to_string(), parallel[i].model.to_string());
        EXPECT_EQ(serial[i].model.quality().cv_smape,
                  parallel[i].model.quality().cv_smape);
        EXPECT_EQ(serial[i].model.quality().fit_smape,
                  parallel[i].model.quality().fit_smape);
        EXPECT_EQ(serial[i].model.train_step_model().constant(),
                  parallel[i].model.train_step_model().constant());
    }
}

TEST(Integration, MeasuredKernelTotalsMatchModeledKernels) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    const auto entries =
        model_kernels(result.data, result.step_math_fn,
                      {aggregation::Metric::Time});
    const auto measured = runner.measured_kernel_totals(8);
    int compared = 0;
    for (const auto& e : entries) {
        for (const auto& m : measured) {
            if (m.name == e.name && m.time > 1e-3) {
                const double pred = e.model.evaluate(8.0);
                EXPECT_NEAR(pred, m.time, 0.35 * m.time) << e.name;
                ++compared;
            }
        }
    }
    EXPECT_GT(compared, 10);
}

TEST(Integration, EvaluateModelHelper) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    std::vector<double> xs;
    std::vector<double> measured;
    for (const int x : {16, 32}) {
        xs.push_back(x);
        measured.push_back(runner.measured_epoch_time(x));
    }
    const auto evals = evaluate_model(result.epoch_time, xs, measured);
    ASSERT_EQ(evals.size(), 2u);
    EXPECT_GT(median_percent_error(evals), 0.0);
    EXPECT_LT(median_percent_error(evals), 30.0);
}

TEST(Integration, RunToRunVariationInPaperRange) {
    const ExperimentRunner runner(small_spec());
    const auto reps = runner.measured_epoch_times_all_reps(10);
    const double variation = stats::run_to_run_variation(reps);
    // Case study reports 0.6-13.9 %.
    EXPECT_GT(variation, 0.1);
    EXPECT_LT(variation, 25.0);
}

TEST(Integration, TensorParallelExperimentRuns) {
    ExperimentSpec spec = small_spec();
    spec.strategy = parallel::StrategyKind::Tensor;
    spec.model_parallel_degree = 2;
    spec.modeling_ranks = {4, 8, 12, 16, 20};
    spec.evaluation_ranks = {32};
    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    const double pred = result.epoch_time.evaluate(32.0);
    const double measured = runner.measured_epoch_time(32);
    EXPECT_LT(std::abs(pred - measured) / measured, 0.5);
}

TEST(Integration, StrongScalingRuntimeDecreases) {
    ExperimentSpec spec = small_spec();
    spec.scaling = parallel::ScalingMode::Strong;
    spec.batch_per_worker = 64;
    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    EXPECT_LT(result.epoch_time.evaluate(32.0),
              result.epoch_time.evaluate(2.0));
}

TEST(Integration, ProfiledRunsSurviveEdpRoundTrip) {
    // The EDP path produces identical aggregation results.
    const ExperimentSpec spec = small_spec();
    const ExperimentRunner runner(spec);
    const sim::TrainingSimulator simulator(runner.workload_for(4));
    const profiling::Profiler profiler(spec.sampling);

    std::vector<profiling::ProfiledRun> direct;
    std::vector<profiling::ProfiledRun> via_file;
    for (int rep = 0; rep < 2; ++rep) {
        auto run = profiler.profile(simulator, {{"x1", 4.0}}, rep, spec.seed);
        const std::string path = ::testing::TempDir() + "/roundtrip.edp";
        profiling::write_edp_file(path, run);
        via_file.push_back(profiling::read_edp_file(path));
        direct.push_back(std::move(run));
    }
    const auto a = aggregation::aggregate_runs(direct);
    const auto b = aggregation::aggregate_runs(via_file);
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (std::size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].name, b.kernels[i].name);
        EXPECT_NEAR(a.kernels[i].train[0], b.kernels[i].train[0],
                    1e-9 * (1.0 + a.kernels[i].train[0]));
    }
}

TEST(Integration, SpecValidation) {
    ExperimentSpec spec = small_spec();
    spec.modeling_ranks = {};
    EXPECT_THROW(ExperimentRunner{spec}, InvalidArgumentError);
    spec = small_spec();
    spec.repetitions = 0;
    EXPECT_THROW(ExperimentRunner{spec}, InvalidArgumentError);
}

TEST(EpochModel, ComposesPerStepModelsWithStepCounts) {
    // train-step model 2 + x, val-step model 1, n_t = 100/x, n_v = 10.
    modeling::Term t;
    t.coefficient = 1.0;
    t.factors = {modeling::Factor{0, 1.0, 0}};
    modeling::PerformanceModel train(2.0, {t}, {"x1"});
    modeling::PerformanceModel val(1.0, {}, {"x1"});
    const EpochModel m(train, val, [](int ranks) {
        parallel::StepMath sm;
        sm.train_steps = 100 / ranks;
        sm.val_steps = 10;
        return sm;
    });
    // x=4: n_t=25, train step 6, val 10*1 -> 160.
    EXPECT_DOUBLE_EQ(m.evaluate(4.0), 25 * 6.0 + 10.0);
    EXPECT_NE(m.to_string().find("n_t(x1)"), std::string::npos);
}

TEST(EpochModel, UninitialisedThrows) {
    const EpochModel m;
    EXPECT_THROW(m.evaluate(4.0), InvalidArgumentError);
    modeling::PerformanceModel pm(1.0, {}, {"x1"});
    EXPECT_THROW(EpochModel(pm, pm, StepMathFn{}), InvalidArgumentError);
}

TEST(EpochModel, PredictionIntervalScalesWithSteps) {
    const ExperimentRunner runner(small_spec());
    const ExperimentResult result = runner.run();
    const auto ci = result.epoch_time.predict_interval(16.0, 0.95);
    EXPECT_LT(ci.lower, ci.prediction);
    EXPECT_GT(ci.upper, ci.prediction);
    // The interval brackets the prediction roughly symmetrically.
    EXPECT_NEAR(ci.prediction - ci.lower, ci.upper - ci.prediction,
                0.2 * (ci.upper - ci.prediction));
}

TEST(EpochModel, StepMathFnMatchesWorkload) {
    const ExperimentRunner runner(small_spec());
    const StepMathFn fn = runner.step_math_fn();
    for (const int ranks : {2, 8, 32}) {
        const auto from_fn = fn(ranks);
        const auto from_workload = runner.workload_for(ranks).step_math();
        EXPECT_EQ(from_fn.train_steps, from_workload.train_steps) << ranks;
        EXPECT_EQ(from_fn.val_steps, from_workload.val_steps) << ranks;
    }
}

TEST(Integration, StrongScalingPredictionStaysPositiveAndAccurate) {
    // The composite model carries the 1/x of Eq. 2 analytically, so even far
    // extrapolation never goes negative (unlike a direct PMNF fit of the
    // decaying epoch values).
    ExperimentSpec spec = small_spec();
    spec.scaling = parallel::ScalingMode::Strong;
    spec.batch_per_worker = 64;
    spec.evaluation_ranks = {32, 64};
    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    for (const int x : {16, 32, 64}) {
        EXPECT_GT(result.epoch_time.evaluate(x), 0.0) << x;
    }
    const double meas = runner.measured_epoch_time(64);
    EXPECT_LT(std::abs(result.epoch_time.evaluate(64) - meas) / meas, 0.4);
}

TEST(Integration, DatasetSpecLookup) {
    EXPECT_EQ(dnn::dataset_spec("CIFAR-10").train_samples, 50000);
    EXPECT_EQ(dnn::dataset_spec("IMDB").num_classes, 2);
    EXPECT_THROW(dnn::dataset_spec("nope"), InvalidArgumentError);
}
