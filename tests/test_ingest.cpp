#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "aggregation/validate.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "extradeep/ingest.hpp"
#include "fault_injection.hpp"
#include "profiling/edp_io.hpp"

// Run/experiment validation verdicts and the graceful-degradation ingestion
// pipeline built on top of them.

using namespace extradeep;
using aggregation::ExperimentValidationOptions;
using aggregation::RunValidationOptions;
using profiling::ProfiledRun;

namespace {

ProfiledRun good_run(double x1 = 4.0, int repetition = 0, int n_ranks = 2,
                     std::uint64_t seed = 1) {
    Rng rng(seed);
    return edpfuzz::coherent_run(rng, {{"x1", x1}}, repetition, n_ranks);
}

}  // namespace

TEST(ValidateRun, AcceptsCoherentRun) {
    const aggregation::RunVerdict v = aggregation::validate_run(good_run());
    EXPECT_TRUE(v.keep) << v.diagnostics.summary();
    EXPECT_FALSE(v.diagnostics.has_errors());
}

TEST(ValidateRun, RejectsRunWithoutRanks) {
    ProfiledRun run = good_run();
    run.ranks.clear();
    const aggregation::RunVerdict v = aggregation::validate_run(run);
    EXPECT_FALSE(v.keep);
    EXPECT_TRUE(v.diagnostics.has_errors());
}

TEST(ValidateRun, RejectsEmptyParams) {
    ProfiledRun run = good_run();
    run.params.clear();
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateRun, RejectsNonFiniteParam) {
    ProfiledRun run = good_run();
    run.params["x1"] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateRun, RejectsDuplicateRankIds) {
    ProfiledRun run = good_run();
    run.ranks[1].rank = run.ranks[0].rank;
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateRun, RejectsNanEventDuration) {
    ProfiledRun run = good_run();
    run.ranks[0].events[0].duration =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateRun, RejectsNegativeEventStart) {
    ProfiledRun run = good_run();
    run.ranks[0].events[0].start = -0.5;
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateRun, RejectsUnmatchedStepMarks) {
    // Removing one StepEnd breaks NVTX pairing; segment_steps throws and
    // validation converts that into a drop verdict.
    ProfiledRun run = good_run();
    auto& marks = run.ranks[0].marks;
    for (std::size_t i = 0; i < marks.size(); ++i) {
        if (marks[i].kind == trace::NvtxMark::Kind::StepEnd) {
            marks.erase(marks.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    const aggregation::RunVerdict v = aggregation::validate_run(run);
    EXPECT_FALSE(v.keep);
    EXPECT_TRUE(v.diagnostics.has_errors());
}

TEST(ValidateRun, RejectsNonMonotonicStepIndices) {
    // Step indices within (epoch, kind) must strictly increase; swapping two
    // step indices (keeping the times valid) models a collector that wrote
    // records out of order.
    ProfiledRun run = good_run();
    for (auto& mark : run.ranks[0].marks) {
        if (mark.step == 0) {
            mark.step = 1;
        } else if (mark.step == 1) {
            mark.step = 0;
        }
    }
    const aggregation::RunVerdict v = aggregation::validate_run(run);
    EXPECT_FALSE(v.keep);
}

TEST(ValidateRun, RejectsRankCountMismatch) {
    RunValidationOptions options;
    options.expected_ranks = 4;
    EXPECT_FALSE(aggregation::validate_run(good_run(), options).keep);
    options.expected_ranks = 2;
    EXPECT_TRUE(aggregation::validate_run(good_run(), options).keep);
}

TEST(ValidateRun, RejectsRunWithoutStepWindows) {
    ProfiledRun run = good_run();
    for (auto& rank : run.ranks) rank.marks.clear();
    EXPECT_FALSE(aggregation::validate_run(run).keep);
}

TEST(ValidateExperiment, DropsBadRepetitionKeepsConfiguration) {
    std::vector<std::vector<ProfiledRun>> configs(1);
    configs[0].push_back(good_run(4.0, 0));
    configs[0].push_back(good_run(4.0, 1, 2, 2));
    configs[0][1].ranks[0].events[0].bytes =
        std::numeric_limits<double>::infinity();
    const aggregation::ExperimentVerdict v =
        aggregation::validate_experiment(configs);
    ASSERT_EQ(v.keep_run.size(), 1u);
    EXPECT_TRUE(v.keep_run[0][0]);
    EXPECT_FALSE(v.keep_run[0][1]);
    EXPECT_TRUE(v.keep_config[0]);
    EXPECT_EQ(v.runs_kept, 1u);
    EXPECT_EQ(v.runs_dropped, 1u);
    EXPECT_EQ(v.configs_kept, 1u);
}

TEST(ValidateExperiment, MinRepetitionsFloorDropsConfiguration) {
    std::vector<std::vector<ProfiledRun>> configs(1);
    configs[0].push_back(good_run(4.0, 0));
    configs[0].push_back(good_run(4.0, 1, 2, 2));
    configs[0][1].ranks.clear();  // one repetition is unusable
    ExperimentValidationOptions options;
    options.min_repetitions = 2;
    const aggregation::ExperimentVerdict v =
        aggregation::validate_experiment(configs, options);
    EXPECT_FALSE(v.keep_config[0]);
    EXPECT_FALSE(v.keep_run[0][0]);  // cleared with the configuration
    EXPECT_EQ(v.configs_dropped, 1u);
    EXPECT_FALSE(v.any_usable());
}

TEST(ValidateExperiment, DropsRepetitionWithMismatchedParams) {
    std::vector<std::vector<ProfiledRun>> configs(1);
    configs[0].push_back(good_run(4.0, 0));
    configs[0].push_back(good_run(8.0, 1, 2, 2));  // wrong measurement point
    const aggregation::ExperimentVerdict v =
        aggregation::validate_experiment(configs);
    EXPECT_TRUE(v.keep_run[0][0]);
    EXPECT_FALSE(v.keep_run[0][1]);
    EXPECT_TRUE(v.keep_config[0]);
}

TEST(ValidateExperiment, EnforcesUniformRankCounts) {
    std::vector<std::vector<ProfiledRun>> configs(1);
    configs[0].push_back(good_run(4.0, 0, 2, 1));
    configs[0].push_back(good_run(4.0, 1, 2, 2));
    configs[0].push_back(good_run(4.0, 2, 3, 3));  // lost/extra rank
    const aggregation::ExperimentVerdict v =
        aggregation::validate_experiment(configs);
    EXPECT_TRUE(v.keep_run[0][0]);
    EXPECT_TRUE(v.keep_run[0][1]);
    EXPECT_FALSE(v.keep_run[0][2]);
    EXPECT_EQ(v.runs_dropped, 1u);

    ExperimentValidationOptions lax;
    lax.require_uniform_ranks = false;
    const aggregation::ExperimentVerdict v2 =
        aggregation::validate_experiment(configs, lax);
    EXPECT_TRUE(v2.keep_run[0][2]);
}

TEST(ValidateExperiment, DuplicateRepetitionIndexIsOnlyAWarning) {
    std::vector<std::vector<ProfiledRun>> configs(1);
    configs[0].push_back(good_run(4.0, 0, 2, 1));
    configs[0].push_back(good_run(4.0, 0, 2, 2));
    const aggregation::ExperimentVerdict v =
        aggregation::validate_experiment(configs);
    EXPECT_TRUE(v.keep_run[0][0]);
    EXPECT_TRUE(v.keep_run[0][1]);
    EXPECT_GE(v.diagnostics.count(Severity::Warning), 1u);
    EXPECT_FALSE(v.diagnostics.has_errors());
}

TEST(IngestRuns, HappyPathKeepsEverything) {
    std::vector<std::vector<ProfiledRun>> configs;
    std::uint64_t seed = 1;
    for (const double x1 : {2.0, 4.0, 8.0}) {
        std::vector<ProfiledRun> reps;
        for (int rep = 0; rep < 2; ++rep) {
            reps.push_back(good_run(x1, rep, 2, seed++));
        }
        configs.push_back(std::move(reps));
    }
    const IngestResult result = ingest_runs(configs);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.runs_total, 6u);
    EXPECT_EQ(result.runs_kept, 6u);
    EXPECT_EQ(result.configs_kept, 3u);
    EXPECT_FALSE(result.diagnostics.has_errors());
    EXPECT_EQ(result.data.parameter_values(),
              (std::vector<double>{2.0, 4.0, 8.0}));
    ASSERT_NE(result.data.find(4.0), nullptr);
    EXPECT_EQ(result.data.find(4.0)->repetitions, 2);
}

TEST(IngestRuns, FullyCorruptConfigurationIsDropped) {
    std::vector<std::vector<ProfiledRun>> configs;
    configs.push_back({good_run(2.0, 0, 2, 1), good_run(2.0, 1, 2, 2)});
    configs.push_back({good_run(4.0, 0, 2, 3)});
    configs[1][0].ranks.clear();
    const IngestResult result = ingest_runs(configs);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.configs_total, 2u);
    EXPECT_EQ(result.configs_kept, 1u);
    EXPECT_EQ(result.runs_kept, 2u);
    EXPECT_TRUE(result.diagnostics.has_errors());
    EXPECT_EQ(result.data.find(4.0), nullptr);
}

TEST(IngestRuns, ModelabilityCountsOnlySurvivingConfigurations) {
    // "rare" appears in 5 of 6 configurations, but one of those 5 is fully
    // corrupt and gets dropped - so only 4 surviving configurations carry it
    // and it must NOT be modelable under the paper's >= 5 rule. "gemm"
    // (present everywhere) stays modelable.
    std::vector<std::vector<ProfiledRun>> configs;
    for (int c = 0; c < 6; ++c) {
        const double x1 = static_cast<double>(2 << c);
        ProfiledRun run = good_run(x1, 0, 2, 10 + static_cast<std::uint64_t>(c));
        if (c < 5) {
            trace::TraceEvent rare;
            rare.name = "rare";
            rare.category = trace::KernelCategory::Nccl;
            // Inside the first step window of epoch 1 - epoch 0 is warmup
            // and would be discarded before the kernel is ever seen.
            for (const trace::NvtxMark& m : run.ranks[0].marks) {
                if (m.epoch == 1 &&
                    m.kind == trace::NvtxMark::Kind::StepStart) {
                    rare.start = m.time + 0.125;
                    break;
                }
            }
            rare.duration = 0.0625;
            rare.visits = 1;
            run.ranks[0].events.push_back(rare);
        }
        configs.push_back({std::move(run)});
    }
    configs[4][0].params["x1"] = std::numeric_limits<double>::infinity();

    const IngestResult result = ingest_runs(configs);
    EXPECT_EQ(result.configs_kept, 5u);
    EXPECT_TRUE(result.modelable());
    const auto modelable = result.data.modelable_kernels();
    EXPECT_NE(std::find(modelable.begin(), modelable.end(), "gemm"),
              modelable.end());
    EXPECT_EQ(std::find(modelable.begin(), modelable.end(), "rare"),
              modelable.end());
}

TEST(IngestRuns, DuplicatePrimaryValueDropsLaterConfiguration) {
    std::vector<std::vector<ProfiledRun>> configs;
    configs.push_back({good_run(2.0, 0, 2, 1)});
    configs.push_back({good_run(2.0, 0, 2, 2)});
    const IngestResult result = ingest_runs(configs);
    EXPECT_EQ(result.configs_kept, 1u);
    EXPECT_TRUE(result.diagnostics.has_errors());
    EXPECT_EQ(result.data.size(), 1u);
}

TEST(IngestRuns, MissingPrimaryParameterIsDroppedNotThrown) {
    Rng rng(5);
    std::vector<std::vector<ProfiledRun>> configs;
    configs.push_back({good_run(2.0, 0, 2, 1)});
    configs.push_back(
        {edpfuzz::coherent_run(rng, {{"x2", 3.0}}, 0, 2)});
    const IngestResult result = ingest_runs(configs);
    EXPECT_EQ(result.configs_kept, 1u);
    EXPECT_TRUE(result.diagnostics.has_errors());
    EXPECT_NE(result.summary().find("1/2 configurations"), std::string::npos)
        << result.summary();
}

TEST(IngestFiles, ToleratesCorruptAndForeignFiles) {
    const std::string dir = ::testing::TempDir();
    std::vector<std::string> paths;
    std::uint64_t seed = 20;
    for (const double x1 : {2.0, 4.0}) {
        for (int rep = 0; rep < 2; ++rep) {
            Rng rng(seed++);
            const ProfiledRun run =
                edpfuzz::coherent_run(rng, {{"x1", x1}}, rep, 2);
            const std::string path = dir + "/ingest_x" +
                                     std::to_string(static_cast<int>(x1)) +
                                     "_r" + std::to_string(rep) + ".edp";
            profiling::write_edp_file(path, run);
            paths.push_back(path);
        }
    }
    {
        std::ofstream os(dir + "/ingest_corrupt.edp");
        os << "this is\nnot an EDP file\n";
    }
    paths.push_back(dir + "/ingest_corrupt.edp");
    {
        Rng rng(99);
        profiling::write_edp_file(
            dir + "/ingest_no_x1.edp",
            edpfuzz::coherent_run(rng, {{"x9", 1.0}}, 0, 2));
    }
    paths.push_back(dir + "/ingest_no_x1.edp");
    paths.push_back(dir + "/ingest_does_not_exist.edp");

    const IngestResult result = ingest_edp_files(paths);
    EXPECT_EQ(result.configs_kept, 2u);
    EXPECT_EQ(result.runs_kept, 4u);
    EXPECT_EQ(result.runs_total, 7u);
    EXPECT_TRUE(result.diagnostics.has_errors());
    EXPECT_EQ(result.data.parameter_values(),
              (std::vector<double>{2.0, 4.0}));

    // Strict mode refuses the same corpus instead of degrading.
    IngestOptions strict;
    strict.mode = profiling::ParseMode::Strict;
    EXPECT_THROW(ingest_edp_files(paths, strict), Error);
}

TEST(IngestFiles, RepetitionsAreOrderedByIndexNotByPath) {
    const std::string dir = ::testing::TempDir();
    std::vector<std::string> paths;
    for (const int rep : {1, 0}) {  // listed out of order on purpose
        Rng rng(40 + static_cast<std::uint64_t>(rep));
        const std::string path =
            dir + "/ingest_order_r" + std::to_string(rep) + ".edp";
        profiling::write_edp_file(
            path, edpfuzz::coherent_run(rng, {{"x1", 2.0}}, rep, 2));
        paths.push_back(path);
    }
    const IngestResult result = ingest_edp_files(paths);
    EXPECT_EQ(result.configs_kept, 1u);
    EXPECT_EQ(result.runs_kept, 2u);
    EXPECT_FALSE(result.diagnostics.has_errors());
}
