// Tests for the ground-truth accuracy harness (src/eval): oracle
// materialisation, end-to-end scoring, report emission and the regression
// gate. The oracle is the one place in the repository where the "right
// answer" is known in closed form, so these tests pin down that the entire
// pipeline - EDP round-trip, validation, aggregation, model generation -
// reproduces it exactly in the noise-free limit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"
#include "eval/oracle.hpp"
#include "eval/report.hpp"
#include "eval/scorer.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep::eval {
namespace {

OracleCase find_case(const std::string& name) {
    for (auto& c : default_oracle_cases()) {
        if (c.name == name) {
            return c;
        }
    }
    throw Error("test: no oracle case named " + name);
}

double aggregated_oracle_value(const OracleCase& oracle,
                               std::size_t config_index,
                               const MaterializeOptions& options) {
    const auto runs = materialize_config(oracle, config_index, options);
    const auto config = aggregation::aggregate_runs(runs);
    const aggregation::KernelStats* k = config.find_kernel(kOracleKernel);
    EXPECT_NE(k, nullptr);
    return k == nullptr ? -1.0
                        : k->train_metric(aggregation::Metric::Time);
}

// ---------------------------------------------------------------------------
// Oracle suite shape

TEST(EvalOracle, DefaultSuiteCoversSingleAndMultiParameter) {
    const auto cases = default_oracle_cases();
    ASSERT_GE(cases.size(), 8u);
    std::size_t multi = 0;
    std::vector<std::string> names;
    for (const auto& c : cases) {
        names.push_back(c.name);
        ASSERT_FALSE(c.points.empty()) << c.name;
        for (const auto& p : c.points) {
            ASSERT_EQ(p.size(), c.num_params()) << c.name;
            EXPECT_GT(c.truth_value(p), 0.0) << c.name;
        }
        if (c.num_params() > 1) {
            ++multi;
        } else {
            // Paper's efficient sampling: five points per parameter.
            EXPECT_EQ(c.points.size(), 5u) << c.name;
        }
    }
    EXPECT_GE(multi, 2u);
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
        << "duplicate oracle case names";
}

TEST(EvalOracle, QuickSuiteIsSubsetOfDefault) {
    const auto quick = quick_oracle_cases();
    const auto all = default_oracle_cases();
    ASSERT_FALSE(quick.empty());
    EXPECT_LT(quick.size(), all.size());
    for (const auto& q : quick) {
        const bool found =
            std::any_of(all.begin(), all.end(),
                        [&](const OracleCase& c) { return c.name == q.name; });
        EXPECT_TRUE(found) << q.name;
    }
}

TEST(EvalOracle, CaseNameHashIsStableAcrossPlatforms) {
    // FNV-1a reference values; std::hash would not be reproducible.
    EXPECT_EQ(case_name_hash(""), 1469598103934665603ULL);
    EXPECT_EQ(case_name_hash("linear"), case_name_hash("linear"));
    EXPECT_NE(case_name_hash("linear"), case_name_hash("quadratic"));
}

// ---------------------------------------------------------------------------
// Noise-free materialisation: aggregation must reproduce the truth exactly

TEST(EvalOracle, NoiseFreeAggregationRecoversTruthExactly) {
    for (const auto& oracle : default_oracle_cases()) {
        for (std::size_t c = 0; c < oracle.points.size(); c += 3) {
            const double got = aggregated_oracle_value(oracle, c, {});
            EXPECT_NEAR(got, oracle.truth_value(oracle.points[c]),
                        1e-9 * oracle.truth_value(oracle.points[c]))
                << oracle.name << " config " << c;
        }
    }
}

TEST(EvalOracle, WarmupEpochIsEmittedAndDiscarded) {
    const OracleCase oracle = find_case("linear");
    const auto runs = materialize_config(oracle, 1, {});
    ASSERT_FALSE(runs.empty());
    ASSERT_FALSE(runs.front().ranks.empty());
    const auto& marks = runs.front().ranks.front().marks;
    const bool has_warmup = std::any_of(
        marks.begin(), marks.end(), [](const trace::NvtxMark& m) {
            return m.epoch == 0 &&
                   m.kind == trace::NvtxMark::Kind::EpochStart;
        });
    ASSERT_TRUE(has_warmup) << "warm-up epoch missing from the trace";
    // The warm-up values are inflated 1.5x; aggregating *without* the
    // warm-up discard must therefore change the validation-step picture
    // only if discarding is broken - the train median stays pinned because
    // the single inflated step cannot move a 7-step median. Assert the
    // default pipeline (discard) hits the truth exactly.
    const double got = aggregated_oracle_value(oracle, 1, {});
    EXPECT_DOUBLE_EQ(got, oracle.truth_value(oracle.points[1]));
}

TEST(EvalOracle, SporadicKernelOnlyInFirstConfiguration) {
    const OracleCase oracle = find_case("linear");
    const auto first = materialize_config(oracle, 0, {});
    const auto later = materialize_config(oracle, 2, {});
    const auto has_sporadic = [](const profiling::ProfiledRun& run) {
        for (const auto& rank : run.ranks) {
            for (const auto& ev : rank.events) {
                if (ev.name == kSporadicKernel) {
                    return true;
                }
            }
        }
        return false;
    };
    EXPECT_TRUE(has_sporadic(first.front()));
    EXPECT_FALSE(has_sporadic(later.front()));
}

TEST(EvalOracle, MaterialisationIsDeterministicAndSeedSensitive) {
    const OracleCase oracle = find_case("quadratic");
    MaterializeOptions a;
    a.noise = 0.05;
    a.seed = 7;
    const double v1 = aggregated_oracle_value(oracle, 2, a);
    const double v2 = aggregated_oracle_value(oracle, 2, a);
    EXPECT_DOUBLE_EQ(v1, v2) << "same seed must reproduce bit-identically";
    MaterializeOptions b = a;
    b.seed = 8;
    EXPECT_NE(v1, aggregated_oracle_value(oracle, 2, b))
        << "noise must actually depend on the seed";
}

TEST(EvalOracle, NonPositiveTruthIsRejected) {
    OracleCase bad = find_case("linear");
    bad.truth = modeling::PerformanceModel(-10.0, {}, {"x1"});
    EXPECT_THROW(materialize_config(bad, 0, {}), InvalidArgumentError);
    EXPECT_THROW(materialize_config(bad, 99, {}), InvalidArgumentError)
        << "out-of-range config index";
}

// ---------------------------------------------------------------------------
// EDP round-trip

TEST(EvalOracle, EdpTreeRoundTripsThroughStrictParser) {
    const OracleCase oracle = find_case("log");
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "extradeep-test-eval-rt";
    std::filesystem::remove_all(dir);
    const auto paths = write_edp_tree(oracle, {}, dir.string());
    EXPECT_EQ(paths.size(),
              oracle.points.size() *
                  static_cast<std::size_t>(oracle.repetitions));
    const auto in_memory = materialize(oracle, {});
    std::size_t idx = 0;
    for (std::size_t c = 0; c < in_memory.size(); ++c) {
        for (const auto& expected : in_memory[c]) {
            // The strict single-argument overload throws on any defect.
            const profiling::ProfiledRun parsed =
                profiling::read_edp_file(paths[idx++]);
            EXPECT_EQ(parsed.params, expected.params);
            EXPECT_EQ(parsed.repetition, expected.repetition);
            ASSERT_EQ(parsed.ranks.size(), expected.ranks.size());
            for (std::size_t r = 0; r < expected.ranks.size(); ++r) {
                EXPECT_EQ(parsed.ranks[r].events.size(),
                          expected.ranks[r].events.size());
                EXPECT_EQ(parsed.ranks[r].marks.size(),
                          expected.ranks[r].marks.size());
            }
        }
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end scoring

TEST(EvalScorer, NoiseFreeLinearCaseScoresPerfectly) {
    const OracleCase oracle = find_case("linear");
    ScoreOptions options;
    options.noise = 0.0;
    const CaseScore s = score_case(oracle, options);
    EXPECT_TRUE(s.exact_recovery) << s.fitted_str;
    EXPECT_LT(s.smape_in_range, 1e-6);
    for (const double e : s.extrap_error) {
        EXPECT_LT(e, 1e-6);
    }
    EXPECT_DOUBLE_EQ(s.pi_coverage, 1.0);
    ASSERT_GE(s.cost_smape, 0.0) << "1-D case must score the cost model";
    // The truth cost for linear T is c*x + d*x^2, which a single-term PMNF
    // hypothesis cannot represent exactly even on noise-free data; ~0.6%
    // SMAPE is the model-class floor, so only gate against gross breakage.
    EXPECT_LT(s.cost_smape, 2.0);
    EXPECT_EQ(s.files_written,
              oracle.points.size() *
                  static_cast<std::size_t>(oracle.repetitions));
    EXPECT_EQ(s.configs_kept, oracle.points.size());
    EXPECT_GT(s.hypotheses_searched, 1);
}

TEST(EvalScorer, NoiseFreeMultiParamCaseRecoversBothExponents) {
    const OracleCase oracle = find_case("mp_additive");
    ScoreOptions options;
    const CaseScore s = score_case(oracle, options);
    EXPECT_TRUE(s.exact_recovery) << s.fitted_str;
    EXPECT_LT(s.smape_in_range, 1e-6);
    EXPECT_LT(s.cost_smape, 0.0)
        << "cost scoring is N/A for multi-parameter cases";
    EXPECT_EQ(s.configs_kept, oracle.points.size());
}

TEST(EvalScorer, ScoringIsDeterministicForFixedSeed) {
    const OracleCase oracle = find_case("log");
    ScoreOptions options;
    options.noise = 0.05;
    options.seed = 3;
    options.coverage_draws = 4;
    const CaseScore a = score_case(oracle, options);
    const CaseScore b = score_case(oracle, options);
    EXPECT_DOUBLE_EQ(a.smape_in_range, b.smape_in_range);
    EXPECT_DOUBLE_EQ(a.extrap_error[2], b.extrap_error[2]);
    EXPECT_DOUBLE_EQ(a.pi_coverage, b.pi_coverage);
}

TEST(EvalScorer, CaseWithoutPointsIsRejected) {
    OracleCase empty = find_case("linear");
    empty.points.clear();
    EXPECT_THROW(score_case(empty, {}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Report: records, JSON, table

CaseScore sample_score() {
    CaseScore s;
    s.case_name = "linear";
    s.noise = 0.05;
    s.seed = 1;
    s.exact_recovery = true;
    s.smape_in_range = 1.25;
    s.extrap_error[0] = 2.0;
    s.extrap_error[1] = 4.0;
    s.extrap_error[2] = 8.0;
    s.pi_coverage = 0.9;
    s.cost_smape = 1.5;
    s.fit_seconds = 0.01;
    s.hypotheses_searched = 54;
    s.hypotheses_per_sec = 5400.0;
    return s;
}

TEST(EvalReport, RecordsFollowTheStableSchemaOrder) {
    const auto records = to_records(sample_score());
    const std::vector<std::string> expected = {
        "exponent_recovery", "smape_in_range", "extrap_error_2x",
        "extrap_error_4x",   "extrap_error_8x", "pi_coverage",
        "cost_smape",        "fit_seconds",     "hypotheses_searched",
        "hypotheses_per_sec"};
    ASSERT_EQ(records.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(records[i].metric, expected[i]);
        EXPECT_EQ(records[i].case_name, "linear");
        EXPECT_DOUBLE_EQ(records[i].noise, 0.05);
    }
    EXPECT_DOUBLE_EQ(records[0].value, 1.0);
    EXPECT_DOUBLE_EQ(records[1].value, 1.25);
}

TEST(EvalReport, CostMetricOmittedWhenNotApplicable) {
    CaseScore s = sample_score();
    s.cost_smape = -1.0;
    const auto records = to_records(s);
    const bool has_cost = std::any_of(
        records.begin(), records.end(),
        [](const MetricRecord& r) { return r.metric == "cost_smape"; });
    EXPECT_FALSE(has_cost);
}

TEST(EvalReport, BenchJsonCarriesSchemaRevisionAndRecords) {
    const auto records = to_records(sample_score());
    const std::string json = bench_json(records, "abc1234");
    EXPECT_NE(json.find("\"schema\": \"extradeep-eval/1\""), std::string::npos);
    EXPECT_NE(json.find("\"git_rev\": \"abc1234\""), std::string::npos);
    EXPECT_NE(json.find("\"metric\": \"smape_in_range\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 1"), std::string::npos);
    // Non-finite values must be rejected, not silently serialised as 'nan'.
    std::vector<MetricRecord> bad = records;
    bad.front().value = std::nan("");
    EXPECT_THROW(bench_json(bad, "abc1234"), InvalidArgumentError);
}

TEST(EvalReport, RenderTableMentionsEveryCase) {
    const std::string table = render_table({sample_score()});
    EXPECT_NE(table.find("linear"), std::string::npos);
    EXPECT_NE(table.find("yes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thresholds: parsing

TEST(EvalGate, ParsesWellFormedThresholds) {
    const std::string doc = R"({
      "_comment": "ignored",
      "thresholds": [
        {"case": "*", "noise": 0.0, "metric": "exponent_recovery", "min": 1.0},
        {"metric": "smape_in_range", "max": 5.0}
      ]
    })";
    const auto rules = parse_thresholds(doc);
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].case_name, "*");
    EXPECT_DOUBLE_EQ(rules[0].noise, 0.0);
    ASSERT_TRUE(rules[0].min.has_value());
    EXPECT_DOUBLE_EQ(*rules[0].min, 1.0);
    EXPECT_FALSE(rules[0].max.has_value());
    // Omitted case/noise default to wildcards.
    EXPECT_EQ(rules[1].case_name, "*");
    EXPECT_DOUBLE_EQ(rules[1].noise, -1.0);
    ASSERT_TRUE(rules[1].max.has_value());
    EXPECT_DOUBLE_EQ(*rules[1].max, 5.0);
}

TEST(EvalGate, RejectsMalformedThresholdDocuments) {
    // Not JSON at all.
    EXPECT_THROW(parse_thresholds("not json"), ParseError);
    // Trailing garbage after the document.
    EXPECT_THROW(parse_thresholds("{\"thresholds\": []} extra"), ParseError);
    // Top level must be an object with a thresholds array.
    EXPECT_THROW(parse_thresholds("[]"), ParseError);
    EXPECT_THROW(parse_thresholds("{\"rules\": []}"), ParseError);
    // Empty rule list would disable the gate.
    EXPECT_THROW(parse_thresholds("{\"thresholds\": []}"), ParseError);
    // A rule without a metric is meaningless.
    EXPECT_THROW(
        parse_thresholds("{\"thresholds\": [{\"min\": 1.0}]}"), ParseError);
    // A rule without min or max checks nothing.
    EXPECT_THROW(
        parse_thresholds(
            "{\"thresholds\": [{\"metric\": \"pi_coverage\"}]}"),
        ParseError);
    // Type errors.
    EXPECT_THROW(
        parse_thresholds(
            "{\"thresholds\": [{\"metric\": \"m\", \"min\": \"low\"}]}"),
        ParseError);
}

// ---------------------------------------------------------------------------
// Thresholds: gate logic

std::vector<MetricRecord> sample_records() {
    return {
        {"linear", 0.0, "exponent_recovery", 1.0, 1},
        {"linear", 0.05, "smape_in_range", 2.5, 1},
        {"quadratic", 0.05, "smape_in_range", 4.0, 1},
        {"linear", 0.05, "pi_coverage", 0.85, 1},
    };
}

TEST(EvalGate, PassesWhenAllRulesHold) {
    std::vector<Threshold> rules(3);
    rules[0].metric = "exponent_recovery";
    rules[0].noise = 0.0;
    rules[0].min = 1.0;
    rules[1].metric = "smape_in_range";
    rules[1].noise = 0.05;
    rules[1].max = 5.0;
    rules[2].metric = "pi_coverage";
    rules[2].min = 0.6;  // noise wildcard (-1) matches any level
    const GateResult res = check_gate(sample_records(), rules);
    EXPECT_TRUE(res.pass) << (res.violations.empty()
                                  ? ""
                                  : res.violations.front());
    EXPECT_EQ(res.rules_checked, 3u);
    EXPECT_EQ(res.records_matched, 4u);  // 1 + 2 + 1
}

TEST(EvalGate, FlagsMinAndMaxViolations) {
    std::vector<Threshold> rules(2);
    rules[0].metric = "smape_in_range";
    rules[0].max = 3.0;  // quadratic's 4.0 breaches this
    rules[1].metric = "pi_coverage";
    rules[1].min = 0.9;  // 0.85 breaches this
    const GateResult res = check_gate(sample_records(), rules);
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.violations.size(), 2u);
    EXPECT_NE(res.violations[0].find("quadratic"), std::string::npos);
    EXPECT_NE(res.violations[1].find("pi_coverage"), std::string::npos);
}

TEST(EvalGate, CaseAndNoiseSelectorsNarrowTheMatch) {
    std::vector<Threshold> rules(1);
    rules[0].metric = "smape_in_range";
    rules[0].case_name = "linear";
    rules[0].noise = 0.05;
    rules[0].max = 3.0;  // quadratic's 4.0 must NOT trip this linear-only rule
    const GateResult res = check_gate(sample_records(), rules);
    EXPECT_TRUE(res.pass);
    EXPECT_EQ(res.records_matched, 1u);
}

TEST(EvalGate, UnmatchedRuleIsItselfAViolation) {
    // A renamed metric or removed case must not silently disable its gate.
    std::vector<Threshold> rules(1);
    rules[0].metric = "no_such_metric";
    rules[0].min = 0.0;
    const GateResult res = check_gate(sample_records(), rules);
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.violations.size(), 1u);
    EXPECT_NE(res.violations[0].find("matched no record"), std::string::npos);
}

TEST(EvalGate, ImpossibleThresholdsFixtureFailsTheGate) {
    // The fixture backing the WILL_FAIL ctest (eval_accuracy_gate_negative)
    // must stay unsatisfiable; if someone edits it into a passing document,
    // the negative test would silently stop proving anything.
    const auto rules = load_thresholds_file(
        std::string(EXTRADEEP_TEST_DATA_DIR) +
        "/eval_thresholds_impossible.json");
    const GateResult res = check_gate(sample_records(), rules);
    EXPECT_FALSE(res.pass);
    EXPECT_GE(res.violations.size(), 2u)
        << "expected both a breached max and an unmatched metric";
}

TEST(EvalGate, MissingThresholdsFileErrorsOut) {
    EXPECT_THROW(load_thresholds_file("/nonexistent/path/t.json"), Error);
}

}  // namespace
}  // namespace extradeep::eval
