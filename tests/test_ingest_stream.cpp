// Differential harness for out-of-core ingestion: streaming ingest
// (IngestOptions::streaming) must be *bit-identical* to the materialising
// path — same aggregates down to the last mantissa bit, same diagnostic
// sequence, same counts — on clean corpora, on every fault-injection
// mutator at several seeds, in strict and tolerant mode, at every thread
// count. Plus the memory-ceiling regression test: streaming a corpus of
// hundreds of MB must neither materialise any run (proven via
// ingest_counters) nor grow peak RSS by more than a fixed budget.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "extradeep/ingest.hpp"
#include "fault_injection.hpp"
#include "profiling/edp_io.hpp"

using namespace extradeep;
using profiling::ProfiledRun;

namespace {

// The sanitizers' shadow memory and quarantines make RSS accounting
// meaningless and everything ~10x slower, so the ceiling test shrinks its
// corpus and skips the RSS assertion under ASan (the which-path-ran proof
// via ingest_counters still runs).
#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Self-cleaning scratch directory for corpus files.
struct TempDir {
    std::string path;
    TempDir() {
        char tmpl[] = "/tmp/extradeep-stream-test-XXXXXX";
        if (mkdtemp(tmpl) == nullptr) {
            throw Error("mkdtemp failed");
        }
        path = tmpl;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string file(const std::string& name) const {
        return path + "/" + name;
    }
};

void write_text(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << path;
    out << text;
}

std::string edp_text(const ProfiledRun& run) {
    std::ostringstream os;
    profiling::write_edp(os, run);
    return os.str();
}

/// A small coherent corpus: `configs` measurement points (x1 = 2, 4, ...)
/// with `reps` repetitions each, one file per run, deterministic from
/// `seed`. Returns the paths in an interleaved (non-grouped) order so
/// grouping is exercised too.
std::vector<std::string> write_corpus(const TempDir& dir, std::uint64_t seed,
                                      int configs = 2, int reps = 2) {
    Rng rng(seed);
    std::vector<std::string> paths;
    for (int rep = 0; rep < reps; ++rep) {
        for (int c = 0; c < configs; ++c) {
            const double x1 = 2.0 * (c + 1);
            const ProfiledRun run =
                edpfuzz::coherent_run(rng, {{"x1", x1}}, rep, 2);
            const std::string path =
                dir.file("c" + std::to_string(c) + "_r" + std::to_string(rep) +
                         ".edp");
            write_text(path, edp_text(run));
            paths.push_back(path);
        }
    }
    return paths;
}

void expect_bits(double a, double b, const std::string& what) {
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << what << ": " << a << " vs " << b;
}

void expect_params_identical(const std::map<std::string, double>& a,
                             const std::map<std::string, double>& b) {
    ASSERT_EQ(a.size(), b.size());
    auto ia = a.begin();
    auto ib = b.begin();
    for (; ia != a.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        expect_bits(ia->second, ib->second, "param " + ia->first);
    }
}

void expect_diagnostics_identical(const DiagnosticLog& a,
                                  const DiagnosticLog& b) {
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.count(Severity::Info), b.count(Severity::Info));
    EXPECT_EQ(a.count(Severity::Warning), b.count(Severity::Warning));
    EXPECT_EQ(a.count(Severity::Error), b.count(Severity::Error));
    ASSERT_EQ(a.entries().size(), b.entries().size());
    for (std::size_t i = 0; i < a.entries().size(); ++i) {
        const Diagnostic& da = a.entries()[i];
        const Diagnostic& db = b.entries()[i];
        EXPECT_EQ(da.severity, db.severity) << "diag " << i;
        EXPECT_EQ(da.line, db.line) << "diag " << i;
        EXPECT_EQ(da.rank, db.rank) << "diag " << i;
        EXPECT_EQ(da.reason, db.reason) << "diag " << i;
    }
}

/// The differential core: every field of the two ingest results, bitwise.
void expect_results_identical(const IngestResult& a, const IngestResult& b) {
    EXPECT_EQ(a.runs_total, b.runs_total);
    EXPECT_EQ(a.runs_kept, b.runs_kept);
    EXPECT_EQ(a.configs_total, b.configs_total);
    EXPECT_EQ(a.configs_kept, b.configs_kept);
    EXPECT_EQ(a.summary(), b.summary());
    expect_diagnostics_identical(a.diagnostics, b.diagnostics);

    EXPECT_EQ(a.data.primary_parameter(), b.data.primary_parameter());
    ASSERT_EQ(a.data.configs().size(), b.data.configs().size());
    for (std::size_t c = 0; c < a.data.configs().size(); ++c) {
        const auto& ca = a.data.configs()[c];
        const auto& cb = b.data.configs()[c];
        const std::string where = "config " + std::to_string(c);
        expect_params_identical(ca.params, cb.params);
        EXPECT_EQ(ca.repetitions, cb.repetitions) << where;
        ASSERT_EQ(ca.kernels.size(), cb.kernels.size()) << where;
        for (std::size_t k = 0; k < ca.kernels.size(); ++k) {
            const auto& ka = ca.kernels[k];
            const auto& kb = cb.kernels[k];
            const std::string kw = where + " kernel " + ka.name;
            EXPECT_EQ(ka.name, kb.name) << where;
            EXPECT_EQ(ka.category, kb.category) << kw;
            EXPECT_EQ(ka.ranks_seen, kb.ranks_seen) << kw;
            EXPECT_EQ(ka.reps_seen, kb.reps_seen) << kw;
            for (int m = 0; m < aggregation::kMetricCount; ++m) {
                expect_bits(ka.train[m], kb.train[m], kw + " train");
                expect_bits(ka.val[m], kb.val[m], kw + " val");
            }
        }
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            for (int m = 0; m < aggregation::kMetricCount; ++m) {
                expect_bits(ca.phase_train[p][m], cb.phase_train[p][m],
                            where + " phase_train");
                expect_bits(ca.phase_val[p][m], cb.phase_val[p][m],
                            where + " phase_val");
            }
        }
    }
}

IngestResult ingest(const std::vector<std::string>& paths, bool streaming,
                    int threads = 1,
                    ParseMode mode = ParseMode::Tolerant) {
    IngestOptions options;
    options.mode = mode;
    options.streaming = streaming;
    options.num_threads = threads;
    return ingest_edp_files(paths, options);
}

double peak_rss_mb() {
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

}  // namespace

TEST(StreamDifferential, CleanMultiConfigCorpus) {
    const TempDir dir;
    const auto paths = write_corpus(dir, 42, 3, 3);
    const IngestResult mat = ingest(paths, false);
    const IngestResult stream = ingest(paths, true);
    EXPECT_GT(mat.configs_kept, 0u);
    expect_results_identical(mat, stream);
}

TEST(StreamDifferential, EveryMutatorEverySeed) {
    // One corpus file gets mutated per (mutator, seed); the others stay
    // clean, so recovery around a poisoned file is compared too.
    for (const auto& [name, mutate] : edpfuzz::mutators()) {
        for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
            SCOPED_TRACE(name + " seed " + std::to_string(seed));
            const TempDir dir;
            auto paths = write_corpus(dir, seed);
            // Deterministically pick and corrupt one file.
            Rng rng(seed * 977 + 13);
            const std::size_t victim =
                static_cast<std::size_t>(rng.next_u64() % paths.size());
            std::ifstream in(paths[victim], std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            in.close();
            write_text(paths[victim], mutate(buf.str(), rng));

            const IngestResult mat = ingest(paths, false);
            const IngestResult stream = ingest(paths, true);
            expect_results_identical(mat, stream);
        }
    }
}

TEST(StreamDifferential, StackedRandomMutations) {
    // Multiple mutators stacked on multiple files: deep corruption, where
    // tolerant recovery produces long diagnostic transcripts. The streaming
    // transcript must match entry for entry.
    for (const std::uint64_t seed : {10u, 20u, 30u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const TempDir dir;
        auto paths = write_corpus(dir, seed, 2, 3);
        Rng rng(seed);
        for (std::size_t i = 0; i < paths.size(); i += 2) {
            std::ifstream in(paths[i], std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            in.close();
            write_text(paths[i], edpfuzz::apply_random_mutations(
                                     buf.str(), rng, 3));
        }
        const IngestResult mat = ingest(paths, false);
        const IngestResult stream = ingest(paths, true);
        expect_results_identical(mat, stream);
    }
}

TEST(StreamDifferential, StrictModeThrowsIdentically) {
    for (const auto& [name, mutate] : edpfuzz::mutators()) {
        for (const std::uint64_t seed : {5u, 6u}) {
            SCOPED_TRACE(name + " seed " + std::to_string(seed));
            const TempDir dir;
            auto paths = write_corpus(dir, seed);
            Rng rng(seed * 31 + 7);
            std::ifstream in(paths[0], std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            in.close();
            write_text(paths[0], mutate(buf.str(), rng));

            std::string mat_error = "(no throw)";
            std::string stream_error = "(no throw)";
            try {
                ingest(paths, false, 1, ParseMode::Strict);
            } catch (const Error& e) {
                mat_error = e.what();
            }
            try {
                ingest(paths, true, 1, ParseMode::Strict);
            } catch (const Error& e) {
                stream_error = e.what();
            }
            EXPECT_EQ(mat_error, stream_error);
        }
    }
}

TEST(StreamDifferential, ThreadCountsAllBitIdentical) {
    // Both paths, three thread counts, one mutated file: all six results
    // must equal the single-threaded materialising reference.
    const TempDir dir;
    auto paths = write_corpus(dir, 77, 3, 2);
    Rng rng(99);
    std::ifstream in(paths[2], std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();
    write_text(paths[2], edpfuzz::corrupt_number(buf.str(), rng));

    const IngestResult reference = ingest(paths, false, 1);
    for (const bool streaming : {false, true}) {
        for (const int threads : {2, 4}) {
            SCOPED_TRACE(std::string(streaming ? "stream" : "mat") +
                         " threads " + std::to_string(threads));
            expect_results_identical(reference,
                                     ingest(paths, streaming, threads));
        }
    }
    expect_results_identical(reference, ingest(paths, true, 1));
}

TEST(StreamDifferential, IngestRunsInMemoryEquivalence) {
    // The streaming flag also covers pre-grouped in-memory runs (no
    // materialising copies of kept runs); results must match, including a
    // dropped repetition.
    Rng rng(8);
    std::vector<std::vector<ProfiledRun>> configs;
    for (const double x1 : {2.0, 4.0, 8.0}) {
        std::vector<ProfiledRun> reps;
        for (int rep = 0; rep < 3; ++rep) {
            reps.push_back(edpfuzz::coherent_run(rng, {{"x1", x1}}, rep, 2));
        }
        configs.push_back(std::move(reps));
    }
    configs[1][2].ranks.clear();  // dropped by validation in both paths

    IngestOptions options;
    const IngestResult mat = ingest_runs(configs, options);
    options.streaming = true;
    const IngestResult stream = ingest_runs(configs, options);
    EXPECT_EQ(mat.runs_kept, 8u);
    expect_results_identical(mat, stream);
}

namespace {

/// Writes a large single-configuration EDP file by amplifying one coherent
/// rank: `n_ranks` copies of the rank block (distinct rank ids), each event
/// line repeated `event_repeat` times. Streams straight to disk, so
/// generation itself needs O(one small run) memory.
std::uintmax_t write_amplified_file(const std::string& path,
                                    std::uint64_t seed, int repetition,
                                    int n_ranks, int event_repeat) {
    Rng rng(seed);
    const ProfiledRun base =
        edpfuzz::coherent_run(rng, {{"x1", 8.0}}, repetition, 1);
    const std::string text = edp_text(base);

    // Split into header lines / first rank block lines / END.
    std::vector<std::string> header;
    std::vector<std::string> block;
    std::istringstream is(text);
    std::string line;
    bool in_block = false;
    while (std::getline(is, line)) {
        if (line.rfind("RANK\t", 0) == 0) {
            in_block = true;
            continue;  // re-emitted per amplified rank below
        }
        if (line == "END") {
            break;
        }
        (in_block ? block : header).push_back(line);
    }

    std::ofstream out(path, std::ios::binary);
    for (const auto& h : header) {
        out << h << "\n";
    }
    for (int r = 0; r < n_ranks; ++r) {
        out << "RANK\t" << r << "\n";
        for (const auto& b : block) {
            const int repeat = b.rfind("E\t", 0) == 0 ? event_repeat : 1;
            for (int i = 0; i < repeat; ++i) {
                out << b << "\n";
            }
        }
    }
    out << "END\n";
    out.close();
    return std::filesystem::file_size(path);
}

}  // namespace

TEST(StreamMemoryCeiling, LargeCorpusStaysUnderBudget) {
    // Corpus: 3 repetitions of one configuration, amplified to hundreds of
    // MB total (a few MB under sanitizers). Streaming ingest must (a) never
    // take the materialising path — proven by the process-wide counters —
    // and (b) keep its peak-RSS growth bounded by the largest rank block,
    // orders of magnitude below the corpus size.
    const int n_ranks = kSanitized ? 4 : 24;
    const int event_repeat = kSanitized ? 40 : 3200;
    const TempDir dir;
    std::vector<std::string> paths;
    std::uintmax_t total_bytes = 0;
    for (int rep = 0; rep < 3; ++rep) {
        const std::string path = dir.file("big_r" + std::to_string(rep) +
                                          ".edp");
        total_bytes +=
            write_amplified_file(path, 1000 + rep, rep, n_ranks, event_repeat);
        paths.push_back(path);
    }
    const double total_mb =
        static_cast<double>(total_bytes) / (1024.0 * 1024.0);
    if (!kSanitized) {
        ASSERT_GE(total_mb, 200.0)
            << "corpus too small to prove an out-of-core ceiling";
    }

    const IngestCounters before = ingest_counters();
    const double rss_before = peak_rss_mb();
    const IngestResult result = ingest(paths, true);
    const double rss_delta = peak_rss_mb() - rss_before;
    const IngestCounters after = ingest_counters();

    EXPECT_EQ(result.configs_kept, 1u);
    EXPECT_EQ(result.runs_kept, 3u);
    EXPECT_TRUE(result.diagnostics.empty()) << result.summary();

    // The materialising path must not have run: every file was digested by
    // the streaming reader, none was parsed into an in-memory ProfiledRun.
    EXPECT_EQ(after.files_streamed - before.files_streamed, paths.size());
    EXPECT_EQ(after.runs_materialized - before.runs_materialized, 0u);

    if (!kSanitized) {
        // Hard ceiling: far below both the corpus (> 200 MB) and what
        // materialising even a single repetition would need. The budget has
        // ~10x headroom over the observed ~6 MB rank-block working set.
        EXPECT_LE(rss_delta, 64.0)
            << "streaming ingest peak-RSS delta " << rss_delta
            << " MB over a " << total_mb << " MB corpus";
    }
}
