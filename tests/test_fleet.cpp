// Tests of the continuous-modeling fleet subsystem (src/fleet): drift
// injection, spool-directory scanning and its crash-consistency contract,
// the ingest pipeline behind the `ingest` verb, debounced refit dispatch,
// the generation-ordered stale-fit guard around the atomic export + hot
// swap, and the fleet/registry metrics exposition.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/continuous.hpp"
#include "fleet/spool.hpp"
#include "obs/clock.hpp"
#include "profiling/edp_io.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"
#include "serve/serialize.hpp"
#include "sim/drift.hpp"

using namespace extradeep;

namespace {

namespace fs = std::filesystem;

/// Small, fast experiment template shared across the suite.
const ExperimentSpec& test_spec() {
    static const ExperimentSpec spec = [] {
        ExperimentSpec s;
        s.repetitions = 1;
        s.seed = 11;
        return s;
    }();
    return spec;
}

/// One profiled run of `ranks`, as raw EDP bytes (what a collector pushes).
std::string run_edp_bytes(int ranks, int rep,
                          const ExperimentSpec& spec = test_spec()) {
    const ExperimentRunner runner(spec);
    const sim::TrainingSimulator simulator(runner.workload_for(ranks));
    const profiling::Profiler profiler(spec.sampling);
    const profiling::ProfiledRun run = profiler.profile(
        simulator, {{"x1", static_cast<double>(ranks)}}, rep, spec.seed);
    std::ostringstream os;
    profiling::write_edp(os, run);
    return os.str();
}

const std::vector<int>& modeling_ranks() {
    static const std::vector<int> ranks = {2, 4, 6, 8, 10};
    return ranks;
}

fs::path fresh_dir(const std::string& tag) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("fleet-" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void write_file(const fs::path& path, const std::string& bytes) {
    std::ofstream os(path, std::ios::binary);
    os << bytes;
    ASSERT_TRUE(os.good()) << path;
}

std::string read_file(const fs::path& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Service + registry over fresh directories, push-only unless a spool dir
/// is given.
struct Fixture {
    std::shared_ptr<serve::ModelRegistry> registry;
    std::shared_ptr<fleet::FleetService> service;
    fs::path models;

    explicit Fixture(const std::string& tag, fleet::FleetOptions opts = {}) {
        models = fresh_dir(tag + "-models");
        opts.models_dir = models.string();
        opts.spec = test_spec();
        registry = std::make_shared<serve::ModelRegistry>();
        service = std::make_shared<fleet::FleetService>(opts, registry);
    }
};

std::string ingest_ok(fleet::FleetService& service, const std::string& name,
                      const std::string& edp) {
    return service.handle_ingest(name, serve::escape_lines(edp));
}

}  // namespace

// ---------------------------------------------------------------------------
// Drift injection (src/sim/drift)

TEST(Drift, ParseGrammar) {
    EXPECT_EQ(sim::parse_drift("none").kind, sim::DriftKind::None);

    const sim::DriftSpec hw = sim::parse_drift("hw:2");
    EXPECT_EQ(hw.kind, sim::DriftKind::HardwareDegrade);
    EXPECT_DOUBLE_EQ(hw.severity, 2.0);
    EXPECT_EQ(hw.onset_run, 0);

    const sim::DriftSpec sw = sim::parse_drift("sw:1.5@12");
    EXPECT_EQ(sw.kind, sim::DriftKind::SoftwareRegression);
    EXPECT_DOUBLE_EQ(sw.severity, 1.5);
    EXPECT_EQ(sw.onset_run, 12);
    EXPECT_FALSE(sw.active_at(11));
    EXPECT_TRUE(sw.active_at(12));

    EXPECT_THROW(sim::parse_drift(""), InvalidArgumentError);
    EXPECT_THROW(sim::parse_drift("xx:2"), InvalidArgumentError);
    EXPECT_THROW(sim::parse_drift("hw:"), InvalidArgumentError);
    EXPECT_THROW(sim::parse_drift("hw:0.5"), InvalidArgumentError);
    EXPECT_THROW(sim::parse_drift("hw:2@-1"), InvalidArgumentError);
}

TEST(Drift, HardwareDegradeHitsInterconnectOnly) {
    const hw::SystemSpec base = test_spec().system;
    const hw::SystemSpec out =
        sim::apply_drift(base, {sim::DriftKind::HardwareDegrade, 2.0, 0});
    EXPECT_DOUBLE_EQ(out.inter_node.bandwidth_gbs,
                     base.inter_node.bandwidth_gbs / 2.0);
    EXPECT_DOUBLE_EQ(out.inter_node.latency_s, base.inter_node.latency_s * 2.0);
    EXPECT_DOUBLE_EQ(out.intra_node.bandwidth_gbs,
                     base.intra_node.bandwidth_gbs / 2.0);
    EXPECT_DOUBLE_EQ(out.intra_node.latency_s, base.intra_node.latency_s * 2.0);
    EXPECT_DOUBLE_EQ(out.gpu.peak_fp32_tflops, base.gpu.peak_fp32_tflops);
    EXPECT_DOUBLE_EQ(out.gpu.mem_bandwidth_gbs, base.gpu.mem_bandwidth_gbs);
}

TEST(Drift, SoftwareRegressionHitsComputeOnly) {
    const hw::SystemSpec base = test_spec().system;
    const hw::SystemSpec out =
        sim::apply_drift(base, {sim::DriftKind::SoftwareRegression, 1.5, 0});
    EXPECT_DOUBLE_EQ(out.gpu.peak_fp32_tflops,
                     base.gpu.peak_fp32_tflops / 1.5);
    EXPECT_DOUBLE_EQ(out.gpu.mem_bandwidth_gbs,
                     base.gpu.mem_bandwidth_gbs / 1.5);
    EXPECT_DOUBLE_EQ(out.gpu.kernel_launch_overhead_s,
                     base.gpu.kernel_launch_overhead_s * 1.5);
    EXPECT_DOUBLE_EQ(out.inter_node.bandwidth_gbs,
                     base.inter_node.bandwidth_gbs);
}

TEST(Drift, IdentityForNoneAndSeverityOne) {
    const hw::SystemSpec base = test_spec().system;
    const hw::SystemSpec none = sim::apply_drift(base, {});
    EXPECT_DOUBLE_EQ(none.inter_node.bandwidth_gbs,
                     base.inter_node.bandwidth_gbs);
    const hw::SystemSpec one =
        sim::apply_drift(base, {sim::DriftKind::HardwareDegrade, 1.0, 0});
    EXPECT_DOUBLE_EQ(one.inter_node.bandwidth_gbs,
                     base.inter_node.bandwidth_gbs);
}

// ---------------------------------------------------------------------------
// Experiment-name contract

TEST(ExperimentName, Alphabet) {
    EXPECT_TRUE(fleet::valid_experiment_name("a"));
    EXPECT_TRUE(fleet::valid_experiment_name("exp-1.v2_x"));
    EXPECT_TRUE(fleet::valid_experiment_name(std::string(128, 'a')));
    EXPECT_FALSE(fleet::valid_experiment_name(""));
    EXPECT_FALSE(fleet::valid_experiment_name(std::string(129, 'a')));
    EXPECT_FALSE(fleet::valid_experiment_name("bad/name"));
    EXPECT_FALSE(fleet::valid_experiment_name("a b"));
    EXPECT_FALSE(fleet::valid_experiment_name("dollar$"));
}

// ---------------------------------------------------------------------------
// Spool scanner

TEST(SpoolScanner, OrdersSkipsAndRemembers) {
    const fs::path spool = fresh_dir("scan");
    fs::create_directories(spool / "exp-b");
    fs::create_directories(spool / "exp-a");
    fs::create_directories(spool / "bad$name");
    write_file(spool / "exp-b" / "run2.edp", "b2");
    write_file(spool / "exp-a" / "run1.edp", "a1");
    write_file(spool / "exp-a" / ".hidden.edp", "dot");
    write_file(spool / "exp-a" / "run0.tmp", "incomplete");
    write_file(spool / "stray.edp", "top-level");
    write_file(spool / "bad$name" / "x.edp", "bad");

    fleet::SpoolScanner scanner(spool.string());
    const auto first = scanner.scan();
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first[0].experiment, "exp-a");
    EXPECT_EQ(fs::path(first[0].path).filename(), "run1.edp");
    EXPECT_EQ(first[1].experiment, "exp-b");
    EXPECT_EQ(fs::path(first[1].path).filename(), "run2.edp");
    EXPECT_GE(scanner.skipped(), 2u);  // stray.edp + bad$name

    // Already-seen files are never handed out again.
    EXPECT_TRUE(scanner.scan().empty());

    // The crash-consistency contract: a *.tmp file becomes visible only
    // after its atomic rename into a .edp name.
    fs::rename(spool / "exp-a" / "run0.tmp", spool / "exp-a" / "run0.edp");
    const auto second = scanner.scan();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(fs::path(second[0].path).filename(), "run0.edp");

    // A restarted daemon (fresh scanner) re-discovers the full spool in the
    // same deterministic order - the crash-recovery story.
    fleet::SpoolScanner restarted(spool.string());
    const auto replay = restarted.scan();
    ASSERT_EQ(replay.size(), 3u);
    EXPECT_EQ(fs::path(replay[0].path).filename(), "run0.edp");
    EXPECT_EQ(fs::path(replay[1].path).filename(), "run1.edp");
    EXPECT_EQ(fs::path(replay[2].path).filename(), "run2.edp");
}

TEST(SpoolScanner, MissingDirectoryYieldsNothing) {
    fleet::SpoolScanner scanner(
        (fs::path(::testing::TempDir()) / "fleet-no-such-dir").string());
    EXPECT_TRUE(scanner.scan().empty());
    EXPECT_EQ(scanner.skipped(), 0u);
}

// ---------------------------------------------------------------------------
// FleetService: options validation

TEST(FleetService, RejectsBadOptions) {
    const auto registry = std::make_shared<serve::ModelRegistry>();
    fleet::FleetOptions opts;
    opts.spec = test_spec();

    EXPECT_THROW(fleet::FleetService(opts, registry),
                 InvalidArgumentError);  // empty models_dir

    opts.models_dir = fresh_dir("opts").string();
    EXPECT_THROW(fleet::FleetService(opts, nullptr), InvalidArgumentError);

    fleet::FleetOptions bad = opts;
    bad.min_runs = 0;
    EXPECT_THROW(fleet::FleetService(bad, registry), InvalidArgumentError);
    bad = opts;
    bad.window = 0;
    EXPECT_THROW(fleet::FleetService(bad, registry), InvalidArgumentError);
    bad = opts;
    bad.max_pending = bad.min_runs - 1;
    EXPECT_THROW(fleet::FleetService(bad, registry), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Ingest -> refit -> hot swap, end to end in-process

TEST(FleetService, IngestRefitServe) {
    Fixture fx("serve");
    for (const int r : modeling_ranks()) {
        const std::string response =
            ingest_ok(*fx.service, "demo", run_edp_bytes(r, 0));
        EXPECT_EQ(response.rfind("accepted=1 experiment=demo", 0), 0u)
            << response;
    }
    fx.service->drain();

    const fleet::FleetStats stats = fx.service->stats();
    EXPECT_EQ(stats.accepted, modeling_ranks().size());
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_GE(stats.refits, 1u);
    EXPECT_GE(stats.swaps, 1u);
    EXPECT_EQ(stats.staleness_runs, 0u);

    // The export landed atomically and the registry hot-swapped it in.
    EXPECT_TRUE(fs::exists(fx.models / "demo.edpm"));
    EXPECT_NE(fx.registry->find("demo"), nullptr);

    // And it is servable through the ordinary query engine.
    serve::QueryEngine engine(fx.registry);
    EXPECT_EQ(engine.execute("predict demo 10").substr(0, 5), "ok t=");
}

TEST(FleetService, RestartServesPreviousExports) {
    Fixture fx("restart");
    for (const int r : modeling_ranks()) {
        ingest_ok(*fx.service, "persisted", run_edp_bytes(r, 0));
    }
    fx.service->drain();
    ASSERT_TRUE(fs::exists(fx.models / "persisted.edpm"));

    // A second service over the same models_dir (the restarted daemon)
    // serves the previous export before any run arrives.
    const auto registry2 = std::make_shared<serve::ModelRegistry>();
    fleet::FleetOptions opts;
    opts.models_dir = fx.models.string();
    opts.spec = test_spec();
    const auto service2 =
        std::make_shared<fleet::FleetService>(opts, registry2);
    EXPECT_NE(registry2->find("persisted"), nullptr);
}

TEST(FleetService, FewerThanMinimumConfigsSkipsRefit) {
    Fixture fx("skip");
    // Two distinct x1 values < kMinModelingPoints: the fit must be skipped,
    // not attempted-and-failed.
    ingest_ok(*fx.service, "thin", run_edp_bytes(2, 0));
    ingest_ok(*fx.service, "thin", run_edp_bytes(4, 0));
    fx.service->drain();
    const fleet::FleetStats stats = fx.service->stats();
    EXPECT_EQ(stats.refits, 0u);
    EXPECT_GE(stats.refits_skipped, 1u);
    EXPECT_EQ(stats.refit_failures, 0u);
    EXPECT_FALSE(fs::exists(fx.models / "thin.edpm"));
}

// ---------------------------------------------------------------------------
// Quarantine: corrupt input never perturbs the aggregate or the models

TEST(FleetService, QuarantineNeverPoisons) {
    Fixture fx("quarantine");
    for (const int r : modeling_ranks()) {
        ingest_ok(*fx.service, "guarded", run_edp_bytes(r, 0));
    }
    fx.service->drain();
    const std::string bytes_before = read_file(fx.models / "guarded.edpm");
    ASSERT_FALSE(bytes_before.empty());

    const std::string good = run_edp_bytes(6, 1);
    const std::vector<std::string> corrupt = {
        good.substr(0, good.size() / 2),        // truncated
        "EDP\t9" + good.substr(good.find('\n')),  // wrong version
        "not an edp payload at all",            // garbage
    };
    for (const std::string& payload : corrupt) {
        EXPECT_THROW(ingest_ok(*fx.service, "guarded", payload), Error);
    }
    // Mismatched parameter vector against an existing configuration.
    ExperimentSpec other = test_spec();
    other.seed = 99;
    const ExperimentRunner runner(other);
    const sim::TrainingSimulator simulator(runner.workload_for(6));
    const profiling::Profiler profiler(other.sampling);
    const profiling::ProfiledRun mismatched =
        profiler.profile(simulator, {{"x2", 6.0}}, 0, other.seed);
    std::ostringstream os;
    profiling::write_edp(os, mismatched);
    EXPECT_THROW(ingest_ok(*fx.service, "guarded", os.str()), Error);

    fx.service->drain();
    const fleet::FleetStats stats = fx.service->stats();
    EXPECT_EQ(stats.quarantined, corrupt.size() + 1);
    EXPECT_EQ(stats.accepted, modeling_ranks().size());
    EXPECT_EQ(read_file(fx.models / "guarded.edpm"), bytes_before);

    // The loop survives: a subsequent good run is still accepted.
    EXPECT_EQ(ingest_ok(*fx.service, "guarded", good)
                  .rfind("accepted=1", 0),
              0u);
}

TEST(FleetService, RejectsBadNamesAndOversizedPayloads) {
    fleet::FleetOptions opts;
    opts.max_payload_bytes = 64;
    Fixture fx("limits", opts);
    EXPECT_THROW(fx.service->handle_ingest("bad/name", "x"), Error);
    EXPECT_THROW(
        fx.service->handle_ingest("demo", std::string(65, 'x')), Error);
    EXPECT_EQ(fx.service->stats().accepted, 0u);
}

// ---------------------------------------------------------------------------
// Debounce policy (deterministic via FakeClock)

TEST(FleetService, DebounceMinRunsAndQuiescence) {
    obs::FakeClock clock(1'000'000'000, 0);
    fleet::FleetOptions opts;
    opts.min_runs = 3;
    opts.quiescence_ns = 1'000'000'000;  // 1s, advanced manually
    opts.clock = &clock;
    Fixture fx("debounce", opts);

    // Below min_runs and inside the quiescence window: nothing dispatches.
    ingest_ok(*fx.service, "d", run_edp_bytes(2, 0));
    ingest_ok(*fx.service, "d", run_edp_bytes(4, 0));
    EXPECT_EQ(fx.service->poll_once(), 0);

    // Third run reaches min_runs: exactly one job dispatches.
    ingest_ok(*fx.service, "d", run_edp_bytes(6, 0));
    EXPECT_EQ(fx.service->poll_once(), 1);
    fx.service->drain();

    // A single new run dispatches only after it waits out the quiescence
    // window with no newer arrival.
    ingest_ok(*fx.service, "d", run_edp_bytes(8, 0));
    EXPECT_EQ(fx.service->poll_once(), 0);
    clock.advance(2'000'000'000);
    EXPECT_EQ(fx.service->poll_once(), 1);
    fx.service->drain();

    // With only 4 distinct x1 values (< kMinModelingPoints) both jobs are
    // skipped rather than fitted, so nothing installs and the staleness
    // gauge honestly reports every accepted run as not-yet-served.
    const fleet::FleetStats stats = fx.service->stats();
    EXPECT_GE(stats.refits_skipped, 2u);
    EXPECT_EQ(stats.refits, 0u);
    EXPECT_EQ(stats.staleness_runs, stats.accepted);
}

// ---------------------------------------------------------------------------
// Stale-fit guard: generation-ordered installs

TEST(FleetService, StaleFitNeverOverwritesNewerModel) {
    Fixture fx("stale");
    const ExperimentResult result = ExperimentRunner(test_spec()).run();
    const serve::ServableModel newer =
        serve::make_servable(test_spec(), result, "gen");
    EXPECT_TRUE(fx.service->install_model("gen", 2, newer));
    const std::string installed_bytes = read_file(fx.models / "gen.edpm");

    // An older fit finishing late must be discarded, byte for byte.
    const serve::ServableModel older =
        serve::make_servable(test_spec(), result, "gen");
    EXPECT_FALSE(fx.service->install_model("gen", 1, older));
    EXPECT_FALSE(fx.service->install_model("gen", 2, older));  // ties lose
    EXPECT_EQ(fx.service->stats().stale_discarded, 2u);
    EXPECT_EQ(read_file(fx.models / "gen.edpm"), installed_bytes);

    // A genuinely newer generation still installs.
    EXPECT_TRUE(fx.service->install_model("gen", 3, newer));
    EXPECT_EQ(fx.service->stats().swaps, 2u);
    EXPECT_NE(fx.registry->find("gen"), nullptr);
}

// ---------------------------------------------------------------------------
// Spool ingestion through poll_once

TEST(FleetService, SpoolPickupToServable) {
    const fs::path spool = fresh_dir("spoolsvc");
    fleet::FleetOptions opts;
    opts.spool_dir = spool.string();
    opts.min_runs = static_cast<int>(modeling_ranks().size());
    Fixture fx("spoolsvc-m", opts);

    fs::create_directories(spool / "spooled");
    int seq = 0;
    for (const int r : modeling_ranks()) {
        // The writer half of the crash-consistency contract: tmp + rename.
        const fs::path tmp =
            spool / "spooled" / ("run" + std::to_string(seq) + ".tmp");
        const fs::path dst =
            spool / "spooled" / ("run" + std::to_string(seq) + ".edp");
        write_file(tmp, run_edp_bytes(r, 0));
        fs::rename(tmp, dst);
        ++seq;
    }
    EXPECT_EQ(fx.service->poll_once(), 1);  // scan ingests, min_runs met
    fx.service->drain();

    const fleet::FleetStats stats = fx.service->stats();
    EXPECT_EQ(stats.spool_files, modeling_ranks().size());
    EXPECT_EQ(stats.accepted, modeling_ranks().size());
    EXPECT_NE(fx.registry->find("spooled"), nullptr);

    // A corrupt spool file is quarantined without killing the loop.
    write_file(spool / "spooled" / "bad.edp", "garbage");
    fx.service->poll_once();
    EXPECT_EQ(fx.service->stats().quarantined, 1u);
}

// ---------------------------------------------------------------------------
// Engine integration: verbs, err-line mapping, metrics exposition

TEST(FleetEngine, VerbsRequireHandler) {
    const auto registry = std::make_shared<serve::ModelRegistry>();
    serve::QueryEngine engine(registry);
    EXPECT_EQ(engine.execute("ingest demo payload"),
              "err fleet mode disabled");
    EXPECT_EQ(engine.execute("fleet-stats"), "err fleet mode disabled");
}

TEST(FleetEngine, ErrLineMappingAndStats) {
    Fixture fx("engine");
    serve::QueryEngine engine(fx.registry);
    engine.set_fleet_handler(fx.service);
    EXPECT_THROW(engine.set_fleet_handler(fx.service), Error);

    // Usage errors and quarantines map to single err lines; the engine
    // stays alive throughout.
    EXPECT_EQ(engine.execute("ingest").substr(0, 4), "err ");
    EXPECT_EQ(engine.execute("ingest onlyname").substr(0, 4), "err ");
    const std::string corrupt =
        engine.execute("ingest demo " + serve::escape_lines("garbage"));
    EXPECT_EQ(corrupt.substr(0, 4), "err ");
    EXPECT_NE(corrupt.find("quarantined"), std::string::npos) << corrupt;
    EXPECT_EQ(engine.execute("ping"), "ok pong");

    // Good pushes through the verb; fleet-stats reflects them.
    for (const int r : modeling_ranks()) {
        const std::string response = engine.execute(
            "ingest demo " + serve::escape_lines(run_edp_bytes(r, 0)));
        EXPECT_EQ(response.substr(0, 3), "ok ") << response;
    }
    fx.service->drain();
    const std::string stats = engine.execute("fleet-stats");
    EXPECT_EQ(stats.substr(0, 3), "ok ");
    EXPECT_NE(stats.find("accepted=5"), std::string::npos) << stats;
    EXPECT_NE(stats.find("quarantined=1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("staleness=0"), std::string::npos) << stats;
    EXPECT_EQ(engine.execute("predict demo 10").substr(0, 5), "ok t=");
}

TEST(FleetEngine, MetricsExposition) {
    Fixture fx("metrics");
    serve::QueryEngine engine(fx.registry);
    engine.set_fleet_handler(fx.service);
    for (const int r : modeling_ranks()) {
        engine.execute("ingest demo " +
                       serve::escape_lines(run_edp_bytes(r, 0)));
    }
    fx.service->drain();

    const std::string response = engine.execute("metrics");
    ASSERT_EQ(response.substr(0, 3), "ok ");
    const std::string text = serve::unescape_lines(response.substr(3));
    for (const char* needle :
         {"extradeep_fleet_runs_total{state=\"accepted\"} 5",
          "extradeep_fleet_runs_total{state=\"quarantined\"} 0",
          "extradeep_fleet_refits_total", "extradeep_fleet_swaps_total",
          "extradeep_fleet_stale_fits_total",
          "extradeep_fleet_pool_queued_tasks",
          "extradeep_fleet_staleness_runs 0",
          "extradeep_fleet_refit_latency_us_bucket",
          "extradeep_fleet_swap_latency_us_bucket"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }

    // One gauge per registry shard, every shard present.
    std::size_t shard_lines = 0;
    std::size_t pos = 0;
    const std::string prefix = "extradeep_serve_registry_shard_entries{";
    while ((pos = text.find(prefix, pos)) != std::string::npos) {
        ++shard_lines;
        pos += prefix.size();
    }
    EXPECT_EQ(shard_lines, 16u);

    // The shard gauges are refreshed by the verb and sum to the registry
    // size (1: the fitted "demo" model).
    const auto sizes = fx.registry->shard_sizes();
    EXPECT_EQ(sizes.size(), 16u);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
              fx.registry->size());
    EXPECT_NE(text.find("extradeep_serve_registry_shard_entries"),
              std::string::npos);
}
