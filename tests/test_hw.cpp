#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/gpu.hpp"
#include "hw/network.hpp"
#include "hw/system.hpp"

using namespace extradeep::hw;
using extradeep::InvalidArgumentError;

TEST(Gpu, PresetsMatchTable1Hardware) {
    const GpuSpec v100 = GpuSpec::v100();
    EXPECT_EQ(v100.name, "V100");
    EXPECT_NEAR(v100.peak_fp32_tflops, 15.7, 0.1);
    const GpuSpec a100 = GpuSpec::a100();
    EXPECT_EQ(a100.name, "A100");
    EXPECT_GT(a100.mem_bandwidth_gbs, v100.mem_bandwidth_gbs);
}

TEST(Gpu, KernelTimeComputeBound) {
    GpuSpec g = GpuSpec::v100();
    // 15.7 TFLOPs at efficiency 0.5 -> 7.85e12 flops/s.
    const double t = kernel_time(g, 7.85e12, 0.0, 0.5);
    EXPECT_NEAR(t, 1.0 + g.kernel_launch_overhead_s, 1e-9);
}

TEST(Gpu, KernelTimeMemoryBound) {
    GpuSpec g = GpuSpec::v100();
    // Few flops, 900 GB of traffic -> 1 s memory time dominates.
    const double t = kernel_time(g, 1.0, 900e9, 0.5);
    EXPECT_NEAR(t, 1.0 + g.kernel_launch_overhead_s, 1e-9);
}

TEST(Gpu, KernelTimeTakesMaxOfRoofline) {
    GpuSpec g = GpuSpec::v100();
    const double compute_only = kernel_time(g, 1e12, 0.0, 0.5);
    const double both = kernel_time(g, 1e12, 900e9, 0.5);
    EXPECT_GT(both, compute_only);
}

TEST(Gpu, KernelTimeValidation) {
    GpuSpec g = GpuSpec::v100();
    EXPECT_THROW(kernel_time(g, 1.0, 1.0, 0.0), InvalidArgumentError);
    EXPECT_THROW(kernel_time(g, 1.0, 1.0, 1.5), InvalidArgumentError);
    EXPECT_THROW(kernel_time(g, -1.0, 1.0, 0.5), InvalidArgumentError);
}

TEST(Gpu, MemcpyScalesWithBytes) {
    GpuSpec g = GpuSpec::v100();
    const double t1 = memcpy_time(g, 1e6);
    const double t2 = memcpy_time(g, 2e6);
    EXPECT_GT(t2, t1);
    EXPECT_THROW(memcpy_time(g, -1.0), InvalidArgumentError);
}

TEST(Link, P2pAlphaBeta) {
    LinkSpec link{1e-6, 10.0};  // 10 GB/s
    EXPECT_NEAR(link.p2p_time(10e9), 1.0 + 1e-6, 1e-9);
    EXPECT_NEAR(link.p2p_time(0.0), 1e-6, 1e-15);
}

TEST(Collectives, SingleParticipantIsFree) {
    LinkSpec link{1e-6, 10.0};
    EXPECT_DOUBLE_EQ(ring_allreduce_time(link, 1e6, 1), 0.0);
    EXPECT_DOUBLE_EQ(tree_allreduce_time(link, 1e6, 1), 0.0);
    EXPECT_DOUBLE_EQ(allgather_time(link, 1e6, 1), 0.0);
    EXPECT_DOUBLE_EQ(broadcast_time(link, 1e6, 1), 0.0);
}

TEST(Collectives, RingAllreduceFormula) {
    LinkSpec link{0.0, 1.0};  // zero latency, 1 GB/s
    // 2*(p-1)/p * bytes / bw with p=4, bytes=4e9 -> 6 s.
    EXPECT_NEAR(ring_allreduce_time(link, 4e9, 4), 6.0, 1e-9);
}

TEST(Collectives, RingBandwidthTermSaturates) {
    LinkSpec link{0.0, 1.0};
    // As p grows the bandwidth term approaches 2*bytes/bw.
    const double t64 = ring_allreduce_time(link, 1e9, 64);
    const double t1024 = ring_allreduce_time(link, 1e9, 1024);
    EXPECT_LT(t64, t1024);
    EXPECT_LT(t1024, 2.0 + 1e-6);
}

TEST(Collectives, TreeAllreduceLogRounds) {
    LinkSpec link{1.0, 1e12};  // latency dominated
    EXPECT_NEAR(tree_allreduce_time(link, 8.0, 8), 6.0, 1e-6);   // 2*log2(8)
    EXPECT_NEAR(tree_allreduce_time(link, 8.0, 9), 8.0, 1e-6);   // 2*ceil(log2 9)
}

TEST(Collectives, MpiPicksBetterAlgorithm) {
    // Large message: ring wins. Tiny message, many ranks: tree wins.
    LinkSpec link{1e-5, 1.0};
    const double large = mpi_allreduce_time(link, 1e9, 32);
    EXPECT_DOUBLE_EQ(large, ring_allreduce_time(link, 1e9, 32));
    const double small = mpi_allreduce_time(link, 8.0, 32);
    EXPECT_DOUBLE_EQ(small, tree_allreduce_time(link, 8.0, 32));
}

TEST(Collectives, BroadcastLogRounds) {
    LinkSpec link{0.0, 1.0};
    EXPECT_NEAR(broadcast_time(link, 1e9, 8), 3.0, 1e-9);
}

TEST(Collectives, ReduceScatterEqualsAllgather) {
    LinkSpec link{1e-6, 5.0};
    EXPECT_DOUBLE_EQ(reduce_scatter_time(link, 1e7, 8),
                     allgather_time(link, 1e7, 8));
}

TEST(Collectives, HierarchicalFallsBackToFlatRing) {
    LinkSpec inter{1e-6, 1.0};
    LinkSpec intra{1e-7, 30.0};
    EXPECT_DOUBLE_EQ(hierarchical_allreduce_time(inter, intra, 1e8, 16, 1),
                     ring_allreduce_time(inter, 1e8, 16));
}

TEST(Collectives, HierarchicalBeatsFlatForLargeMessages) {
    // With fast intra-node links and 4 GPUs per node, the hierarchical
    // algorithm moves only 1/4 of the bytes across nodes.
    LinkSpec inter{1e-6, 1.0};
    LinkSpec intra{1e-7, 100.0};
    const double flat = ring_allreduce_time(inter, 1e9, 64);
    const double hier = hierarchical_allreduce_time(inter, intra, 1e9, 16, 4);
    EXPECT_LT(hier, flat);
}

TEST(Collectives, ValidationErrors) {
    LinkSpec link;
    EXPECT_THROW(ring_allreduce_time(link, 1.0, 0), InvalidArgumentError);
    EXPECT_THROW(hierarchical_allreduce_time(link, link, 1.0, 1, 0),
                 InvalidArgumentError);
    EXPECT_THROW(link.p2p_time(-1.0), InvalidArgumentError);
}

// Monotonicity sweep: collective time never decreases with participants.
class CollectiveMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveMonotoneTest, NonDecreasingInParticipants) {
    const int p = GetParam();
    LinkSpec link{2e-6, 8.0};
    EXPECT_LE(ring_allreduce_time(link, 1e8, p),
              ring_allreduce_time(link, 1e8, p + 1));
    EXPECT_LE(allgather_time(link, 1e8, p), allgather_time(link, 1e8, p + 1));
    EXPECT_LE(tree_allreduce_time(link, 1e8, p),
              tree_allreduce_time(link, 1e8, p * 2));
}

INSTANTIATE_TEST_SUITE_P(Participants, CollectiveMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 63));

TEST(System, DeepPresetMatchesTable1) {
    const SystemSpec s = SystemSpec::deep();
    EXPECT_EQ(s.name, "DEEP");
    EXPECT_EQ(s.node_count, 75);
    EXPECT_EQ(s.gpus_per_node, 1);
    EXPECT_EQ(s.cores_per_node, 8);
    EXPECT_EQ(s.gpu.name, "V100");
    EXPECT_FALSE(s.nccl_support);
    EXPECT_EQ(s.max_ranks(), 75);
}

TEST(System, JurecaPresetMatchesTable1) {
    const SystemSpec s = SystemSpec::jureca();
    EXPECT_EQ(s.name, "JURECA");
    EXPECT_EQ(s.node_count, 192);
    EXPECT_EQ(s.gpus_per_node, 4);
    EXPECT_EQ(s.cores_per_node, 128);
    EXPECT_EQ(s.gpu.name, "A100");
    EXPECT_TRUE(s.nccl_support);
    EXPECT_EQ(s.max_ranks(), 768);
}

TEST(System, JurecaNoisierThanDeep) {
    // Paper Sec. 4.3: avg run-to-run variation 12.6 % DEEP vs 17.4 % JURECA.
    const SystemSpec d = SystemSpec::deep();
    const SystemSpec j = SystemSpec::jureca();
    EXPECT_GT(j.noise.compute_sigma(64), d.noise.compute_sigma(64));
}

TEST(System, NoiseGrowsWithScale) {
    const NoiseSpec n = SystemSpec::deep().noise;
    EXPECT_LT(n.compute_sigma(2), n.compute_sigma(64));
    EXPECT_GT(n.comm_sigma(8), n.compute_sigma(8));
    EXPECT_THROW(n.compute_sigma(0), InvalidArgumentError);
}

TEST(System, NodesForRanks) {
    const SystemSpec j = SystemSpec::jureca();
    EXPECT_EQ(j.nodes_for_ranks(1), 1);
    EXPECT_EQ(j.nodes_for_ranks(4), 1);
    EXPECT_EQ(j.nodes_for_ranks(5), 2);
    EXPECT_EQ(j.nodes_for_ranks(64), 16);
    EXPECT_THROW(j.nodes_for_ranks(0), InvalidArgumentError);
}

TEST(System, ContentionMultiplier) {
    SystemSpec s = SystemSpec::deep();
    EXPECT_DOUBLE_EQ(contention_multiplier(s, 1), 1.0);
    EXPECT_GT(contention_multiplier(s, 2), 1.0);
    EXPECT_LT(contention_multiplier(s, 4), contention_multiplier(s, 64));
    EXPECT_THROW(contention_multiplier(s, 0), InvalidArgumentError);
}

TEST(System, AlgorithmRegimeFactorSteps) {
    EXPECT_DOUBLE_EQ(algorithm_regime_factor(1), 1.0);
    EXPECT_DOUBLE_EQ(algorithm_regime_factor(16), 1.0);
    EXPECT_NEAR(algorithm_regime_factor(17), 1.06, 1e-12);
    EXPECT_NEAR(algorithm_regime_factor(33), 1.06 * 1.06, 1e-12);
    EXPECT_NEAR(algorithm_regime_factor(65), 1.06 * 1.06 * 1.06, 1e-12);
}

TEST(System, AllreduceSingleRankFree) {
    EXPECT_DOUBLE_EQ(allreduce_time(SystemSpec::deep(), 1e8, 1), 0.0);
}

TEST(System, AllreduceGrowsWithRanks) {
    const SystemSpec s = SystemSpec::deep();
    EXPECT_LT(allreduce_time(s, 1e8, 2), allreduce_time(s, 1e8, 64));
}

TEST(System, JurecaIntraNodeAllreduceIsFast) {
    // 4 ranks on one JURECA node use NVLink only - much faster than 4 ranks
    // spread over 4 DEEP nodes.
    const double jureca = allreduce_time(SystemSpec::jureca(), 1e8, 4);
    const double deep = allreduce_time(SystemSpec::deep(), 1e8, 4);
    EXPECT_LT(jureca, deep / 10.0);
}

TEST(System, HierarchicalUsedAboveOneNode) {
    const SystemSpec j = SystemSpec::jureca();
    // 8 ranks = 2 nodes: hierarchical path (with contention) applies.
    const double t8 = allreduce_time(j, 1e8, 8);
    EXPECT_GT(t8, allreduce_time(j, 1e8, 4));
}

TEST(System, P2pPrefersIntraNode) {
    const SystemSpec j = SystemSpec::jureca();
    EXPECT_LT(p2p_time(j, 1e7, true), p2p_time(j, 1e7, false));
}

TEST(System, DescribeMentionsKeyFacts) {
    const std::string d = SystemSpec::deep().describe();
    EXPECT_NE(d.find("DEEP"), std::string::npos);
    EXPECT_NE(d.find("V100"), std::string::npos);
    EXPECT_NE(d.find("NCCL no"), std::string::npos);
}
