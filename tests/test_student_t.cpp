#include "common/student_t.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace stats = extradeep::stats;
using extradeep::InvalidArgumentError;

TEST(LogGamma, IntegerFactorials) {
    // Gamma(n) = (n-1)!
    EXPECT_NEAR(stats::log_gamma(1.0), 0.0, 1e-12);
    EXPECT_NEAR(stats::log_gamma(2.0), 0.0, 1e-12);
    EXPECT_NEAR(stats::log_gamma(5.0), std::log(24.0), 1e-10);
    EXPECT_NEAR(stats::log_gamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGamma, HalfInteger) {
    // Gamma(1/2) = sqrt(pi)
    EXPECT_NEAR(stats::log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
}

TEST(IncompleteBeta, Endpoints) {
    EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats::incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetryRelation) {
    // I_x(a, b) == 1 - I_{1-x}(b, a)
    const double v1 = stats::incomplete_beta(2.5, 1.5, 0.3);
    const double v2 = stats::incomplete_beta(1.5, 2.5, 0.7);
    EXPECT_NEAR(v1, 1.0 - v2, 1e-12);
}

TEST(IncompleteBeta, UniformCase) {
    // I_x(1, 1) == x
    EXPECT_NEAR(stats::incomplete_beta(1.0, 1.0, 0.42), 0.42, 1e-12);
}

TEST(IncompleteBeta, ThrowsOnBadInput) {
    EXPECT_THROW(stats::incomplete_beta(0.0, 1.0, 0.5), InvalidArgumentError);
    EXPECT_THROW(stats::incomplete_beta(1.0, 1.0, 1.5), InvalidArgumentError);
}

TEST(StudentTCdf, SymmetricAroundZero) {
    EXPECT_NEAR(stats::student_t_cdf(0.0, 5.0), 0.5, 1e-12);
    EXPECT_NEAR(stats::student_t_cdf(1.3, 7.0) + stats::student_t_cdf(-1.3, 7.0),
                1.0, 1e-12);
}

TEST(StudentTCdf, KnownValueDof1) {
    // For dof=1 (Cauchy): CDF(1) = 3/4.
    EXPECT_NEAR(stats::student_t_cdf(1.0, 1.0), 0.75, 1e-10);
}

TEST(StudentTQuantile, InvertsCdf) {
    for (const double p : {0.05, 0.3, 0.5, 0.8, 0.975}) {
        const double q = stats::student_t_quantile(p, 6.0);
        EXPECT_NEAR(stats::student_t_cdf(q, 6.0), p, 1e-9);
    }
}

// Textbook two-sided 95 % critical values.
struct TCritCase {
    double dof;
    double expected;
};

class StudentTCriticalTest : public ::testing::TestWithParam<TCritCase> {};

TEST_P(StudentTCriticalTest, MatchesTable) {
    const auto [dof, expected] = GetParam();
    EXPECT_NEAR(stats::student_t_critical(0.95, dof), expected, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Table, StudentTCriticalTest,
    ::testing::Values(TCritCase{1, 12.706}, TCritCase{2, 4.303},
                      TCritCase{3, 3.182}, TCritCase{4, 2.776},
                      TCritCase{5, 2.571}, TCritCase{10, 2.228},
                      TCritCase{30, 2.042}, TCritCase{100, 1.984}));

TEST(StudentTCritical, ApproachesNormalForLargeDof) {
    EXPECT_NEAR(stats::student_t_critical(0.95, 1e6), 1.960, 1e-3);
}

TEST(StudentTQuantile, ThrowsOnBadInput) {
    EXPECT_THROW(stats::student_t_quantile(0.0, 5.0), InvalidArgumentError);
    EXPECT_THROW(stats::student_t_quantile(1.0, 5.0), InvalidArgumentError);
    EXPECT_THROW(stats::student_t_quantile(0.5, 0.0), InvalidArgumentError);
}

TEST(StudentTQuantile, MedianIsZero) {
    EXPECT_DOUBLE_EQ(stats::student_t_quantile(0.5, 3.0), 0.0);
}
