#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dnn/datasets.hpp"
#include "dnn/zoo.hpp"
#include "parallel/comm_plan.hpp"
#include "parallel/steps.hpp"
#include "parallel/strategy.hpp"

using namespace extradeep::parallel;
using namespace extradeep::dnn;
using extradeep::InvalidArgumentError;

TEST(Strategy, FactoryConfigurations) {
    const auto d = ParallelConfig::data(8);
    EXPECT_EQ(d.kind, StrategyKind::Data);
    EXPECT_EQ(d.shards(), 8);
    EXPECT_EQ(d.data_parallel_degree(), 8);

    const auto t = ParallelConfig::tensor(16, 4);
    EXPECT_EQ(t.shards(), 4);

    const auto p = ParallelConfig::pipeline(8, 4, 6);
    EXPECT_EQ(p.shards(), 2);
    EXPECT_EQ(p.microbatches, 6);
}

TEST(Strategy, ValidationRejectsBadConfigs) {
    EXPECT_THROW(ParallelConfig::data(1), InvalidArgumentError);  // single rank
    EXPECT_THROW(ParallelConfig::tensor(10, 4), InvalidArgumentError);  // 4∤10
    ParallelConfig c;
    c.kind = StrategyKind::Data;
    c.total_ranks = 8;
    c.model_parallel_degree = 2;  // data parallel requires M=1
    EXPECT_THROW(c.validate(), InvalidArgumentError);
    c.kind = StrategyKind::Tensor;
    c.model_parallel_degree = 1;  // tensor requires M>=2
    EXPECT_THROW(c.validate(), InvalidArgumentError);
}

TEST(Strategy, Names) {
    EXPECT_EQ(strategy_name(StrategyKind::Data), "data parallelism");
    EXPECT_EQ(strategy_name(StrategyKind::Tensor), "tensor parallelism");
    EXPECT_EQ(strategy_name(StrategyKind::Pipeline), "pipeline parallelism");
    EXPECT_EQ(scaling_name(ScalingMode::Weak), "weak scaling");
}

TEST(StepMath, WeakScalingKeepsStepsConstant) {
    // Paper case study: dataset multiplied by ranks, sharded by ranks ->
    // per-worker steps stay constant (Eq. 2).
    const DatasetSpec cifar = DatasetSpec::cifar10();
    for (const int ranks : {2, 8, 32}) {
        const auto m = compute_steps(cifar, ParallelConfig::data(ranks), 256,
                                     ScalingMode::Weak);
        EXPECT_EQ(m.train_steps, 50000 / 256) << ranks;
        EXPECT_EQ(m.effective_train_samples, 50000 * ranks);
    }
}

TEST(StepMath, StrongScalingShrinksSteps) {
    const DatasetSpec cifar = DatasetSpec::cifar10();
    const auto m2 = compute_steps(cifar, ParallelConfig::data(2), 256,
                                  ScalingMode::Strong);
    const auto m8 = compute_steps(cifar, ParallelConfig::data(8), 256,
                                  ScalingMode::Strong);
    EXPECT_EQ(m2.train_steps, (50000 / 2) / 256);
    EXPECT_EQ(m8.train_steps, (50000 / 8) / 256);
    EXPECT_GT(m2.train_steps, m8.train_steps);
}

TEST(StepMath, ModelParallelGroupsShareShards) {
    // Eq. 2 with G/M shards: 16 ranks with M=4 -> 4 shards.
    const DatasetSpec cifar = DatasetSpec::cifar10();
    const auto tensor = compute_steps(cifar, ParallelConfig::tensor(16, 4),
                                      256, ScalingMode::Strong);
    const auto data = compute_steps(cifar, ParallelConfig::data(4), 256,
                                    ScalingMode::Strong);
    EXPECT_EQ(tensor.train_steps, data.train_steps);
}

TEST(StepMath, ValidationSteps) {
    const DatasetSpec cifar = DatasetSpec::cifar10();
    const auto m = compute_steps(cifar, ParallelConfig::data(2), 256,
                                 ScalingMode::Weak);
    EXPECT_EQ(m.val_steps, 10000 / 256);
}

TEST(StepMath, ThrowsWhenDatasetTooSmall) {
    const DatasetSpec imdb = DatasetSpec::imdb();  // 25k train samples
    EXPECT_THROW(compute_steps(imdb, ParallelConfig::data(64), 512,
                               ScalingMode::Strong),
                 InvalidArgumentError);
    EXPECT_THROW(compute_steps(imdb, ParallelConfig::data(2), 0,
                               ScalingMode::Weak),
                 InvalidArgumentError);
}

namespace {

double total_bytes(const std::vector<CommOp>& ops, CommOpKind kind) {
    double b = 0.0;
    for (const auto& op : ops) {
        if (op.kind == kind) {
            b += op.bytes * op.per_step_count;
        }
    }
    return b;
}

}  // namespace

TEST(CommPlan, DataParallelExchangesFullGradient) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan =
        build_comm_plan(net, ParallelConfig::data(8), 256);
    const double grad = total_bytes(plan.train_ops, CommOpKind::Allreduce);
    // Full gradient + the tiny metric allreduce.
    EXPECT_NEAR(grad, net.gradient_bytes(), 64.0);
    EXPECT_DOUBLE_EQ(plan.pipeline_bubble_fraction, 0.0);
}

TEST(CommPlan, DataParallelBucketsAre64MiB) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);  // ~94 MiB
    const CommPlan plan = build_comm_plan(net, ParallelConfig::data(4), 256);
    int buckets = 0;
    for (const auto& op : plan.train_ops) {
        if (op.kind == CommOpKind::Allreduce && op.bytes > 4096) {
            ++buckets;
            EXPECT_LE(op.bytes, kGradientBucketBytes + 1.0);
        }
    }
    EXPECT_EQ(buckets, 2);  // 94 MiB -> two fusion buckets
}

TEST(CommPlan, ValidationHasNoGradientExchange) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan = build_comm_plan(net, ParallelConfig::data(8), 256);
    EXPECT_LT(total_bytes(plan.val_ops, CommOpKind::Allreduce), 100.0);
}

TEST(CommPlan, StartupBroadcastsWeights) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan = build_comm_plan(net, ParallelConfig::data(8), 256);
    ASSERT_EQ(plan.startup_ops.size(), 1u);
    EXPECT_EQ(plan.startup_ops.front().kind, CommOpKind::Broadcast);
    EXPECT_DOUBLE_EQ(plan.startup_ops.front().bytes, net.gradient_bytes());
}

TEST(CommPlan, TensorParallelHasIntraGroupActivationTraffic) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan = build_comm_plan(net, ParallelConfig::tensor(16, 4),
                                          256);
    const double ag = total_bytes(plan.train_ops, CommOpKind::Allgather);
    EXPECT_GT(ag, 0.0);
    // Validation keeps the forward allgathers.
    EXPECT_GT(total_bytes(plan.val_ops, CommOpKind::Allgather), 0.0);
    // The gradient allreduce is sharded: bytes/M across shards.
    double grad = 0.0;
    for (const auto& op : plan.train_ops) {
        if (op.kind == CommOpKind::Allreduce && !op.intra_group &&
            op.bytes > 4096) {
            grad += op.bytes;
            EXPECT_EQ(op.participants, 4);  // shards
        }
    }
    EXPECT_NEAR(grad, net.gradient_bytes() / 4.0, 1.0);
}

TEST(CommPlan, TensorParallelScalesActivationsWithBatch) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan p128 = build_comm_plan(net, ParallelConfig::tensor(16, 4), 128);
    const CommPlan p256 = build_comm_plan(net, ParallelConfig::tensor(16, 4), 256);
    EXPECT_NEAR(total_bytes(p256.train_ops, CommOpKind::Allgather),
                2.0 * total_bytes(p128.train_ops, CommOpKind::Allgather),
                1.0);
}

TEST(CommPlan, PipelineBubbleFraction) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan =
        build_comm_plan(net, ParallelConfig::pipeline(8, 4, 4), 256);
    // (M-1)/(microbatches + M - 1) = 3/7.
    EXPECT_NEAR(plan.pipeline_bubble_fraction, 3.0 / 7.0, 1e-12);
}

TEST(CommPlan, MoreMicrobatchesShrinkBubble) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan few =
        build_comm_plan(net, ParallelConfig::pipeline(8, 4, 2), 256);
    const CommPlan many =
        build_comm_plan(net, ParallelConfig::pipeline(8, 4, 16), 256);
    EXPECT_GT(few.pipeline_bubble_fraction, many.pipeline_bubble_fraction);
}

TEST(CommPlan, PipelineSendsPerMicrobatch) {
    const NetworkModel net = resnet50(TensorShape{32, 32, 3}, 10);
    const CommPlan plan =
        build_comm_plan(net, ParallelConfig::pipeline(8, 4, 4), 256);
    int sends = 0;
    for (const auto& op : plan.train_ops) {
        if (op.kind == CommOpKind::SendRecv) {
            EXPECT_EQ(op.per_step_count, 4);  // one per microbatch
            ++sends;
        }
    }
    EXPECT_EQ(sends, 2);  // forward activations + backward gradients
}

TEST(CommPlan, RejectsBadBatch) {
    const NetworkModel net = nnlm(64, 1000, 2);
    EXPECT_THROW(build_comm_plan(net, ParallelConfig::data(4), 0),
                 InvalidArgumentError);
}
