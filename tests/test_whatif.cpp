// Tests of the what-if advisor (src/advisor): scenario grammar and canonical
// reduction, transform properties (identity, monotonicity, commutativity),
// the simulator-side scenario mirror, and the headline golden property that
// the advisor's ranking agrees with ground-truth re-simulation wherever the
// advisor claims an order (disjoint prediction intervals) — with a negative
// control asserting that near-ties come back as overlapping intervals.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "advisor/ground_truth.hpp"
#include "advisor/scenario.hpp"
#include "advisor/verify.hpp"
#include "advisor/whatif.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "extradeep/runner.hpp"
#include "hw/network.hpp"
#include "hw/system.hpp"
#include "sim/kernel_schedule.hpp"
#include "trace/kernel.hpp"

using namespace extradeep;

namespace {

/// One small fitted experiment shared across the suite (same shape as the
/// serve suite's fixture; fitting is fast but not free).
const ExperimentSpec& test_spec() {
    static const ExperimentSpec spec = [] {
        ExperimentSpec s;
        s.repetitions = 2;
        s.seed = 7;
        return s;
    }();
    return spec;
}

const ExperimentResult& test_result() {
    static const ExperimentResult result = ExperimentRunner(test_spec()).run();
    return result;
}

const advisor::ModelSet& test_models() {
    static const advisor::ModelSet ms =
        advisor::model_set_from(test_spec(), test_result());
    return ms;
}

sim::Workload test_workload(int ranks) {
    return ExperimentRunner(test_spec()).workload_for(ranks);
}

double comm_train_time(const sim::StepSchedule& s) {
    return s.train_phase_time(trace::Phase::Communication);
}

double comp_train_time(const sim::StepSchedule& s) {
    return s.train_phase_time(trace::Phase::Computation);
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario grammar
// ---------------------------------------------------------------------------

TEST(Scenario, ParsesSingleTransforms) {
    EXPECT_EQ(advisor::parse_scenario("interconnect:2").interconnect, 2.0);
    EXPECT_EQ(advisor::parse_scenario("latency:4").latency, 4.0);
    EXPECT_EQ(advisor::parse_scenario("bandwidth:2").bandwidth, 2.0);
    EXPECT_EQ(advisor::parse_scenario("overlap:0.5").overlap, 0.5);
    EXPECT_EQ(advisor::parse_scenario("collective:ring").collective,
              advisor::CollectiveAlgo::Ring);
    EXPECT_EQ(advisor::parse_scenario("collective:tree").collective,
              advisor::CollectiveAlgo::Tree);
    EXPECT_EQ(advisor::parse_scenario("fuse:4").fuse, 4);
    EXPECT_TRUE(advisor::parse_scenario("identity").is_identity());
}

TEST(Scenario, ParsesCompositions) {
    const advisor::Scenario sc =
        advisor::parse_scenario("interconnect:2+overlap:0.5+fuse:4");
    EXPECT_EQ(sc.interconnect, 2.0);
    EXPECT_EQ(sc.overlap, 0.5);
    EXPECT_EQ(sc.fuse, 4);
    EXPECT_FALSE(sc.is_identity());

    // Repeats compose: factors multiply, overlap combines on the remaining
    // visible share, fuse takes the max.
    EXPECT_EQ(advisor::parse_scenario("interconnect:2+interconnect:3")
                  .interconnect,
              6.0);
    EXPECT_DOUBLE_EQ(
        advisor::parse_scenario("overlap:0.5+overlap:0.5").overlap, 0.75);
    EXPECT_EQ(advisor::parse_scenario("fuse:2+fuse:6").fuse, 6);
}

TEST(Scenario, CanonicalSpecIsPermutationInvariantAndRoundTrips) {
    const advisor::Scenario a =
        advisor::parse_scenario("interconnect:2+overlap:0.5+collective:ring");
    const advisor::Scenario b =
        advisor::parse_scenario("collective:ring+overlap:0.5+interconnect:2");
    EXPECT_EQ(a.canonical_spec(), b.canonical_spec());

    const advisor::Scenario c = advisor::parse_scenario(a.canonical_spec());
    EXPECT_EQ(c.interconnect, a.interconnect);
    EXPECT_EQ(c.overlap, a.overlap);
    EXPECT_EQ(c.collective, a.collective);
    EXPECT_EQ(advisor::parse_scenario("overlap:0").canonical_spec(),
              "identity");
}

TEST(Scenario, RejectsMalformedSpecs) {
    EXPECT_THROW(advisor::parse_scenario(""), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("interconnect"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("interconnect:"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario(":2"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("warp:9000"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("interconnect:0"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("interconnect:-2"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("interconnect:nan"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("overlap:1.5"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("collective:star"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("collective:ring+collective:tree"),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("fuse:2.5"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("fuse:-1"), InvalidArgumentError);
    EXPECT_THROW(advisor::parse_scenario("overlap:0.5++fuse:2"),
                 InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Collective override (hw layer)
// ---------------------------------------------------------------------------

TEST(CollectiveOverride, PinsTheFlatClosedForm) {
    const double bytes = 64.0 * 1024.0 * 1024.0;
    const int ranks = 16;
    hw::SystemSpec sys = hw::SystemSpec::deep();
    const double auto_time = hw::allreduce_time(sys, bytes, ranks);
    const int nodes = sys.nodes_for_ranks(ranks);
    const double scale = hw::contention_multiplier(sys, nodes) *
                         hw::algorithm_regime_factor(nodes);

    sys.collective_override = hw::CollectiveOverride::Ring;
    EXPECT_DOUBLE_EQ(hw::allreduce_time(sys, bytes, ranks),
                     hw::ring_allreduce_time(sys.inter_node, bytes, ranks) *
                         scale);
    sys.collective_override = hw::CollectiveOverride::Tree;
    EXPECT_DOUBLE_EQ(hw::allreduce_time(sys, bytes, ranks),
                     hw::tree_allreduce_time(sys.inter_node, bytes, ranks) *
                         scale);

    // DEEP's MPI path already picks min(ring, tree); pinning can only match
    // or worsen it.
    sys.collective_override = hw::CollectiveOverride::Ring;
    EXPECT_GE(hw::allreduce_time(sys, bytes, ranks), auto_time);
    sys.collective_override = hw::CollectiveOverride::Tree;
    EXPECT_GE(hw::allreduce_time(sys, bytes, ranks), auto_time);
}

TEST(CollectiveOverride, ReplacesTheHierarchicalNcclPath) {
    hw::SystemSpec sys = hw::SystemSpec::jureca();
    const double bytes = 64.0 * 1024.0 * 1024.0;
    const int ranks = 16;  // 4 nodes x 4 GPUs: hierarchical by default
    const double nccl_time = hw::allreduce_time(sys, bytes, ranks);
    sys.collective_override = hw::CollectiveOverride::Ring;
    const int nodes = sys.nodes_for_ranks(ranks);
    EXPECT_DOUBLE_EQ(hw::allreduce_time(sys, bytes, ranks),
                     hw::ring_allreduce_time(sys.inter_node, bytes, ranks) *
                         hw::contention_multiplier(sys, nodes) *
                         hw::algorithm_regime_factor(nodes));
    EXPECT_NE(hw::allreduce_time(sys, bytes, ranks), nccl_time);
}

// ---------------------------------------------------------------------------
// Transform properties on the fitted models
// ---------------------------------------------------------------------------

TEST(WhatIf, ZeroMagnitudeTransformsAreBitExactIdentity) {
    for (const char* spec :
         {"identity", "interconnect:1", "latency:1", "bandwidth:1",
          "overlap:0", "fuse:0", "fuse:1", "interconnect:1+overlap:0"}) {
        const advisor::WhatIfResult r = advisor::evaluate_whatif(
            test_models(), 16.0, advisor::parse_scenario(spec));
        EXPECT_EQ(r.saving, 0.0) << spec;
        EXPECT_EQ(r.scenario_time, r.baseline) << spec;
        EXPECT_EQ(r.lower, 0.0) << spec;
        EXPECT_EQ(r.upper, 0.0) << spec;
        EXPECT_EQ(r.baseline, test_models().epoch_time.evaluate(16.0)) << spec;
    }
}

TEST(WhatIf, InterconnectScalingIsMonotone) {
    double prev_saving = -1e300;
    for (const double f : {1.0, 1.25, 1.5, 2.0, 4.0, 8.0, 64.0}) {
        const advisor::WhatIfResult r = advisor::evaluate_whatif(
            test_models(), 16.0,
            advisor::parse_scenario("interconnect:" + fmt::shortest(f)));
        EXPECT_GE(r.saving, prev_saving) << "f=" << f;
        EXPECT_LE(r.scenario_time, r.baseline) << "f=" << f;
        prev_saving = r.saving;
    }
    // A *slower* link (f < 1) must never help.
    const advisor::WhatIfResult slower = advisor::evaluate_whatif(
        test_models(), 16.0, advisor::parse_scenario("interconnect:0.5"));
    EXPECT_LE(slower.saving, 0.0);
}

TEST(WhatIf, CommutativeCompositionIsOrderIndependent) {
    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"interconnect:2+overlap:0.5", "overlap:0.5+interconnect:2"},
        {"latency:4+bandwidth:2+fuse:4", "fuse:4+bandwidth:2+latency:4"},
        {"collective:tree+overlap:0.25", "overlap:0.25+collective:tree"},
    };
    for (const auto& [a, b] : pairs) {
        const advisor::WhatIfResult ra = advisor::evaluate_whatif(
            test_models(), 16.0, advisor::parse_scenario(a));
        const advisor::WhatIfResult rb = advisor::evaluate_whatif(
            test_models(), 16.0, advisor::parse_scenario(b));
        EXPECT_EQ(ra.saving, rb.saving) << a;
        EXPECT_EQ(ra.scenario_time, rb.scenario_time) << a;
        EXPECT_EQ(ra.lower, rb.lower) << a;
        EXPECT_EQ(ra.upper, rb.upper) << a;
        EXPECT_EQ(ra.spec, rb.spec) << a;
    }
}

TEST(WhatIf, RejectsUnrepresentableConfigurations) {
    const advisor::Scenario sc = advisor::parse_scenario("interconnect:2");
    EXPECT_THROW(advisor::evaluate_whatif(test_models(), 0.0, sc),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::evaluate_whatif(test_models(), 1.0, sc),
                 InvalidArgumentError);
    EXPECT_THROW(advisor::evaluate_whatif(test_models(), -8.0, sc),
                 InvalidArgumentError);
}

TEST(WhatIf, UnknownSystemDegradesGracefully) {
    advisor::ModelSet ms = test_models();
    ms.system_name = "FICTIONAL";
    // Uniform link scaling and overlap need no system reconstruction...
    EXPECT_GT(advisor::evaluate_whatif(
                  ms, 16.0, advisor::parse_scenario("interconnect:2"))
                  .saving,
              0.0);
    EXPECT_GE(advisor::evaluate_whatif(ms, 16.0,
                                       advisor::parse_scenario("overlap:0.5"))
                  .saving,
              0.0);
    // ...but repricing and fusion do, and must fail loudly.
    EXPECT_THROW(advisor::evaluate_whatif(
                     ms, 16.0, advisor::parse_scenario("collective:tree")),
                 InvalidArgumentError);
    EXPECT_THROW(
        advisor::evaluate_whatif(ms, 16.0, advisor::parse_scenario("fuse:4")),
        InvalidArgumentError);
    EXPECT_THROW(
        advisor::evaluate_whatif(ms, 16.0,
                                 advisor::parse_scenario("latency:4")),
        InvalidArgumentError);
    // advise skips the unavailable options instead of failing the request.
    const advisor::Advice advice = advisor::advise(ms, 16.0);
    EXPECT_GT(advice.skipped, 0);
    EXPECT_EQ(advice.ranked.size() + static_cast<std::size_t>(advice.skipped),
              advisor::default_portfolio().size());
}

// ---------------------------------------------------------------------------
// Ground-truth schedule mutation
// ---------------------------------------------------------------------------

TEST(MutatedSchedule, KeepsKernelPopulationAndOrder) {
    const sim::Workload w = test_workload(8);
    const sim::StepSchedule base = sim::build_step_schedule(w);
    for (const char* spec :
         {"interconnect:2", "collective:tree", "fuse:4", "overlap:0.5"}) {
        const sim::StepSchedule mutated =
            advisor::mutated_schedule(w, advisor::parse_scenario(spec));
        ASSERT_EQ(mutated.kernels.size(), base.kernels.size()) << spec;
        for (std::size_t i = 0; i < base.kernels.size(); ++i) {
            EXPECT_EQ(mutated.kernels[i].name, base.kernels[i].name) << spec;
        }
        EXPECT_EQ(mutated.epoch_overhead_s, base.epoch_overhead_s) << spec;
    }
}

TEST(MutatedSchedule, UniformLinkScalingScalesCommExactly) {
    const sim::Workload w = test_workload(8);
    const sim::StepSchedule base = sim::build_step_schedule(w);
    const sim::StepSchedule fast =
        advisor::mutated_schedule(w, advisor::parse_scenario("interconnect:2"));
    EXPECT_NEAR(comm_train_time(fast), comm_train_time(base) / 2.0,
                1e-12 * comm_train_time(base));
    // Computation and memory are untouched, bit for bit.
    EXPECT_EQ(comp_train_time(fast), comp_train_time(base));
    EXPECT_EQ(fast.train_phase_time(trace::Phase::MemoryOp),
              base.train_phase_time(trace::Phase::MemoryOp));
}

TEST(MutatedSchedule, FusionDropsLaunchAndDispatchOverhead) {
    const sim::Workload w = test_workload(8);
    const sim::StepSchedule base = sim::build_step_schedule(w);
    const sim::StepSchedule fused =
        advisor::mutated_schedule(w, advisor::parse_scenario("fuse:4"));

    auto find = [](const sim::StepSchedule& s, const std::string& name) {
        for (const auto& k : s.kernels) {
            if (k.name == name) {
                return k;
            }
        }
        ADD_FAILURE() << "kernel not found: " << name;
        return sim::KernelDesc{};
    };
    const sim::KernelDesc base_launch = find(base, "cudaLaunchKernel");
    const sim::KernelDesc fused_launch = find(fused, "cudaLaunchKernel");
    EXPECT_LT(fused_launch.train_visits, base_launch.train_visits);
    EXPECT_LT(fused_launch.train_time, base_launch.train_time);
    // Launch overhead is proportional to the launch count.
    EXPECT_NEAR(fused_launch.train_time,
                base_launch.train_time *
                    static_cast<double>(fused_launch.train_visits) /
                    static_cast<double>(base_launch.train_visits),
                1e-12);
    // The fused kernels' *compute* time is preserved: total computation
    // shrinks by exactly the saved launch + dispatch overhead.
    const sim::KernelDesc base_dispatch = find(base, "ExecutorState::Process");
    const sim::KernelDesc fused_dispatch =
        find(fused, "ExecutorState::Process");
    const double saved = (base_launch.train_time - fused_launch.train_time) +
                         (base_dispatch.train_time -
                          fused_dispatch.train_time);
    EXPECT_NEAR(comp_train_time(fused), comp_train_time(base) - saved,
                1e-12 * comp_train_time(base));
    EXPECT_GT(saved, 0.0);
}

TEST(MutatedSchedule, OverlapHidesCommUpToCompute) {
    const sim::Workload w = test_workload(8);
    const sim::StepSchedule base = sim::build_step_schedule(w);
    const double comm = comm_train_time(base);
    const double comp = comp_train_time(base);

    const sim::StepSchedule half =
        advisor::mutated_schedule(w, advisor::parse_scenario("overlap:0.5"));
    EXPECT_NEAR(comm_train_time(half),
                comm - std::min(0.5 * comm, comp), 1e-12 * comm);

    const sim::StepSchedule full =
        advisor::mutated_schedule(w, advisor::parse_scenario("overlap:1"));
    EXPECT_NEAR(comm_train_time(full), comm - std::min(comm, comp),
                1e-12 * comm);
    EXPECT_GE(comm_train_time(full), 0.0);
}

// ---------------------------------------------------------------------------
// Golden ranking against ground truth
// ---------------------------------------------------------------------------

TEST(GoldenRanking, AdvisorOrderMatchesReSimulationWhereDecided) {
    const double x = 16.0;
    const sim::Workload w = test_workload(16);
    const advisor::Advice advice = advisor::advise(test_models(), x);
    ASSERT_EQ(advice.skipped, 0);
    ASSERT_EQ(advice.ranked.size(), advisor::default_portfolio().size());

    std::vector<advisor::GroundTruth> truths;
    for (const advisor::WhatIfResult& r : advice.ranked) {
        truths.push_back(advisor::simulate_saving(
            w, advisor::parse_scenario(r.spec), 5, 101));
    }

    // Wherever the advisor claims an order (disjoint prediction intervals),
    // re-simulation must agree with it. Overlapping intervals are ties by
    // contract and carry no ordering claim.
    std::size_t decided = 0;
    for (std::size_t i = 0; i < advice.ranked.size(); ++i) {
        for (std::size_t j = i + 1; j < advice.ranked.size(); ++j) {
            const advisor::WhatIfResult& a = advice.ranked[i];
            const advisor::WhatIfResult& b = advice.ranked[j];
            if (!(a.lower > b.upper || b.lower > a.upper)) {
                continue;
            }
            ++decided;
            // advise sorts descending, so a's prediction is >= b's; the
            // ground truth must rank them the same way.
            EXPECT_GT(a.saving, b.saving) << a.spec << " vs " << b.spec;
            EXPECT_GT(truths[i].saving, truths[j].saving)
                << a.spec << " vs " << b.spec;
        }
    }
    // The portfolio spans savings from strongly positive (interconnect
    // upgrades) to strongly negative (the tree swap on this system), so the
    // advisor must be able to decide most pairs.
    EXPECT_GE(decided, 10u);
}

TEST(GoldenRanking, NearTiesComeBackAsOverlappingIntervals) {
    // Negative control: two optimizations within noise of each other. The
    // advisor must not claim an order — the intervals must overlap.
    const advisor::WhatIfResult a = advisor::evaluate_whatif(
        test_models(), 16.0, advisor::parse_scenario("interconnect:1.30"));
    const advisor::WhatIfResult b = advisor::evaluate_whatif(
        test_models(), 16.0, advisor::parse_scenario("interconnect:1.31"));
    EXPECT_NE(a.saving, b.saving);  // distinct scenarios, distinct estimates
    EXPECT_TRUE(a.lower <= b.upper && b.lower <= a.upper)
        << "[" << a.lower << ", " << a.upper << "] vs [" << b.lower << ", "
        << b.upper << "]";
    // And the ground-truth difference really is inside both bands.
    const sim::Workload w = test_workload(16);
    const advisor::GroundTruth ta =
        advisor::simulate_saving(w, advisor::parse_scenario("interconnect:1.30"),
                                 5, 101);
    EXPECT_GE(ta.saving, std::min(a.lower, b.lower));
    EXPECT_LE(ta.saving, std::max(a.upper, b.upper));
}

TEST(GoldenRanking, PredictedSavingsTrackGroundTruth) {
    const sim::Workload w = test_workload(16);
    for (const std::string& spec : advisor::default_portfolio()) {
        const advisor::Scenario sc = advisor::parse_scenario(spec);
        const advisor::WhatIfResult pred =
            advisor::evaluate_whatif(test_models(), 16.0, sc);
        const advisor::GroundTruth truth =
            advisor::simulate_saving(w, sc, 5, 101);
        const double denom =
            std::max(std::fabs(truth.saving), 0.02 * truth.base_time);
        EXPECT_LE(std::fabs(pred.saving - truth.saving) / denom, 0.25)
            << spec << ": pred=" << pred.saving << " true=" << truth.saving;
    }
}

// ---------------------------------------------------------------------------
// Verification harness
// ---------------------------------------------------------------------------

TEST(VerifyHarness, QuickSuiteEmitsWellFormedRecords) {
    advisor::VerifyOptions options;
    options.quick = true;
    options.repetitions = 3;
    const advisor::VerifyOutcome outcome = advisor::run_verify(options);
    ASSERT_FALSE(outcome.records.empty());
    std::size_t err_records = 0, ranking_records = 0, coverage_records = 0;
    for (const auto& r : outcome.records) {
        if (r.metric == "saving_err_pct") {
            ++err_records;
            EXPECT_TRUE(std::isfinite(r.value));
            EXPECT_GE(r.value, 0.0);
        } else if (r.metric == "ranking_agreement") {
            ++ranking_records;
            EXPECT_GE(r.value, 0.0);
            EXPECT_LE(r.value, 1.0);
        } else if (r.metric == "interval_coverage") {
            ++coverage_records;
            EXPECT_GE(r.value, 0.0);
            EXPECT_LE(r.value, 1.0);
        } else {
            ADD_FAILURE() << "unexpected metric " << r.metric;
        }
    }
    // One case, two evaluation points, the full portfolio at each.
    EXPECT_EQ(err_records, 2 * advisor::default_portfolio().size());
    EXPECT_EQ(ranking_records, 2u);
    EXPECT_EQ(coverage_records, 2u);
    EXPECT_NE(outcome.table.find("ranking_agreement"), std::string::npos);

    // The JSON document parses and carries the schema marker.
    const std::string doc =
        advisor::whatif_bench_json(outcome.records, "test");
    const json::Value parsed = json::parse(doc, "BENCH_whatif.json");
    const json::Value* schema = parsed.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "extradeep-whatif/1");
    const json::Value* records = parsed.find("records");
    ASSERT_NE(records, nullptr);
    EXPECT_EQ(records->array.size(), outcome.records.size());
}
