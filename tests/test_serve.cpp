// Tests of the serving subsystem (src/serve): EDPM serialization round-trip,
// registry lifecycle, query engine semantics, and the TCP daemon — including
// the headline property that a serialize -> load -> query cycle answers every
// query kind byte-identically to the in-memory model it came from.

#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/clock.hpp"
#include "serve/loadgen.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"
#include "serve/serialize.hpp"
#include "serve/server.hpp"
#include "serve/socket_util.hpp"

using namespace extradeep;

namespace {

namespace fs = std::filesystem;

/// One small fitted experiment, shared across the suite (fitting is fast but
/// there is no reason to repeat it per test).
const ExperimentSpec& test_spec() {
    static const ExperimentSpec spec = [] {
        ExperimentSpec s;
        s.repetitions = 2;
        s.seed = 7;
        return s;
    }();
    return spec;
}

const ExperimentResult& test_result() {
    static const ExperimentResult result = ExperimentRunner(test_spec()).run();
    return result;
}

serve::ServableModel test_model(const std::string& name = "cifar10-weak") {
    return serve::make_servable(test_spec(), test_result(), name);
}

std::string edpm_text(const serve::ServableModel& model) {
    std::ostringstream os;
    serve::write_edpm(os, model);
    return os.str();
}

/// A fresh empty directory under the gtest temp root.
fs::path fresh_dir(const std::string& tag) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("serve-" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/// Requests covering every query kind the protocol defines.
std::vector<std::string> all_kind_requests(const std::string& model) {
    return {
        "ping",
        "list",
        "predict " + model + " 16",
        "predict " + model + " 16 communication",
        "predict " + model + " 16 epoch 0.99",
        "speedup " + model + " 2 4 8 16 32",
        "efficiency " + model + " 2 4 8 16 32",
        "cost " + model + " 16",
        "cost " + model + " 16 4",
        "search " + model + " 1e6 1e6 2 4 8 16 32",
        "search " + model + " 0.001 1e6 2 4 8 16",
        "whatif " + model + " 16 interconnect:2+overlap:0.5",
        "whatif " + model + " 8 collective:tree",
        "whatif " + model + " 16 fuse:4",
        "advise " + model + " 16 3",
        "advise " + model + " 16",
    };
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(EdpmSerialize, RoundTripIsBitExact) {
    const serve::ServableModel original = test_model();
    std::istringstream is(edpm_text(original));
    const serve::ServableModel loaded = serve::read_edpm(is);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_EQ(loaded.provenance, original.provenance);
    EXPECT_EQ(loaded.seed, original.seed);
    EXPECT_EQ(loaded.dataset, original.dataset);
    EXPECT_EQ(loaded.system_name, original.system_name);
    EXPECT_EQ(loaded.strategy, original.strategy);
    EXPECT_EQ(loaded.scaling, original.scaling);
    EXPECT_EQ(loaded.batch_per_worker, original.batch_per_worker);
    EXPECT_EQ(loaded.model_parallel_degree, original.model_parallel_degree);
    EXPECT_EQ(loaded.cores_per_rank, original.cores_per_rank);
    ASSERT_EQ(loaded.modeling_xs.size(), original.modeling_xs.size());
    for (std::size_t i = 0; i < loaded.modeling_xs.size(); ++i) {
        // EXPECT_EQ, not NEAR: hexfloat encoding round-trips every bit.
        EXPECT_EQ(loaded.modeling_xs[i], original.modeling_xs[i]);
        EXPECT_EQ(loaded.epoch_time_values[i], original.epoch_time_values[i]);
    }
    for (const double x : {2.0, 10.0, 16.0, 64.0, 1024.0}) {
        EXPECT_EQ(loaded.epoch_time.evaluate(x),
                  original.epoch_time.evaluate(x));
        const auto li = loaded.epoch_time.predict_interval(x);
        const auto oi = original.epoch_time.predict_interval(x);
        EXPECT_EQ(li.lower, oi.lower);
        EXPECT_EQ(li.upper, oi.upper);
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            EXPECT_EQ(loaded.phase_time[p].evaluate(x),
                      original.phase_time[p].evaluate(x));
        }
    }
    for (const int ranks : {2, 6, 48, 512}) {
        const parallel::StepMath a = loaded.step_math(ranks);
        const parallel::StepMath b = original.step_math(ranks);
        EXPECT_EQ(a.train_steps, b.train_steps);
        EXPECT_EQ(a.val_steps, b.val_steps);
    }
}

TEST(EdpmSerialize, SecondGenerationRoundTripIsByteIdentical) {
    const std::string first = edpm_text(test_model());
    std::istringstream is(first);
    const serve::ServableModel loaded = serve::read_edpm(is);
    EXPECT_EQ(edpm_text(loaded), first);
}

TEST(EdpmSerialize, RejectsInvalidModelNames) {
    for (const char* bad : {"", "has space", "tab\tname", "weird!"}) {
        EXPECT_THROW(test_model(bad), InvalidArgumentError) << bad;
    }
    EXPECT_THROW(test_model(std::string(129, 'a')), InvalidArgumentError);
    EXPECT_NO_THROW(test_model("ok.name_v2-final"));
}

TEST(EdpmSerialize, StrictRejectsVersionMismatch) {
    std::string text = edpm_text(test_model());
    text.replace(text.find("EDPM\t1"), 6, "EDPM\t2");
    std::istringstream is(text);
    EXPECT_THROW(serve::read_edpm(is), ParseError);
}

TEST(EdpmSerialize, StrictRejectsTruncation) {
    const std::string text = edpm_text(test_model());
    std::istringstream is(text.substr(0, text.size() / 2));
    EXPECT_THROW(serve::read_edpm(is), ParseError);
}

TEST(EdpmSerialize, StrictRejectsTrailingData) {
    std::istringstream is(edpm_text(test_model()) + "EXTRA\tstuff\n");
    EXPECT_THROW(serve::read_edpm(is), ParseError);
}

TEST(EdpmSerialize, TolerantQuarantinesCorruptConst) {
    std::string text = edpm_text(test_model());
    const std::size_t pos = text.find("CONST\t");
    text.replace(pos, 6, "CONST\tzz");
    std::istringstream is(text);
    serve::EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    serve::EdpmReadResult result;
    EXPECT_NO_THROW(result = serve::read_edpm(is, options));
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.diagnostics.has_errors());
}

TEST(EdpmSerialize, TolerantDegradesCorruptQualityWithWarning) {
    std::string text = edpm_text(test_model());
    const std::size_t pos = text.find("QUALITY\t");
    text.replace(pos, 8, "QUALITY\tzz\t");
    std::istringstream is(text);
    serve::EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    const serve::EdpmReadResult result = serve::read_edpm(is, options);
    ASSERT_TRUE(result.model.has_value());
    EXPECT_FALSE(result.diagnostics.has_errors());
    EXPECT_GE(result.diagnostics.count(Severity::Warning), 1u);
    // Prediction-affecting state is untouched by the degraded metadata.
    EXPECT_EQ(result.model->epoch_time.evaluate(16.0),
              test_model().epoch_time.evaluate(16.0));
}

TEST(EdpmSerialize, TolerantSkipsUnknownModelSections) {
    std::string text = edpm_text(test_model());
    const std::string extra =
        "MODEL\tphase.future.train\nPARAMS\t1\tx1\nCONST\t0x1p+0\nENDMODEL\n";
    text.insert(text.find("END\n"), extra);
    std::istringstream is(text);
    serve::EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    const serve::EdpmReadResult result = serve::read_edpm(is, options);
    ASSERT_TRUE(result.model.has_value());
    EXPECT_FALSE(result.diagnostics.has_errors());
}

TEST(EdpmSerialize, UnknownDatasetQuarantines) {
    std::string text = edpm_text(test_model());
    // The dataset name also appears in the free-text PROV line; only the
    // SPEC record feeds the step-math reconstruction.
    const std::size_t pos = text.find("SPEC\tCIFAR-10");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos + 5, 8, "NOSUCH-1");
    std::istringstream is(text);
    serve::EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    const serve::EdpmReadResult result = serve::read_edpm(is, options);
    EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ModelRegistry, LoadsDirectoryAndQuarantinesCorruptFiles) {
    const fs::path dir = fresh_dir("load");
    serve::write_edpm_file((dir / "a.edpm").string(), test_model("model-a"));
    serve::write_edpm_file((dir / "b.edpm").string(), test_model("model-b"));
    std::ofstream(dir / "broken.edpm") << "EDPM\t1\ngarbage\n";
    std::ofstream(dir / "notamodel.txt") << "ignored\n";

    serve::ModelRegistry registry;
    const serve::RegistryLoadReport report =
        registry.load_directory(dir.string());
    EXPECT_EQ(report.loaded, 2);
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_NE(registry.find("model-a"), nullptr);
    EXPECT_NE(registry.find("model-b"), nullptr);
    EXPECT_EQ(registry.find("nosuch"), nullptr);
    EXPECT_TRUE(report.diagnostics.has_errors());
}

TEST(ModelRegistry, DuplicateNameFirstFileWins) {
    const fs::path dir = fresh_dir("dup");
    serve::write_edpm_file((dir / "a.edpm").string(), test_model("same"));
    serve::write_edpm_file((dir / "b.edpm").string(), test_model("same"));
    serve::ModelRegistry registry;
    const auto report = registry.load_directory(dir.string());
    EXPECT_EQ(report.loaded, 1);
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistry, ReloadPicksUpNewAndRemovedFiles) {
    const fs::path dir = fresh_dir("reload");
    serve::write_edpm_file((dir / "a.edpm").string(), test_model("model-a"));
    serve::ModelRegistry registry;
    registry.load_directory(dir.string());
    EXPECT_EQ(registry.size(), 1u);

    serve::write_edpm_file((dir / "b.edpm").string(), test_model("model-b"));
    fs::remove(dir / "a.edpm");
    const auto report = registry.reload();
    EXPECT_EQ(report.loaded, 1);
    EXPECT_EQ(report.removed, 1);
    EXPECT_EQ(registry.find("model-a"), nullptr);
    EXPECT_NE(registry.find("model-b"), nullptr);
}

TEST(ModelRegistry, CorruptReloadKeepsPreviousGoodModel) {
    const fs::path dir = fresh_dir("corrupt-reload");
    serve::write_edpm_file((dir / "a.edpm").string(), test_model("model-a"));
    serve::ModelRegistry registry;
    registry.load_directory(dir.string());
    const auto before = registry.find("model-a");
    ASSERT_NE(before, nullptr);

    std::ofstream(dir / "a.edpm") << "EDPM\t1\nbroken beyond repair\n";
    const auto report = registry.reload();
    EXPECT_EQ(report.quarantined, 1);
    EXPECT_EQ(report.removed, 0);
    // The previous good model keeps serving (a bad deploy cannot take down
    // the registry), and handed-out pointers stay valid.
    const auto after = registry.find("model-a");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after, before);
}

TEST(ModelRegistry, RejectsMissingDirectory) {
    serve::ModelRegistry registry;
    EXPECT_THROW(registry.load_directory("/nonexistent/serve-models"), Error);
    EXPECT_THROW(registry.reload(), Error);
}

// ---------------------------------------------------------------------------
// Query engine
// ---------------------------------------------------------------------------

std::shared_ptr<serve::QueryEngine> engine_over(serve::ServableModel model) {
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->add(std::make_shared<const serve::ServableModel>(std::move(model)));
    return std::make_shared<serve::QueryEngine>(std::move(registry));
}

TEST(QueryEngine, SerializeLoadQueryIsByteIdenticalForEveryKind) {
    // The headline round-trip property: answers from a model that went
    // through the on-disk format match the in-memory model byte for byte,
    // for every query kind.
    auto memory_engine = engine_over(test_model());
    std::istringstream is(edpm_text(test_model()));
    auto loaded_engine = engine_over(serve::read_edpm(is));
    for (const auto& request : all_kind_requests("cifar10-weak")) {
        EXPECT_EQ(loaded_engine->execute(request),
                  memory_engine->execute(request))
            << request;
    }
}

TEST(QueryEngine, ResponsesAreWellFormed) {
    auto engine = engine_over(test_model());
    EXPECT_EQ(engine->execute("ping"), "ok pong");
    EXPECT_EQ(engine->execute("list"), "ok 1 cifar10-weak");
    EXPECT_EQ(engine->execute("predict cifar10-weak 16").substr(0, 5), "ok t=");
    EXPECT_EQ(engine->execute("cost cifar10-weak 16").substr(0, 8), "ok cost=");
    EXPECT_EQ(engine->execute("search cifar10-weak 1e6 1e6 2 4 8")
                  .substr(0, 8),
              "ok best=");
    EXPECT_EQ(engine->execute("whatif cifar10-weak 16 interconnect:2")
                  .substr(0, 8),
              "ok base=");
    EXPECT_EQ(engine->execute("advise cifar10-weak 16 3").substr(0, 5),
              "ok n=");
}

TEST(QueryEngine, WhatifIdentityIsBitExactAndErrorsNameTheScenario) {
    auto engine = engine_over(test_model());
    // A zero-magnitude scenario reports a saving of exactly 0 and a scenario
    // time byte-identical to the baseline (shortest-round-trip formatting of
    // equal doubles is equal text).
    const std::string response =
        engine->execute("whatif cifar10-weak 16 identity");
    EXPECT_NE(response.find(" saving=0 "), std::string::npos) << response;
    const std::size_t base_pos = response.find("base=");
    const std::size_t time_pos = response.find(" time=");
    ASSERT_NE(base_pos, std::string::npos);
    ASSERT_NE(time_pos, std::string::npos);
    const std::string base = response.substr(
        base_pos + 5, time_pos - (base_pos + 5));
    EXPECT_NE(response.find(" time=" + base + " "), std::string::npos)
        << response;
    // Malformed scenarios map to err lines that name the offending piece.
    const std::string bad = engine->execute("whatif cifar10-weak 16 bogus:2");
    EXPECT_EQ(bad.substr(0, 4), "err ");
    EXPECT_NE(bad.find("bogus"), std::string::npos) << bad;
    const std::string conflict = engine->execute(
        "whatif cifar10-weak 16 collective:ring+collective:tree");
    EXPECT_EQ(conflict.substr(0, 4), "err ");
    EXPECT_NE(conflict.find("collective"), std::string::npos) << conflict;
}

TEST(QueryEngine, ErrorsAreResponsesNotExceptions) {
    auto engine = engine_over(test_model());
    for (const char* bad : {
             "",
             "bogus",
             "predict",
             "predict nosuch 16",
             "predict cifar10-weak notanumber",
             "predict cifar10-weak -4",
             "predict cifar10-weak 16 badphase",
             "speedup cifar10-weak 2",
             "cost cifar10-weak 16 0",
             "search cifar10-weak 1e6",
             "whatif cifar10-weak 16",
             "whatif cifar10-weak 16 bogus:2",
             "whatif cifar10-weak 16 interconnect:0",
             "whatif cifar10-weak 16 overlap:1.5",
             "whatif cifar10-weak 16 collective:ring+collective:tree",
             "whatif cifar10-weak 16 interconnect:2 extra",
             "whatif cifar10-weak 1 interconnect:2",
             "whatif nosuch 16 interconnect:2",
             "advise cifar10-weak 16 0",
             "advise cifar10-weak 16 999",
             "advise cifar10-weak 16 2.5",
             "advise nosuch 16",
         }) {
        std::string response;
        EXPECT_NO_THROW(response = engine->execute(bad)) << bad;
        EXPECT_EQ(response.substr(0, 4), "err ") << bad;
    }
}

TEST(QueryEngine, CountsRequestsLatencyAndErrors) {
    auto engine = engine_over(test_model());
    engine->execute("predict cifar10-weak 16");
    engine->execute("predict nosuch 16");
    engine->execute("ping");
    const auto counters = engine->counters();
    const auto& predict =
        counters[static_cast<int>(serve::QueryKind::Predict)];
    EXPECT_EQ(predict.requests, 2u);
    EXPECT_EQ(predict.errors, 1u);
    EXPECT_GE(predict.total_latency_us, predict.max_latency_us);
    EXPECT_EQ(counters[static_cast<int>(serve::QueryKind::Ping)].requests, 1u);
    const std::string stats = engine->execute("stats");
    EXPECT_EQ(stats.substr(0, 3), "ok ");
    EXPECT_NE(stats.find("predict=2:1:"), std::string::npos) << stats;
}

TEST(QueryEngine, ReloadRequestRefreshesTheRegistry) {
    const fs::path dir = fresh_dir("engine-reload");
    serve::write_edpm_file((dir / "a.edpm").string(), test_model("model-a"));
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->load_directory(dir.string());
    serve::QueryEngine engine(registry);
    EXPECT_EQ(engine.execute("list"), "ok 1 model-a");
    serve::write_edpm_file((dir / "b.edpm").string(), test_model("model-b"));
    EXPECT_EQ(engine.execute("reload").substr(0, 3), "ok ");
    EXPECT_EQ(engine.execute("list"), "ok 2 model-a model-b");
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

TEST(ServeDaemon, AnswersMatchLibraryByteForByte) {
    auto engine = engine_over(test_model());
    serve::ServerOptions options;
    options.threads = 2;
    serve::ServeDaemon daemon(engine, options);
    daemon.start();
    ASSERT_GT(daemon.port(), 0);

    std::vector<std::string> requests = all_kind_requests("cifar10-weak");
    requests.emplace_back("predict nosuch 16");  // errors travel too
    const std::vector<std::string> responses =
        serve::query_daemon("127.0.0.1", daemon.port(), requests);
    auto reference = engine_over(test_model());
    ASSERT_EQ(responses.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(responses[i], reference->execute(requests[i]))
            << requests[i];
    }
    daemon.stop();
    daemon.wait();
    EXPECT_FALSE(daemon.running());
}

TEST(ServeDaemon, ConcurrentClientsGetDeterministicAnswers) {
    auto engine = engine_over(test_model());
    serve::ServerOptions options;
    options.threads = 4;
    serve::ServeDaemon daemon(engine, options);
    daemon.start();

    const std::vector<std::string> requests =
        all_kind_requests("cifar10-weak");
    auto reference = engine_over(test_model());
    std::vector<std::string> expected;
    for (const auto& r : requests) {
        expected.push_back(reference->execute(r));
    }

    constexpr int kClients = 8;
    std::vector<std::vector<std::string>> got(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            got[c] = serve::query_daemon("127.0.0.1", daemon.port(), requests);
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(got[c], expected) << "client " << c;
    }
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, ShutdownRequestStopsTheDaemon) {
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();
    const auto responses =
        serve::query_daemon("127.0.0.1", daemon.port(), {"ping", "shutdown"});
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0], "ok pong");
    EXPECT_EQ(responses[1], "ok bye");
    daemon.wait();
    EXPECT_FALSE(daemon.running());
}

// ---------------------------------------------------------------------------
// Event-loop robustness (adversarial clients)
// ---------------------------------------------------------------------------

std::uint64_t now_ns() { return obs::steady_clock_instance().now_ns(); }

TEST(ServeDaemon, StalledConnectionDoesNotBlockOtherClients) {
    // The head-of-line regression test: with the old batch-accept-and-barrier
    // loop, a connection that sends nothing pinned every later client until
    // the recv timeout. With the event loop, a fast client on a second
    // connection must be served immediately while the stalled one idles.
    auto engine = engine_over(test_model());
    serve::ServerOptions options;
    options.threads = 2;
    options.recv_timeout_ms = 30000;  // a stalled HOL would cost ~30s
    serve::ServeDaemon daemon(engine, options);
    daemon.start();

    serve::FdGuard stalled(
        serve::connect_to("127.0.0.1", daemon.port(), 5000));
    // Half a request line, never completed: the connection stays open and
    // request-less for the whole test.
    serve::send_all(stalled.get(), "predict cifar10-");

    const std::uint64_t begin = now_ns();
    const std::vector<std::string> requests =
        all_kind_requests("cifar10-weak");
    const std::vector<std::string> responses =
        serve::query_daemon("127.0.0.1", daemon.port(), requests);
    const double elapsed_s =
        static_cast<double>(now_ns() - begin) / 1e9;

    auto reference = engine_over(test_model());
    ASSERT_EQ(responses.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(responses[i], reference->execute(requests[i]));
    }
    // Far below the 30s idle timeout the stalled connection is sitting on.
    EXPECT_LT(elapsed_s, 10.0);
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, SlowLorisByteAtATimeIsServed) {
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();
    serve::FdGuard fd(serve::connect_to("127.0.0.1", daemon.port(), 5000));
    const std::string request = "predict cifar10-weak 16\n";
    for (const char byte : request) {
        serve::send_all(fd.get(), std::string(1, byte));
        ::usleep(1000);
    }
    serve::LineReader reader(fd.get(), serve::kMaxRequestLine);
    std::string line;
    ASSERT_TRUE(reader.next_line(line));
    auto reference = engine_over(test_model());
    EXPECT_EQ(line, reference->execute("predict cifar10-weak 16"));
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, LineAtExactlyMaxLengthIsServed) {
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();
    serve::FdGuard fd(serve::connect_to("127.0.0.1", daemon.port(), 5000));
    // Exactly kMaxRequestLine bytes before the newline: still a legal line.
    serve::send_all(fd.get(),
                    std::string(serve::kMaxRequestLine, 'a') + "\n");
    // The error response echoes the command, so it is longer than the
    // request; give the client-side reader comfortable headroom.
    serve::LineReader reader(fd.get(), serve::kMaxRequestLine + 256);
    std::string line;
    ASSERT_TRUE(reader.next_line(line));
    EXPECT_EQ(line.substr(0, 4), "err ");
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, OversizedLineClosesTheConnection) {
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();
    serve::FdGuard fd(serve::connect_to("127.0.0.1", daemon.port(), 5000));
    // One byte past the limit: the daemon must drop the connection without
    // answering rather than buffer an unbounded line.
    serve::send_all(fd.get(),
                    std::string(serve::kMaxRequestLine + 1, 'a') + "\n");
    serve::LineReader reader(fd.get(), serve::kMaxRequestLine + 16);
    std::string line;
    EXPECT_FALSE(reader.next_line(line));
    EXPECT_EQ(reader.status(), serve::ReadStatus::Eof);
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, UnterminatedTrailingLineIsServed) {
    // A client may send its last request without a newline and half-close;
    // EOF terminates the line.
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();
    serve::FdGuard fd(serve::connect_to("127.0.0.1", daemon.port(), 5000));
    serve::send_all(fd.get(), "ping\nping");
    ::shutdown(fd.get(), SHUT_WR);
    serve::LineReader reader(fd.get(), serve::kMaxRequestLine);
    std::string line;
    ASSERT_TRUE(reader.next_line(line));
    EXPECT_EQ(line, "ok pong");
    ASSERT_TRUE(reader.next_line(line));
    EXPECT_EQ(line, "ok pong");
    EXPECT_FALSE(reader.next_line(line));
    EXPECT_EQ(reader.status(), serve::ReadStatus::Eof);
    daemon.stop();
    daemon.wait();
}

TEST(ServeDaemon, ShutdownDrainsPipelinedRequestsOnLiveConnections) {
    // A `shutdown` from one client must not abort another client's already-
    // sent requests: the drain serves them all before the daemon exits.
    auto engine = engine_over(test_model());
    serve::ServerOptions options;
    options.threads = 2;
    serve::ServeDaemon daemon(engine, options);
    daemon.start();

    serve::FdGuard pipelined(
        serve::connect_to("127.0.0.1", daemon.port(), 5000));
    constexpr int kPipelined = 10;
    std::string burst;
    for (int i = 0; i < kPipelined; ++i) {
        burst += "predict cifar10-weak 16\n";
    }
    serve::send_all(pipelined.get(), burst);

    const auto shutdown_response =
        serve::query_daemon("127.0.0.1", daemon.port(), {"shutdown"});
    ASSERT_EQ(shutdown_response.size(), 1u);
    EXPECT_EQ(shutdown_response[0], "ok bye");

    auto reference = engine_over(test_model());
    const std::string expected = reference->execute("predict cifar10-weak 16");
    serve::LineReader reader(pipelined.get(), serve::kMaxRequestLine);
    std::string line;
    for (int i = 0; i < kPipelined; ++i) {
        ASSERT_TRUE(reader.next_line(line)) << "response " << i;
        EXPECT_EQ(line, expected);
    }
    daemon.wait();
    EXPECT_FALSE(daemon.running());
}

std::atomic<int> g_sigusr1_count{0};

void count_sigusr1(int) { g_sigusr1_count.fetch_add(1); }

TEST(ServeDaemon, ClientSurvivesSignalInterruption) {
    // EINTR robustness: pepper the client thread with SIGUSR1 (handler
    // installed *without* SA_RESTART, so every blocking connect/send/recv
    // can fail with EINTR) while it runs full query batches. Every syscall
    // wrapper in socket_util must retry, so all responses still arrive.
    struct sigaction action {};
    action.sa_handler = count_sigusr1;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately no SA_RESTART
    struct sigaction previous {};
    ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();

    const std::vector<std::string> requests =
        all_kind_requests("cifar10-weak");
    auto reference = engine_over(test_model());
    std::vector<std::string> expected;
    for (const auto& r : requests) {
        expected.push_back(reference->execute(r));
    }

    std::vector<std::vector<std::string>> got;
    std::atomic<bool> finished{false};
    std::atomic<bool> pepper_done{false};
    std::thread client([&] {
        for (int round = 0; round < 10; ++round) {
            got.push_back(
                serve::query_daemon("127.0.0.1", daemon.port(), requests));
        }
        finished.store(true);
        while (!pepper_done.load()) {  // stay alive while signals incoming
            ::usleep(200);
        }
    });
    while (!finished.load()) {
        pthread_kill(client.native_handle(), SIGUSR1);
        ::usleep(200);
    }
    pepper_done.store(true);
    client.join();
    ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

    EXPECT_GT(g_sigusr1_count.load(), 0);
    ASSERT_EQ(got.size(), 10u);
    for (const auto& round : got) {
        EXPECT_EQ(round, expected);
    }
    daemon.stop();
    daemon.wait();
}

// ---------------------------------------------------------------------------
// Registry sharding
// ---------------------------------------------------------------------------

TEST(ModelRegistry, NamesAreSortedAcrossShards) {
    serve::ModelRegistry registry;
    std::vector<std::string> expected;
    for (int i = 0; i < 40; ++i) {
        const std::string name = "model-" + std::to_string(i);
        registry.add(std::make_shared<const serve::ServableModel>(
            test_model(name)));
        expected.push_back(name);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(registry.names(), expected);
    EXPECT_EQ(registry.size(), 40u);
}

TEST(ModelRegistry, ConcurrentReadersDuringReloadAlwaysFindModels) {
    // Readers racing hot reloads must never observe a missing or null model:
    // each shard swaps atomically and keep-last-good holds per shard.
    const fs::path dir = fresh_dir("shard-race");
    std::vector<std::string> names;
    for (int i = 0; i < 8; ++i) {
        const std::string name = "race-" + std::to_string(i);
        serve::write_edpm_file((dir / (name + ".edpm")).string(),
                               test_model(name));
        names.push_back(name);
    }
    serve::ModelRegistry registry;
    registry.load_directory(dir.string());

    std::atomic<bool> stop{false};
    std::atomic<int> misses{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                for (const auto& name : names) {
                    if (registry.find(name) == nullptr) {
                        misses.fetch_add(1);
                    }
                }
                const auto all = registry.names();
                if (!std::is_sorted(all.begin(), all.end())) {
                    misses.fetch_add(1);
                }
            }
        });
    }
    for (int round = 0; round < 20; ++round) {
        registry.reload();
        registry.add(std::make_shared<const serve::ServableModel>(
            test_model("programmatic-" + std::to_string(round))));
    }
    stop.store(true);
    for (auto& t : readers) {
        t.join();
    }
    EXPECT_EQ(misses.load(), 0);
    EXPECT_EQ(registry.size(), names.size() + 20u);
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

TEST(LoadGen, ClosedLoopMeasuresEveryResponse) {
    auto engine = engine_over(test_model());
    serve::ServerOptions options;
    options.threads = 2;
    serve::ServeDaemon daemon(engine, options);
    daemon.start();

    serve::LoadGenOptions lg;
    lg.port = daemon.port();
    lg.connections = 4;
    lg.requests_per_connection = 25;
    lg.pipeline_depth = 4;
    lg.mode = serve::LoadMode::Closed;
    lg.requests = {"ping", "predict cifar10-weak 16"};
    const serve::LoadGenResult result = serve::run_load(lg);
    EXPECT_EQ(result.requests_sent, 100u);
    EXPECT_EQ(result.responses_received, 100u);
    EXPECT_EQ(result.error_responses, 0u);
    EXPECT_GT(result.qps, 0.0);
    EXPECT_GT(result.wall_seconds, 0.0);
    EXPECT_GE(result.latency_p99_us, result.latency_p50_us);
    EXPECT_GE(result.latency_max_us, 0.0);
    daemon.stop();
    daemon.wait();
}

TEST(LoadGen, OpenLoopCountsErrorResponses) {
    auto engine = engine_over(test_model());
    serve::ServeDaemon daemon(engine, serve::ServerOptions{});
    daemon.start();

    serve::LoadGenOptions lg;
    lg.port = daemon.port();
    lg.connections = 2;
    lg.requests_per_connection = 10;
    lg.mode = serve::LoadMode::Open;
    lg.requests = {"ping", "predict nosuch 16"};  // every 2nd is a protocol err
    const serve::LoadGenResult result = serve::run_load(lg);
    EXPECT_EQ(result.responses_received, 20u);
    EXPECT_EQ(result.error_responses, 10u);
    daemon.stop();
    daemon.wait();
}

TEST(LoadGen, RejectsBadOptions) {
    serve::LoadGenOptions lg;
    lg.requests = {"ping"};
    EXPECT_THROW(serve::run_load(lg), InvalidArgumentError);  // port unset
    lg.port = 1;
    lg.connections = 0;
    EXPECT_THROW(serve::run_load(lg), InvalidArgumentError);
    lg.connections = 1;
    lg.requests.clear();
    EXPECT_THROW(serve::run_load(lg), InvalidArgumentError);
}

std::vector<serve::LoadGenRecord> fake_records() {
    serve::LoadGenRecord closed;
    closed.mode = "closed";
    closed.result.qps = 1000.0;
    closed.result.latency_p99_us = 5000.0;
    closed.result.error_responses = 0;
    closed.result.responses_received = 400;
    serve::LoadGenRecord open = closed;
    open.mode = "open";
    open.result.qps = 2000.0;
    return {closed, open};
}

TEST(LoadGen, ThresholdsPassAndFailCorrectly) {
    const auto records = fake_records();
    EXPECT_TRUE(serve::check_load_thresholds(
                    R"({"rules": [
                        {"mode": "*", "metric": "errors", "max": 0},
                        {"mode": "closed", "metric": "qps", "min": 500},
                        {"mode": "open", "metric": "latency_p99_us",
                         "max": 10000}]})",
                    records)
                    .empty());
    // min violated on the closed record only.
    const auto min_violation = serve::check_load_thresholds(
        R"({"rules": [{"mode": "closed", "metric": "qps", "min": 1500}]})",
        records);
    ASSERT_EQ(min_violation.size(), 1u);
    EXPECT_NE(min_violation[0].find("below min"), std::string::npos);
    // A wildcard rule checks every record: one of the two trips it.
    EXPECT_EQ(serve::check_load_thresholds(
                  R"({"rules": [{"mode": "*", "metric": "qps",
                                 "max": 1500}]})",
                  records)
                  .size(),
              1u);
}

TEST(LoadGen, StaleThresholdRuleIsAViolation) {
    const auto records = fake_records();
    const auto violations = serve::check_load_thresholds(
        R"({"rules": [{"mode": "burst", "metric": "qps", "min": 1}]})",
        records);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("matched no measurement record"),
              std::string::npos);
    const auto unknown = serve::check_load_thresholds(
        R"({"rules": [{"mode": "*", "metric": "nosuch", "min": 1}]})",
        records);
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_NE(unknown[0].find("unknown metric"), std::string::npos);
    EXPECT_THROW(serve::check_load_thresholds(R"({"no_rules": []})", records),
                 ParseError);
}

}  // namespace
