#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"
#include "extradeep/ingest.hpp"
#include "profiling/edp_io.hpp"

// Golden end-to-end fixture: a tiny simulated workload checked in as .edp
// files (tests/data/golden/) together with its expected aggregation output,
// so ingestion/aggregation regressions are caught without the simulator in
// the loop. The numbers are hand-verifiable: see the per-file gemm step
// durations in the fixtures and the medians in expected_aggregation.tsv.

using namespace extradeep;

namespace {

std::string data_dir() { return std::string(EXTRADEEP_TEST_DATA_DIR) + "/golden"; }

std::vector<std::string> good_files() {
    return {
        data_dir() + "/golden_x2_rep0.edp",
        data_dir() + "/golden_x2_rep1.edp",
        data_dir() + "/golden_x4_rep0.edp",
        data_dir() + "/golden_x4_rep1.edp",
    };
}

std::vector<std::string> split_tabs(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            out.push_back(line.substr(pos));
            break;
        }
        out.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return out;
}

trace::Phase parse_phase(const std::string& name) {
    if (name == "computation") return trace::Phase::Computation;
    if (name == "communication") return trace::Phase::Communication;
    if (name == "memory ops") return trace::Phase::MemoryOp;
    throw InvalidArgumentError("unknown phase: " + name);
}

void check_against_expected(const aggregation::ExperimentData& data) {
    std::ifstream expected(data_dir() + "/expected_aggregation.tsv");
    ASSERT_TRUE(expected.good());
    std::string line;
    int rows = 0;
    while (std::getline(expected, line)) {
        if (line.empty()) continue;
        const auto f = split_tabs(line);
        ++rows;
        const double x1 = std::stod(f[1]);
        const aggregation::ConfigurationData* config = data.find(x1);
        ASSERT_NE(config, nullptr) << "missing configuration x1=" << x1;
        if (f[0] == "K") {
            ASSERT_EQ(f.size(), 10u) << line;
            const aggregation::KernelStats* k = config->find_kernel(f[2]);
            ASSERT_NE(k, nullptr) << "missing kernel " << f[2];
            EXPECT_EQ(trace::category_name(k->category), f[3]) << line;
            for (int m = 0; m < 3; ++m) {
                EXPECT_DOUBLE_EQ(k->train[m], std::stod(f[4 + m])) << line;
                EXPECT_DOUBLE_EQ(k->val[m], std::stod(f[7 + m])) << line;
            }
        } else if (f[0] == "PH") {
            ASSERT_EQ(f.size(), 5u) << line;
            const trace::Phase phase = parse_phase(f[2]);
            EXPECT_DOUBLE_EQ(config->phase_metric(
                                 phase, aggregation::Metric::Time, true),
                             std::stod(f[3]))
                << line;
            EXPECT_DOUBLE_EQ(config->phase_metric(
                                 phase, aggregation::Metric::Time, false),
                             std::stod(f[4]))
                << line;
        } else {
            FAIL() << "unknown expected-row tag: " << line;
        }
    }
    EXPECT_EQ(rows, 12);
}

}  // namespace

TEST(EdpGolden, StrictParseAndAggregateMatchesExpected) {
    // The regression core: strict-parse the checked-in files, aggregate per
    // configuration, compare every kernel median and phase total.
    aggregation::ExperimentData data("x1");
    for (const double x1 : {2.0, 4.0}) {
        std::vector<profiling::ProfiledRun> runs;
        for (int rep = 0; rep < 2; ++rep) {
            std::ostringstream path;
            path << data_dir() << "/golden_x" << static_cast<int>(x1) << "_rep"
                 << rep << ".edp";
            runs.push_back(profiling::read_edp_file(path.str()));
        }
        data.add(aggregation::aggregate_runs(runs));
    }
    check_against_expected(data);
}

TEST(EdpGolden, IngestPipelineMatchesExpected) {
    // Same expectations through the full tolerant ingestion pipeline.
    const IngestResult result = ingest_edp_files(good_files());
    EXPECT_EQ(result.configs_kept, 2u);
    EXPECT_EQ(result.runs_kept, 4u);
    EXPECT_FALSE(result.diagnostics.has_errors());
    check_against_expected(result.data);
}

TEST(EdpGolden, CorruptFileIsDroppedWithoutChangingResults) {
    // Adding a truncated, NaN-ridden file must not perturb the surviving
    // aggregation in any bit, only add diagnostics.
    std::vector<std::string> files = good_files();
    files.push_back(data_dir() + "/golden_corrupt.edp");
    const IngestResult result = ingest_edp_files(files);
    EXPECT_EQ(result.configs_kept, 2u);
    EXPECT_EQ(result.runs_kept, 4u);
    EXPECT_EQ(result.runs_total, 5u);
    EXPECT_TRUE(result.diagnostics.has_errors());
    EXPECT_EQ(result.data.find(6.0), nullptr);
    check_against_expected(result.data);
}

TEST(EdpGolden, CorruptFileAloneYieldsNoConfigurations) {
    const std::vector<std::string> files = {data_dir() +
                                            "/golden_corrupt.edp"};
    const IngestResult result = ingest_edp_files(files);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.configs_kept, 0u);
    EXPECT_TRUE(result.diagnostics.has_errors());
}

TEST(EdpGolden, KernelsSeenInBothConfigsAreModelable) {
    const IngestResult result = ingest_edp_files(good_files());
    const auto modelable = result.data.modelable_kernels(2);
    ASSERT_EQ(modelable.size(), 3u);
    EXPECT_EQ(modelable[0], "allreduce");
    EXPECT_EQ(modelable[1], "gemm");
    EXPECT_EQ(modelable[2], "h2d");
}
