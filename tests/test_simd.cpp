// Kernel-level equivalence tests for common/simd: the Vector backend must
// produce bit-identical results to the Scalar reference for every kernel, at
// every length (especially non-multiple-of-4 tails), on awkward values
// (signed zeros, denormals, huge magnitudes). The fitter-level counterpart
// lives in test_fitter_parallel.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

using namespace extradeep;

namespace {

class ScopedBackend {
public:
    explicit ScopedBackend(simd::Backend b) : saved_(simd::active_backend()) {
        simd::set_backend(b);
    }
    ~ScopedBackend() { simd::set_backend(saved_); }

private:
    simd::Backend saved_;
};

/// Random-but-awkward test vector: mixes magnitudes across ~30 orders with
/// occasional exact zeros and negatives, so any reassociation or skipped
/// element in a kernel changes some bit somewhere.
std::vector<double> awkward(std::uint64_t seed, std::size_t n) {
    Rng rng(seed);
    std::vector<double> out(n);
    for (double& v : out) {
        const double mag = std::pow(10.0, rng.uniform(-15.0, 15.0));
        const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
        v = rng.bernoulli(0.1) ? 0.0 : sign * mag * rng.uniform01();
    }
    return out;
}

/// Bitwise equality, distinguishing +0.0 from -0.0.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << "element " << i << ": " << a[i] << " vs " << b[i];
    }
}

void expect_bits_equal(double a, double b) {
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << a << " vs " << b;
}

// Lengths covering the empty case, every tail remainder, and longer runs.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 13, 64, 97, 256};

}  // namespace

TEST(SimdBackendSwitch, SetAndQuery) {
    const simd::Backend saved = simd::active_backend();
    simd::set_backend(simd::Backend::Scalar);
    EXPECT_EQ(simd::active_backend(), simd::Backend::Scalar);
    EXPECT_STREQ(simd::backend_name(simd::active_backend()), "scalar");
    simd::set_backend(simd::Backend::Vector);
    EXPECT_EQ(simd::active_backend(), simd::Backend::Vector);
    EXPECT_STREQ(simd::backend_name(simd::active_backend()), "vector");
    simd::set_backend(saved);
}

TEST(SimdKernels, MulInplaceBitIdentical) {
    for (const std::size_t n : kLengths) {
        const auto dst0 = awkward(100 + n, n);
        const auto src = awkward(200 + n, n);
        auto scalar = dst0;
        auto vector = dst0;
        {
            const ScopedBackend b(simd::Backend::Scalar);
            simd::mul_inplace(scalar.data(), src.data(), n);
        }
        {
            const ScopedBackend b(simd::Backend::Vector);
            simd::mul_inplace(vector.data(), src.data(), n);
        }
        expect_bits_equal(scalar, vector);
    }
}

TEST(SimdKernels, AxpyBitIdentical) {
    for (const std::size_t n : kLengths) {
        const auto y0 = awkward(300 + n, n);
        const auto x = awkward(400 + n, n);
        for (const double a : {0.0, -0.0, 1.0, -3.5, 1e-300, 7.25e12}) {
            auto scalar = y0;
            auto vector = y0;
            {
                const ScopedBackend b(simd::Backend::Scalar);
                simd::axpy(scalar.data(), a, x.data(), n);
            }
            {
                const ScopedBackend b(simd::Backend::Vector);
                simd::axpy(vector.data(), a, x.data(), n);
            }
            expect_bits_equal(scalar, vector);
        }
    }
}

TEST(SimdKernels, DotBitIdentical) {
    for (const std::size_t n : kLengths) {
        const auto a = awkward(500 + n, n);
        const auto b = awkward(600 + n, n);
        double scalar = 0.0;
        double vector = 0.0;
        {
            const ScopedBackend s(simd::Backend::Scalar);
            scalar = simd::dot(a.data(), b.data(), n);
        }
        {
            const ScopedBackend s(simd::Backend::Vector);
            vector = simd::dot(a.data(), b.data(), n);
        }
        expect_bits_equal(scalar, vector);
    }
}

TEST(SimdKernels, DotEmptyIsZero) {
    EXPECT_EQ(simd::dot(nullptr, nullptr, 0), 0.0);
}

TEST(SimdKernels, NormalEquationsBitIdentical) {
    // Row counts around the quad boundary and column counts matching the
    // fitter's tiny design matrices.
    for (const std::size_t rows : {1u, 3u, 4u, 5u, 10u, 33u}) {
        for (const std::size_t cols : {1u, 2u, 3u, 5u}) {
            auto a = awkward(rows * 41 + cols, rows * cols);
            // Exact zeros exercise the historical zero-skip.
            if (!a.empty()) {
                a[0] = 0.0;
                a[a.size() / 2] = 0.0;
            }
            std::vector<double> scalar(cols * cols);
            std::vector<double> vector(cols * cols);
            {
                const ScopedBackend b(simd::Backend::Scalar);
                simd::normal_equations(a.data(), rows, cols, scalar.data());
            }
            {
                const ScopedBackend b(simd::Backend::Vector);
                simd::normal_equations(a.data(), rows, cols, vector.data());
            }
            expect_bits_equal(scalar, vector);
        }
    }
}

TEST(SimdKernels, NormalEquationsMatchesReferenceLoop) {
    // Against a direct sequential-sum-with-zero-skip reference: the kernel's
    // row-outer-product order must reproduce the classic column-dot loop
    // nest bit for bit (this is what keeps the least_squares covariance
    // identical to the pre-simd implementation).
    const std::size_t rows = 9, cols = 4;
    const auto a = awkward(77, rows * cols);
    std::vector<double> reference(cols * cols, 0.0);
    for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t k = 0; k < rows; ++k) {
            const double v = a[k * cols + i];
            if (v == 0.0) continue;
            for (std::size_t j = 0; j < cols; ++j) {
                reference[i * cols + j] += v * a[k * cols + j];
            }
        }
    }
    for (const simd::Backend backend :
         {simd::Backend::Scalar, simd::Backend::Vector}) {
        const ScopedBackend b(backend);
        std::vector<double> out(cols * cols);
        simd::normal_equations(a.data(), rows, cols, out.data());
        expect_bits_equal(reference, out);
    }
}
