#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dnn/datasets.hpp"
#include "dnn/network.hpp"
#include "dnn/zoo.hpp"

using namespace extradeep::dnn;
using extradeep::InvalidArgumentError;

TEST(TensorShape, ElementsAndBytes) {
    TensorShape s{32, 32, 3};
    EXPECT_EQ(s.elements(), 32 * 32 * 3);
    EXPECT_DOUBLE_EQ(s.bytes(), 4.0 * 32 * 32 * 3);
    EXPECT_EQ(TensorShape{}.elements(), 0);
    EXPECT_EQ(s.to_string(), "(32x32x3)");
}

TEST(Builder, Conv2dShapesAndParams) {
    NetworkBuilder b("t", TensorShape{32, 32, 3});
    b.conv2d(64, 3, 1);
    const NetworkModel m = std::move(b).build();
    const Layer& l = m.layers.front();
    EXPECT_EQ(l.output, (TensorShape{32, 32, 64}));
    EXPECT_EQ(l.params, 3 * 3 * 3 * 64);
    // 2 * Hout*Wout*Cout*Cin*K^2
    EXPECT_DOUBLE_EQ(l.flops_forward, 2.0 * 32 * 32 * 64 * 3 * 9);
    EXPECT_DOUBLE_EQ(l.flops_backward, 2.0 * l.flops_forward);
    EXPECT_EQ(l.kernel_size, 3);
}

TEST(Builder, Conv2dStrideCeilDivision) {
    NetworkBuilder b("t", TensorShape{225, 225, 3});
    b.conv2d(8, 3, 2);
    EXPECT_EQ(b.current_shape(), (TensorShape{113, 113, 8}));
}

TEST(Builder, DepthwiseConvParams) {
    NetworkBuilder b("t", TensorShape{16, 16, 32});
    b.depthwise_conv2d(3, 1);
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().params, 32 * 9);
    EXPECT_EQ(m.layers.front().output, (TensorShape{16, 16, 32}));
}

TEST(Builder, DenseFlattensAndCountsBias) {
    NetworkBuilder b("t", TensorShape{4, 4, 8});
    b.dense(10);
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().params, 4 * 4 * 8 * 10 + 10);
    EXPECT_EQ(m.layers.front().output, TensorShape{10});
}

TEST(Builder, DenseOnSequenceKeepsLength) {
    NetworkBuilder b("t", TensorShape{128, 64});
    b.dense(32);
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().output, (TensorShape{128, 32}));
    EXPECT_EQ(m.layers.front().params, 64 * 32 + 32);
}

TEST(Builder, BatchNormParamsAre2C) {
    NetworkBuilder b("t", TensorShape{8, 8, 16});
    b.batch_norm();
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().params, 32);
}

TEST(Builder, PoolingChangesShapeOnly) {
    NetworkBuilder b("t", TensorShape{32, 32, 16});
    b.max_pool(3, 2);
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().output, (TensorShape{16, 16, 16}));
    EXPECT_EQ(m.layers.front().params, 0);
}

TEST(Builder, GlobalAvgPoolCollapsesSpatialDims) {
    NetworkBuilder b("t", TensorShape{7, 7, 2048});
    b.global_avg_pool();
    EXPECT_EQ(b.current_shape(), TensorShape{2048});
}

TEST(Builder, EmbeddingShapeAndParams) {
    NetworkBuilder b("t", TensorShape{128});
    b.embedding(20000, 64);
    const NetworkModel m = std::move(b).build();
    EXPECT_EQ(m.layers.front().params, 20000 * 64);
    EXPECT_EQ(m.layers.front().output, (TensorShape{128, 64}));
}

TEST(Builder, EmbeddingRequiresSequenceInput) {
    NetworkBuilder b("t", TensorShape{8, 8, 3});
    EXPECT_THROW(b.embedding(100, 8), InvalidArgumentError);
}

TEST(Builder, ConvRequiresImageInput) {
    NetworkBuilder b("t", TensorShape{128});
    EXPECT_THROW(b.conv2d(8, 3, 1), InvalidArgumentError);
}

TEST(Builder, BranchRewindsShapeCursor) {
    NetworkBuilder b("t", TensorShape{16, 16, 8});
    const TensorShape saved = b.mark();
    b.conv2d(32, 3, 1);
    b.branch(saved);
    EXPECT_EQ(b.current_shape(), saved);
}

TEST(NetworkModel, AggregatesAcrossLayers) {
    NetworkBuilder b("t", TensorShape{8, 8, 3});
    b.conv2d(4, 3, 1).batch_norm().activation("relu").dense(10);
    const NetworkModel m = std::move(b).build();
    std::int64_t params = 0;
    double fwd = 0.0;
    for (const auto& l : m.layers) {
        params += l.params;
        fwd += l.flops_forward;
    }
    EXPECT_EQ(m.total_params(), params);
    EXPECT_DOUBLE_EQ(m.flops_forward(), fwd);
    EXPECT_DOUBLE_EQ(m.gradient_bytes(), 4.0 * params);
}

TEST(NetworkModel, BalancedStageBoundsCoverAllLayers) {
    const NetworkModel m = resnet50(TensorShape{32, 32, 3}, 10);
    for (const int stages : {2, 4, 8}) {
        const auto bounds = m.balanced_stage_bounds(stages);
        ASSERT_EQ(bounds.size(), static_cast<std::size_t>(stages));
        EXPECT_EQ(bounds.back(), m.layers.size());
        for (std::size_t i = 1; i < bounds.size(); ++i) {
            EXPECT_GT(bounds[i], bounds[i - 1]);
        }
    }
}

TEST(NetworkModel, BalancedStagesRoughlyEqualFlops) {
    const NetworkModel m = resnet50(TensorShape{224, 224, 3}, 1000);
    const auto bounds = m.balanced_stage_bounds(4);
    const double total = m.flops_forward();
    std::size_t begin = 0;
    for (const auto end : bounds) {
        double stage = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
            stage += m.layers[i].flops_forward;
        }
        EXPECT_GT(stage, total * 0.10);
        EXPECT_LT(stage, total * 0.45);
        begin = end;
    }
}

TEST(NetworkModel, StageBoundsValidation) {
    const NetworkModel m = nnlm(64, 1000, 2);
    EXPECT_THROW(m.balanced_stage_bounds(0), InvalidArgumentError);
    EXPECT_THROW(m.balanced_stage_bounds(1000), InvalidArgumentError);
}

TEST(Zoo, ResNet50ParameterCount) {
    // Canonical torchvision ResNet-50: 25,557,032 parameters.
    const NetworkModel m = resnet50(TensorShape{224, 224, 3}, 1000);
    EXPECT_NEAR(static_cast<double>(m.total_params()), 25557032.0,
                25557032.0 * 0.01);
}

TEST(Zoo, ResNet50FlopsAt224) {
    // Canonical forward cost: ~4.1 GMACs per 224x224 image; this library
    // counts 2 FLOPs per multiply-add, so ~8.2 GFLOPs.
    const NetworkModel m = resnet50(TensorShape{224, 224, 3}, 1000);
    EXPECT_GT(m.flops_forward(), 7.0e9);
    EXPECT_LT(m.flops_forward(), 9.5e9);
}

TEST(Zoo, ResNet50ParamsIndependentOfInputSize) {
    const auto small = resnet50(TensorShape{32, 32, 3}, 10);
    const auto large = resnet50(TensorShape{224, 224, 3}, 10);
    EXPECT_EQ(small.total_params(), large.total_params());
}

TEST(Zoo, EfficientNetB0ParameterCount) {
    // Canonical EfficientNet-B0: ~5.29 M parameters.
    const NetworkModel m = efficientnet_b0(TensorShape{224, 224, 3}, 1000);
    EXPECT_NEAR(static_cast<double>(m.total_params()), 5288548.0,
                5288548.0 * 0.05);
}

TEST(Zoo, EfficientNetSmallerButDeeperThanResNet) {
    const auto eff = efficientnet_b0(TensorShape{224, 224, 3}, 1000);
    const auto res = resnet50(TensorShape{224, 224, 3}, 1000);
    EXPECT_LT(eff.total_params(), res.total_params() / 3);
    EXPECT_LT(eff.flops_forward(), res.flops_forward());
}

TEST(Zoo, Cnn10HasTenHiddenLayers) {
    const NetworkModel m = cnn10(TensorShape{64, 64, 1}, 35);
    int convs = 0;
    int denses = 0;
    for (const auto& l : m.layers) {
        if (l.kind == LayerKind::Conv2d) ++convs;
        if (l.kind == LayerKind::Dense) ++denses;
    }
    EXPECT_EQ(convs, 8);
    EXPECT_EQ(denses, 3);  // 2 hidden + 1 output
}

TEST(Zoo, NnlmDominatedByEmbedding) {
    const NetworkModel m = nnlm(128, 20000, 2);
    std::int64_t embed_params = 0;
    for (const auto& l : m.layers) {
        if (l.kind == LayerKind::Embedding) embed_params += l.params;
    }
    EXPECT_GT(embed_params, m.total_params() * 9 / 10);
}

TEST(Zoo, OutputLayerMatchesClassCount) {
    for (const auto& name : benchmark_names()) {
        const BenchmarkApp app = make_benchmark(name);
        const Layer* fc = nullptr;
        for (const auto& l : app.network.layers) {
            if (l.kind == LayerKind::Dense) fc = &l;
        }
        ASSERT_NE(fc, nullptr) << name;
        EXPECT_EQ(fc->output.dims.back(), app.dataset.num_classes) << name;
    }
}

TEST(Datasets, PresetSampleCounts) {
    EXPECT_EQ(DatasetSpec::cifar10().train_samples, 50000);
    EXPECT_EQ(DatasetSpec::cifar10().val_samples, 10000);
    EXPECT_EQ(DatasetSpec::cifar10().num_classes, 10);
    EXPECT_EQ(DatasetSpec::cifar100().num_classes, 100);
    EXPECT_EQ(DatasetSpec::imagenet().train_samples, 1281167);
    EXPECT_EQ(DatasetSpec::imagenet().num_classes, 1000);
    EXPECT_EQ(DatasetSpec::imdb().train_samples + DatasetSpec::imdb().val_samples,
              50000);  // paper: "only 50 000 samples"
    EXPECT_GT(DatasetSpec::speech_commands().train_samples, 80000);
}

TEST(Datasets, AllReturnsFiveInPaperOrder) {
    const auto all = DatasetSpec::all();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "CIFAR-10");
    EXPECT_EQ(all[4].name, "Speech Commands");
}

TEST(Datasets, BenchmarkMappingMatchesPaper) {
    // Sec. 4.1: CNN-10 (Speech Commands), NNLM (IMDB), ResNet-50
    // (CIFAR-10/100), EfficientNet-B0 (ImageNet).
    EXPECT_EQ(make_benchmark("CIFAR-10").network.name, "ResNet-50");
    EXPECT_EQ(make_benchmark("CIFAR-100").network.name, "ResNet-50");
    EXPECT_EQ(make_benchmark("ImageNet").network.name, "EfficientNet-B0");
    EXPECT_EQ(make_benchmark("IMDB").network.name, "NNLM");
    EXPECT_EQ(make_benchmark("Speech Commands").network.name, "CNN-10");
}

TEST(Datasets, UnknownBenchmarkThrows) {
    EXPECT_THROW(make_benchmark("MNIST"), InvalidArgumentError);
}

TEST(Datasets, NetworkInputMatchesSampleShape) {
    for (const auto& name : benchmark_names()) {
        const BenchmarkApp app = make_benchmark(name);
        EXPECT_EQ(app.network.input, app.dataset.sample_shape) << name;
    }
}
