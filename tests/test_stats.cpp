#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace stats = extradeep::stats;
using extradeep::InvalidArgumentError;

TEST(Mean, SimpleValues) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(v), 2.5);
}

TEST(Mean, SingleValue) {
    const std::vector<double> v = {7.0};
    EXPECT_DOUBLE_EQ(stats::mean(v), 7.0);
}

TEST(Mean, ThrowsOnEmpty) {
    EXPECT_THROW(stats::mean({}), InvalidArgumentError);
}

TEST(Sum, KahanCompensationKeepsPrecision) {
    // Many tiny values next to one huge value: naive summation in the other
    // order would lose them entirely (1e10 + 1e-10 == 1e10 in double).
    std::vector<double> v(1000000, 1e-10);
    v.push_back(1e10);
    const double result = stats::sum(v);
    // The final rounding at magnitude 1e10 has ulp ~1.9e-6; Kahan keeps the
    // tiny contributions up to that limit.
    EXPECT_NEAR(result - 1e10, 1e-4, 2e-6);
    double naive = 1e10;
    for (int i = 0; i < 1000000; ++i) {
        naive += 1e-10;
    }
    EXPECT_DOUBLE_EQ(naive, 1e10);  // the naive order drops everything
}

TEST(Median, OddCount) {
    const std::vector<double> v = {5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::median(v), 3.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::median(v), 2.5);
}

TEST(Median, DoesNotModifyInput) {
    const std::vector<double> v = {3.0, 1.0, 2.0};
    stats::median(v);
    EXPECT_EQ(v[0], 3.0);
    EXPECT_EQ(v[1], 1.0);
}

TEST(Median, RobustToOutlier) {
    const std::vector<double> v = {1.0, 1.1, 0.9, 1.05, 1000.0};
    EXPECT_NEAR(stats::median(v), 1.05, 1e-12);
}

TEST(Quantile, Endpoints) {
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::quantile(v, 1.0), 4.0);
}

TEST(Quantile, LinearInterpolation) {
    const std::vector<double> v = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.25), 2.5);
}

TEST(Quantile, MedianAgreement) {
    const std::vector<double> v = {1.0, 9.0, 5.0, 3.0, 7.0};
    EXPECT_DOUBLE_EQ(stats::quantile(v, 0.5), stats::median(v));
}

TEST(Quantile, ThrowsOutOfRange) {
    const std::vector<double> v = {1.0};
    EXPECT_THROW(stats::quantile(v, -0.1), InvalidArgumentError);
    EXPECT_THROW(stats::quantile(v, 1.1), InvalidArgumentError);
}

TEST(Stddev, KnownValue) {
    const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(stats::stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stddev, ZeroForSingleValue) {
    const std::vector<double> v = {42.0};
    EXPECT_DOUBLE_EQ(stats::stddev(v), 0.0);
}

TEST(Mad, KnownValue) {
    const std::vector<double> v = {1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
    EXPECT_DOUBLE_EQ(stats::mad(v), 1.0);
}

TEST(CoefficientOfVariation, Basic) {
    const std::vector<double> v = {9.0, 10.0, 11.0};
    EXPECT_NEAR(stats::coefficient_of_variation(v), 0.1, 1e-12);
}

TEST(CoefficientOfVariation, ThrowsOnZeroMean) {
    const std::vector<double> v = {-1.0, 1.0};
    EXPECT_THROW(stats::coefficient_of_variation(v), InvalidArgumentError);
}

TEST(Smape, PerfectPredictionIsZero) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::smape(a, a), 0.0);
}

TEST(Smape, SymmetricInArguments) {
    const std::vector<double> p = {1.0, 2.0};
    const std::vector<double> a = {2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::smape(p, a), stats::smape(a, p));
}

TEST(Smape, BothZeroContributesNothing) {
    const std::vector<double> p = {0.0, 1.0};
    const std::vector<double> a = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(stats::smape(p, a), 0.0);
}

TEST(Smape, BoundedBy200Percent) {
    const std::vector<double> p = {100.0};
    const std::vector<double> a = {0.001};
    EXPECT_LE(stats::smape(p, a), 200.0);
    EXPECT_GT(stats::smape(p, a), 199.0);
}

TEST(Smape, ThrowsOnSizeMismatch) {
    EXPECT_THROW(stats::smape(std::vector<double>{1.0},
                              std::vector<double>{1.0, 2.0}),
                 InvalidArgumentError);
}

TEST(Mape, KnownValue) {
    const std::vector<double> p = {110.0, 90.0};
    const std::vector<double> a = {100.0, 100.0};
    EXPECT_NEAR(stats::mape(p, a), 10.0, 1e-12);
}

TEST(Mape, SkipsZeroActuals) {
    const std::vector<double> p = {5.0, 110.0};
    const std::vector<double> a = {0.0, 100.0};
    EXPECT_NEAR(stats::mape(p, a), 10.0, 1e-12);
}

TEST(Mape, ThrowsWhenAllActualsZero) {
    const std::vector<double> p = {1.0};
    const std::vector<double> a = {0.0};
    EXPECT_THROW(stats::mape(p, a), InvalidArgumentError);
}

TEST(PercentError, Basic) {
    EXPECT_DOUBLE_EQ(stats::percent_error(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(stats::percent_error(90.0, 100.0), 10.0);
}

TEST(PercentError, ThrowsOnZeroActual) {
    EXPECT_THROW(stats::percent_error(1.0, 0.0), InvalidArgumentError);
}

TEST(Rss, KnownValue) {
    const std::vector<double> p = {1.0, 2.0};
    const std::vector<double> a = {0.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::rss(p, a), 5.0);
}

TEST(RSquared, PerfectFit) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::r_squared(a, a), 1.0);
}

TEST(RSquared, MeanPredictorScoresZero) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> p = {2.0, 2.0, 2.0};
    EXPECT_NEAR(stats::r_squared(p, a), 0.0, 1e-12);
}

TEST(RSquared, ConstantActuals) {
    const std::vector<double> a = {2.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::r_squared(a, a), 1.0);
    const std::vector<double> p = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::r_squared(p, a), 0.0);
}

TEST(MinMax, Basic) {
    const std::vector<double> v = {3.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::min(v), -1.0);
    EXPECT_DOUBLE_EQ(stats::max(v), 3.0);
}

TEST(RunToRunVariation, KnownValue) {
    const std::vector<double> v = {90.0, 100.0, 110.0};
    EXPECT_NEAR(stats::run_to_run_variation(v), 20.0, 1e-12);
}

TEST(RunToRunVariation, ZeroForIdenticalRuns) {
    const std::vector<double> v = {5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::run_to_run_variation(v), 0.0);
}

TEST(RunToRunVariation, ThrowsOnZeroMedian) {
    const std::vector<double> v = {-1.0, 0.0, 1.0};
    EXPECT_THROW(stats::run_to_run_variation(v), InvalidArgumentError);
}

// Property sweep: the median of any symmetric three-point set is the center.
class MedianSymmetryTest : public ::testing::TestWithParam<double> {};

TEST_P(MedianSymmetryTest, CenterOfSymmetricTriple) {
    const double c = GetParam();
    const std::vector<double> v = {c - 1.0, c, c + 1.0};
    EXPECT_DOUBLE_EQ(stats::median(v), c);
}

INSTANTIATE_TEST_SUITE_P(Centers, MedianSymmetryTest,
                         ::testing::Values(-100.0, -1.0, 0.0, 0.5, 3.0, 1e6));

// Property sweep: quantile is monotone in q.
class QuantileMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
    const std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 0.5};
    const double q = GetParam();
    EXPECT_LE(stats::quantile(v, q * 0.5), stats::quantile(v, q));
    EXPECT_LE(stats::quantile(v, q), stats::quantile(v, 0.5 + q * 0.5));
}

INSTANTIATE_TEST_SUITE_P(Qs, QuantileMonotoneTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));
