#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

using extradeep::InvalidArgumentError;
using extradeep::Rng;
using extradeep::mix64;
using extradeep::splitmix64;

TEST(Rng, DeterministicForEqualSeeds) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LE(equal, 1);
}

TEST(Rng, ZeroSeedWorks) {
    Rng r(0);
    // SplitMix64 seeding guarantees a non-degenerate state even for seed 0.
    std::set<std::uint64_t> values;
    for (int i = 0; i < 16; ++i) {
        values.insert(r.next_u64());
    }
    EXPECT_GE(values.size(), 15u);
}

TEST(Rng, Uniform01InRange) {
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, Uniform01MeanIsHalf) {
    Rng r(4);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        acc += r.uniform01();
    }
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
    Rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(Rng, UniformIntSingleValue) {
    Rng r(6);
    EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
    Rng r(7);
    EXPECT_THROW(r.uniform_int(2, 1), InvalidArgumentError);
}

TEST(Rng, NormalMomentsMatch) {
    Rng r(8);
    const int n = 200000;
    std::vector<double> sample;
    sample.reserve(n);
    for (int i = 0; i < n; ++i) {
        sample.push_back(r.normal(10.0, 2.0));
    }
    EXPECT_NEAR(extradeep::stats::mean(sample), 10.0, 0.05);
    EXPECT_NEAR(extradeep::stats::stddev(sample), 2.0, 0.05);
}

TEST(Rng, LognormalFactorHasMeanOne) {
    // The simulator's noise primitive must be mean preserving for any sigma.
    for (const double sigma : {0.01, 0.05, 0.2, 0.5}) {
        Rng r(9);
        double acc = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i) {
            acc += r.lognormal_factor(sigma);
        }
        EXPECT_NEAR(acc / n, 1.0, 0.02) << "sigma=" << sigma;
    }
}

TEST(Rng, LognormalFactorSigmaZeroIsExactlyOne) {
    Rng r(10);
    EXPECT_DOUBLE_EQ(r.lognormal_factor(0.0), 1.0);
}

TEST(Rng, LognormalFactorThrowsOnNegativeSigma) {
    Rng r(11);
    EXPECT_THROW(r.lognormal_factor(-0.1), InvalidArgumentError);
}

TEST(Rng, BernoulliFrequency) {
    Rng r(12);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (r.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
    Rng r(13);
    double acc = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        acc += r.exponential(2.5);
    }
    EXPECT_NEAR(acc / n, 2.5, 0.05);
}

TEST(Rng, ExponentialThrowsOnNonPositiveMean) {
    Rng r(14);
    EXPECT_THROW(r.exponential(0.0), InvalidArgumentError);
}

TEST(Rng, PoissonMeanAndEdgeCases) {
    Rng r(15);
    EXPECT_EQ(r.poisson(0.0), 0);
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        acc += static_cast<double>(r.poisson(3.5));
    }
    EXPECT_NEAR(acc / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanNormalApprox) {
    Rng r(16);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        acc += static_cast<double>(r.poisson(200.0));
    }
    EXPECT_NEAR(acc / n, 200.0, 1.0);
}

TEST(Rng, PoissonThrowsOnNegativeMean) {
    Rng r(17);
    EXPECT_THROW(r.poisson(-1.0), InvalidArgumentError);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    const Rng parent(99);
    Rng f1 = parent.fork(1);
    Rng f1_again = parent.fork(1);
    Rng f2 = parent.fork(2);
    int equal12 = 0;
    for (int i = 0; i < 64; ++i) {
        const auto a = f1.next_u64();
        EXPECT_EQ(a, f1_again.next_u64());
        if (a == f2.next_u64()) ++equal12;
    }
    EXPECT_LE(equal12, 1);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
    Rng a(123);
    Rng b(123);
    (void)a.fork(7);
    EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Mix64, DistinctInputsDistinctOutputs) {
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        outputs.insert(mix64(i, i * 7 + 1));
    }
    EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Splitmix64, AdvancesState) {
    std::uint64_t s = 5;
    const auto v1 = splitmix64(s);
    const auto v2 = splitmix64(s);
    EXPECT_NE(v1, v2);
}
