// Adaptive profiling planner (src/planner) and the shared threshold-gate
// core (common/gate): plan determinism across thread counts, the racing
// invariants (eliminated arms stay retired, budgets are respected), the
// oracle measurement backend's equivalence with the fixed-grid harness,
// the planner's observability instruments, and the gate dialects every
// regression gate now parses through one implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "aggregation/aggregate.hpp"
#include "common/error.hpp"
#include "common/gate.hpp"
#include "common/json.hpp"
#include "eval/measurement.hpp"
#include "eval/oracle.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "planner/planner.hpp"
#include "planner/report.hpp"

namespace {

using namespace extradeep;

eval::OracleCase find_case(const std::string& name) {
    for (auto& c : eval::default_oracle_cases()) {
        if (c.name == name) {
            return c;
        }
    }
    throw InvalidArgumentError("test: unknown oracle case " + name);
}

planner::PlanOptions noisy_options() {
    planner::PlanOptions options;
    options.num_threads = 1;
    return options;
}

// --- run_plan core behaviour ------------------------------------------------

TEST(Planner, NoiseFreeCaseStopsAfterSeedRound) {
    eval::OracleMeasurementSource source(find_case("linear"), {});
    const planner::PlanResult plan =
        planner::run_plan(source, noisy_options());
    // Noise-free data collapses every prediction interval, so all arms are
    // confidently retired on the seed fit: 5 runs instead of 25.
    EXPECT_EQ(plan.stop_reason, "confidence");
    EXPECT_DOUBLE_EQ(plan.runs_used, 5.0);
    EXPECT_DOUBLE_EQ(plan.baseline_runs, 25.0);
    EXPECT_DOUBLE_EQ(plan.cost_reduction_pct, 80.0);
    ASSERT_EQ(plan.rounds.size(), 1u);
    EXPECT_EQ(plan.rounds[0].arm_pulled, -1);
    for (const auto& arm : plan.arms) {
        EXPECT_TRUE(arm.eliminated);
        EXPECT_EQ(arm.eliminated_reason, "confident");
        EXPECT_EQ(arm.eliminated_round, 0);
    }
    EXPECT_EQ(source.runs_materialized(), 5u);
}

TEST(Planner, NoisyCaseSavesRunsWithinEliminationInvariants) {
    eval::MaterializeOptions mat;
    mat.noise = 0.05;
    eval::OracleMeasurementSource source(find_case("linear"), mat);
    const planner::PlanResult plan =
        planner::run_plan(source, noisy_options());
    EXPECT_GT(plan.runs_used, 5.0);
    EXPECT_LT(plan.runs_used, plan.baseline_runs);
    // Reported budget equals the backend's proof-of-work counter.
    EXPECT_DOUBLE_EQ(plan.runs_used,
                     static_cast<double>(source.runs_materialized()));
    // The racing loop must never pull an arm that an earlier round retired.
    for (const auto& round : plan.rounds) {
        if (round.arm_pulled < 0) {
            continue;
        }
        const planner::ArmState& arm =
            plan.arms[static_cast<std::size_t>(round.arm_pulled)];
        ASSERT_TRUE(arm.eliminated);
        EXPECT_GE(arm.eliminated_round, round.round);
    }
    // Per-arm bookkeeping adds up to the budget.
    double pulls = 0.0;
    for (const auto& arm : plan.arms) {
        EXPECT_EQ(static_cast<std::size_t>(arm.pulls), arm.values.size());
        EXPECT_LE(arm.pulls, noisy_options().max_pulls_per_arm);
        pulls += static_cast<double>(arm.pulls);
    }
    EXPECT_DOUBLE_EQ(plan.runs_used, pulls);
}

TEST(Planner, BudgetStopsTheRace) {
    eval::MaterializeOptions mat;
    mat.noise = 0.05;
    eval::OracleMeasurementSource source(find_case("linear"), mat);
    planner::PlanOptions options = noisy_options();
    options.budget = 7;  // seed round (5) + two racing pulls
    const planner::PlanResult plan = planner::run_plan(source, options);
    EXPECT_EQ(plan.stop_reason, "budget");
    EXPECT_DOUBLE_EQ(plan.runs_used, 7.0);
}

TEST(Planner, ValidatesOptions) {
    eval::MaterializeOptions mat;
    eval::OracleCase small = find_case("linear");
    small.points.resize(2);  // fewer arms than the fitter's min_points
    eval::OracleMeasurementSource small_source(small, mat);
    EXPECT_THROW(planner::run_plan(small_source, noisy_options()),
                 InvalidArgumentError);

    eval::OracleMeasurementSource source(find_case("linear"), mat);
    planner::PlanOptions bad_seed = noisy_options();
    bad_seed.seed_pulls = 0;
    EXPECT_THROW(planner::run_plan(source, bad_seed), InvalidArgumentError);
    planner::PlanOptions bad_width = noisy_options();
    bad_width.target_rel_width = 0.0;
    EXPECT_THROW(planner::run_plan(source, bad_width), InvalidArgumentError);
    planner::PlanOptions bad_budget = noisy_options();
    bad_budget.budget = 4;  // cannot cover the 5-arm seed round
    EXPECT_THROW(planner::run_plan(source, bad_budget), InvalidArgumentError);
}

// --- determinism ------------------------------------------------------------

TEST(Planner, PlanJsonIsByteIdenticalAcrossThreadCounts) {
    std::vector<std::string> renders;
    for (const int threads : {1, 2, 4}) {
        planner::PlanOptions options = noisy_options();
        options.num_threads = threads;
        const std::vector<planner::PlanCaseReport> reports = planner::plan_suite(
            {find_case("linear"), find_case("xlogx")}, {0.0, 0.05}, 1, options);
        renders.push_back(planner::plan_json(reports, "testrev"));
    }
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

TEST(Planner, SameSeedSamePlanFreshSource) {
    eval::MaterializeOptions mat;
    mat.noise = 0.05;
    mat.seed = 42;
    std::vector<std::string> renders;
    for (int i = 0; i < 2; ++i) {
        eval::OracleMeasurementSource source(find_case("quadratic"), mat);
        const planner::PlanResult plan =
            planner::run_plan(source, noisy_options());
        std::string trace;
        for (const auto& round : plan.rounds) {
            trace += std::to_string(round.arm_pulled) + ":" + round.fitted +
                     ";";
        }
        renders.push_back(trace);
    }
    EXPECT_EQ(renders[0], renders[1]);
}

// --- oracle measurement backend ---------------------------------------------

TEST(OracleMeasurementSource, MatchesFixedGridData) {
    eval::MaterializeOptions mat;
    mat.noise = 0.05;
    const eval::OracleCase oracle = find_case("linear");
    eval::OracleMeasurementSource source(oracle, mat);
    ASSERT_EQ(source.num_configs(), oracle.points.size());
    EXPECT_EQ(source.param_names(), oracle.truth.param_names());
    // One pull equals one fixed-grid repetition: materialising the run
    // directly and aggregating it reproduces measure() bit for bit.
    for (const std::size_t config : {std::size_t{0}, std::size_t{3}}) {
        for (const int rep : {0, 2}) {
            const profiling::ProfiledRun run =
                eval::materialize_run(oracle, config, rep, mat);
            const std::vector<profiling::ProfiledRun> runs = {run};
            const aggregation::ConfigurationData data =
                aggregation::aggregate_runs(runs);
            const aggregation::KernelStats* kernel =
                data.find_kernel(eval::kOracleKernel);
            ASSERT_NE(kernel, nullptr);
            EXPECT_DOUBLE_EQ(source.measure(config, rep),
                             kernel->train_metric(aggregation::Metric::Time));
        }
    }
    // Same (config, repetition) pull is idempotent; distinct repetitions
    // draw independent noise.
    EXPECT_DOUBLE_EQ(source.measure(1, 0), source.measure(1, 0));
    EXPECT_NE(source.measure(1, 0), source.measure(1, 1));
    // Repetitions beyond the case's fixed-grid count stay deterministic.
    EXPECT_DOUBLE_EQ(source.measure(1, 7), source.measure(1, 7));
    EXPECT_EQ(source.runs_materialized(), 10u);
    EXPECT_DOUBLE_EQ(source.run_cost(0), 1.0);
    EXPECT_THROW(source.measure(source.num_configs(), 0),
                 InvalidArgumentError);
}

// --- observability ----------------------------------------------------------

TEST(Planner, PublishesInstrumentsToInjectedRegistry) {
    eval::MaterializeOptions mat;
    mat.noise = 0.05;
    eval::OracleMeasurementSource source(find_case("linear"), mat);
    obs::MetricsRegistry metrics;
    obs::FakeClock clock(0, 1500);  // 1.5 us per reading
    planner::PlanOptions options = noisy_options();
    options.metrics = &metrics;
    options.clock = &clock;
    const planner::PlanResult plan = planner::run_plan(source, options);
    EXPECT_EQ(metrics.counter("extradeep_plan_arms_pulled").value(),
              static_cast<std::uint64_t>(plan.runs_used));
    EXPECT_EQ(metrics.counter("extradeep_plan_budget_spent").value(),
              static_cast<std::uint64_t>(plan.runs_used));
    // One refit per recorded round, timed through the injected clock.
    const obs::Histogram& latency = metrics.histogram(
        "extradeep_plan_refit_latency_us",
        obs::MetricsRegistry::default_latency_buckets_us());
    EXPECT_EQ(latency.count(), plan.rounds.size());
    EXPECT_GT(latency.sum(), 0.0);
    const std::string exposition = metrics.exposition();
    EXPECT_NE(exposition.find("extradeep_plan_arms_pulled"),
              std::string::npos);
    EXPECT_NE(exposition.find("extradeep_plan_budget_spent"),
              std::string::npos);
    EXPECT_NE(exposition.find("extradeep_plan_refit_latency_us"),
              std::string::npos);
}

TEST(ScopedLatencyTimer, ObservesElapsedAndToleratesNullHistogram) {
    obs::FakeClock clock(1000, 0);
    obs::Histogram histogram(obs::MetricsRegistry::default_latency_buckets_us());
    {
        const obs::ScopedLatencyTimer timer(clock, &histogram);
        clock.advance(250000);  // 250 us
    }
    EXPECT_EQ(histogram.count(), 1u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 250.0);
    {
        // Null histogram disables the probe; the clock must stay unread.
        const obs::ScopedLatencyTimer timer(clock, nullptr);
        clock.advance(1);
    }
    EXPECT_EQ(clock.now_ns(), 1000u + 250000u + 1u);
}

// --- report + gate ----------------------------------------------------------

TEST(PlanReport, JsonParsesAndCarriesSchema) {
    const std::vector<planner::PlanCaseReport> reports =
        planner::plan_suite({find_case("linear")}, {0.0}, 1, noisy_options());
    const std::string rendered = planner::plan_json(reports, "abc123");
    const json::Value doc = json::parse(rendered, "plan JSON");
    const json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string, "extradeep-plan/1");
    ASSERT_NE(doc.find("plans"), nullptr);
    ASSERT_NE(doc.find("records"), nullptr);
    EXPECT_EQ(doc.find("plans")->array.size(), 1u);
}

TEST(PlanReport, RecordsIncludeSuiteSummaryAndPaperReference) {
    const std::vector<planner::PlanCaseReport> reports =
        planner::plan_suite({find_case("linear")}, {0.0}, 1, noisy_options());
    const std::vector<eval::MetricRecord> records =
        planner::to_records(reports);
    bool found_paper = false;
    for (const auto& r : records) {
        if (r.case_name == "suite" &&
            r.metric == "paper_sampling_reduction_pct") {
            found_paper = true;
            EXPECT_DOUBLE_EQ(r.value, planner::kPaperSamplingReductionPct);
        }
    }
    EXPECT_TRUE(found_paper);
}

TEST(PlanGate, EnforcesThresholdsOnRecords) {
    const std::vector<planner::PlanCaseReport> reports =
        planner::plan_suite({find_case("linear")}, {0.0}, 1, noisy_options());
    const std::vector<eval::MetricRecord> records =
        planner::to_records(reports);
    const eval::GateResult pass = planner::check_plan_gate(
        records,
        R"({"thresholds": [{"case": "*", "noise": 0.0,
                            "metric": "cost_reduction_pct", "min": 30.0}]})");
    EXPECT_TRUE(pass.pass);
    const eval::GateResult fail = planner::check_plan_gate(
        records,
        R"({"thresholds": [{"case": "*", "noise": 0.0,
                            "metric": "runs_used", "max": 0.0}]})");
    EXPECT_FALSE(fail.pass);
    ASSERT_FALSE(fail.violations.empty());
    EXPECT_NE(fail.violations[0].find("runs_used"), std::string::npos);
    // Unmatched rules are violations, not silent no-ops.
    const eval::GateResult unmatched = planner::check_plan_gate(
        records,
        R"({"thresholds": [{"case": "*", "noise": 0.0,
                            "metric": "no_such_metric", "min": 1.0}]})");
    EXPECT_FALSE(unmatched.pass);
}

// --- common/gate core -------------------------------------------------------

TEST(GateCore, ChecksBoundsRuleMajorWithStableOrdering) {
    const std::vector<gate::Sample> samples = {
        {"a", 0.0, "m", 1.0},
        {"b", 0.0, "m", 9.0},
    };
    std::vector<gate::Rule> rules(1);
    rules[0].scope = "*";
    rules[0].noise = 0.0;
    rules[0].metric = "m";
    rules[0].min = 2.0;
    rules[0].max = 5.0;
    const gate::Outcome outcome = gate::check_rules(samples, rules);
    EXPECT_FALSE(outcome.pass);
    EXPECT_EQ(outcome.rules_checked, 1u);
    EXPECT_EQ(outcome.samples_matched, 2u);
    ASSERT_EQ(outcome.violations.size(), 2u);
    EXPECT_EQ(outcome.violations[0].kind, gate::Violation::Kind::BelowMin);
    EXPECT_EQ(outcome.violations[0].sample, 0u);
    EXPECT_DOUBLE_EQ(outcome.violations[0].bound, 2.0);
    EXPECT_EQ(outcome.violations[1].kind, gate::Violation::Kind::AboveMax);
    EXPECT_EQ(outcome.violations[1].sample, 1u);
}

TEST(GateCore, WildcardsAndUnmatchedRules) {
    const std::vector<gate::Sample> samples = {
        {"x", 0.05, "m", 3.0},
    };
    gate::Rule wildcard_noise;
    wildcard_noise.metric = "m";
    wildcard_noise.min = 1.0;  // noise stays -1 = any
    gate::Rule wrong_scope;
    wrong_scope.scope = "y";
    wrong_scope.metric = "m";
    wrong_scope.min = 1.0;
    const gate::Outcome outcome =
        gate::check_rules(samples, {wildcard_noise, wrong_scope});
    EXPECT_FALSE(outcome.pass);
    ASSERT_EQ(outcome.violations.size(), 1u);
    EXPECT_EQ(outcome.violations[0].kind, gate::Violation::Kind::Unmatched);
    EXPECT_EQ(outcome.violations[0].rule, 1u);
}

TEST(GateCore, ParsesEvalDialect) {
    const std::vector<gate::Rule> rules = gate::parse_rules(
        R"({"thresholds": [
              {"case": "linear", "noise": 0.05, "metric": "smape", "max": 5.0},
              {"metric": "recovery", "min": 1.0}
           ]})",
        gate::RuleDocSpec{});
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].scope, "linear");
    EXPECT_DOUBLE_EQ(rules[0].noise, 0.05);
    ASSERT_TRUE(rules[0].max.has_value());
    EXPECT_DOUBLE_EQ(*rules[0].max, 5.0);
    EXPECT_FALSE(rules[0].min.has_value());
    EXPECT_EQ(rules[1].scope, "*");
    EXPECT_LT(rules[1].noise, 0.0);

    EXPECT_THROW(gate::parse_rules("[]", gate::RuleDocSpec{}), ParseError);
    EXPECT_THROW(gate::parse_rules(R"({"thresholds": []})",
                                   gate::RuleDocSpec{}),
                 ParseError);
    EXPECT_THROW(gate::parse_rules(
                     R"({"thresholds": [{"metric": "m"}]})",
                     gate::RuleDocSpec{}),
                 ParseError);
}

TEST(GateCore, ParsesServeDialect) {
    gate::RuleDocSpec spec;
    spec.what = "serve thresholds JSON";
    spec.array_key = "rules";
    spec.scope_key = "mode";
    spec.parse_noise = false;
    spec.require_bound = false;
    spec.allow_empty = true;
    const std::vector<gate::Rule> rules = gate::parse_rules(
        R"({"rules": [{"mode": "closed", "metric": "qps", "min": 100.0},
                      {"metric": "p99_us"}]})",
        spec);
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].scope, "closed");
    // Boundless rules are legal in this dialect.
    EXPECT_FALSE(rules[1].min.has_value());
    EXPECT_FALSE(rules[1].max.has_value());
    EXPECT_TRUE(gate::parse_rules(R"({"rules": []})", spec).empty());
}

}  // namespace
