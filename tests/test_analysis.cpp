#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bottleneck.hpp"
#include "analysis/config_search.hpp"
#include "analysis/cost.hpp"
#include "analysis/speedup.hpp"
#include "common/error.hpp"

using namespace extradeep;
using namespace extradeep::analysis;
using extradeep::InvalidArgumentError;

namespace {

modeling::PerformanceModel one_term_model(double constant, double coeff,
                                          double poly, int log) {
    modeling::Term t;
    t.coefficient = coeff;
    t.factors = {modeling::Factor{0, poly, log}};
    return modeling::PerformanceModel(constant, {t}, {"x1"});
}

}  // namespace

TEST(Speedup, Eq11Definition) {
    // T1=100; T=50 -> +50 %; T=150 -> -50 %; baseline always 0.
    const std::vector<double> runtimes = {100.0, 50.0, 150.0};
    const auto d = speedups(runtimes);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_DOUBLE_EQ(d[1], 50.0);
    EXPECT_DOUBLE_EQ(d[2], -50.0);
}

TEST(Speedup, Validation) {
    EXPECT_THROW(speedups({}), InvalidArgumentError);
    EXPECT_THROW(speedups(std::vector<double>{0.0, 1.0}), InvalidArgumentError);
}

TEST(Efficiency, Eq13Definition) {
    // x: 2 -> 4 gives theoretical speedup 100 %; actual speedup 50 % ->
    // efficiency 50 %.
    const std::vector<double> ranks = {2.0, 4.0};
    const std::vector<double> runtimes = {100.0, 50.0};
    const auto e = efficiencies(ranks, runtimes);
    EXPECT_DOUBLE_EQ(e[0], 100.0);
    EXPECT_DOUBLE_EQ(e[1], 50.0);
}

TEST(Efficiency, WeakScalingPerfectRuntimeGivesZeroGain) {
    // Constant runtime under more ranks: Eq. 13 efficiency drops to 0.
    const std::vector<double> ranks = {2.0, 8.0};
    const std::vector<double> runtimes = {100.0, 100.0};
    const auto e = efficiencies(ranks, runtimes);
    EXPECT_DOUBLE_EQ(e[1], 0.0);
}

TEST(Efficiency, ClassicDefinition) {
    // Perfect strong scaling: T ~ 1/x -> 100 % classic efficiency.
    const std::vector<double> ranks = {2.0, 4.0, 8.0};
    const std::vector<double> runtimes = {100.0, 50.0, 25.0};
    const auto e = classic_efficiencies(ranks, runtimes);
    EXPECT_DOUBLE_EQ(e[0], 100.0);
    EXPECT_DOUBLE_EQ(e[1], 100.0);
    EXPECT_DOUBLE_EQ(e[2], 100.0);
}

TEST(Efficiency, ClassicDegradesWithOverhead) {
    const std::vector<double> ranks = {2.0, 8.0};
    const std::vector<double> runtimes = {100.0, 40.0};  // ideal would be 25
    const auto e = classic_efficiencies(ranks, runtimes);
    EXPECT_NEAR(e[1], 62.5, 1e-9);
}

TEST(Speedup, ModelFitsSpeedupCurve) {
    // Runtimes 200/x: the true speedup 100*(1 - 2/x) saturates at 100 %.
    // The 1/x shape is not in the PMNF space, so the fit is approximate -
    // the model must still be increasing and land near the saturation level.
    std::vector<double> ranks = {2, 4, 8, 16, 32};
    std::vector<double> runtimes;
    for (const double x : ranks) runtimes.push_back(200.0 / x);
    const auto m = model_speedup(ranks, runtimes);
    EXPECT_GT(m.evaluate(32.0), m.evaluate(4.0));
    EXPECT_NEAR(m.evaluate(32.0), 93.75, 20.0);
    EXPECT_NEAR(m.evaluate(2.0), 0.0, 20.0);
}

TEST(Cost, Eq14CoreHours) {
    // 3600 s on 4 ranks with 8 cores each = 32 core hours.
    EXPECT_DOUBLE_EQ(training_cost_core_hours(3600.0, 4.0, 8.0), 32.0);
    EXPECT_THROW(training_cost_core_hours(1.0, 0.0, 8.0), InvalidArgumentError);
}

TEST(Cost, CostFunctionFactory) {
    const CostFunction f = core_hours_cost(8.0);
    EXPECT_DOUBLE_EQ(f(3600.0, 2.0), 16.0);
    EXPECT_THROW(core_hours_cost(0.0), InvalidArgumentError);
}

TEST(Cost, ModelFollowsSuperlinearCost) {
    // Weak-scaling constant runtime: cost grows linearly with ranks.
    std::vector<double> ranks = {2, 4, 8, 16, 32};
    std::vector<double> runtimes(5, 100.0);
    const auto m = model_cost(ranks, runtimes, core_hours_cost(8.0));
    EXPECT_NEAR(m.evaluate(64.0), 100.0 * 64.0 * 8.0 / 3600.0, 1.5);
}

TEST(Bottleneck, RanksByAsymptoticGrowth) {
    std::vector<NamedModel> models;
    models.push_back({"const_kernel", one_term_model(5.0, 0.0, 0.0, 0)});
    models.push_back({"linear_kernel", one_term_model(0.0, 1.0, 1.0, 0)});
    models.push_back({"quadratic_kernel", one_term_model(0.0, 0.001, 2.0, 0)});
    models.push_back({"log_kernel", one_term_model(0.0, 50.0, 0.0, 1)});
    const auto ranked = rank_by_growth(models, 64.0);
    ASSERT_EQ(ranked.size(), 4u);
    EXPECT_EQ(ranked[0].name, "quadratic_kernel");
    EXPECT_EQ(ranked[1].name, "linear_kernel");
    EXPECT_EQ(ranked[2].name, "log_kernel");
    EXPECT_EQ(ranked[3].name, "const_kernel");
    EXPECT_EQ(ranked[0].growth, "O(x1^2)");
}

TEST(Bottleneck, GrowthTieBrokenByPredictedValue) {
    std::vector<NamedModel> models;
    models.push_back({"small_linear", one_term_model(0.0, 1.0, 1.0, 0)});
    models.push_back({"big_linear", one_term_model(0.0, 10.0, 1.0, 0)});
    const auto ranked = rank_by_growth(models, 64.0);
    EXPECT_EQ(ranked[0].name, "big_linear");
}

TEST(Bottleneck, RankByPredictedValue) {
    std::vector<NamedModel> models;
    models.push_back({"a", one_term_model(1000.0, 0.0, 0.0, 0)});
    models.push_back({"b", one_term_model(0.0, 1.0, 1.0, 0)});  // 64 at x=64
    const auto ranked = rank_by_predicted_value(models, 64.0);
    EXPECT_EQ(ranked[0].name, "a");
    EXPECT_THROW(rank_by_predicted_value(models, 0.0), InvalidArgumentError);
}

TEST(ConfigSearch, WeakScalingPicksSmallestFeasible) {
    // Weak scaling: runtime rises slowly; smallest allocation wins.
    const auto runtime = one_term_model(100.0, 10.0, 0.0, 1);
    const auto result = find_cost_effective_config(
        [&](double x) { return runtime.evaluate(x); }, {2, 4, 8, 16, 32},
        core_hours_cost(8.0), {}, parallel::ScalingMode::Weak);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_DOUBLE_EQ(result.candidates[*result.best].ranks, 2.0);
}

TEST(ConfigSearch, WeakScalingRespectsTimeLimit) {
    const auto runtime = one_term_model(100.0, 10.0, 0.0, 1);  // 110 at x=2
    ConfigSearchLimits limits;
    limits.max_time_s = 125.0;  // excludes x=2 (110)? no: 110 <= 125 feasible
    limits.max_time_s = 105.0;  // now x=2 infeasible... T(2)=110
    const auto result = find_cost_effective_config(
        [&](double x) { return runtime.evaluate(x); }, {2, 4, 8},
        core_hours_cost(8.0), limits, parallel::ScalingMode::Weak);
    // All candidates exceed the time limit except none; with weak scaling
    // runtime only grows, so nothing is feasible.
    EXPECT_FALSE(result.best.has_value());
}

TEST(ConfigSearch, StrongScalingPicksHighestEfficiencyFeasible) {
    // Strong scaling T = 600/x + 10: time falls, cost rises.
    modeling::Term inv;  // approximate 1/x via -log? use explicit values.
    // Instead, fit a model through strong-scaling values.
    std::vector<double> ranks = {2, 4, 8, 16, 32};
    std::vector<double> runtimes;
    for (const double x : ranks) runtimes.push_back(600.0 / x + 10.0);
    const auto runtime = modeling::ModelGenerator().fit(ranks, runtimes);

    ConfigSearchLimits limits;
    limits.max_time_s = 200.0;   // excludes the smallest configs
    limits.max_cost = 10.0;      // core hours budget
    const auto result = find_cost_effective_config(
        [&](double x) { return runtime.evaluate(x); }, {2, 4, 8, 16, 32},
        core_hours_cost(8.0), limits, parallel::ScalingMode::Strong);
    ASSERT_TRUE(result.best.has_value());
    const auto& best = result.candidates[*result.best];
    EXPECT_TRUE(best.feasible());
    EXPECT_LE(best.time_s, 200.0);
    EXPECT_LE(best.cost, 10.0);
    // Every feasible candidate has efficiency <= the chosen one.
    for (const auto& c : result.candidates) {
        if (c.feasible()) {
            EXPECT_LE(c.efficiency_pct, best.efficiency_pct + 1e-9);
        }
    }
}

TEST(ConfigSearch, ReportsFeasibilityPerCandidate) {
    const auto runtime = one_term_model(100.0, 0.0, 0.0, 0);  // constant 100 s
    ConfigSearchLimits limits;
    limits.max_cost = 1.0;  // 100 s * x * 8 / 3600 <= 1  ->  x <= 4.5
    const auto result = find_cost_effective_config(
        [&](double x) { return runtime.evaluate(x); }, {2, 4, 8},
        core_hours_cost(8.0), limits, parallel::ScalingMode::Strong);
    EXPECT_TRUE(result.candidates[0].feasible_cost);
    EXPECT_TRUE(result.candidates[1].feasible_cost);
    EXPECT_FALSE(result.candidates[2].feasible_cost);
    EXPECT_TRUE(result.candidates[2].feasible_time);
}

TEST(ConfigSearch, SortsCandidates) {
    const auto runtime = one_term_model(10.0, 1.0, 1.0, 0);
    const auto result = find_cost_effective_config(
        [&](double x) { return runtime.evaluate(x); }, {8, 2, 4},
        core_hours_cost(1.0), {}, parallel::ScalingMode::Weak);
    ASSERT_EQ(result.candidates.size(), 3u);
    EXPECT_DOUBLE_EQ(result.candidates[0].ranks, 2.0);
    EXPECT_DOUBLE_EQ(result.candidates[2].ranks, 8.0);
}

TEST(ConfigSearch, Validation) {
    const auto runtime = one_term_model(1.0, 0.0, 0.0, 0);
    const RuntimeFn fn = [&](double x) { return runtime.evaluate(x); };
    EXPECT_THROW(find_cost_effective_config(fn, {}, core_hours_cost(1.0), {},
                                            parallel::ScalingMode::Weak),
                 InvalidArgumentError);
    EXPECT_THROW(find_cost_effective_config(fn, {0.0}, core_hours_cost(1.0),
                                            {}, parallel::ScalingMode::Weak),
                 InvalidArgumentError);
    EXPECT_THROW(find_cost_effective_config(RuntimeFn{}, {2.0},
                                            core_hours_cost(1.0), {},
                                            parallel::ScalingMode::Weak),
                 InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Property tests for the analysis equations (Eqs. 11-14): invariants that
// must hold for any measurement sweep, checked on seeded pseudo-random
// inputs, plus the exact error behaviour on degenerate inputs.

#include "common/rng.hpp"

namespace {

/// A reproducible strong-scaling-ish sweep: increasing ranks, positive
/// runtimes with bounded jitter around c/x + overhead.
struct Sweep {
    std::vector<double> ranks;
    std::vector<double> runtimes;
};

Sweep random_sweep(std::uint64_t seed) {
    extradeep::Rng rng(seed);
    Sweep s;
    double x = 1.0 + 3.0 * rng.uniform01();
    for (int i = 0; i < 6; ++i) {
        s.ranks.push_back(x);
        const double ideal = 500.0 / x + 5.0;
        s.runtimes.push_back(ideal * rng.lognormal_factor(0.1));
        x *= 1.5 + rng.uniform01();
    }
    return s;
}

}  // namespace

TEST(SpeedupProperty, BaselineNeutralAndScaleInvariant) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Sweep s = random_sweep(seed);
        const auto d = speedups(s.runtimes);
        ASSERT_EQ(d.size(), s.runtimes.size());
        EXPECT_DOUBLE_EQ(d[0], 0.0) << "Eq. 11: baseline speedup is 0";
        // Eq. 11 is equivalent to 100 * (1 - T_k/T_1).
        for (std::size_t k = 0; k < d.size(); ++k) {
            EXPECT_NEAR(d[k], 100.0 * (1.0 - s.runtimes[k] / s.runtimes[0]),
                        1e-9);
            EXPECT_LT(d[k], 100.0) << "finite runtimes cap speedup below 100%";
        }
        // Rescaling all runtimes (a unit change) must not move speedups.
        std::vector<double> scaled = s.runtimes;
        for (double& t : scaled) t *= 42.0;
        const auto d2 = speedups(scaled);
        for (std::size_t k = 0; k < d.size(); ++k) {
            EXPECT_NEAR(d[k], d2[k], 1e-9);
        }
    }
}

TEST(EfficiencyProperty, ConsistentWithSpeedupRatio) {
    // Eq. 13 is exactly (actual speedup) / (theoretical speedup): the three
    // quantities must satisfy the identity at every non-baseline point.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Sweep s = random_sweep(seed);
        const auto e = efficiencies(s.ranks, s.runtimes);
        const auto d = speedups(s.runtimes);
        EXPECT_DOUBLE_EQ(e[0], 100.0) << "Eq. 13: baseline efficiency is 100%";
        for (std::size_t k = 1; k < e.size(); ++k) {
            const double delta_t =
                (s.ranks[k] - s.ranks[0]) / (s.ranks[0] / 100.0);
            EXPECT_NEAR(e[k] * delta_t, 100.0 * d[k], 1e-6);
        }
    }
}

TEST(EfficiencyProperty, PerfectStrongScalingGivesKnownValues) {
    // T = c/x: Eq. 13 efficiency collapses to 100 * x1 / xk, the classic
    // efficiency stays pinned at 100 - and Eq. 13 never exceeds classic on
    // non-superlinear data.
    const std::vector<double> ranks = {2, 4, 8, 16, 32};
    std::vector<double> runtimes;
    for (const double x : ranks) runtimes.push_back(640.0 / x);
    const auto e = efficiencies(ranks, runtimes);
    const auto c = classic_efficiencies(ranks, runtimes);
    for (std::size_t k = 0; k < ranks.size(); ++k) {
        EXPECT_NEAR(e[k], 100.0 * ranks[0] / ranks[k], 1e-9);
        EXPECT_NEAR(c[k], 100.0, 1e-9);
        EXPECT_LE(e[k], c[k] + 1e-9);
    }
}

TEST(EfficiencyProperty, ClassicBoundedByScalingRegime) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Sweep s = random_sweep(seed);
        const auto c = classic_efficiencies(s.ranks, s.runtimes);
        EXPECT_DOUBLE_EQ(c[0], 100.0);
        for (std::size_t k = 0; k < c.size(); ++k) {
            EXPECT_GT(c[k], 0.0) << "positive inputs give positive efficiency";
            // Sublinear speedup (T_k >= T_1 * x_1 / x_k) iff efficiency <= 100.
            const double ideal = s.runtimes[0] * s.ranks[0] / s.ranks[k];
            if (s.runtimes[k] >= ideal) {
                EXPECT_LE(c[k], 100.0 + 1e-9);
            } else {
                EXPECT_GT(c[k], 100.0 - 1e-9);
            }
        }
    }
}

TEST(CostProperty, NonNegativeAndLinearInRho) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const Sweep s = random_sweep(seed);
        for (std::size_t k = 0; k < s.ranks.size(); ++k) {
            const double c8 =
                training_cost_core_hours(s.runtimes[k], s.ranks[k], 8.0);
            const double c16 =
                training_cost_core_hours(s.runtimes[k], s.ranks[k], 16.0);
            const double c24 =
                training_cost_core_hours(s.runtimes[k], s.ranks[k], 24.0);
            EXPECT_GE(c8, 0.0);
            // Eq. 14 is linear in rho: additive and homogeneous.
            EXPECT_NEAR(c24, c8 + c16, 1e-9);
            EXPECT_NEAR(c16, 2.0 * c8, 1e-9);
            // And linear in runtime.
            EXPECT_NEAR(training_cost_core_hours(2.0 * s.runtimes[k],
                                                 s.ranks[k], 8.0),
                        2.0 * c8, 1e-9);
        }
    }
}

// ---------------------------------------------------------------------------
// Boundary regressions: Eqs. 11-14 pinned at the interpolation/extrapolation
// boundary (the largest modeling configuration). The what-if advisor leans on
// model evaluations right at and beyond this point, so the equations must be
// continuous across it and the fitted prediction intervals must not shrink
// once the model leaves its supported range.

namespace {

const std::vector<double>& boundary_ranks() {
    static const std::vector<double> ranks = {2, 4, 8, 16, 32};
    return ranks;
}

/// A noisy weak-scaling sweep over the modeling ranks, and the PMNF model
/// fitted through it. The ideal shape (c + a*x^1.25) lies inside the PMNF
/// search space, so the fit stays positive and well-behaved across the whole
/// range. The largest modeling x (32) is the boundary.
modeling::PerformanceModel boundary_model() {
    extradeep::Rng rng(17);
    std::vector<double> runtimes;
    for (const double x : boundary_ranks()) {
        runtimes.push_back((50.0 + 2.0 * std::pow(x, 1.25)) *
                           rng.lognormal_factor(0.05));
    }
    return modeling::ModelGenerator().fit(boundary_ranks(), runtimes);
}

}  // namespace

TEST(BoundaryRegression, EquationsAreContinuousAcrossTheModelingBoundary) {
    const modeling::PerformanceModel m = boundary_model();
    const double boundary = boundary_ranks().back();
    const double eps = 1e-6;

    // The runtime model itself must not jump at the boundary (guards against
    // anyone introducing a piecewise interpolation/extrapolation switch).
    const double inside = m.evaluate(boundary - eps);
    const double outside = m.evaluate(boundary + eps);
    EXPECT_NEAR(inside, outside, 1e-4 * (1.0 + std::fabs(inside)));

    // Eqs. 11, 13, 14 derived from model evaluations just inside vs just
    // outside the boundary agree to the same order.
    const std::vector<double> ranks_in = {2.0, boundary - eps};
    const std::vector<double> ranks_out = {2.0, boundary + eps};
    const std::vector<double> t_in = {m.evaluate(2.0), inside};
    const std::vector<double> t_out = {m.evaluate(2.0), outside};
    EXPECT_NEAR(speedups(t_in)[1], speedups(t_out)[1], 1e-4);
    EXPECT_NEAR(efficiencies(ranks_in, t_in)[1],
                efficiencies(ranks_out, t_out)[1], 1e-4);
    EXPECT_NEAR(classic_efficiencies(ranks_in, t_in)[1],
                classic_efficiencies(ranks_out, t_out)[1], 1e-4);
    EXPECT_NEAR(training_cost_core_hours(inside, boundary - eps, 8.0),
                training_cost_core_hours(outside, boundary + eps, 8.0), 1e-4);
}

TEST(BoundaryRegression, IntervalHalfWidthDoesNotShrinkBeyondTheBoundary) {
    const modeling::PerformanceModel m = boundary_model();
    const double boundary = boundary_ranks().back();

    // At the boundary itself the interval is a genuine band around the
    // prediction (the fit carries residual information).
    const auto at = m.predict_interval(boundary);
    EXPECT_LT(at.lower, at.prediction);
    EXPECT_GT(at.upper, at.prediction);

    // Extrapolating past the boundary can only widen the band: the advisor's
    // claim "these two options are distinguishable at x" would otherwise get
    // *more* confident the further it leaves the measured range.
    double prev_width = 0.0;
    for (const double x : {boundary, 1.5 * boundary, 2.0 * boundary,
                           4.0 * boundary, 8.0 * boundary}) {
        const auto pi = m.predict_interval(x);
        const double width = pi.upper - pi.lower;
        EXPECT_GE(width, prev_width * (1.0 - 1e-9)) << "x=" << x;
        EXPECT_LE(pi.lower, pi.prediction);
        EXPECT_GE(pi.upper, pi.prediction);
        prev_width = width;
    }

    // And an interpolation point is never wider than deep extrapolation.
    const double mid_width = [&] {
        const auto pi = m.predict_interval(0.5 * boundary);
        return pi.upper - pi.lower;
    }();
    const double far_width = [&] {
        const auto pi = m.predict_interval(8.0 * boundary);
        return pi.upper - pi.lower;
    }();
    EXPECT_LE(mid_width, far_width);
}

TEST(BoundaryRegression, ExactValuesPinnedAtTheBoundaryPoint) {
    // Noise-free T = 640/x + 10 evaluated exactly at the boundary config:
    // every derived quantity has a closed form. A change in any of Eqs. 11-14
    // at the edge of the modeling range trips these pins.
    std::vector<double> runtimes;
    for (const double x : boundary_ranks()) {
        runtimes.push_back(640.0 / x + 10.0);
    }
    // T(2) = 330, T(32) = 30.
    const auto d = speedups(runtimes);
    EXPECT_NEAR(d.back(), 100.0 * (1.0 - 30.0 / 330.0), 1e-9);
    const auto e = efficiencies(boundary_ranks(), runtimes);
    // Eq. 13: actual speedup / theoretical speedup; theoretical at x=32 with
    // baseline 2 is 100 * (32 - 2) / 2 = 1500 %.
    EXPECT_NEAR(e.back(), 100.0 * d.back() / 1500.0, 1e-9);
    const auto c = classic_efficiencies(boundary_ranks(), runtimes);
    // Classic: (330 * 2) / (30 * 32) = 0.6875.
    EXPECT_NEAR(c.back(), 68.75, 1e-9);
    // Eq. 14 at the boundary: 30 s on 32 ranks with 8 cores each.
    EXPECT_NEAR(training_cost_core_hours(runtimes.back(),
                                         boundary_ranks().back(), 8.0),
                30.0 * 32.0 * 8.0 / 3600.0, 1e-12);
}

TEST(AnalysisDegenerate, SingleConfiguration) {
    // One measurement point is a valid (if useless) sweep: baseline values.
    EXPECT_EQ(speedups(std::vector<double>{10.0}),
              std::vector<double>{0.0});
    EXPECT_EQ(efficiencies(std::vector<double>{4.0},
                           std::vector<double>{10.0}),
              std::vector<double>{100.0});
    EXPECT_EQ(classic_efficiencies(std::vector<double>{4.0},
                                   std::vector<double>{10.0}),
              std::vector<double>{100.0});
}

TEST(AnalysisDegenerate, RepeatedRanksFallBackToFullEfficiency) {
    // Identical rank counts make the theoretical speedup 0; Eq. 13 defines
    // the ratio as 100% rather than dividing by zero.
    const auto e = efficiencies(std::vector<double>{4.0, 4.0},
                                std::vector<double>{10.0, 12.0});
    EXPECT_DOUBLE_EQ(e[1], 100.0);
}

TEST(AnalysisDegenerate, ZeroAndNegativeInputsErrorExplicitly) {
    // Zero baseline runtime: speedup undefined -> throw, for both Eq. 11
    // directly and Eq. 13 through it.
    EXPECT_THROW(speedups(std::vector<double>{0.0, 1.0}),
                 InvalidArgumentError);
    EXPECT_THROW(efficiencies(std::vector<double>{2.0, 4.0},
                              std::vector<double>{0.0, 1.0}),
                 InvalidArgumentError);
    EXPECT_THROW(efficiencies(std::vector<double>{0.0, 4.0},
                              std::vector<double>{1.0, 1.0}),
                 InvalidArgumentError);
    // Classic efficiency rejects any non-positive measurement, not just the
    // baseline.
    EXPECT_THROW(classic_efficiencies(std::vector<double>{2.0, 4.0},
                                      std::vector<double>{1.0, 0.0}),
                 InvalidArgumentError);
    EXPECT_THROW(classic_efficiencies(std::vector<double>{2.0, -4.0},
                                      std::vector<double>{1.0, 1.0}),
                 InvalidArgumentError);
    // Eq. 14: zero runtime is a legal zero cost, negative inputs are not.
    EXPECT_DOUBLE_EQ(training_cost_core_hours(0.0, 4.0, 8.0), 0.0);
    EXPECT_THROW(training_cost_core_hours(-1.0, 4.0, 8.0),
                 InvalidArgumentError);
    EXPECT_THROW(training_cost_core_hours(1.0, 4.0, 0.0),
                 InvalidArgumentError);
    // Size mismatches never silently truncate.
    EXPECT_THROW(efficiencies(std::vector<double>{2.0},
                              std::vector<double>{1.0, 2.0}),
                 InvalidArgumentError);
    EXPECT_THROW(classic_efficiencies(std::vector<double>{2.0},
                                      std::vector<double>{1.0, 2.0}),
                 InvalidArgumentError);
    EXPECT_THROW(model_cost({2.0, 4.0}, {1.0}, core_hours_cost(8.0)),
                 InvalidArgumentError);
}
