#!/usr/bin/env bash
# End-to-end smoke test of the adaptive profiling planner (ISSUE 10):
#
#   1. run extradeep-plan --smoke with the metrics trace sink and a JSON
#      output, checking the planner saves runs against the fixed grid
#   2. grep the metrics exposition for the extradeep_plan_* instruments
#      (arms-pulled/budget counters, refit-latency histogram)
#   3. validate BENCH_plan.json with `extradeep-eval --validate-json` and
#      check the schema marker
#   4. exercise the serve `plan` verb against a fitted model: the
#      acquisition answer must name the candidate with the widest relative
#      prediction interval
#
# Usage: plan_smoke.sh PLAN_BIN SERVE_BIN EVAL_BIN
# Registered as the `plan_smoke` ctest and run by scripts/ci_check.sh.

set -euo pipefail

usage="usage: plan_smoke.sh PLAN_BIN SERVE_BIN EVAL_BIN"
plan_bin="${1:?${usage}}"
serve_bin="${2:?${usage}}"
eval_bin="${3:?${usage}}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/plan-smoke.XXXXXX")"
cleanup() { rm -rf "${workdir}"; }
trap cleanup EXIT

echo "== adaptive plan: smoke subset with metrics sink =="
"${plan_bin}" --smoke --out "${workdir}/BENCH_plan.json" \
    --trace "metrics:${workdir}/metrics.prom" | tee "${workdir}/plan.out"
grep -q 'mean profiling-cost reduction' "${workdir}/plan.out" || {
    echo "FAIL: plan summary line missing"; exit 1
}

echo "== planner instruments reach the metrics exposition =="
[[ -s "${workdir}/metrics.prom" ]] || {
    echo "FAIL: metrics sink missing or empty"; exit 1
}
grep -q '^extradeep_plan_arms_pulled [1-9]' "${workdir}/metrics.prom" || {
    echo "FAIL: no arms pulled counted:"; cat "${workdir}/metrics.prom"; exit 1
}
grep -q '^extradeep_plan_budget_spent [1-9]' "${workdir}/metrics.prom" || {
    echo "FAIL: no budget counted:"; cat "${workdir}/metrics.prom"; exit 1
}
grep -q '^extradeep_plan_refit_latency_us_count [1-9]' "${workdir}/metrics.prom" || {
    echo "FAIL: no refits timed:"; cat "${workdir}/metrics.prom"; exit 1
}

echo "== BENCH_plan.json validates and carries the schema =="
"${eval_bin}" --validate-json "${workdir}/BENCH_plan.json"
grep -q '"schema": "extradeep-plan/1"' "${workdir}/BENCH_plan.json" || {
    echo "FAIL: schema marker missing from BENCH_plan.json"; exit 1
}
grep -q '"paper_sampling_reduction_pct"' "${workdir}/BENCH_plan.json" || {
    echo "FAIL: paper reference missing from BENCH_plan.json"; exit 1
}

echo "== serve plan verb: acquisition over a fitted model =="
mkdir -p "${workdir}/models"
"${serve_bin}" fit --out "${workdir}/models/m.edpm" --name m \
    --reps 2 --seed 3 > /dev/null
plan_answer="$("${serve_bin}" ask --models "${workdir}/models" \
    "plan m 12 16 24 32")"
echo "${plan_answer}"
[[ "${plan_answer}" == ok\ next=* ]] || {
    echo "FAIL: plan verb did not answer ok next=..."; exit 1
}
# Uncertainty grows away from the profiled 2..10 range: the extrapolation
# candidate 32 must be the acquisition target.
[[ "${plan_answer}" == *"next=32"* ]] || {
    echo "FAIL: plan verb did not pick the least certain candidate"; exit 1
}
"${serve_bin}" ask --models "${workdir}/models" "plan m" \
    > "${workdir}/plan_usage.out" || true
grep -q '^err usage: plan' "${workdir}/plan_usage.out" || {
    echo "FAIL: plan verb usage error missing"; exit 1
}

echo "plan_smoke: all green"
