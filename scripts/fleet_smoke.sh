#!/usr/bin/env bash
# End-to-end smoke test of the continuous-modeling fleet daemon, exercising
# both ingest paths and the full refit -> hot-swap loop over a real TCP
# socket:
#
#   1. start extradeep-fleet on an ephemeral port with a spool directory
#   2. drive a hardware-drift scenario through the `ingest` verb and check
#      the served prediction re-converges to the degraded ground truth
#   3. drop crash-consistent run files into the spool directory and check
#      the poller picks them up, fits, and serves the new experiment
#   4. push a corrupt payload and check it is quarantined (err line, daemon
#      stays up, quarantine counter moves)
#   5. check the `metrics` exposition carries the fleet instruments and the
#      per-shard registry gauges
#   6. shut the daemon down via the protocol and check it exits cleanly
#
# Usage: fleet_smoke.sh /path/to/extradeep-fleet
# Registered as the `fleet_daemon_smoke` ctest (sanitize_smoke label).

set -euo pipefail

fleet_bin="${1:?usage: fleet_smoke.sh /path/to/extradeep-fleet}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/fleet-smoke.XXXXXX")"
server_pid=""
cleanup() {
    if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
        kill "${server_pid}" 2>/dev/null || true
        wait "${server_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

models="${workdir}/models"
spool="${workdir}/spool"
mkdir -p "${models}" "${spool}"

echo "== start fleet daemon (ephemeral port, spool watcher) =="
"${fleet_bin}" serve --models "${models}" --spool "${spool}" \
    --threads 2 --fit-threads 2 --min-runs 5 --poll-ms 50 \
    > "${workdir}/fleet.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "${workdir}/fleet.log")"
    [[ -n "${port}" ]] && break
    kill -0 "${server_pid}" 2>/dev/null || {
        echo "FAIL: daemon died during startup"; cat "${workdir}/fleet.log"
        exit 1
    }
    sleep 0.1
done
[[ -n "${port}" ]] || { echo "FAIL: no LISTENING line"; exit 1; }
echo "daemon on port ${port}"

query() {
    "${fleet_bin}" query --port "${port}" "$@"
}

echo "== TCP drive: baseline + hw:2.0 drift, expect re-convergence =="
"${fleet_bin}" drive --port "${port}" --experiment smoke \
    --pre 1 --post 6 --drift hw:2.0 --tol 0.25 \
    | tee "${workdir}/drive.out"
grep -q '^CONVERGED runs=' "${workdir}/drive.out" || {
    echo "FAIL: TCP drive did not converge"
    exit 1
}
[[ -f "${models}/smoke.edpm" ]] || {
    echo "FAIL: no exported model for the driven experiment"
    exit 1
}

echo "== spool drive: crash-consistent file drops, expect pickup + fit =="
"${fleet_bin}" drive --spool "${spool}" --experiment spooled \
    --pre 1 --post 0 --drift none | tee "${workdir}/spool.out"
grep -q '^SPOOLED runs=5$' "${workdir}/spool.out" || {
    echo "FAIL: spool drive did not write the expected run files"
    exit 1
}
caught_up=""
for _ in $(seq 1 200); do
    stats="$(query fleet-stats)"
    if [[ "${stats}" == ok\ * ]] \
        && [[ "${stats}" == *" spool=5 "* ]] \
        && [[ "${stats}" == *" staleness=0 "* ]]; then
        caught_up=1
        break
    fi
    sleep 0.1
done
[[ -n "${caught_up}" ]] || {
    echo "FAIL: spool files not ingested and fitted; last stats: ${stats}"
    exit 1
}
query "predict spooled 10" | grep -q '^ok t=' || {
    echo "FAIL: spool-fed experiment is not servable"
    exit 1
}
[[ -f "${models}/spooled.edpm" ]] || {
    echo "FAIL: no exported model for the spool-fed experiment"
    exit 1
}

echo "== corrupt push: quarantined, daemon unharmed =="
before="$(query fleet-stats)"
query "ingest smoke not-a-real-edp-payload" > "${workdir}/corrupt.out" || true
grep -q '^err ' "${workdir}/corrupt.out" || {
    echo "FAIL: corrupt ingest was not rejected:"
    cat "${workdir}/corrupt.out"
    exit 1
}
after="$(query fleet-stats)"
[[ "${after}" == *"quarantined="* ]] || {
    echo "FAIL: daemon not answering after corrupt push"
    exit 1
}
if [[ "${before#*quarantined=}" == "${after#*quarantined=}" ]]; then
    echo "FAIL: quarantine counter did not move"
    echo "before: ${before}"
    echo "after:  ${after}"
    exit 1
fi

echo "== metrics exposition: fleet instruments + registry shard gauges =="
# The wire response is a single escaped line; expand \n back into lines.
query metrics | sed -e 's/^ok //' -e 's/\\n/\n/g' > "${workdir}/metrics.out"
for needle in \
    'extradeep_fleet_runs_total{state="accepted"}' \
    'extradeep_fleet_runs_total{state="quarantined"}' \
    'extradeep_fleet_refits_total' \
    'extradeep_fleet_swaps_total' \
    'extradeep_fleet_pool_queued_tasks' \
    'extradeep_fleet_staleness_runs' \
    'extradeep_fleet_refit_latency_us_bucket' \
    'extradeep_fleet_swap_latency_us_bucket'; do
    grep -qF "${needle}" "${workdir}/metrics.out" || {
        echo "FAIL: metrics exposition lacks ${needle}"
        exit 1
    }
done
shards="$(grep -c '^extradeep_serve_registry_shard_entries{' \
    "${workdir}/metrics.out" || true)"
[[ "${shards}" -eq 16 ]] || {
    echo "FAIL: expected 16 registry shard gauges, saw ${shards}"
    exit 1
}

echo "== protocol shutdown =="
query shutdown | grep -qx "ok bye"
for _ in $(seq 1 100); do
    kill -0 "${server_pid}" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "${server_pid}" 2>/dev/null; then
    echo "FAIL: daemon still running after shutdown request"
    exit 1
fi
wait "${server_pid}" || {
    echo "FAIL: daemon exited with a non-zero status"
    exit 1
}
server_pid=""

echo "fleet_smoke: all green"
