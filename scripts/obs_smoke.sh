#!/usr/bin/env bash
# End-to-end smoke test of the observability subsystem (ISSUE 5): runs a
# real fit with every trace sink enabled and checks each artifact with the
# toolchain itself - no external JSON or Prometheus tooling:
#
#   1. fit a small experiment with --trace chrome:,text:,metrics:,edp:
#   2. validate the Chrome trace with `extradeep-eval --validate-json`
#   3. validate the self-profile run with `extradeep-eval --validate-edp`
#      (strict parse through the same reader the ingestion pipeline uses)
#   4. grep the text summary for the expected pipeline spans
#   5. grep the metrics exposition for the fit counters
#   6. check the EXTRADEEP_TRACE environment path on offline ask mode
#   7. check that an untraced run emits no trace artifacts
#
# Usage: obs_smoke.sh /path/to/extradeep-serve /path/to/extradeep-eval
# Registered as the `obs_smoke` ctest and run by scripts/ci_check.sh.

set -euo pipefail

serve_bin="${1:?usage: obs_smoke.sh /path/to/extradeep-serve /path/to/extradeep-eval}"
eval_bin="${2:?usage: obs_smoke.sh /path/to/extradeep-serve /path/to/extradeep-eval}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/obs-smoke.XXXXXX")"
cleanup() { rm -rf "${workdir}"; }
trap cleanup EXIT

echo "== traced fit: every sink enabled =="
"${serve_bin}" fit --out "${workdir}/smoke.edpm" --name smoke \
    --reps 2 --seed 3 --threads 2 \
    --trace "chrome:${workdir}/trace.json,text:${workdir}/summary.txt,metrics:${workdir}/metrics.prom,edp:${workdir}/self.edp"
for artifact in trace.json summary.txt metrics.prom self.edp; do
    [[ -s "${workdir}/${artifact}" ]] || {
        echo "FAIL: sink ${artifact} missing or empty"; exit 1
    }
done

echo "== validate Chrome trace JSON =="
"${eval_bin}" --validate-json "${workdir}/trace.json"
grep -q '"ph":"X"' "${workdir}/trace.json" || {
    echo "FAIL: trace.json has no complete events"; exit 1
}

echo "== validate self-profile EDP (strict parse) =="
"${eval_bin}" --validate-edp "${workdir}/self.edp" | tee "${workdir}/edp.out"
grep -q 'x1=2' "${workdir}/edp.out" || {
    echo "FAIL: self-profile missing the x1=threads parameter"; exit 1
}

echo "== span summary covers the pipeline stages =="
for span in runner.experiment fit.model fit.hypothesis_chunk \
            aggregate.runs; do
    grep -q "${span}" "${workdir}/summary.txt" || {
        echo "FAIL: span ${span} missing from summary:"
        cat "${workdir}/summary.txt"
        exit 1
    }
done

echo "== metrics exposition carries the fit counters =="
grep -q '^# TYPE extradeep_fit_models_total counter$' "${workdir}/metrics.prom"
grep -q '^extradeep_fit_hypotheses_total [1-9]' "${workdir}/metrics.prom" || {
    echo "FAIL: no hypotheses counted:"; cat "${workdir}/metrics.prom"; exit 1
}

echo "== EXTRADEEP_TRACE environment path (ask mode) =="
EXTRADEEP_TRACE="text:-" "${serve_bin}" ask --models "${workdir}" \
    "predict smoke 16" > "${workdir}/ask.out" 2> "${workdir}/ask.err"
grep -q '^ok ' "${workdir}/ask.out"
grep -q 'serve.execute' "${workdir}/ask.err" || {
    echo "FAIL: env-enabled summary lacks serve.execute span:"
    cat "${workdir}/ask.err"
    exit 1
}

echo "== untraced run stays silent =="
"${serve_bin}" ask --models "${workdir}" "predict smoke 16" \
    > /dev/null 2> "${workdir}/quiet.err"
if grep -q 'serve.execute' "${workdir}/quiet.err"; then
    echo "FAIL: untraced run produced span output"; exit 1
fi

echo "obs_smoke: all green"
