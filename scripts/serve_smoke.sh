#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem, exercising the full
# fit -> export .edpm -> daemon -> client chain over a real TCP socket:
#
#   1. fit a small experiment and export it as a .edpm model file
#   2. start extradeep-serve on an ephemeral port over that directory
#   3. issue one query of every kind through the client
#   4. byte-compare every daemon answer against offline `ask` mode
#   5. shut the daemon down via the protocol and check it exits cleanly
#
# Usage: serve_smoke.sh /path/to/extradeep-serve
# Registered as the `serve_daemon_smoke` ctest.

set -euo pipefail

serve_bin="${1:?usage: serve_smoke.sh /path/to/extradeep-serve}"

workdir="$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")"
server_pid=""
cleanup() {
    if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
        kill "${server_pid}" 2>/dev/null || true
        wait "${server_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

echo "== fit + export =="
"${serve_bin}" fit --out "${workdir}/smoke.edpm" --name smoke \
    --reps 2 --seed 3
grep -q $'^EDPM\t1$' "${workdir}/smoke.edpm"

echo "== start daemon (ephemeral port) =="
"${serve_bin}" serve --models "${workdir}" --threads 2 \
    > "${workdir}/serve.log" 2>&1 &
server_pid=$!

port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "${workdir}/serve.log")"
    [[ -n "${port}" ]] && break
    kill -0 "${server_pid}" 2>/dev/null || {
        echo "FAIL: daemon died during startup"; cat "${workdir}/serve.log"
        exit 1
    }
    sleep 0.1
done
[[ -n "${port}" ]] || { echo "FAIL: no LISTENING line"; exit 1; }
echo "daemon on port ${port}"

requests=(
    "ping"
    "list"
    "predict smoke 16"
    "predict smoke 16 communication"
    "speedup smoke 2 4 8 16"
    "efficiency smoke 2 4 8 16"
    "cost smoke 16"
    "search smoke inf inf 2 4 8 16 32"
    "whatif smoke 16 interconnect:2+overlap:0.5"
    "advise smoke 16 3"
)

echo "== query daemon, compare against offline ask mode =="
"${serve_bin}" query --port "${port}" "${requests[@]}" > "${workdir}/daemon.out"
"${serve_bin}" ask --models "${workdir}" "${requests[@]}" > "${workdir}/ask.out" \
    2>/dev/null
if ! diff -u "${workdir}/ask.out" "${workdir}/daemon.out"; then
    echo "FAIL: daemon answers differ from library answers"
    exit 1
fi
if grep -q '^err ' "${workdir}/daemon.out"; then
    echo "FAIL: a smoke query returned an error:"
    cat "${workdir}/daemon.out"
    exit 1
fi

echo "== deterministic stats/metrics: daemon vs library mode =="
# Under --fake-clock every request costs exactly STEP_US, so the stats and
# metrics responses depend only on the request sequence - byte-identical
# between a fresh daemon and offline ask mode.
det_requests=("${requests[@]}" "stats" "metrics")
"${serve_bin}" serve --models "${workdir}" --threads 1 --fake-clock 5 \
    > "${workdir}/serve_det.log" 2>&1 &
det_pid=$!
det_port=""
for _ in $(seq 1 100); do
    det_port="$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "${workdir}/serve_det.log")"
    [[ -n "${det_port}" ]] && break
    kill -0 "${det_pid}" 2>/dev/null || {
        echo "FAIL: deterministic daemon died"; cat "${workdir}/serve_det.log"
        exit 1
    }
    sleep 0.1
done
[[ -n "${det_port}" ]] || { echo "FAIL: no LISTENING line (det)"; exit 1; }
"${serve_bin}" query --port "${det_port}" "${det_requests[@]}" \
    > "${workdir}/daemon_det.out"
"${serve_bin}" query --port "${det_port}" shutdown | grep -qx "ok bye"
wait "${det_pid}" || { echo "FAIL: det daemon exited non-zero"; exit 1; }
"${serve_bin}" ask --models "${workdir}" --fake-clock 5 "${det_requests[@]}" \
    > "${workdir}/ask_det.out" 2>/dev/null
if ! diff -u "${workdir}/ask_det.out" "${workdir}/daemon_det.out"; then
    echo "FAIL: stats/metrics differ between daemon and library mode"
    exit 1
fi
grep -q 'extradeep_serve_query_latency_us_bucket' "${workdir}/daemon_det.out" || {
    echo "FAIL: metrics response lacks latency histogram samples"
    exit 1
}

echo "== loadgen against the running daemon =="
# Pipelined concurrent load through the event loop; any lost, reordered, or
# error response fails the run (loadgen exits non-zero on a short stream).
"${serve_bin}" loadgen --port "${port}" --connections 4 --requests 50 \
    --pipeline 4 --mode both --out "${workdir}/bench_serve.json" \
    "predict smoke 16" "speedup smoke 2 4 8 16" "cost smoke 16" \
    "whatif smoke 16 interconnect:2" "advise smoke 16 3"
grep -q '"schema": "extradeep-serve-bench/1"' "${workdir}/bench_serve.json" || {
    echo "FAIL: loadgen report missing schema marker"
    exit 1
}

echo "== protocol shutdown =="
"${serve_bin}" query --port "${port}" shutdown | grep -qx "ok bye"
for _ in $(seq 1 100); do
    kill -0 "${server_pid}" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "${server_pid}" 2>/dev/null; then
    echo "FAIL: daemon still running after shutdown request"
    exit 1
fi
wait "${server_pid}" || {
    echo "FAIL: daemon exited with a non-zero status"
    exit 1
}
server_pid=""

echo "serve_smoke: all green"
