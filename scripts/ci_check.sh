#!/usr/bin/env bash
# Full local CI sweep: both build presets, both test tiers, and the
# end-to-end accuracy gate. Run from anywhere; everything is rooted at the
# repository top level. Any failure aborts the script (set -e).
#
#   scripts/ci_check.sh            # default + sanitize builds, tests, gate
#   SKIP_SANITIZE=1 scripts/ci_check.sh   # quick pre-push variant

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"

echo "== [1/13] Release build + full test suite =="
cmake --preset default
cmake --build --preset default -j "${jobs}"
ctest --preset default -j "${jobs}"

echo "== [2/13] Accuracy harness (quick suite + calibrated thresholds) =="
./build/src/eval/extradeep-eval --quick \
    --thresholds "${repo_root}/eval_thresholds.json"

echo "== [3/13] Performance gate: ingest + fitter throughput floors =="
./build/bench/extradeep-perf --quick \
    --thresholds "${repo_root}/perf_thresholds.json"

echo "== [4/13] What-if advisor gate: predictions vs re-simulation =="
./build/src/advisor/extradeep-advisor --quick \
    --thresholds "${repo_root}/whatif_thresholds.json"

echo "== [5/13] Fleet drift gate: continuous re-fit vs injected drift =="
./build/src/fleet/extradeep-fleet --quick \
    --thresholds "${repo_root}/fleet_thresholds.json"

echo "== [6/13] Plan gate: adaptive planner vs fixed-grid budget =="
./build/src/planner/extradeep-plan --quick \
    --thresholds "${repo_root}/plan_thresholds.json"

echo "== [7/13] Serving smoke: fit -> .edpm -> daemon -> client =="
scripts/serve_smoke.sh ./build/src/serve/extradeep-serve

echo "== [8/13] Serve-plane load gate: loadgen vs serve_thresholds.json =="
./build/src/serve/extradeep-serve loadgen --self --connections 8 \
    --requests 200 --pipeline 8 --mode both \
    --thresholds "${repo_root}/serve_thresholds.json"

echo "== [9/13] Fleet smoke: ingest + spool -> refit -> hot swap =="
scripts/fleet_smoke.sh ./build/src/fleet/extradeep-fleet

echo "== [10/13] Observability smoke: traced fit, validated artifacts =="
scripts/obs_smoke.sh ./build/src/serve/extradeep-serve \
    ./build/src/eval/extradeep-eval

echo "== [11/13] Planner smoke: metrics, plan JSON, serve plan verb =="
scripts/plan_smoke.sh ./build/src/planner/extradeep-plan \
    ./build/src/serve/extradeep-serve ./build/src/eval/extradeep-eval

if [[ "${SKIP_SANITIZE:-0}" != "1" ]]; then
    echo "== [12/13] ASan+UBSan build + sanitize_smoke suite =="
    cmake --preset sanitize
    cmake --build --preset sanitize -j "${jobs}"
    ctest --preset sanitize-smoke -j "${jobs}"

    echo "== [13/13] Accuracy harness under sanitizers =="
    ./build-sanitize/src/eval/extradeep-eval --quick \
        --thresholds "${repo_root}/eval_thresholds.json"
else
    echo "== [12-13/13] skipped (SKIP_SANITIZE=1) =="
fi

echo "ci_check: all green"
