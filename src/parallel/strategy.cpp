#include "parallel/strategy.hpp"

#include "common/error.hpp"

namespace extradeep::parallel {

std::string_view strategy_name(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::Data: return "data parallelism";
        case StrategyKind::Tensor: return "tensor parallelism";
        case StrategyKind::Pipeline: return "pipeline parallelism";
    }
    throw InvalidArgumentError("strategy_name: unknown kind");
}

StrategyKind parse_strategy(std::string_view name) {
    if (name == "data parallelism" || name == "data") return StrategyKind::Data;
    if (name == "tensor parallelism" || name == "tensor") {
        return StrategyKind::Tensor;
    }
    if (name == "pipeline parallelism" || name == "pipeline") {
        return StrategyKind::Pipeline;
    }
    throw ParseError("parse_strategy: unknown strategy name '" +
                     std::string(name) + "'");
}

std::string_view scaling_name(ScalingMode mode) {
    switch (mode) {
        case ScalingMode::Weak: return "weak scaling";
        case ScalingMode::Strong: return "strong scaling";
    }
    throw InvalidArgumentError("scaling_name: unknown mode");
}

ScalingMode parse_scaling(std::string_view name) {
    if (name == "weak scaling" || name == "weak") return ScalingMode::Weak;
    if (name == "strong scaling" || name == "strong") return ScalingMode::Strong;
    throw ParseError("parse_scaling: unknown scaling name '" +
                     std::string(name) + "'");
}

int ParallelConfig::shards() const {
    return total_ranks / model_parallel_degree;
}

void ParallelConfig::validate() const {
    if (total_ranks < 2) {
        throw InvalidArgumentError(
            "ParallelConfig: at least 2 ranks required (single-process runs "
            "are out of scope, paper Sec. 2)");
    }
    if (model_parallel_degree < 1) {
        throw InvalidArgumentError("ParallelConfig: M must be >= 1");
    }
    if (total_ranks % model_parallel_degree != 0) {
        throw InvalidArgumentError("ParallelConfig: M must divide the rank count");
    }
    if (kind == StrategyKind::Data && model_parallel_degree != 1) {
        throw InvalidArgumentError("ParallelConfig: data parallelism requires M=1");
    }
    if (kind != StrategyKind::Data && model_parallel_degree < 2) {
        throw InvalidArgumentError(
            "ParallelConfig: tensor/pipeline parallelism requires M>=2");
    }
    if (kind == StrategyKind::Pipeline && microbatches < 1) {
        throw InvalidArgumentError("ParallelConfig: microbatches must be >= 1");
    }
}

ParallelConfig ParallelConfig::data(int ranks) {
    ParallelConfig c;
    c.kind = StrategyKind::Data;
    c.total_ranks = ranks;
    c.model_parallel_degree = 1;
    c.validate();
    return c;
}

ParallelConfig ParallelConfig::tensor(int ranks, int m) {
    ParallelConfig c;
    c.kind = StrategyKind::Tensor;
    c.total_ranks = ranks;
    c.model_parallel_degree = m;
    c.validate();
    return c;
}

ParallelConfig ParallelConfig::pipeline(int ranks, int m, int microbatches) {
    ParallelConfig c;
    c.kind = StrategyKind::Pipeline;
    c.total_ranks = ranks;
    c.model_parallel_degree = m;
    c.microbatches = microbatches;
    c.validate();
    return c;
}

}  // namespace extradeep::parallel
