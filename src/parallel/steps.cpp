#include "parallel/steps.hpp"

#include "common/error.hpp"

namespace extradeep::parallel {

StepMath compute_steps(const dnn::DatasetSpec& dataset,
                       const ParallelConfig& config, std::int64_t batch_size,
                       ScalingMode scaling) {
    config.validate();
    if (batch_size < 1) {
        throw InvalidArgumentError("compute_steps: batch size must be >= 1");
    }
    StepMath m;
    m.batch_per_worker = batch_size;
    const std::int64_t shards = config.shards();

    m.effective_train_samples = dataset.train_samples;
    m.effective_val_samples = dataset.val_samples;
    if (scaling == ScalingMode::Weak) {
        m.effective_train_samples *= shards;
        m.effective_val_samples *= shards;
    }

    // Eq. 2 / Eq. 3 with G = total ranks, M = model-parallel degree, so
    // G/M == shards.
    m.train_steps = (m.effective_train_samples / shards) / batch_size;
    m.val_steps = (m.effective_val_samples / shards) / batch_size;

    if (m.train_steps < 1) {
        throw InvalidArgumentError(
            "compute_steps: dataset too small for this configuration (n_t = 0)");
    }
    return m;
}

}  // namespace extradeep::parallel
