#include "parallel/comm_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace extradeep::parallel {

std::string_view comm_op_kind_name(CommOpKind kind) {
    switch (kind) {
        case CommOpKind::Allreduce: return "allreduce";
        case CommOpKind::Allgather: return "allgather";
        case CommOpKind::Broadcast: return "broadcast";
        case CommOpKind::SendRecv: return "sendrecv";
    }
    throw InvalidArgumentError("comm_op_kind_name: unknown kind");
}

namespace {

/// Splits `total_bytes` into Horovod-style fusion buckets.
void push_gradient_buckets(std::vector<CommOp>& ops, double total_bytes,
                           int participants, const std::string& prefix) {
    if (total_bytes <= 0.0 || participants < 2) {
        return;
    }
    const int buckets = static_cast<int>(
        std::ceil(total_bytes / kGradientBucketBytes));
    const double per_bucket = total_bytes / buckets;
    for (int i = 0; i < buckets; ++i) {
        CommOp op;
        op.kind = CommOpKind::Allreduce;
        op.name = prefix + "_b" + std::to_string(i);
        op.bytes = per_bucket;
        op.participants = participants;
        ops.push_back(std::move(op));
    }
}

CommOp metric_allreduce(int participants) {
    CommOp op;
    op.kind = CommOpKind::Allreduce;
    op.name = "metric_allreduce";
    op.bytes = 16.0;  // loss + accuracy scalars
    op.participants = participants;
    return op;
}

}  // namespace

CommPlan build_comm_plan(const dnn::NetworkModel& network,
                         const ParallelConfig& config,
                         std::int64_t batch_per_worker) {
    config.validate();
    if (batch_per_worker < 1) {
        throw InvalidArgumentError("build_comm_plan: batch size must be >= 1");
    }
    CommPlan plan;
    const int ranks = config.total_ranks;
    const int m = config.model_parallel_degree;
    const int shards = config.shards();
    const double grad_bytes = network.gradient_bytes();
    const double batch = static_cast<double>(batch_per_worker);

    // Initial weight synchronisation, common to all strategies.
    {
        CommOp bcast;
        bcast.kind = CommOpKind::Broadcast;
        bcast.name = "initial_weight_broadcast";
        bcast.bytes = grad_bytes / m;  // each rank holds its model shard
        bcast.participants = ranks;
        plan.startup_ops.push_back(std::move(bcast));
    }

    switch (config.kind) {
        case StrategyKind::Data: {
            push_gradient_buckets(plan.train_ops, grad_bytes, ranks,
                                  "grad_allreduce");
            plan.train_ops.push_back(metric_allreduce(ranks));
            plan.val_ops.push_back(metric_allreduce(ranks));
            break;
        }
        case StrategyKind::Tensor: {
            // Mesh-TF style: every parametrised layer is sharded over the M
            // group members; its output activations are allgathered forward
            // and the activation gradients allreduced backward, inside the
            // group.
            for (const auto& layer : network.layers) {
                if (layer.params == 0) continue;
                const double act_bytes = batch * layer.output_bytes / m;
                CommOp fwd;
                fwd.kind = CommOpKind::Allgather;
                fwd.name = layer.name + "_fwd_allgather";
                fwd.bytes = act_bytes;
                fwd.participants = m;
                fwd.intra_group = true;
                plan.val_ops.push_back(fwd);
                plan.train_ops.push_back(fwd);

                CommOp bwd;
                bwd.kind = CommOpKind::Allreduce;
                bwd.name = layer.name + "_bwd_allreduce";
                bwd.bytes = act_bytes;
                bwd.participants = m;
                bwd.intra_group = true;
                plan.train_ops.push_back(std::move(bwd));
            }
            // Sharded gradient exchange across the data-parallel shards.
            push_gradient_buckets(plan.train_ops, grad_bytes / m, shards,
                                  "grad_allreduce");
            plan.train_ops.push_back(metric_allreduce(ranks));
            plan.val_ops.push_back(metric_allreduce(ranks));
            break;
        }
        case StrategyKind::Pipeline: {
            // Boundary activations between consecutive stages, per
            // microbatch, forward and backward. A representative interior
            // rank sends and receives at both boundaries; we take the mean
            // boundary activation size over the stage cuts.
            const auto bounds = network.balanced_stage_bounds(m);
            double boundary_bytes = 0.0;
            int cuts = 0;
            for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
                const auto& boundary_layer = network.layers[bounds[s] - 1];
                boundary_bytes += boundary_layer.output_bytes;
                ++cuts;
            }
            if (cuts > 0) {
                boundary_bytes /= cuts;
            }
            const double micro =
                batch / static_cast<double>(config.microbatches);
            CommOp fwd;
            fwd.kind = CommOpKind::SendRecv;
            fwd.name = "stage_activation_send";
            fwd.bytes = micro * boundary_bytes;
            fwd.participants = 2;
            fwd.intra_group = true;
            fwd.per_step_count = config.microbatches;
            plan.val_ops.push_back(fwd);
            plan.train_ops.push_back(fwd);

            CommOp bwd = fwd;
            bwd.name = "stage_gradient_send";
            plan.train_ops.push_back(std::move(bwd));

            // Per-stage data-parallel gradient allreduce across shards.
            push_gradient_buckets(plan.train_ops, grad_bytes / m, shards,
                                  "grad_allreduce");
            plan.train_ops.push_back(metric_allreduce(ranks));
            plan.val_ops.push_back(metric_allreduce(ranks));

            plan.pipeline_bubble_fraction =
                static_cast<double>(m - 1) /
                static_cast<double>(config.microbatches + m - 1);
            break;
        }
    }
    return plan;
}

}  // namespace extradeep::parallel
