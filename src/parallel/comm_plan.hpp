#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.hpp"
#include "parallel/strategy.hpp"

namespace extradeep::parallel {

enum class CommOpKind {
    Allreduce,
    Allgather,
    Broadcast,
    SendRecv,
};

std::string_view comm_op_kind_name(CommOpKind kind);

/// One communication operation executed during a training/validation step
/// (or once at startup). The simulator turns these into MPI_* or nccl*
/// kernel events and prices them with the hw collective models.
struct CommOp {
    CommOpKind kind = CommOpKind::Allreduce;
    std::string name;        ///< logical name, e.g. "grad_allreduce_b0"
    double bytes = 0.0;      ///< payload per execution
    int participants = 1;    ///< ranks taking part
    bool intra_group = false;  ///< within a model-parallel group (placed on
                               ///< adjacent GPUs, may use intra-node links)
    int per_step_count = 1;  ///< executions per step
};

/// The complete communication schedule of one configuration.
struct CommPlan {
    std::vector<CommOp> train_ops;    ///< per training step
    std::vector<CommOp> val_ops;      ///< per validation step
    std::vector<CommOp> startup_ops;  ///< once, during initialisation
    /// Fraction of every training step lost to the pipeline fill/drain
    /// bubble: (M-1) / (microbatches + M - 1); zero for other strategies.
    double pipeline_bubble_fraction = 0.0;
};

/// Horovod's default fusion-buffer size: gradients are exchanged in 64 MiB
/// buckets rather than one allreduce per tensor.
inline constexpr double kGradientBucketBytes = 64.0 * 1024.0 * 1024.0;

/// Derives the per-step communication schedule of a network under the given
/// strategy:
///  - data parallelism: bucketed gradient allreduce over all ranks after
///    backpropagation + a scalar metric allreduce; startup weight broadcast.
///  - tensor parallelism: per parametrised layer, an intra-group activation
///    allgather (forward) and allreduce (backward), plus the sharded
///    gradient allreduce across data-parallel shards.
///  - pipeline parallelism: per microbatch, boundary-activation send/recv
///    forward and backward, plus the per-stage sharded gradient allreduce
///    and the fill/drain bubble fraction.
/// `batch_per_worker` sizes the activation traffic.
CommPlan build_comm_plan(const dnn::NetworkModel& network,
                         const ParallelConfig& config,
                         std::int64_t batch_per_worker);

}  // namespace extradeep::parallel
