#pragma once

#include <cstdint>

#include "dnn/datasets.hpp"
#include "parallel/strategy.hpp"

namespace extradeep::parallel {

/// The analytical step math of paper Sec. 2.3.1. These values must be
/// provided once at the start of modeling; everything downstream is
/// automated.
struct StepMath {
    std::int64_t effective_train_samples = 0;  ///< D_t after scaling-mode adjustment
    std::int64_t effective_val_samples = 0;    ///< D_v after scaling-mode adjustment
    std::int64_t batch_per_worker = 0;         ///< B
    std::int64_t train_steps = 0;              ///< n_t (Eq. 2)
    std::int64_t val_steps = 0;                ///< n_v (Eq. 3)
};

/// Computes n_t and n_v for a configuration (Eqs. 2-3):
///   n_t = floor((D_t / (G/M)) / B)
/// Weak scaling first multiplies D_t (and D_v) by the number of data-parallel
/// shards, as in the paper's CIFAR-10 case study ("we multiply the size of
/// the training dataset by the number of MPI ranks"), so the per-worker step
/// count stays constant. Throws InvalidArgumentError if B < 1, or if the
/// sharded dataset is smaller than one batch (n_t would be 0).
StepMath compute_steps(const dnn::DatasetSpec& dataset,
                       const ParallelConfig& config, std::int64_t batch_size,
                       ScalingMode scaling);

}  // namespace extradeep::parallel
