#pragma once

#include <string>
#include <string_view>

namespace extradeep::parallel {

/// The three parallel training strategies evaluated in the paper (Sec. 4.1):
/// pure data parallelism (TensorFlow + Horovod), tensor parallelism
/// (Mesh-TensorFlow), and pipeline parallelism (PyTorch + Horovod). Pure
/// model parallelism is serial and therefore excluded, as in the paper.
enum class StrategyKind {
    Data,
    Tensor,
    Pipeline,
};

std::string_view strategy_name(StrategyKind kind);

/// Parses the output of strategy_name back into the enum (also accepts the
/// bare "data"/"tensor"/"pipeline" shorthand used by CLI flags). Throws
/// ParseError for unknown names (used by the .edpm model reader).
StrategyKind parse_strategy(std::string_view name);

/// Weak scaling multiplies the training set with the number of data-parallel
/// shards; strong scaling keeps the problem size fixed (Sec. 4.1 runs every
/// experiment in both modes).
enum class ScalingMode {
    Weak,
    Strong,
};

std::string_view scaling_name(ScalingMode mode);

/// Parses the output of scaling_name back into the enum (also accepts the
/// bare "weak"/"strong" shorthand). Throws ParseError for unknown names.
ScalingMode parse_scaling(std::string_view name);

/// A fully specified parallel execution: strategy, total MPI ranks x1, and
/// the degree of model parallelism M. Following Eq. 2's convention, G is the
/// total degree of parallelism (all participating ranks) and G/M is the
/// number of data-parallel shards, so
///   data parallel:      M = 1, shards = x1
///   tensor/pipeline:    M = 4, shards = x1 / 4  (paper Sec. 4.2.1)
struct ParallelConfig {
    StrategyKind kind = StrategyKind::Data;
    int total_ranks = 1;          ///< x1, one rank per GPU
    int model_parallel_degree = 1;  ///< M
    int microbatches = 4;         ///< pipeline schedule depth (pipeline only)

    /// Degree of data parallelism G (Eq. 2): the total participating ranks.
    int data_parallel_degree() const { return total_ranks; }
    /// Number of data-parallel shards G/M (model-parallel groups).
    int shards() const;

    /// Throws InvalidArgumentError unless ranks >= 2 (the paper excludes
    /// single-process runs), M >= 1 divides ranks, and M == 1 for pure data
    /// parallelism.
    void validate() const;

    /// Standard configurations used in the evaluation.
    static ParallelConfig data(int ranks);
    static ParallelConfig tensor(int ranks, int m = 4);
    static ParallelConfig pipeline(int ranks, int m = 4, int microbatches = 4);
};

}  // namespace extradeep::parallel
