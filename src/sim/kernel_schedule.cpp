#include "sim/kernel_schedule.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "hw/gpu.hpp"
#include "hw/network.hpp"
#include "parallel/comm_plan.hpp"

namespace extradeep::sim {

using trace::KernelCategory;
using trace::Phase;

double StepSchedule::train_step_time() const {
    double t = 0.0;
    for (const auto& k : kernels) t += k.train_time;
    return t;
}

double StepSchedule::val_step_time() const {
    double t = 0.0;
    for (const auto& k : kernels) t += k.val_time;
    return t;
}

double StepSchedule::train_phase_time(Phase phase) const {
    double t = 0.0;
    for (const auto& k : kernels) {
        if (trace::phase_of(k.category) == phase) t += k.train_time;
    }
    return t;
}

namespace {

/// Accumulates per-kernel totals by name while the network is expanded.
class ScheduleAccum {
public:
    KernelDesc& get(const std::string& name, KernelCategory category,
                    bool on_gpu) {
        auto it = index_.find(name);
        if (it == index_.end()) {
            KernelDesc d;
            d.name = name;
            d.category = category;
            d.on_gpu = on_gpu;
            kernels_.push_back(std::move(d));
            it = index_.emplace(name, kernels_.size() - 1).first;
        }
        return kernels_[it->second];
    }

    /// Adds to the training-step totals only.
    void train(const std::string& name, KernelCategory cat, bool gpu,
               double time, std::int64_t visits, double bytes = 0.0) {
        KernelDesc& d = get(name, cat, gpu);
        d.train_time += time;
        d.train_visits += visits;
        d.train_bytes += bytes;
    }

    /// Adds to both training and validation steps (forward-pass work).
    void both(const std::string& name, KernelCategory cat, bool gpu,
              double time, std::int64_t visits, double bytes = 0.0) {
        KernelDesc& d = get(name, cat, gpu);
        d.train_time += time;
        d.train_visits += visits;
        d.train_bytes += bytes;
        d.val_time += time;
        d.val_visits += visits;
        d.val_bytes += bytes;
    }

    void val(const std::string& name, KernelCategory cat, bool gpu,
             double time, std::int64_t visits, double bytes = 0.0) {
        KernelDesc& d = get(name, cat, gpu);
        d.val_time += time;
        d.val_visits += visits;
        d.val_bytes += bytes;
    }

    std::vector<KernelDesc> take() && { return std::move(kernels_); }

private:
    std::vector<KernelDesc> kernels_;
    std::unordered_map<std::string, std::size_t> index_;
};

/// Roofline efficiency by layer kind (how well the generated kernels utilise
/// peak FLOPs). Memory-bound kernels are priced through the bytes side.
double layer_efficiency(const dnn::Layer& layer) {
    switch (layer.kind) {
        case dnn::LayerKind::Conv2d:
            return layer.kernel_size == 1 ? 0.35 : 0.50;
        case dnn::LayerKind::DepthwiseConv2d:
            return 0.08;
        case dnn::LayerKind::Dense:
            return 0.60;
        default:
            return 0.30;  // elementwise/pool kernels are memory bound anyway
    }
}

/// Host-side library call overheads.
constexpr double kCudnnCallOverhead = 9e-6;
constexpr double kCublasCallOverhead = 6e-6;
constexpr double kLaunchOverhead = 2.2e-6;

struct ExpandContext {
    const Workload& w;
    const hw::GpuSpec& gpu;
    std::string arch;       ///< "volta" / "ampere" kernel-name prefix
    std::string framework;  ///< "tf" (Eigen kernels) or "torch"
    double comp_share;      ///< fraction of each layer computed per rank
    double eff_scale;       ///< GEMM-efficiency degradation from sharding
    double batch;           ///< samples per worker per step
};

/// Emits the GPU kernel + host library call for one logical operation.
void emit_op(ScheduleAccum& acc, const ExpandContext& ctx,
             const std::string& kernel_name, KernelCategory host_cat,
             const std::string& host_name, double flops, double bytes,
             double efficiency, bool train_only) {
    const double t = hw::kernel_time(ctx.gpu, flops, bytes, efficiency);
    if (train_only) {
        acc.train(kernel_name, KernelCategory::CudaKernel, true, t, 1);
        if (!host_name.empty()) {
            acc.train(host_name, host_cat, false, kCudnnCallOverhead, 1);
        }
    } else {
        acc.both(kernel_name, KernelCategory::CudaKernel, true, t, 1);
        if (!host_name.empty()) {
            acc.both(host_name, host_cat, false, kCudnnCallOverhead, 1);
        }
    }
}

void expand_layer(ScheduleAccum& acc, const ExpandContext& ctx,
                  const dnn::Layer& layer) {
    const double share = ctx.comp_share;
    const double b = ctx.batch;
    const double eff = layer_efficiency(layer) * ctx.eff_scale;
    // Activation traffic per step: read input + write output, fp32.
    const double act_bytes =
        b * (layer.input.bytes() + layer.output_bytes) * share;
    const double weight_bytes = layer.weight_bytes * share;
    const double fwd_flops = layer.flops_forward * b * share;
    // Backward is split into data-gradient and weight-gradient halves.
    const double bwd_half_flops = 0.5 * layer.flops_backward * b * share;
    const std::string elem_kernel = ctx.framework == "tf"
                                        ? "EigenMetaKernel"
                                        : "vectorized_elementwise_kernel";

    switch (layer.kind) {
        case dnn::LayerKind::Conv2d: {
            const std::string algo =
                layer.kernel_size == 1 ? "implicit_gemm" : "winograd";
            emit_op(acc, ctx, ctx.arch + "_scudnn_" + algo + "_fprop",
                    KernelCategory::Cudnn, "cudnnConvolutionForward", fwd_flops,
                    act_bytes + weight_bytes, eff, false);
            emit_op(acc, ctx, ctx.arch + "_scudnn_" + algo + "_dgrad",
                    KernelCategory::Cudnn, "cudnnConvolutionBackwardData",
                    bwd_half_flops, act_bytes + weight_bytes, eff * 0.9, true);
            emit_op(acc, ctx, ctx.arch + "_scudnn_" + algo + "_wgrad",
                    KernelCategory::Cudnn, "cudnnConvolutionBackwardFilter",
                    bwd_half_flops, act_bytes + weight_bytes, eff * 0.8, true);
            break;
        }
        case dnn::LayerKind::DepthwiseConv2d: {
            emit_op(acc, ctx, "depthwise_fprop_kernel", KernelCategory::Cudnn,
                    "cudnnConvolutionForward", fwd_flops, act_bytes, eff, false);
            emit_op(acc, ctx, "depthwise_dgrad_kernel", KernelCategory::Cudnn,
                    "cudnnConvolutionBackwardData", bwd_half_flops, act_bytes,
                    eff, true);
            emit_op(acc, ctx, "depthwise_wgrad_kernel", KernelCategory::Cudnn,
                    "cudnnConvolutionBackwardFilter", bwd_half_flops, act_bytes,
                    eff, true);
            break;
        }
        case dnn::LayerKind::Dense: {
            const double t_fwd = hw::kernel_time(
                ctx.gpu, fwd_flops, act_bytes + weight_bytes, eff);
            acc.both(ctx.arch + "_sgemm_128x64_nn", KernelCategory::CudaKernel,
                     true, t_fwd, 1);
            acc.both("cublasSgemm", KernelCategory::Cublas, false,
                     kCublasCallOverhead, 1);
            const double t_bwd = hw::kernel_time(
                ctx.gpu, bwd_half_flops, act_bytes + weight_bytes, eff * 0.9);
            acc.train(ctx.arch + "_sgemm_128x64_tn", KernelCategory::CudaKernel,
                      true, t_bwd, 1);
            acc.train(ctx.arch + "_sgemm_128x64_nt", KernelCategory::CudaKernel,
                      true, t_bwd, 1);
            acc.train("cublasSgemm", KernelCategory::Cublas, false,
                      2 * kCublasCallOverhead, 2);
            break;
        }
        case dnn::LayerKind::BatchNorm: {
            emit_op(acc, ctx, "bn_fw_tr_1C11_kernel", KernelCategory::Cudnn,
                    "cudnnBatchNormalizationForwardTraining", fwd_flops,
                    act_bytes, eff, false);
            emit_op(acc, ctx, "bn_bw_1C11_kernel", KernelCategory::Cudnn,
                    "cudnnBatchNormalizationBackward", bwd_half_flops * 2.0,
                    act_bytes, eff, true);
            break;
        }
        case dnn::LayerKind::Activation:
        case dnn::LayerKind::Add:
        case dnn::LayerKind::Scale:
        case dnn::LayerKind::Dropout: {
            const double t_fwd =
                hw::kernel_time(ctx.gpu, fwd_flops, act_bytes, 0.3);
            acc.both(elem_kernel, KernelCategory::CudaKernel, true, t_fwd, 1);
            const double t_bwd =
                hw::kernel_time(ctx.gpu, layer.flops_backward * b * share,
                                act_bytes, 0.3);
            acc.train(elem_kernel, KernelCategory::CudaKernel, true, t_bwd, 1);
            break;
        }
        case dnn::LayerKind::MaxPool:
        case dnn::LayerKind::AvgPool: {
            emit_op(acc, ctx, "pooling_fw_4d_kernel", KernelCategory::Cudnn,
                    "cudnnPoolingForward", fwd_flops, act_bytes, 0.3, false);
            emit_op(acc, ctx, "pooling_bw_4d_kernel", KernelCategory::Cudnn,
                    "cudnnPoolingBackward", bwd_half_flops * 2.0, act_bytes,
                    0.3, true);
            break;
        }
        case dnn::LayerKind::GlobalAvgPool: {
            const double t_fwd =
                hw::kernel_time(ctx.gpu, fwd_flops, act_bytes, 0.3);
            acc.both("reduce_kernel", KernelCategory::CudaKernel, true, t_fwd,
                     1);
            const double t_bwd = hw::kernel_time(
                ctx.gpu, layer.flops_backward * b * share, act_bytes, 0.3);
            acc.train("reduce_bw_kernel", KernelCategory::CudaKernel, true,
                      t_bwd, 1);
            break;
        }
        case dnn::LayerKind::Embedding: {
            const double gather_bytes = 2.0 * b * layer.output_bytes * share;
            const double t_fwd =
                hw::kernel_time(ctx.gpu, 0.0, gather_bytes, 0.3);
            acc.both("gather_v2_kernel", KernelCategory::CudaKernel, true,
                     t_fwd, 1);
            const double t_bwd = hw::kernel_time(
                ctx.gpu, layer.flops_backward * b * share, gather_bytes, 0.3);
            acc.train("scatter_add_kernel", KernelCategory::CudaKernel, true,
                      t_bwd, 1);
            break;
        }
        case dnn::LayerKind::Softmax: {
            emit_op(acc, ctx, "softmax_fw_kernel", KernelCategory::Cudnn,
                    "cudnnSoftmaxForward", fwd_flops, act_bytes, 0.3, false);
            emit_op(acc, ctx, "softmax_bw_kernel", KernelCategory::Cudnn,
                    "cudnnSoftmaxBackward", bwd_half_flops * 2.0, act_bytes,
                    0.3, true);
            break;
        }
        case dnn::LayerKind::Flatten:
            break;  // a view change, no kernel
    }
}

}  // namespace

PricedComm price_comm(const Workload& w, const parallel::CommOp& op) {
    const hw::SystemSpec& sys = w.system;
    const bool nccl = sys.nccl_support && sys.gpus_per_node > 1;
    PricedComm out;
    switch (op.kind) {
        case parallel::CommOpKind::Allreduce: {
            // Tiny coordination allreduces (metrics, Horovod control plane)
            // always go through MPI on the host.
            const bool tiny = op.bytes < 4096.0;
            if (nccl && !tiny) {
                out.name = "ncclAllReduce_RingLL";
                out.category = KernelCategory::Nccl;
                out.on_gpu = true;
                if (op.intra_group && op.participants <= sys.gpus_per_node) {
                    out.time = hw::ring_allreduce_time(sys.intra_node, op.bytes,
                                                       op.participants);
                } else {
                    out.time = hw::allreduce_time(sys, op.bytes, op.participants);
                }
            } else {
                out.name = "MPI_Allreduce";
                out.category = KernelCategory::Mpi;
                out.time = tiny ? hw::tree_allreduce_time(sys.inter_node,
                                                          op.bytes,
                                                          op.participants)
                                : hw::allreduce_time(sys, op.bytes,
                                                     op.participants);
            }
            break;
        }
        case parallel::CommOpKind::Allgather: {
            if (nccl) {
                out.name = "ncclAllGather_Ring";
                out.category = KernelCategory::Nccl;
                out.on_gpu = true;
                const hw::LinkSpec& link =
                    (op.intra_group && op.participants <= sys.gpus_per_node)
                        ? sys.intra_node
                        : sys.inter_node;
                out.time = hw::allgather_time(link, op.bytes, op.participants);
            } else {
                out.name = "MPI_Allgather";
                out.category = KernelCategory::Mpi;
                out.time =
                    hw::system_allgather_time(sys, op.bytes, op.participants);
            }
            break;
        }
        case parallel::CommOpKind::SendRecv: {
            const bool same_node =
                op.intra_group && sys.gpus_per_node >= op.participants;
            if (nccl) {
                out.name = "ncclSendRecv";
                out.category = KernelCategory::Nccl;
                out.on_gpu = true;
            } else {
                out.name = "MPI_Sendrecv";
                out.category = KernelCategory::Mpi;
            }
            out.time = hw::p2p_time(sys, op.bytes, same_node);
            break;
        }
        case parallel::CommOpKind::Broadcast: {
            out.name = "MPI_Bcast";
            out.category = KernelCategory::Mpi;
            out.time =
                hw::broadcast_time(sys.inter_node, op.bytes, op.participants);
            break;
        }
    }
    return out;
}

StepSchedule build_step_schedule(const Workload& workload) {
    workload.parallel.validate();
    const dnn::NetworkModel& net = workload.app.network;
    const hw::SystemSpec& sys = workload.system;
    const int m = workload.parallel.model_parallel_degree;
    const int ranks = workload.parallel.total_ranks;

    ExpandContext ctx{workload,
                      sys.gpu,
                      sys.gpu.name == "V100" ? "volta" : "ampere",
                      workload.parallel.kind == parallel::StrategyKind::Pipeline
                          ? "torch"
                          : "tf",
                      1.0 / static_cast<double>(m),
                      1.0,
                      static_cast<double>(workload.batch_per_worker)};
    if (workload.parallel.kind == parallel::StrategyKind::Tensor && m > 1) {
        // Sharded GEMMs/convolutions run at lower utilisation.
        ctx.eff_scale = std::pow(0.85, std::log2(static_cast<double>(m)));
    }

    ScheduleAccum acc;
    for (const auto& layer : net.layers) {
        expand_layer(acc, ctx, layer);
    }

    // Loss and optimizer.
    {
        const double loss_flops =
            5.0 * ctx.batch * workload.app.dataset.num_classes;
        const double t_loss = hw::kernel_time(sys.gpu, loss_flops,
                                              8.0 * ctx.batch, 0.3);
        acc.both("sparse_softmax_xent_kernel", KernelCategory::CudaKernel, true,
                 t_loss, 1);

        const double shard_weight_bytes = net.gradient_bytes() / m;
        const double t_opt = hw::kernel_time(
            sys.gpu, 2.0 * static_cast<double>(net.total_params()) / m,
            3.0 * shard_weight_bytes, 0.3);
        acc.train("sgd_momentum_update_kernel", KernelCategory::CudaKernel,
                  true, t_opt, 1);

        // Gradient buffer clear before accumulation.
        acc.train("Memset", KernelCategory::Memset, true,
                  hw::memset_time(sys.gpu, shard_weight_bytes), 1,
                  shard_weight_bytes);
    }

    // Host<->device traffic: the input batch up, the loss value down. The
    // loss copy is asynchronous and typically completes after the step's
    // NVTX end mark (exercises the paper's between-steps aggregation path).
    {
        const double input_bytes = ctx.batch * net.input.bytes();
        acc.both("Memcpy HtoD", KernelCategory::Memcpy, true,
                 hw::memcpy_time(sys.gpu, input_bytes), 1, input_bytes);
        KernelDesc& dtoh = acc.get("Memcpy DtoH", KernelCategory::Memcpy, true);
        const double t_dtoh = hw::memcpy_time(sys.gpu, 8.0);
        dtoh.train_time += t_dtoh;
        dtoh.val_time += t_dtoh;
        dtoh.train_visits += 1;
        dtoh.val_visits += 1;
        dtoh.train_bytes += 8.0;
        dtoh.val_bytes += 8.0;
        dtoh.async_after_step = true;
    }

    // Input pipeline: preprocessing on the host, plus streaming reads for
    // datasets that do not fit into memory.
    {
        const double t_pre = ctx.batch / sys.preprocess_rate_samples_per_s;
        acc.both("preprocess_batch", KernelCategory::NvtxFunction, false, t_pre,
                 1);
        const bool image_input = net.input.rank() == 3;
        if (image_input) {
            acc.train("augment_data", KernelCategory::NvtxFunction, false,
                      0.4 * t_pre, 1);
        }
        if (workload.streams_from_disk()) {
            // Streaming from the parallel file system: every rank reads its
            // batch each step, and the shared PFS degrades with the number
            // of clients - another scale-dependent effect outside the PMNF
            // space (it makes large streaming benchmarks like ImageNet the
            // hardest to predict, as in the paper's Fig. 7).
            const double read_bytes =
                ctx.batch * workload.app.dataset.bytes_per_sample;
            const int nodes = sys.nodes_for_ranks(ranks);
            double pfs_contention =
                1.0 + 0.05 * std::sqrt(static_cast<double>(nodes));
            if (nodes > 32) {
                pfs_contention *= 2.5;  // OST saturation past ~32 clients -
                                        // invisible from small-scale profiles
            }
            acc.both("read", KernelCategory::Os, false,
                     read_bytes * pfs_contention / (sys.io_read_gbs * 1e9), 4,
                     read_bytes);
        }
        // Thread-pool synchronisation grows with the job size (more
        // stragglers to wait for in the tf.data/horovod coordination).
        const double t_futex =
            4e-5 * (1.0 + 0.3 * std::log2(static_cast<double>(ranks)));
        acc.both("futex_wait", KernelCategory::Os, false, t_futex, 6);
        acc.both("sched_yield", KernelCategory::Os, false, 8e-6, 3);
    }

    // User functions covered by the NVTX instrumentation (exclusive times:
    // the Python-side overhead of the annotated functions themselves).
    acc.train("training_step", KernelCategory::NvtxFunction, false, 2.0e-4, 1);
    acc.val("validation_step", KernelCategory::NvtxFunction, false, 1.5e-4, 1);

    // Communication plan.
    const parallel::CommPlan plan = parallel::build_comm_plan(
        net, workload.parallel, workload.batch_per_worker);
    for (const auto& op : plan.train_ops) {
        const PricedComm pc = price_comm(workload, op);
        acc.train(pc.name, pc.category, pc.on_gpu,
                  pc.time * op.per_step_count, op.per_step_count,
                  op.bytes * op.per_step_count);
    }
    for (const auto& op : plan.val_ops) {
        const PricedComm pc = price_comm(workload, op);
        acc.val(pc.name, pc.category, pc.on_gpu, pc.time * op.per_step_count,
                op.per_step_count, op.bytes * op.per_step_count);
    }

    StepSchedule schedule;
    schedule.kernels = std::move(acc).take();

    // Pipeline fill/drain bubble: the idle time shows up as receive-wait in
    // the boundary send/recv kernels.
    if (plan.pipeline_bubble_fraction > 0.0) {
        double compute_time = 0.0;
        for (const auto& k : schedule.kernels) {
            if (trace::phase_of(k.category) == Phase::Computation) {
                compute_time += k.train_time;
            }
        }
        const double f = plan.pipeline_bubble_fraction;
        const double extra = compute_time * f / (1.0 - f);
        for (auto& k : schedule.kernels) {
            if (k.name == "ncclSendRecv" || k.name == "MPI_Sendrecv") {
                k.train_time += extra * 0.5;
                k.val_time += extra * 0.25;  // forward-only pipeline bubble
            }
        }
    }

    // cudaLaunchKernel / synchronisation API calls mirror the GPU kernel
    // launch counts.
    {
        std::int64_t train_launches = 0;
        std::int64_t val_launches = 0;
        for (const auto& k : schedule.kernels) {
            if (k.on_gpu) {
                train_launches += k.train_visits;
                val_launches += k.val_visits;
            }
        }
        KernelDesc launch;
        launch.name = "cudaLaunchKernel";
        launch.category = KernelCategory::CudaApi;
        launch.train_time = kLaunchOverhead * train_launches;
        launch.val_time = kLaunchOverhead * val_launches;
        launch.train_visits = train_launches;
        launch.val_visits = val_launches;
        schedule.kernels.push_back(std::move(launch));

        // Framework op dispatch on the host: TensorFlow's executor (or
        // PyTorch's dispatcher) spends O(100 us) per op, which dominates
        // small-tensor training steps in practice.
        KernelDesc dispatch;
        dispatch.name = ctx.framework == "tf" ? "ExecutorState::Process"
                                              : "aten::dispatch";
        dispatch.category = KernelCategory::Os;
        dispatch.train_time = 1.2e-4 * static_cast<double>(train_launches);
        dispatch.val_time = 1.2e-4 * static_cast<double>(val_launches);
        dispatch.train_visits = train_launches;
        dispatch.val_visits = val_launches;
        schedule.kernels.push_back(std::move(dispatch));

        KernelDesc sync;
        sync.name = "cudaStreamSynchronize";
        sync.category = KernelCategory::CudaApi;
        sync.train_time = 1.5e-5;
        sync.val_time = 1.5e-5;
        sync.train_visits = 1;
        sync.val_visits = 1;
        schedule.kernels.push_back(std::move(sync));
    }

    // Initialisation phase.
    {
        const parallel::StepMath sm = workload.step_math();
        const double shard_bytes =
            static_cast<double>(sm.effective_train_samples) /
            workload.parallel.shards() * workload.app.dataset.bytes_per_sample;
        if (!workload.streams_from_disk()) {
            schedule.init.push_back(InitDesc{
                "load_data", KernelCategory::NvtxFunction,
                shard_bytes / (sys.io_read_gbs * 1e9), 0.0, 1});
            schedule.init.push_back(InitDesc{
                "read", KernelCategory::Os,
                shard_bytes / (sys.io_read_gbs * 1e9),
                shard_bytes,
                std::max<std::int64_t>(
                    1, static_cast<std::int64_t>(shard_bytes / (64e6)))});
        } else {
            schedule.init.push_back(InitDesc{
                "load_data", KernelCategory::NvtxFunction, 0.05, 0.0, 1});
        }
        for (const auto& op : plan.startup_ops) {
            const PricedComm pc = price_comm(workload, op);
            schedule.init.push_back(
                InitDesc{pc.name, pc.category, pc.time, op.bytes, 1});
        }
        const double weight_bytes = net.gradient_bytes() / m;
        schedule.init.push_back(InitDesc{
            "Memcpy HtoD", KernelCategory::Memcpy,
            hw::memcpy_time(sys.gpu, weight_bytes), weight_bytes, 1});
        schedule.init.push_back(InitDesc{
            "cudaMalloc", KernelCategory::CudaApi, 1.2e-3, 0.0,
            static_cast<std::int64_t>(net.layers.size())});
        schedule.init.push_back(
            InitDesc{"cudnnCreate", KernelCategory::Cudnn, 0.2, 0.0, 1});
    }

    // Per-epoch bookkeeping: dataset reshuffle and iterator reset.
    {
        const parallel::StepMath sm = workload.step_math();
        const double shard_samples =
            static_cast<double>(sm.effective_train_samples) /
            workload.parallel.shards();
        schedule.epoch_overhead_s = 0.02 + shard_samples * 2e-8;
    }

    return schedule;
}

}  // namespace extradeep::sim
