#include "sim/drift.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace extradeep::sim {

std::string drift_kind_name(DriftKind kind) {
    switch (kind) {
        case DriftKind::None: return "none";
        case DriftKind::HardwareDegrade: return "hw-degrade";
        case DriftKind::SoftwareRegression: return "sw-regression";
    }
    throw InvalidArgumentError("drift_kind_name: unknown kind");
}

std::string DriftSpec::describe() const {
    if (kind == DriftKind::None) {
        return "none";
    }
    std::ostringstream os;
    os << drift_kind_name(kind) << " x" << fmt::shortest(severity)
       << " from run " << onset_run;
    return os.str();
}

DriftSpec parse_drift(const std::string& spec) {
    DriftSpec out;
    if (spec == "none") {
        out.kind = DriftKind::None;
        return out;
    }
    std::string body;
    if (spec.rfind("hw:", 0) == 0) {
        out.kind = DriftKind::HardwareDegrade;
        body = spec.substr(3);
    } else if (spec.rfind("sw:", 0) == 0) {
        out.kind = DriftKind::SoftwareRegression;
        body = spec.substr(3);
    } else {
        throw InvalidArgumentError(
            "drift spec must be none, hw:<severity>[@<onset>] or "
            "sw:<severity>[@<onset>], got '" + spec + "'");
    }
    std::string severity_token = body;
    const std::size_t at = body.find('@');
    if (at != std::string::npos) {
        severity_token = body.substr(0, at);
        const std::string onset_token = body.substr(at + 1);
        std::size_t used = 0;
        int onset = 0;
        try {
            onset = std::stoi(onset_token, &used);
        } catch (const std::exception&) {
            used = 0;
        }
        if (onset_token.empty() || used != onset_token.size() || onset < 0) {
            throw InvalidArgumentError("drift spec: bad onset '" +
                                       onset_token + "'");
        }
        out.onset_run = onset;
    }
    double severity = 0.0;
    if (!fmt::parse_double(severity_token, severity)) {
        throw InvalidArgumentError("drift spec: bad severity '" +
                                   severity_token + "'");
    }
    out.severity = severity;
    if (!(out.severity >= 1.0)) {
        throw InvalidArgumentError(
            "drift spec: severity must be >= 1 (drift slows a fleet down)");
    }
    return out;
}

hw::SystemSpec apply_drift(const hw::SystemSpec& base, const DriftSpec& drift) {
    if (!(drift.severity >= 1.0)) {
        throw InvalidArgumentError(
            "apply_drift: severity must be >= 1 (drift slows a fleet down)");
    }
    hw::SystemSpec out = base;
    if (drift.kind == DriftKind::None || drift.severity == 1.0) {
        return out;
    }
    const double s = drift.severity;
    switch (drift.kind) {
        case DriftKind::None:
            break;
        case DriftKind::HardwareDegrade:
            // A sick fabric: every link moves bytes slower and costs more
            // per message. Compute resources are untouched.
            out.inter_node.bandwidth_gbs /= s;
            out.inter_node.latency_s *= s;
            out.intra_node.bandwidth_gbs /= s;
            out.intra_node.latency_s *= s;
            break;
        case DriftKind::SoftwareRegression:
            // A bad runtime rollout: kernels run at reduced throughput and
            // each launch costs more. The network is untouched.
            out.gpu.peak_fp32_tflops /= s;
            out.gpu.mem_bandwidth_gbs /= s;
            out.gpu.kernel_launch_overhead_s *= s;
            break;
    }
    return out;
}

}  // namespace extradeep::sim
