#pragma once

#include <string>

#include "hw/system.hpp"

namespace extradeep::sim {

/// Mid-stream fleet drift: a change in the underlying system that the
/// continuous-modeling daemon (src/fleet) must track. Two regimes cover the
/// ROADMAP's live-fleet scenario:
///  - HardwareDegrade: the interconnect loses bandwidth and gains latency
///    (failing links, congested fabric, a flaky switch) — communication
///    kernels slow down, computation is untouched.
///  - SoftwareRegression: a runtime/library update costs compute throughput
///    and adds per-kernel launch overhead (a bad cuDNN pick, a debug build
///    shipped to the fleet) — computation slows down, the network is
///    untouched.
enum class DriftKind { None, HardwareDegrade, SoftwareRegression };

/// One injected change: what degrades, by how much, and (for run streams)
/// from which run index onward. `severity` is a slowdown factor >= 1:
/// severity 1 is the identity, 1.5 makes the affected resource 1.5x slower.
struct DriftSpec {
    DriftKind kind = DriftKind::None;
    double severity = 1.5;
    /// First run index (0-based, in stream order) produced under the
    /// drifted system. Runs before it use the base system unchanged.
    int onset_run = 0;

    /// True for runs at or past the onset under a non-None kind.
    bool active_at(int run_index) const {
        return kind != DriftKind::None && run_index >= onset_run;
    }

    /// e.g. "hw-degrade x1.5 from run 12" / "none".
    std::string describe() const;
};

/// Parses the drive/CLI grammar `none`, `hw:<severity>[@<onset>]` or
/// `sw:<severity>[@<onset>]` (e.g. "hw:1.5@12"). Throws
/// InvalidArgumentError on malformed specs or severity < 1.
DriftSpec parse_drift(const std::string& spec);

/// Stable token for DriftKind ("none" / "hw-degrade" / "sw-regression").
std::string drift_kind_name(DriftKind kind);

/// Applies the drift to a system description and returns the degraded spec.
/// The identity for DriftKind::None or severity 1. Throws
/// InvalidArgumentError if severity < 1 (drift only ever slows a fleet
/// down; a speedup would be a deploy, not a fault).
hw::SystemSpec apply_drift(const hw::SystemSpec& base, const DriftSpec& drift);

}  // namespace extradeep::sim
