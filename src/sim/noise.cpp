#include "sim/noise.hpp"

namespace extradeep::sim {

NoiseModel::NoiseModel(const hw::NoiseSpec& spec, int total_ranks,
                       std::uint64_t run_seed)
    : spec_(spec), run_seed_(run_seed) {
    comp_sigma_ = spec.compute_sigma(total_ranks);
    comm_sigma_ = spec.comm_sigma(total_ranks);
    Rng rng(mix64(run_seed, 0x52554e5f46414354ULL));  // "RUN_FACT"
    run_comp_factor_ = rng.lognormal_factor(kRunShare * comp_sigma_);
    run_comm_factor_ = rng.lognormal_factor(kRunShare * comm_sigma_);
}

double NoiseModel::run_factor(trace::KernelCategory category) const {
    return trace::phase_of(category) == trace::Phase::Communication
               ? run_comm_factor_
               : run_comp_factor_;
}

double NoiseModel::step_factor(Rng& step_rng,
                               trace::KernelCategory category) const {
    const double sigma =
        trace::phase_of(category) == trace::Phase::Communication ? comm_sigma_
                                                                 : comp_sigma_;
    return step_rng.lognormal_factor(kStepShare * sigma);
}

double NoiseModel::rank_factor(int rank) const {
    Rng rng(mix64(run_seed_, mix64(0x52414e4bULL, static_cast<std::uint64_t>(rank))));
    return rng.lognormal_factor(0.01);
}

double NoiseModel::spike_duration(Rng& step_rng, double step_time) const {
    if (!step_rng.bernoulli(spec_.os_spike_probability)) {
        return 0.0;
    }
    return step_rng.exponential(spec_.os_spike_fraction * step_time);
}

}  // namespace extradeep::sim
