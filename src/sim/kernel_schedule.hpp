#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/comm_plan.hpp"
#include "sim/workload.hpp"
#include "trace/kernel.hpp"

namespace extradeep::sim {

/// Per-step cost record of one distinct kernel/function. The simulator
/// derives these deterministic bases once per configuration and then applies
/// stochastic noise per run/step. Times/bytes/visits are totals over one
/// step (a kernel executed by 53 convolution layers has 53 visits and the
/// summed duration).
struct KernelDesc {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::CudaKernel;
    double train_time = 0.0;          ///< seconds per training step
    double val_time = 0.0;            ///< seconds per validation step
    std::int64_t train_visits = 0;    ///< executions per training step
    std::int64_t val_visits = 0;
    double train_bytes = 0.0;         ///< transferred bytes per training step
    double val_bytes = 0.0;
    bool on_gpu = false;              ///< contributes to cudaLaunchKernel count
    bool async_after_step = false;    ///< emitted in the gap after the step
                                      ///< (asynchronous kernels, Fig. 2 (1))
};

/// One-off cost record for the initialisation phase (I/O, weight broadcast,
/// first-time allocations) executed before the first epoch.
struct InitDesc {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::Os;
    double time = 0.0;
    double bytes = 0.0;
    std::int64_t visits = 1;
};

/// The deterministic execution blueprint of one workload configuration:
/// every distinct kernel with its per-step cost, the initialisation phase,
/// and per-epoch bookkeeping overhead.
struct StepSchedule {
    std::vector<KernelDesc> kernels;
    std::vector<InitDesc> init;
    double epoch_overhead_s = 0.0;  ///< shuffle/bookkeeping between epochs
    /// Deterministic (noise-free) totals of one training / validation step.
    double train_step_time() const;
    double val_step_time() const;
    /// Deterministic per-step total of one phase (computation /
    /// communication / memory), for calibration and tests.
    double train_phase_time(trace::Phase phase) const;
};

/// One communication operation priced on the target system: the kernel name
/// the trace would show, its category, whether it launches on the GPU, and
/// its deterministic per-visit duration. Exposed so the what-if advisor can
/// reprice a communication plan under a mutated system without rebuilding
/// the whole schedule.
struct PricedComm {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::Mpi;
    bool on_gpu = false;
    double time = 0.0;
};

/// Prices one communication operation of `w`'s plan on `w.system`.
PricedComm price_comm(const Workload& w, const parallel::CommOp& op);

/// Expands the workload's network, parallel strategy, and communication plan
/// into the per-step kernel schedule, pricing GPU kernels with the roofline
/// model and communication with the hw collective models. This is where
/// TensorFlow/PyTorch execution is substituted: the kernel population
/// (cuDNN/cuBLAS/Eigen/NCCL/MPI/OS/NVTX) mirrors what Nsight Systems reports
/// for the paper's benchmarks.
StepSchedule build_step_schedule(const Workload& workload);

}  // namespace extradeep::sim
