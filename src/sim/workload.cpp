#include "sim/workload.hpp"

#include <sstream>

namespace extradeep::sim {

parallel::StepMath Workload::step_math() const {
    return parallel::compute_steps(app.dataset, parallel, batch_per_worker,
                                   scaling);
}

bool Workload::streams_from_disk() const {
    // Per-rank shard size vs. a conservative share of node memory.
    const parallel::StepMath m = step_math();
    const double shard_bytes =
        static_cast<double>(m.effective_train_samples) /
        parallel.shards() * app.dataset.bytes_per_sample;
    constexpr double kMemoryBudgetBytes = 16.0 * 1024 * 1024 * 1024;
    return shard_bytes > kMemoryBudgetBytes;
}

std::string Workload::describe() const {
    std::ostringstream os;
    os << app.dataset.name << " / " << app.network.name << " on "
       << system.name << ", " << parallel::strategy_name(parallel.kind)
       << " (x1=" << parallel.total_ranks
       << ", M=" << parallel.model_parallel_degree << "), "
       << parallel::scaling_name(scaling) << ", B=" << batch_per_worker;
    return os.str();
}

Workload Workload::make(const std::string& dataset_name,
                        const hw::SystemSpec& system,
                        const parallel::ParallelConfig& parallel,
                        parallel::ScalingMode scaling,
                        std::int64_t batch_per_worker) {
    Workload w;
    w.app = dnn::make_benchmark(dataset_name);
    w.parallel = parallel;
    w.scaling = scaling;
    w.system = system;
    w.batch_per_worker = batch_per_worker;
    return w;
}

}  // namespace extradeep::sim
