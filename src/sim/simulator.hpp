#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/steps.hpp"
#include "sim/kernel_schedule.hpp"
#include "sim/noise.hpp"
#include "sim/workload.hpp"
#include "trace/timeline.hpp"

namespace extradeep::sim {

/// Options for trace-mode simulation (the profiling path).
struct TraceOptions {
    int epochs = 2;
    /// Training steps executed per epoch; -1 runs the full n_t. The paper's
    /// efficient sampling strategy runs/profiles only 5.
    std::int64_t train_steps_per_epoch = -1;
    /// Validation steps per epoch; -1 runs the full n_v.
    std::int64_t val_steps_per_epoch = -1;
    /// When true (default), repeated executions of the same kernel within a
    /// step are recorded as a single event carrying a visit count — like a
    /// pre-aggregated profile. When false, every execution is its own event.
    bool collapse_repeats = true;
    /// Identifies the measurement repetition; equal seeds give identical runs.
    std::uint64_t run_seed = 1;
};

/// Per-kernel metric totals over one epoch (ground truth for evaluation).
struct KernelTotals {
    std::string name;
    trace::KernelCategory category = trace::KernelCategory::CudaKernel;
    double time = 0.0;
    std::int64_t visits = 0;
    double bytes = 0.0;
};

/// Ground-truth measurement of one full training epoch on one rank.
struct EpochMeasurement {
    double wall_time = 0.0;  ///< epoch duration incl. OS spikes and overhead
    double phase_time[trace::kPhaseCount] = {};  ///< comp / comm / mem totals
    std::vector<KernelTotals> kernels;
};

/// The distributed-training simulator. One instance corresponds to one
/// launched job configuration; it can produce
///  (a) Nsight-like per-rank traces of a (possibly truncated) run - the
///      input to the profiling/aggregation pipeline, and
///  (b) fast ground-truth full-epoch measurements - the "actual measured
///      value" the paper's evaluation compares its models against.
/// Both paths share the same deterministic kernel schedule and the same
/// run-level noise factors, so they are mutually consistent.
class TrainingSimulator {
public:
    explicit TrainingSimulator(Workload workload);

    /// Simulates `workload` but executes `schedule` instead of the one
    /// build_step_schedule would derive. The what-if ground-truth loop uses
    /// this to re-simulate a scenario-mutated schedule under the *same*
    /// noise model and rank factors as the baseline workload.
    TrainingSimulator(Workload workload, StepSchedule schedule);

    const Workload& workload() const { return workload_; }
    const StepSchedule& schedule() const { return schedule_; }
    const parallel::StepMath& step_math() const { return step_math_; }

    /// Simulates one rank's timeline: initialisation, then `epochs` epochs
    /// of training (+ validation) steps with NVTX marks. The first epoch
    /// includes warm-up effects (cuDNN autotuning, allocator growth) that
    /// the paper's sampling strategy deliberately discards.
    trace::RankTrace trace_rank(int rank, const TraceOptions& opts) const;

    /// Wall time of a (possibly truncated) run, for profiling-cost
    /// accounting: trace_rank(0, opts).wall_time() without building events.
    double run_wall_time(const TraceOptions& opts) const;

    /// Ground truth: per-kernel and per-phase totals of one *full* epoch
    /// (n_t training + n_v validation steps) on one rank, warmed up.
    EpochMeasurement measure_epoch(int rank, std::uint64_t run_seed) const;

    /// Ground-truth epoch wall time of the whole job: communication plus the
    /// slowest rank's computation (collectives synchronise every step).
    double measure_epoch_wall(std::uint64_t run_seed) const;

    /// Ground truth for per-kernel evaluation: epoch totals of a *typical*
    /// rank (median per-rank speed factor), matching the aggregation
    /// pipeline's median-over-ranks semantics.
    EpochMeasurement measure_epoch_typical(std::uint64_t run_seed) const;

private:
    EpochMeasurement epoch_totals(std::uint64_t run_seed,
                                  double rank_factor) const;

    Workload workload_;
    StepSchedule schedule_;
    parallel::StepMath step_math_;
};

}  // namespace extradeep::sim
