#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "hw/system.hpp"
#include "trace/kernel.hpp"

namespace extradeep::sim {

/// Stochastic noise of one application run (one configuration x one
/// measurement repetition). Noise has two components, which is what makes
/// run-to-run variation dominate step-to-step variation as on real systems:
///  - a *run-level* multiplicative factor, drawn once per run per phase
///    (system state: congestion, thermals, co-running jobs), and
///  - a *step-level* i.i.d. jitter per (kernel, step),
/// plus rare OS-noise spikes and a small persistent per-rank speed factor.
/// The sigmas come from the SystemSpec's NoiseSpec and grow with the rank
/// count (paper Sec. 4.3: variation increases with scale).
class NoiseModel {
public:
    /// `run_seed` must uniquely identify (workload, configuration,
    /// repetition); equal seeds reproduce the identical run.
    NoiseModel(const hw::NoiseSpec& spec, int total_ranks,
               std::uint64_t run_seed);

    /// Run-level factor for a kernel category (communication is noisier).
    double run_factor(trace::KernelCategory category) const;

    /// Per-(kernel, step) jitter factor; advances `step_rng`.
    double step_factor(Rng& step_rng, trace::KernelCategory category) const;

    /// Persistent relative speed of a rank within this run (stragglers).
    double rank_factor(int rank) const;

    /// Samples the OS-noise spike duration for one training step: zero for
    /// most steps, an exponential fraction of `step_time` otherwise.
    double spike_duration(Rng& step_rng, double step_time) const;

    /// Effective sigmas (exposed for calibration tests).
    double comp_sigma() const { return comp_sigma_; }
    double comm_sigma() const { return comm_sigma_; }

    /// Fraction of the total sigma carried by the run-level component.
    static constexpr double kRunShare = 0.8;
    /// Fraction carried by the step-level component (quadrature complement).
    static constexpr double kStepShare = 0.6;

private:
    hw::NoiseSpec spec_;
    double comp_sigma_ = 0.0;
    double comm_sigma_ = 0.0;
    double run_comp_factor_ = 1.0;
    double run_comm_factor_ = 1.0;
    std::uint64_t run_seed_ = 0;
};

}  // namespace extradeep::sim
