#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace extradeep::sim {

using trace::KernelCategory;
using trace::NvtxMark;
using trace::StepKind;

namespace {

/// First-epoch warm-up inflation of step `s`: graph tracing, allocator
/// growth and cuDNN autotuning make the first steps much slower and noisier
/// (paper Sec. 2.1: "one will encounter high variations ... during the first
/// few training steps").
double warmup_factor(int epoch, std::int64_t step) {
    if (epoch > 0) {
        return 1.0;
    }
    if (step == 0) return 2.6;
    if (step == 1) return 1.6;
    if (step == 2) return 1.25;
    return 1.06;
}

constexpr std::uint64_t kTraceStream = 0x5452414345ULL;      // "TRACE"
constexpr std::uint64_t kEpochStream = 0x45504f4348ULL;      // "EPOCH"
constexpr std::uint64_t kSpikeStream = 0x5350494b45ULL;      // "SPIKE"

}  // namespace

TrainingSimulator::TrainingSimulator(Workload workload)
    : workload_(std::move(workload)),
      schedule_(build_step_schedule(workload_)),
      step_math_(workload_.step_math()) {}

TrainingSimulator::TrainingSimulator(Workload workload, StepSchedule schedule)
    : workload_(std::move(workload)),
      schedule_(std::move(schedule)),
      step_math_(workload_.step_math()) {}

trace::RankTrace TrainingSimulator::trace_rank(int rank,
                                               const TraceOptions& opts) const {
    if (rank < 0 || rank >= workload_.parallel.total_ranks) {
        throw InvalidArgumentError("trace_rank: rank out of range");
    }
    const NoiseModel noise(workload_.system.noise,
                           workload_.system.nodes_for_ranks(
                               workload_.parallel.total_ranks),
                           opts.run_seed);
    const double rank_f = noise.rank_factor(rank);
    Rng rng = Rng(opts.run_seed)
                  .fork(kTraceStream)
                  .fork(static_cast<std::uint64_t>(rank));

    const std::int64_t n_train = opts.train_steps_per_epoch < 0
                                     ? step_math_.train_steps
                                     : opts.train_steps_per_epoch;
    const std::int64_t n_val = opts.val_steps_per_epoch < 0
                                   ? step_math_.val_steps
                                   : opts.val_steps_per_epoch;

    trace::RankTrace out;
    out.rank = rank;
    double cursor = 0.0;

    auto emit = [&](const std::string& name, KernelCategory cat,
                    double duration, std::int64_t visits, double bytes) {
        if (visits <= 0 || duration < 0.0) {
            return;
        }
        if (opts.collapse_repeats || visits == 1) {
            trace::TraceEvent e;
            e.name = name;
            e.category = cat;
            e.start = cursor;
            e.duration = duration;
            e.visits = visits;
            e.bytes = bytes;
            cursor += duration;
            out.events.push_back(std::move(e));
        } else {
            const double each = duration / static_cast<double>(visits);
            const double bytes_each = bytes / static_cast<double>(visits);
            for (std::int64_t i = 0; i < visits; ++i) {
                trace::TraceEvent e;
                e.name = name;
                e.category = cat;
                e.start = cursor;
                e.duration = each;
                e.visits = 1;
                e.bytes = bytes_each;
                cursor += each;
                out.events.push_back(std::move(e));
            }
        }
    };

    // Initialisation phase (before epoch 0; ignored by step aggregation but
    // part of the run's wall time).
    for (const auto& init : schedule_.init) {
        const double f =
            noise.run_factor(init.category) * noise.step_factor(rng, init.category);
        emit(init.name, init.category, init.time * f * rank_f, init.visits,
             init.bytes);
    }
    {
        trace::TraceEvent e;
        e.name = "load_data_done";
        e.category = KernelCategory::NvtxFunction;
        e.start = cursor;
        e.duration = 1e-6;
        out.events.push_back(std::move(e));
        cursor += 1e-6;
    }

    auto run_step = [&](int epoch, std::int64_t step_idx, StepKind kind,
                        std::int64_t global_step) {
        NvtxMark start;
        start.kind = NvtxMark::Kind::StepStart;
        start.epoch = epoch;
        start.step = static_cast<int>(global_step);
        start.step_kind = kind;
        start.time = cursor;
        out.marks.push_back(start);

        const double warm =
            kind == StepKind::Train ? warmup_factor(epoch, step_idx) : 1.0;

        // cuDNN autotuning burst in the very first training step.
        if (epoch == 0 && step_idx == 0 && kind == StepKind::Train) {
            emit("cudnnFindConvolutionForwardAlgorithm", KernelCategory::Cudnn,
                 0.35 * rank_f, 1, 0.0);
            emit("cuModuleLoadData", KernelCategory::CudaApi, 0.08 * rank_f, 4,
                 0.0);
        }

        double async_time = 0.0;
        double async_bytes = 0.0;
        std::int64_t async_visits = 0;
        std::string async_name;
        KernelCategory async_cat = KernelCategory::Memcpy;

        double step_base_total = 0.0;
        for (const auto& k : schedule_.kernels) {
            const double base =
                kind == StepKind::Train ? k.train_time : k.val_time;
            const std::int64_t visits =
                kind == StepKind::Train ? k.train_visits : k.val_visits;
            const double bytes =
                kind == StepKind::Train ? k.train_bytes : k.val_bytes;
            if (visits <= 0) {
                continue;
            }
            step_base_total += base;
            const double f = noise.run_factor(k.category) *
                             noise.step_factor(rng, k.category) * rank_f * warm;
            if (k.async_after_step) {
                async_time += base * f;
                async_bytes += bytes;
                async_visits += visits;
                async_name = k.name;
                async_cat = k.category;
                continue;
            }
            emit(k.name, k.category, base * f, visits, bytes);
        }

        // OS-noise spike, visible as an extra OS-category event.
        if (kind == StepKind::Train) {
            const double spike = noise.spike_duration(rng, step_base_total);
            if (spike > 0.0) {
                emit("os_interruption", KernelCategory::Os, spike, 1, 0.0);
            }
        }

        NvtxMark end = start;
        end.kind = NvtxMark::Kind::StepEnd;
        end.time = cursor;
        out.marks.push_back(end);

        // Asynchronous kernels complete after the step's NVTX end mark
        // (Fig. 2 (1): events between s_end and the next s_start).
        if (async_visits > 0) {
            emit(async_name, async_cat, async_time, async_visits, async_bytes);
        }
    };

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        NvtxMark es;
        es.kind = NvtxMark::Kind::EpochStart;
        es.epoch = epoch;
        es.time = cursor;
        out.marks.push_back(es);

        std::int64_t global_step = 0;
        for (std::int64_t s = 0; s < n_train; ++s, ++global_step) {
            run_step(epoch, s, StepKind::Train, global_step);
        }
        for (std::int64_t s = 0; s < n_val; ++s, ++global_step) {
            run_step(epoch, s, StepKind::Validation, global_step);
        }

        NvtxMark ee = es;
        ee.kind = NvtxMark::Kind::EpochEnd;
        ee.time = cursor;
        out.marks.push_back(ee);

        // Between-epoch bookkeeping (shuffle, checkpoint) is outside the
        // epoch range and thus excluded from step aggregation.
        emit("write_checkpoint", KernelCategory::Os,
             schedule_.epoch_overhead_s * rank_f, 1, 0.0);
    }
    return out;
}

double TrainingSimulator::run_wall_time(const TraceOptions& opts) const {
    // Deterministic expectation of the truncated run's duration; noise
    // factors have mean one, so the noise-free sum is the right cost proxy.
    const std::int64_t n_train = opts.train_steps_per_epoch < 0
                                     ? step_math_.train_steps
                                     : opts.train_steps_per_epoch;
    const std::int64_t n_val = opts.val_steps_per_epoch < 0
                                   ? step_math_.val_steps
                                   : opts.val_steps_per_epoch;
    double t = 0.0;
    for (const auto& init : schedule_.init) {
        t += init.time;
    }
    const double train_step = schedule_.train_step_time();
    const double val_step = schedule_.val_step_time();
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        double warm_total = 0.0;
        for (std::int64_t s = 0; s < n_train; ++s) {
            warm_total += warmup_factor(epoch, s);
        }
        t += warm_total * train_step;
        t += static_cast<double>(n_val) * val_step;
        t += schedule_.epoch_overhead_s;
        if (epoch == 0 && n_train > 0) {
            t += 0.35 + 0.08;  // autotune + module load burst
        }
    }
    return t;
}

EpochMeasurement TrainingSimulator::epoch_totals(std::uint64_t run_seed,
                                                 double rank_factor) const {
    const NoiseModel noise(workload_.system.noise,
                           workload_.system.nodes_for_ranks(
                               workload_.parallel.total_ranks),
                           run_seed);
    Rng rng = Rng(run_seed).fork(kEpochStream);
    const double n_t = static_cast<double>(step_math_.train_steps);
    const double n_v = static_cast<double>(step_math_.val_steps);

    EpochMeasurement m;
    m.kernels.reserve(schedule_.kernels.size());
    for (const auto& k : schedule_.kernels) {
        // Step-level jitter averages out over a full epoch; the residual
        // epoch-level jitter shrinks with sqrt(n_t).
        const double resid_sigma =
            NoiseModel::kStepShare *
            (trace::phase_of(k.category) == trace::Phase::Communication
                 ? noise.comm_sigma()
                 : noise.comp_sigma()) /
            std::sqrt(std::max(1.0, n_t));
        const double f = noise.run_factor(k.category) * rank_factor *
                         rng.lognormal_factor(resid_sigma);
        KernelTotals tot;
        tot.name = k.name;
        tot.category = k.category;
        tot.time = (n_t * k.train_time + n_v * k.val_time) * f;
        tot.visits = static_cast<std::int64_t>(n_t) * k.train_visits +
                     static_cast<std::int64_t>(n_v) * k.val_visits;
        tot.bytes = n_t * k.train_bytes + n_v * k.val_bytes;
        const auto phase = static_cast<int>(trace::phase_of(k.category));
        m.phase_time[phase] += tot.time;
        m.wall_time += tot.time;
        m.kernels.push_back(std::move(tot));
    }

    // OS-noise spikes over the epoch's training steps.
    Rng spike_rng = Rng(run_seed).fork(kSpikeStream);
    const std::int64_t spikes = spike_rng.poisson(
        n_t * workload_.system.noise.os_spike_probability);
    const double step_time = schedule_.train_step_time();
    double spike_total = 0.0;
    for (std::int64_t i = 0; i < spikes; ++i) {
        spike_total +=
            spike_rng.exponential(workload_.system.noise.os_spike_fraction *
                                  step_time);
    }
    m.wall_time += spike_total;
    m.phase_time[static_cast<int>(trace::Phase::Computation)] += spike_total;
    m.wall_time += schedule_.epoch_overhead_s;
    return m;
}

EpochMeasurement TrainingSimulator::measure_epoch(int rank,
                                                  std::uint64_t run_seed) const {
    if (rank < 0 || rank >= workload_.parallel.total_ranks) {
        throw InvalidArgumentError("measure_epoch: rank out of range");
    }
    const NoiseModel noise(workload_.system.noise,
                           workload_.system.nodes_for_ranks(
                               workload_.parallel.total_ranks),
                           run_seed);
    return epoch_totals(run_seed, noise.rank_factor(rank));
}

EpochMeasurement TrainingSimulator::measure_epoch_typical(
    std::uint64_t run_seed) const {
    const NoiseModel noise(workload_.system.noise,
                           workload_.system.nodes_for_ranks(
                               workload_.parallel.total_ranks),
                           run_seed);
    std::vector<double> factors;
    factors.reserve(workload_.parallel.total_ranks);
    for (int r = 0; r < workload_.parallel.total_ranks; ++r) {
        factors.push_back(noise.rank_factor(r));
    }
    std::sort(factors.begin(), factors.end());
    const double median_f = factors[factors.size() / 2];
    return epoch_totals(run_seed, median_f);
}

double TrainingSimulator::measure_epoch_wall(std::uint64_t run_seed) const {
    const NoiseModel noise(workload_.system.noise,
                           workload_.system.nodes_for_ranks(
                               workload_.parallel.total_ranks),
                           run_seed);
    // Collectives synchronise every step, so the job advances at the pace of
    // its slowest rank's computation; communication time is shared.
    double max_rank_f = 0.0;
    for (int r = 0; r < workload_.parallel.total_ranks; ++r) {
        max_rank_f = std::max(max_rank_f, noise.rank_factor(r));
    }
    const EpochMeasurement base = epoch_totals(run_seed, 1.0);
    const double comm =
        base.phase_time[static_cast<int>(trace::Phase::Communication)];
    return comm + (base.wall_time - comm) * max_rank_f;
}

}  // namespace extradeep::sim
