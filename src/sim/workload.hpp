#pragma once

#include <cstdint>
#include <string>

#include "dnn/datasets.hpp"
#include "hw/system.hpp"
#include "parallel/steps.hpp"
#include "parallel/strategy.hpp"

namespace extradeep::sim {

/// A complete description of one distributed training experiment: the
/// benchmark application (dataset + network), the parallel configuration,
/// the scaling mode, the target system, and the per-worker batch size.
/// This is the simulator's substitute for "launch the TensorFlow/Horovod
/// job with these execution parameters".
struct Workload {
    dnn::BenchmarkApp app;
    parallel::ParallelConfig parallel;
    parallel::ScalingMode scaling = parallel::ScalingMode::Weak;
    hw::SystemSpec system;
    std::int64_t batch_per_worker = 256;

    /// n_t / n_v for this configuration (Eqs. 2-3).
    parallel::StepMath step_math() const;

    /// True when the (scaled) training set is too large for node memory and
    /// must be streamed from the parallel file system every step.
    bool streams_from_disk() const;

    /// One-line description for logs and bench headers.
    std::string describe() const;

    /// Convenience constructor for the common case.
    static Workload make(const std::string& dataset_name,
                         const hw::SystemSpec& system,
                         const parallel::ParallelConfig& parallel,
                         parallel::ScalingMode scaling,
                         std::int64_t batch_per_worker);
};

}  // namespace extradeep::sim
