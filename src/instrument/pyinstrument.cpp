#include "instrument/pyinstrument.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace extradeep::instrument {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            if (pos < text.size()) {
                lines.push_back(text.substr(pos));
            }
            break;
        }
        lines.push_back(text.substr(pos, nl - pos));
        pos = nl + 1;
    }
    return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
    std::string out;
    for (const auto& l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

std::size_t indent_of(const std::string& line) {
    std::size_t i = 0;
    while (i < line.size() && line[i] == ' ') {
        ++i;
    }
    return i;
}

bool is_blank(const std::string& line) {
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

bool starts_with_at(const std::string& line, std::size_t pos,
                    std::string_view what) {
    return line.compare(pos, what.size(), what) == 0;
}

/// Extracts the function name of a `def name(...)` line; empty if not a def.
std::string def_name(const std::string& line) {
    const std::size_t ind = indent_of(line);
    std::size_t pos = ind;
    if (starts_with_at(line, pos, "async ")) {
        pos += 6;
    }
    if (!starts_with_at(line, pos, "def ")) {
        return {};
    }
    pos += 4;
    std::string name;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_')) {
        name += line[pos++];
    }
    if (name.empty() || pos >= line.size() || line[pos] != '(') {
        return {};
    }
    return name;
}

/// Classifies a `for` loop header as an epoch or step loop. The heuristic
/// mirrors the paper's target patterns: `for epoch in range(...)` and
/// `for batch, (images, labels) in enumerate(train_ds.take(s))`.
std::string loop_label(const std::string& line) {
    const std::size_t ind = indent_of(line);
    if (!starts_with_at(line, ind, "for ")) {
        return {};
    }
    if (line.find(':') == std::string::npos) {
        return {};
    }
    std::string lower = line;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.find("epoch") != std::string::npos) {
        return "epoch";
    }
    if (lower.find("step") != std::string::npos ||
        lower.find("batch") != std::string::npos ||
        lower.find("enumerate(") != std::string::npos ||
        lower.find("train_ds") != std::string::npos ||
        lower.find("dataloader") != std::string::npos ||
        lower.find(".take(") != std::string::npos) {
        return "step";
    }
    return {};
}

bool contains_nvtx(const std::string& line) {
    return line.find("nvtx.annotate") != std::string::npos;
}

}  // namespace

InstrumentResult instrument_python(const std::string& source,
                                   const InstrumentOptions& options) {
    InstrumentResult result;
    std::vector<std::string> lines = split_lines(source);

    // Pass 1: function decorators.
    if (options.annotate_functions) {
        std::vector<std::string> out;
        out.reserve(lines.size() + 16);
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::string name = def_name(lines[i]);
            if (!name.empty()) {
                // Look back over decorators/blank lines for an existing
                // nvtx annotation.
                bool annotated = false;
                for (std::size_t j = out.size(); j-- > 0;) {
                    if (is_blank(out[j])) {
                        continue;
                    }
                    const std::size_t ind = indent_of(out[j]);
                    if (ind < out[j].size() && out[j][ind] == '@') {
                        if (contains_nvtx(out[j])) {
                            annotated = true;
                            break;
                        }
                        continue;  // other decorator, keep scanning upward
                    }
                    break;
                }
                if (!annotated) {
                    out.push_back(std::string(indent_of(lines[i]), ' ') +
                                  "@nvtx.annotate(\"" + name + "\")");
                    ++result.functions_annotated;
                }
            }
            out.push_back(lines[i]);
        }
        lines = std::move(out);
    }

    // Pass 2: epoch/step loop ranges. Processed bottom-up so body
    // re-indentation does not disturb line indices of earlier loops.
    if (options.annotate_loops) {
        for (std::size_t i = lines.size(); i-- > 0;) {
            const std::string label = loop_label(lines[i]);
            if (label.empty()) {
                continue;
            }
            const std::size_t for_indent = indent_of(lines[i]);
            // Body: maximal following run of blank lines or lines indented
            // deeper than the for header.
            std::size_t body_begin = i + 1;
            std::size_t body_end = body_begin;
            std::size_t body_indent = std::string::npos;
            while (body_end < lines.size()) {
                if (is_blank(lines[body_end])) {
                    ++body_end;
                    continue;
                }
                const std::size_t ind = indent_of(lines[body_end]);
                if (ind <= for_indent) {
                    break;
                }
                body_indent = std::min(body_indent, ind);
                ++body_end;
            }
            if (body_begin >= body_end || body_indent == std::string::npos) {
                continue;  // empty body; nothing to wrap
            }
            // Idempotency: body already wrapped in an nvtx range.
            std::size_t first_stmt = body_begin;
            while (first_stmt < body_end && is_blank(lines[first_stmt])) {
                ++first_stmt;
            }
            if (first_stmt < body_end &&
                lines[first_stmt].find("with nvtx.annotate") !=
                    std::string::npos) {
                continue;
            }
            // Re-indent the body by four spaces and insert the with-line.
            for (std::size_t j = body_begin; j < body_end; ++j) {
                if (!is_blank(lines[j])) {
                    lines[j].insert(0, "    ");
                }
            }
            lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(body_begin),
                         std::string(body_indent, ' ') +
                             "with nvtx.annotate(\"" + label + "\"):");
            ++result.loops_annotated;
        }
    }

    // Pass 3: ensure the nvtx import exists if anything was annotated.
    const bool needs_import =
        result.functions_annotated > 0 || result.loops_annotated > 0;
    bool has_import = false;
    for (const auto& l : lines) {
        if (l.rfind("import nvtx", 0) == 0 ||
            l.rfind("from nvtx", 0) == 0) {
            has_import = true;
            break;
        }
    }
    if (needs_import && !has_import) {
        // Insert after any leading comments/shebang.
        std::size_t insert_at = 0;
        while (insert_at < lines.size() &&
               (is_blank(lines[insert_at]) ||
                (!lines[insert_at].empty() && lines[insert_at][0] == '#'))) {
            ++insert_at;
        }
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(insert_at),
                     options.import_line);
        result.import_added = true;
    }

    result.source = join_lines(lines);
    return result;
}

InstrumentResult instrument_python_file(const std::string& input_path,
                                        const std::string& output_path,
                                        const InstrumentOptions& options) {
    std::ifstream in(input_path);
    if (!in) {
        throw Error("instrument_python_file: cannot open " + input_path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    InstrumentResult result = instrument_python(buffer.str(), options);
    std::ofstream out(output_path);
    if (!out) {
        throw Error("instrument_python_file: cannot write " + output_path);
    }
    out << result.source;
    if (!out) {
        throw Error("instrument_python_file: write failed for " + output_path);
    }
    return result;
}

}  // namespace extradeep::instrument
