#pragma once

#include <string>

namespace extradeep::instrument {

/// Options for the automated NVTX instrumentation tool (paper Sec. 2.1,
/// step 1): static analysis of Python training code that injects
/// nvtx.annotate decorators on user-defined functions and NVTX ranges around
/// the epoch/step loops, producing the timestamps the sampling strategy
/// needs to identify training steps.
struct InstrumentOptions {
    /// Add @nvtx.annotate("<name>") decorators to function definitions.
    bool annotate_functions = true;
    /// Wrap the bodies of epoch/step loops in `with nvtx.annotate(...)`
    /// ranges (the epoch/step begin-end marks of Fig. 2).
    bool annotate_loops = true;
    /// The import inserted once at the top of the module if missing.
    std::string import_line = "import nvtx";
};

/// Result of instrumenting one Python source file.
struct InstrumentResult {
    std::string source;          ///< the instrumented source text
    int functions_annotated = 0;
    int loops_annotated = 0;
    bool import_added = false;
};

/// Instruments Python source text. The transformation is idempotent:
/// already-annotated functions/loops are left untouched, and the import is
/// added at most once. Only top-level syntax is analysed (line-based,
/// indentation-aware); code inside strings may be mis-detected in
/// pathological cases, as with any static regex-level analyzer.
InstrumentResult instrument_python(const std::string& source,
                                   const InstrumentOptions& options = {});

/// File convenience wrapper: reads `input_path`, writes the instrumented
/// source to `output_path`. Throws Error on I/O failure.
InstrumentResult instrument_python_file(const std::string& input_path,
                                        const std::string& output_path,
                                        const InstrumentOptions& options = {});

}  // namespace extradeep::instrument
