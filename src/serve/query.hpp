#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/registry.hpp"

namespace extradeep::serve {

/// Request kinds of the serving protocol, including the bookkeeping bucket
/// for unknown commands (`Other`).
enum class QueryKind {
    Predict,
    Speedup,
    Efficiency,
    Cost,
    Search,
    Whatif,
    Advise,
    List,
    Stats,
    Metrics,
    Ping,
    Reload,
    Other,
};

inline constexpr int kQueryKindCount = 13;

std::string_view query_kind_name(QueryKind kind);

/// Per-kind serving counters, exported via the `stats` query.
struct QueryCounters {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t total_latency_us = 0;
    std::uint64_t max_latency_us = 0;
};

/// Escapes a multi-line payload into the single-line response protocol
/// ('\\' -> "\\\\", '\n' -> "\\n") and back. The `metrics` verb uses this:
/// its Prometheus exposition is inherently multi-line while the protocol is
/// one response line per request.
std::string escape_lines(const std::string& text);
std::string unescape_lines(const std::string& text);

/// Answers line-protocol queries against a model registry. This is the
/// library API of the serving subsystem; the TCP daemon is a thin transport
/// over execute(), so daemon answers are byte-identical to library answers
/// by construction.
///
/// Request grammar (space-separated tokens, one request per line):
///   ping
///   list
///   stats
///   metrics
///   reload
///   predict    <model> <x> [epoch|computation|communication|memory] [conf]
///   speedup    <model> <x1> <x2> [<x> ...]          (Eq. 11, vs first x)
///   efficiency <model> <x1> <x2> [<x> ...]          (Eq. 13, vs first x)
///   cost       <model> <x> [rho]                    (Eq. 14)
///   search     <model> <max_time_s> <max_cost> <x1> [<x> ...]   (Sec. 3.3)
///   whatif     <model> <x> <transform>[+<transform>]...  (what-if scenario,
///              e.g. `whatif m 16 interconnect:2+overlap:0.5`; see
///              advisor::parse_scenario for the transform grammar)
///   advise     <model> <x> [top]       (ranked what-if portfolio, top N)
///
/// Responses are a single line: `ok <payload>` or `err <reason>`. All
/// numbers are rendered with fmt::shortest, so answers are deterministic
/// and exact. Execution never throws: every library error is mapped to an
/// `err` response and counted.
class QueryEngine {
public:
    /// `clock` times per-request latencies (nullptr means the shared steady
    /// clock). Injecting an obs::FakeClock with a fixed auto-step makes the
    /// `stats` and `metrics` responses byte-stable across identical request
    /// sequences - daemon and library mode included.
    explicit QueryEngine(std::shared_ptr<ModelRegistry> registry,
                         const obs::Clock* clock = nullptr);

    /// Executes one request line and returns the response line (without a
    /// trailing newline). Thread-safe.
    std::string execute(const std::string& request);

    /// Snapshot of the per-kind counters.
    std::array<QueryCounters, kQueryKindCount> counters() const;

    /// The engine-local metrics registry behind the `metrics` verb:
    /// per-kind request/error counters and latency histograms. Engine-local
    /// (not global_metrics()) so identical engines produce identical
    /// expositions regardless of what else ran in the process.
    const obs::MetricsRegistry& metrics() const { return metrics_; }

    const std::shared_ptr<ModelRegistry>& registry() const {
        return registry_;
    }

private:
    std::string dispatch(const std::string& request, QueryKind& kind);

    std::shared_ptr<ModelRegistry> registry_;
    const obs::Clock* clock_;
    obs::MetricsRegistry metrics_;
    std::array<obs::Counter*, kQueryKindCount> request_counters_{};
    std::array<obs::Counter*, kQueryKindCount> error_counters_{};
    std::array<obs::Histogram*, kQueryKindCount> latency_histograms_{};
    mutable std::mutex stats_mutex_;
    std::array<QueryCounters, kQueryKindCount> counters_{};
};

}  // namespace extradeep::serve
