#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/registry.hpp"

namespace extradeep::serve {

/// Request kinds of the serving protocol, including the bookkeeping bucket
/// for unknown commands (`Other`).
enum class QueryKind {
    Predict,
    Speedup,
    Efficiency,
    Cost,
    Search,
    List,
    Stats,
    Ping,
    Reload,
    Other,
};

inline constexpr int kQueryKindCount = 10;

std::string_view query_kind_name(QueryKind kind);

/// Per-kind serving counters, exported via the `stats` query.
struct QueryCounters {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t total_latency_us = 0;
    std::uint64_t max_latency_us = 0;
};

/// Answers line-protocol queries against a model registry. This is the
/// library API of the serving subsystem; the TCP daemon is a thin transport
/// over execute(), so daemon answers are byte-identical to library answers
/// by construction.
///
/// Request grammar (space-separated tokens, one request per line):
///   ping
///   list
///   stats
///   reload
///   predict    <model> <x> [epoch|computation|communication|memory] [conf]
///   speedup    <model> <x1> <x2> [<x> ...]          (Eq. 11, vs first x)
///   efficiency <model> <x1> <x2> [<x> ...]          (Eq. 13, vs first x)
///   cost       <model> <x> [rho]                    (Eq. 14)
///   search     <model> <max_time_s> <max_cost> <x1> [<x> ...]   (Sec. 3.3)
///
/// Responses are a single line: `ok <payload>` or `err <reason>`. All
/// numbers are rendered with fmt::shortest, so answers are deterministic
/// and exact. Execution never throws: every library error is mapped to an
/// `err` response and counted.
class QueryEngine {
public:
    explicit QueryEngine(std::shared_ptr<ModelRegistry> registry);

    /// Executes one request line and returns the response line (without a
    /// trailing newline). Thread-safe.
    std::string execute(const std::string& request);

    /// Snapshot of the per-kind counters.
    std::array<QueryCounters, kQueryKindCount> counters() const;

    const std::shared_ptr<ModelRegistry>& registry() const {
        return registry_;
    }

private:
    std::string dispatch(const std::string& request, QueryKind& kind);

    std::shared_ptr<ModelRegistry> registry_;
    mutable std::mutex stats_mutex_;
    std::array<QueryCounters, kQueryKindCount> counters_{};
};

}  // namespace extradeep::serve
