#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/registry.hpp"

namespace extradeep::serve {

/// Request kinds of the serving protocol, including the bookkeeping bucket
/// for unknown commands (`Other`).
enum class QueryKind {
    Predict,
    Speedup,
    Efficiency,
    Cost,
    Search,
    Whatif,
    Advise,
    List,
    Stats,
    Metrics,
    Ping,
    Reload,
    Ingest,
    FleetStats,
    Plan,
    Other,
};

inline constexpr int kQueryKindCount = 16;

std::string_view query_kind_name(QueryKind kind);

/// Per-kind serving counters, exported via the `stats` query.
struct QueryCounters {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t total_latency_us = 0;
    std::uint64_t max_latency_us = 0;
};

/// Escapes a multi-line payload into the single-line response protocol
/// ('\\' -> "\\\\", '\n' -> "\\n") and back. The `metrics` verb uses this:
/// its Prometheus exposition is inherently multi-line while the protocol is
/// one response line per request.
std::string escape_lines(const std::string& text);
std::string unescape_lines(const std::string& text);

/// Continuous-modeling hook of the serve protocol (src/fleet implements
/// it). The engine stays decoupled from the fleet subsystem: it only knows
/// how to route the two fleet verbs and when to refresh backlog gauges.
/// Implementations must be thread-safe — the daemon calls them from any
/// worker thread.
class FleetHandler {
public:
    virtual ~FleetHandler() = default;

    /// Handles one pushed run: `payload` is the escape_lines-encoded bytes
    /// of a whole EDP profile, `experiment` the registry/model name the run
    /// belongs to. Returns the response payload (rendered after "ok ").
    /// Throws Error for rejected pushes (bad name, oversized payload,
    /// quarantined run) — the engine maps it to an `err` line.
    virtual std::string handle_ingest(const std::string& experiment,
                                      const std::string& payload) = 0;

    /// One-line fleet state for the `fleet-stats` verb (rendered after
    /// "ok ").
    virtual std::string fleet_stats_line() = 0;

    /// Called once when the handler is attached to an engine: create the
    /// fleet instruments (refit/swap counters, latency histograms, backlog
    /// gauges) in the engine's metrics registry.
    virtual void attach_metrics(obs::MetricsRegistry& metrics) = 0;

    /// Called by the `metrics` verb before rendering the exposition:
    /// refresh point-in-time gauges (pool backlog, staleness).
    virtual void update_metrics() = 0;
};

/// Answers line-protocol queries against a model registry. This is the
/// library API of the serving subsystem; the TCP daemon is a thin transport
/// over execute(), so daemon answers are byte-identical to library answers
/// by construction.
///
/// Request grammar (space-separated tokens, one request per line):
///   ping
///   list
///   stats
///   metrics
///   reload
///   predict    <model> <x> [epoch|computation|communication|memory] [conf]
///   speedup    <model> <x1> <x2> [<x> ...]          (Eq. 11, vs first x)
///   efficiency <model> <x1> <x2> [<x> ...]          (Eq. 13, vs first x)
///   cost       <model> <x> [rho]                    (Eq. 14)
///   search     <model> <max_time_s> <max_cost> <x1> [<x> ...]   (Sec. 3.3)
///   whatif     <model> <x> <transform>[+<transform>]...  (what-if scenario,
///              e.g. `whatif m 16 interconnect:2+overlap:0.5`; see
///              advisor::parse_scenario for the transform grammar)
///   advise     <model> <x> [top]       (ranked what-if portfolio, top N)
///   plan       <model> <x1> [<x> ...]  (adaptive-profiling acquisition: rank
///              candidate rank counts by the served model's relative
///              prediction-interval width and name the one to profile next;
///              the serve-side view of the extradeep-plan racing loop)
///   ingest     <experiment> <payload>  (push one EDP run into the fleet
///              loop; payload = escape_lines(EDP bytes), taken verbatim to
///              end of line. Requires an attached FleetHandler.)
///   fleet-stats                        (continuous-modeling loop state;
///              requires an attached FleetHandler)
///
/// Responses are a single line: `ok <payload>` or `err <reason>`. All
/// numbers are rendered with fmt::shortest, so answers are deterministic
/// and exact. Execution never throws: every library error is mapped to an
/// `err` response and counted.
class QueryEngine {
public:
    /// `clock` times per-request latencies (nullptr means the shared steady
    /// clock). Injecting an obs::FakeClock with a fixed auto-step makes the
    /// `stats` and `metrics` responses byte-stable across identical request
    /// sequences - daemon and library mode included.
    explicit QueryEngine(std::shared_ptr<ModelRegistry> registry,
                         const obs::Clock* clock = nullptr);

    /// Attaches the continuous-modeling handler behind the `ingest` and
    /// `fleet-stats` verbs (both answer `err fleet mode disabled` without
    /// one) and creates its instruments in this engine's metrics registry.
    /// Call before serving begins; attaching twice throws.
    void set_fleet_handler(std::shared_ptr<FleetHandler> handler);

    const std::shared_ptr<FleetHandler>& fleet_handler() const {
        return fleet_;
    }

    /// Executes one request line and returns the response line (without a
    /// trailing newline). Thread-safe.
    std::string execute(const std::string& request);

    /// Snapshot of the per-kind counters.
    std::array<QueryCounters, kQueryKindCount> counters() const;

    /// The engine-local metrics registry behind the `metrics` verb:
    /// per-kind request/error counters and latency histograms. Engine-local
    /// (not global_metrics()) so identical engines produce identical
    /// expositions regardless of what else ran in the process.
    const obs::MetricsRegistry& metrics() const { return metrics_; }

    const std::shared_ptr<ModelRegistry>& registry() const {
        return registry_;
    }

private:
    std::string dispatch(const std::string& request, QueryKind& kind);

    std::shared_ptr<ModelRegistry> registry_;
    std::shared_ptr<FleetHandler> fleet_;
    const obs::Clock* clock_;
    obs::MetricsRegistry metrics_;
    std::array<obs::Counter*, kQueryKindCount> request_counters_{};
    std::array<obs::Counter*, kQueryKindCount> error_counters_{};
    std::array<obs::Histogram*, kQueryKindCount> latency_histograms_{};
    std::array<obs::Gauge*, ModelRegistry::kShardCount> shard_gauges_{};
    mutable std::mutex stats_mutex_;
    std::array<QueryCounters, kQueryKindCount> counters_{};
};

}  // namespace extradeep::serve
