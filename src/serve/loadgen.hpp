#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace extradeep::serve {

/// Load-generator client for the serve daemon: N concurrent connections,
/// each issuing M pipelined requests, measuring end-to-end request latency
/// into the observability subsystem's fixed-bucket histograms (the same
/// instrument family the daemon's own `stats`/`metrics` verbs use), and
/// reporting qps plus histogram-estimated p50/p95/p99. This is the
/// measurement half of the serve regression gate (`BENCH_serve.json`,
/// `serve_bench_gate`), and doubles as an adversarial client for the
/// event-loop tests.

enum class LoadMode {
    /// Closed loop: each connection keeps at most pipeline_depth requests
    /// outstanding and sends the next only after a response arrives —
    /// throughput adapts to the server.
    Closed,
    /// Open loop: each connection enqueues its whole request schedule up
    /// front regardless of responses — latency includes queueing delay, the
    /// way an overloaded server is actually experienced.
    Open,
};

const char* load_mode_name(LoadMode mode);

struct LoadGenOptions {
    std::string host = "127.0.0.1";
    int port = 0;
    int connections = 4;
    int requests_per_connection = 100;
    int pipeline_depth = 8;  ///< closed-loop window, >= 1 (ignored when Open)
    LoadMode mode = LoadMode::Closed;
    /// Request lines cycled per connection; must be non-empty.
    std::vector<std::string> requests;
    int timeout_ms = 10000;
};

struct LoadGenResult {
    std::uint64_t requests_sent = 0;
    std::uint64_t responses_received = 0;
    std::uint64_t error_responses = 0;  ///< `err ...` protocol responses
    double wall_seconds = 0.0;
    double qps = 0.0;
    /// Histogram-estimated quantiles (bucket upper edges, microseconds),
    /// deterministic for a given latency sample set.
    double latency_p50_us = 0.0;
    double latency_p95_us = 0.0;
    double latency_p99_us = 0.0;
    double latency_mean_us = 0.0;
    double latency_max_us = 0.0;
};

/// Runs one load pass against a live daemon. Every connection runs on its
/// own thread with a non-blocking socket pump (so open-loop sends cannot
/// deadlock against unread responses). Throws Error if a connection fails,
/// times out, or is closed before all responses arrive.
LoadGenResult run_load(const LoadGenOptions& options);

/// One named measurement pass for the report.
struct LoadGenRecord {
    std::string mode;  ///< "closed" or "open"
    LoadGenResult result;
};

/// Renders the BENCH_serve.json document (schema extradeep-serve-bench/1):
/// a config block plus one {mode, metric, value} record per measurement,
/// mirroring the BENCH_eval.json record layout.
std::string load_report_json(const LoadGenOptions& options, int threads,
                             const std::vector<LoadGenRecord>& records);

/// Applies a thresholds document (JSON: {"rules": [{"mode": "closed"|"open"
/// |"*", "metric": "qps", "min": ..., "max": ...}, ...]}) to the records.
/// Returns human-readable violation lines, empty when the gate passes. A
/// rule matching no record is itself a violation (same semantics as the
/// eval gate: a stale rule must fail loudly, not silently pass).
std::vector<std::string> check_load_thresholds(
    const std::string& thresholds_json,
    const std::vector<LoadGenRecord>& records);

}  // namespace extradeep::serve
