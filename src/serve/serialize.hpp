#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "extradeep/models.hpp"
#include "extradeep/runner.hpp"

namespace extradeep::serve {

/// EDPM ("Extra-Deep Performance Model") is the on-disk model format of the
/// serving subsystem — the persistent artifact that makes fitted models
/// reusable without re-running the experiment (paper Sec. 3.3: the models,
/// not the measurements, are what downstream what-if analysis consumes).
///
/// It is a versioned, tab-separated text format (schema `extradeep-model/1`,
/// file extension `.edpm`), one file per fitted experiment:
///
///   EDPM<TAB>1
///   NAME<TAB>cifar10-weak
///   PROV<TAB>CIFAR-10 on DEEP, data parallelism, weak scaling, B=256, reps=5
///   SEED<TAB>1
///   SPEC<TAB>CIFAR-10<TAB>DEEP<TAB>data parallelism<TAB>weak scaling<TAB>256<TAB>1<TAB>8
///   XS<TAB>5<TAB>0x1p+1<TAB>0x1p+2<TAB>...
///   EPOCHV<TAB>5<TAB>...
///   MODEL<TAB>epoch.train
///   PARAMS<TAB>1<TAB>x1
///   CONST<TAB>0x1.91eb851eb851fp+1
///   QUALITY<TAB><fit_smape><TAB><cv_smape><TAB><r2><TAB><rss><TAB><hypotheses>
///   TERM<TAB><coefficient><TAB><nfactors>{<TAB><param><TAB><poly><TAB><log>}*
///   FIT<TAB><dof><TAB><residual_variance><TAB><dim>
///   COV<TAB><dim values>          (dim rows)
///   ENDMODEL
///   ...                           (8 MODEL sections, see kModelKeys)
///   END
///
/// Every floating-point value is encoded as a C99 hexadecimal literal
/// (fmt::hexfloat), so a write/read cycle reproduces each double bit for
/// bit — the schema's round-trip guarantee. The QUALITY line is the only
/// place non-finite values are accepted on read (degenerate fits may carry
/// them); everything else rejects NaN/infinity at the boundary.
///
/// The analytical step math (Eqs. 2-3) is not stored as data: the SPEC
/// record carries the five defining parameters and the loader reconstructs
/// the exact StepMathFn via make_step_math_fn (pure integer arithmetic over
/// the dataset preset, hence bit-identical to the fit-time function).

inline constexpr int kEdpmVersion = 1;
inline constexpr char kEdpmExtension[] = ".edpm";

/// The eight persisted PMNF models of one experiment: the per-step
/// train/validation models of the epoch total and of each phase total.
inline constexpr std::array<const char*, 8> kModelKeys = {
    "epoch.train",
    "epoch.val",
    "phase.computation.train",
    "phase.computation.val",
    "phase.communication.train",
    "phase.communication.val",
    "phase.memory.train",
    "phase.memory.val",
};

/// A fitted experiment in servable form: everything the query engine needs
/// (predict / speedup / efficiency / cost / search), decoupled from the
/// simulator and the raw measurements.
struct ServableModel {
    /// Registry key. Restricted to [A-Za-z0-9._-] so it is always a single
    /// protocol token; max 128 characters.
    std::string name;
    std::string provenance;  ///< ExperimentSpec::describe(), free text
    std::uint64_t seed = 0;

    // The experiment parameters that define the analytical step math and
    // the Eq. 14 cost unit.
    std::string dataset;
    std::string system_name;
    parallel::StrategyKind strategy = parallel::StrategyKind::Data;
    parallel::ScalingMode scaling = parallel::ScalingMode::Weak;
    std::int64_t batch_per_worker = 0;
    int model_parallel_degree = 1;
    int cores_per_rank = 1;  ///< rho in Eq. 14

    /// Modeling points (ascending) and the derived per-epoch training time
    /// at each (Eq. 6) — the baselines of speedup/efficiency queries.
    std::vector<double> modeling_xs;
    std::vector<double> epoch_time_values;

    EpochModel epoch_time;  ///< T_epoch(x1)
    std::array<EpochModel, trace::kPhaseCount> phase_time;

    /// Reconstructed analytical step counts for any rank count.
    StepMathFn step_math;
};

/// Export hook: packages a finished experiment into servable form. The
/// epoch/phase models and step math are shared with the result; `name` must
/// satisfy the registry-key restriction. Throws InvalidArgumentError on an
/// invalid name or an unfitted result.
ServableModel make_servable(const ExperimentSpec& spec,
                            const ExperimentResult& result, std::string name);

/// Serialises a servable model. Throws InvalidArgumentError on invalid
/// names/values (non-finite model coefficients, mismatched point vectors)
/// and Error if the stream write fails.
void write_edpm(std::ostream& os, const ServableModel& model);

struct EdpmReadOptions {
    ParseMode mode = ParseMode::Strict;
    /// Storage cap for collected diagnostics (counts keep accumulating).
    std::size_t max_diagnostics = DiagnosticLog::kDefaultCapacity;
};

/// Outcome of a tolerant (or strict) model load.
struct EdpmReadResult {
    /// Present unless an Error-severity problem made the model unusable.
    /// Warnings alone (unknown tags, dropped fit info, trailing data) still
    /// yield a model; a loaded model NEVER silently differs in its
    /// predictions — anything that would change predict output (corrupt
    /// CONST/TERM/SPEC/XS records) quarantines the whole file instead.
    std::optional<ServableModel> model;
    DiagnosticLog diagnostics;

    bool ok() const { return model.has_value() && !diagnostics.has_errors(); }
};

/// Parses a model in strict mode; throws ParseError on malformed input,
/// including version mismatches, truncated files (missing END), duplicate
/// or missing sections, and trailing data after END.
ServableModel read_edpm(std::istream& is);

/// Parses a model under the given options. In Tolerant mode this never
/// throws on malformed content; problems are returned as diagnostics and a
/// corrupt file comes back quarantined (model == nullopt). In Strict mode
/// it behaves exactly like read_edpm(is).
EdpmReadResult read_edpm(std::istream& is, const EdpmReadOptions& options);

/// File-based convenience wrappers. Throw Error on I/O failure (in both
/// modes: an unopenable file is an environment problem, not dirty data).
void write_edpm_file(const std::string& path, const ServableModel& model);
ServableModel read_edpm_file(const std::string& path);
EdpmReadResult read_edpm_file(const std::string& path,
                              const EdpmReadOptions& options);

}  // namespace extradeep::serve
