#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/query.hpp"

namespace extradeep::serve {

struct ServerOptions {
    /// Loopback only by design: extradeep-serve is a local analysis daemon,
    /// not an internet-facing service.
    std::string host = "127.0.0.1";
    /// 0 = let the kernel pick an ephemeral port (read it back via port()).
    int port = 0;
    /// Connection-handling threads (the common/parallel_for pool);
    /// 0 or negative = hardware concurrency.
    int threads = 4;
    /// Per-connection receive timeout. An idle client is disconnected so a
    /// stalled peer cannot pin a handler thread forever.
    int recv_timeout_ms = 5000;
    /// Poll interval of the accept loop (stop-flag latency).
    int accept_poll_ms = 50;
};

/// Line-protocol TCP daemon over a QueryEngine.
///
/// Transport contract: one request line in, one response line out, in
/// order, per connection. The daemon adds nothing to QueryEngine responses,
/// so network answers are byte-identical to library calls. Two transport
/// commands are handled here rather than in the engine: `quit` closes the
/// connection, `shutdown` closes the connection and stops the daemon (both
/// answer `ok bye` first).
///
/// Concurrency model: the accept loop drains all pending connections into a
/// batch and processes the batch on the shared fork-join ThreadPool
/// (common/parallel_for), one connection per chunk, until every connection
/// in the batch has terminated (EOF, `quit`, error, or idle timeout). New
/// connections arriving mid-batch wait in the listen backlog. Results are
/// deterministic for any client mix because every request is answered from
/// an immutable registry snapshot and connections never share state.
class ServeDaemon {
public:
    ServeDaemon(std::shared_ptr<QueryEngine> engine, ServerOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /// Binds, listens, and spawns the accept loop. Throws Error if the
    /// socket cannot be created or bound.
    void start();

    /// The bound port (resolved after start(), also for ephemeral requests).
    int port() const { return port_; }

    /// Requests shutdown and closes the listening socket. Idempotent.
    void stop();

    /// Blocks until the daemon has stopped (via stop() or a `shutdown`
    /// request) and the accept loop has exited.
    void wait();

    bool running() const { return running_.load(); }

private:
    void loop();
    void handle_connection(int fd);

    std::shared_ptr<QueryEngine> engine_;
    ServerOptions options_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::thread loop_thread_;
    std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
};

/// Client helper: connects, sends every request (newline-terminated), half-
/// closes the write side, and returns one response line per request. Used
/// by the `extradeep-serve query` client mode and the daemon tests. Throws
/// Error on connection failure or a short response stream.
std::vector<std::string> query_daemon(const std::string& host, int port,
                                      const std::vector<std::string>& requests,
                                      int timeout_ms = 10000);

}  // namespace extradeep::serve
