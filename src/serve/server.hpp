#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/query.hpp"

namespace extradeep::serve {

/// Default longest accepted request line in bytes, terminator excluded. A
/// line of exactly this length is served; one byte more is a protocol
/// violation that terminates the connection (a legitimate query request is
/// always short). Overridable per daemon via ServerOptions::max_request_line
/// for payload-carrying verbs (fleet `ingest`).
inline constexpr std::size_t kMaxRequestLine = 1 << 16;

struct ServerOptions {
    /// Loopback only by design: extradeep-serve is a local analysis daemon,
    /// not an internet-facing service.
    std::string host = "127.0.0.1";
    /// 0 = let the kernel pick an ephemeral port (read it back via port()).
    int port = 0;
    /// Request-handling worker threads (dispatched onto the shared
    /// common/parallel_for ThreadPool); 0 or negative = hardware
    /// concurrency. The event loop itself runs on one additional thread.
    int threads = 4;
    /// Per-connection idle timeout: a connection with no readable progress
    /// and no request in flight for this long is disconnected, so a stalled
    /// peer cannot pin a connection slot forever. Also bounds the shutdown
    /// drain (see stop()/`shutdown`). <= 0 disables the idle timeout.
    int recv_timeout_ms = 5000;
    /// Upper bound on the epoll_wait tick (stop-flag and idle-scan latency).
    int accept_poll_ms = 50;
    /// Write-buffer cap per connection: while a connection has more than
    /// this many response bytes unflushed (a client that sends but never
    /// reads), the daemon stops reading from it until the buffer drains.
    std::size_t max_write_buffer = 1 << 20;
    /// Longest accepted request line (terminator excluded); one byte more
    /// is a protocol violation that closes the connection. The default
    /// kMaxRequestLine covers every query verb; fleet daemons raise it so
    /// an `ingest` line can carry a whole escaped EDP run as its payload.
    std::size_t max_request_line = kMaxRequestLine;
};

/// Line-protocol TCP daemon over a QueryEngine.
///
/// Transport contract: one request line in, one response line out, in
/// order, per connection. The daemon adds nothing to QueryEngine responses,
/// so network answers are byte-identical to library calls. Two transport
/// commands are handled here rather than in the engine: `quit` closes the
/// connection, `shutdown` drains and stops the daemon (both answer `ok bye`
/// first; responses to earlier pipelined requests are still delivered in
/// order before the `ok bye`).
///
/// Concurrency model (event loop, no head-of-line blocking): one thread
/// runs an epoll loop over the non-blocking listener and all connection
/// sockets, each with its own read/write buffer. Complete request lines are
/// dispatched one at a time per connection onto the worker pool
/// (ThreadPool::submit), so responses stay in request order per connection
/// while connections never wait on each other — a slow, stalled, or
/// pipelining client cannot delay anyone else, structurally. Results are
/// deterministic for any client mix because every request is answered from
/// an immutable registry snapshot and connections never share state.
///
/// Shutdown drain: a `shutdown` request (or stop()) closes the listener,
/// then keeps serving until every live connection's already-received
/// requests are answered and flushed, bounded by recv_timeout_ms; only then
/// does the loop exit. In-flight clients get all their responses.
class ServeDaemon {
public:
    ServeDaemon(std::shared_ptr<QueryEngine> engine, ServerOptions options);
    ~ServeDaemon();

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /// Binds, listens, and spawns the event loop. Throws Error if the
    /// socket cannot be created or bound; no file descriptor leaks on any
    /// failure path (including thread construction).
    void start();

    /// The bound port (resolved after start(), also for ephemeral requests).
    int port() const { return port_; }

    /// Requests shutdown (with drain) and wakes the event loop. Idempotent
    /// and async-signal-safe (an atomic store plus one write(2)).
    void stop();

    /// Blocks until the daemon has stopped (via stop() or a `shutdown`
    /// request) and the event loop has exited.
    void wait();

    bool running() const { return running_.load(); }

private:
    struct Completion {
        std::uint64_t conn_id = 0;
        std::string response;
    };

    void loop();
    void wake();

    std::shared_ptr<QueryEngine> engine_;
    ServerOptions options_;
    int listen_fd_ = -1;
    int wake_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::thread loop_thread_;
    std::mutex completions_mutex_;
    std::vector<Completion> completions_;
};

/// Client helper: connects, sends every request (newline-terminated), half-
/// closes the write side, and returns one response line per request. Used
/// by the `extradeep-serve query` client mode and the daemon tests. Throws
/// Error on connection failure or a short response stream; the message
/// distinguishes a receive timeout from a closed connection.
std::vector<std::string> query_daemon(const std::string& host, int port,
                                      const std::vector<std::string>& requests,
                                      int timeout_ms = 10000);

}  // namespace extradeep::serve
