#include "serve/loadgen.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <deque>
#include <exception>
#include <iterator>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/gate.hpp"
#include "common/json.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/socket_util.hpp"

namespace extradeep::serve {

namespace {

/// Cross-thread measurement sink for one load pass.
struct LoadStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> max_us{0};
    obs::Histogram* latency_us = nullptr;
};

void note_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
    std::uint64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

/// One connection's request/response pump: non-blocking socket, poll-driven,
/// so an open-loop send schedule cannot deadlock against unread responses
/// (the kernel buffers fill, we keep draining the read side).
void run_connection(const LoadGenOptions& options, LoadStats& stats) {
    FdGuard fd(connect_to(options.host, options.port, options.timeout_ms));
    if (!set_nonblocking(fd.get())) {
        throw Error("loadgen: cannot set O_NONBLOCK");
    }
    const obs::Clock& clock = obs::steady_clock_instance();
    const std::size_t total =
        static_cast<std::size_t>(options.requests_per_connection);
    const std::size_t window =
        options.mode == LoadMode::Open
            ? total
            : static_cast<std::size_t>(options.pipeline_depth);
    std::size_t enqueued = 0;
    std::size_t received = 0;
    std::deque<std::uint64_t> send_ts;  // enqueue time of each outstanding
    std::string out;
    std::size_t out_off = 0;
    std::string in;
    bool peer_eof = false;
    while (received < total) {
        // Top up the outgoing schedule. The 256 KiB cap only bounds client
        // memory; open-loop timestamps are still taken at schedule time, so
        // queueing delay counts toward latency as intended.
        while (enqueued < total && enqueued - received < window &&
               out.size() - out_off < (std::size_t{256} << 10)) {
            const std::string& request =
                options.requests[enqueued % options.requests.size()];
            out += request;
            out += '\n';
            send_ts.push_back(clock.now_ns());
            ++enqueued;
            stats.sent.fetch_add(1, std::memory_order_relaxed);
        }
        pollfd pfd{};
        pfd.fd = fd.get();
        pfd.events = POLLIN;
        if (out_off < out.size()) {
            pfd.events |= POLLOUT;
        }
        int ready;
        do {
            ready = ::poll(&pfd, 1,
                           options.timeout_ms > 0 ? options.timeout_ms : -1);
        } while (ready < 0 && errno == EINTR);
        if (ready == 0) {
            throw Error("loadgen: receive timed out after " +
                        std::to_string(received) + " of " +
                        std::to_string(total) + " responses");
        }
        if (ready < 0) {
            throw Error("loadgen: poll failed");
        }
        if ((pfd.revents & POLLOUT) != 0) {
            while (out_off < out.size()) {
                const ssize_t n = ::send(fd.get(), out.data() + out_off,
                                         out.size() - out_off, MSG_NOSIGNAL);
                if (n > 0) {
                    out_off += static_cast<std::size_t>(n);
                    continue;
                }
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                throw Error("loadgen: send failed");
            }
            if (out_off == out.size()) {
                out.clear();
                out_off = 0;
            }
        }
        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
            char chunk[4096];
            while (true) {
                const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
                if (n > 0) {
                    in.append(chunk, static_cast<std::size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR) {
                    continue;
                }
                if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                    break;
                }
                if (n == 0) {
                    peer_eof = true;
                    break;
                }
                throw Error("loadgen: recv failed");
            }
            const std::uint64_t now_ns = clock.now_ns();
            std::size_t start = 0;
            std::size_t nl;
            while ((nl = in.find('\n', start)) != std::string::npos) {
                if (send_ts.empty()) {
                    throw Error("loadgen: unsolicited response line");
                }
                const std::uint64_t sent_ns = send_ts.front();
                send_ts.pop_front();
                const std::uint64_t us =
                    now_ns >= sent_ns ? (now_ns - sent_ns) / 1000 : 0;
                stats.latency_us->observe(static_cast<double>(us));
                note_max(stats.max_us, us);
                if (in.compare(start, 4, "err ") == 0) {
                    stats.errors.fetch_add(1, std::memory_order_relaxed);
                }
                ++received;
                stats.received.fetch_add(1, std::memory_order_relaxed);
                start = nl + 1;
            }
            in.erase(0, start);
            if (peer_eof && received < total) {
                throw Error("loadgen: connection closed after " +
                            std::to_string(received) + " of " +
                            std::to_string(total) + " responses");
            }
        }
    }
}

double metric_value(const LoadGenResult& r, const std::string& metric,
                    bool& known) {
    known = true;
    if (metric == "qps") return r.qps;
    if (metric == "latency_p50_us") return r.latency_p50_us;
    if (metric == "latency_p95_us") return r.latency_p95_us;
    if (metric == "latency_p99_us") return r.latency_p99_us;
    if (metric == "latency_mean_us") return r.latency_mean_us;
    if (metric == "latency_max_us") return r.latency_max_us;
    if (metric == "requests") return static_cast<double>(r.requests_sent);
    if (metric == "responses") {
        return static_cast<double>(r.responses_received);
    }
    if (metric == "errors") return static_cast<double>(r.error_responses);
    if (metric == "wall_seconds") return r.wall_seconds;
    known = false;
    return 0.0;
}

const char* const kRecordMetrics[] = {
    "qps",          "latency_p50_us",  "latency_p95_us", "latency_p99_us",
    "latency_mean_us", "latency_max_us", "requests",       "responses",
    "errors",       "wall_seconds",
};

}  // namespace

const char* load_mode_name(LoadMode mode) {
    return mode == LoadMode::Open ? "open" : "closed";
}

LoadGenResult run_load(const LoadGenOptions& options) {
    if (options.port <= 0) {
        throw InvalidArgumentError("loadgen: port must be positive");
    }
    if (options.connections < 1 || options.requests_per_connection < 1 ||
        options.pipeline_depth < 1) {
        throw InvalidArgumentError(
            "loadgen: connections, requests and pipeline depth must be >= 1");
    }
    if (options.requests.empty()) {
        throw InvalidArgumentError("loadgen: no request lines given");
    }
    obs::MetricsRegistry metrics;
    LoadStats stats;
    stats.latency_us = &metrics.histogram(
        "extradeep_loadgen_latency_us",
        obs::MetricsRegistry::default_latency_buckets_us());

    const obs::Clock& clock = obs::steady_clock_instance();
    const std::uint64_t start_ns = clock.now_ns();
    std::vector<std::thread> clients;
    std::vector<std::exception_ptr> failures(
        static_cast<std::size_t>(options.connections));
    clients.reserve(static_cast<std::size_t>(options.connections));
    for (int c = 0; c < options.connections; ++c) {
        clients.emplace_back([&options, &stats, &failures, c] {
            try {
                run_connection(options, stats);
            } catch (...) {
                failures[static_cast<std::size_t>(c)] =
                    std::current_exception();
            }
        });
    }
    for (auto& t : clients) {
        t.join();
    }
    for (const auto& failure : failures) {
        if (failure) {
            std::rethrow_exception(failure);
        }
    }
    const std::uint64_t end_ns = clock.now_ns();

    LoadGenResult result;
    result.requests_sent = stats.sent.load();
    result.responses_received = stats.received.load();
    result.error_responses = stats.errors.load();
    result.wall_seconds =
        static_cast<double>(end_ns - start_ns) / 1e9;
    result.qps = result.wall_seconds > 0.0
                     ? static_cast<double>(result.responses_received) /
                           result.wall_seconds
                     : 0.0;
    const obs::Histogram& h = *stats.latency_us;
    result.latency_p50_us = h.quantile(0.50);
    result.latency_p95_us = h.quantile(0.95);
    result.latency_p99_us = h.quantile(0.99);
    result.latency_mean_us =
        h.count() > 0 ? h.sum() / static_cast<double>(h.count()) : 0.0;
    result.latency_max_us = static_cast<double>(stats.max_us.load());
    return result;
}

std::string load_report_json(const LoadGenOptions& options, int threads,
                             const std::vector<LoadGenRecord>& records) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"extradeep-serve-bench/1\",\n";
    os << "  \"config\": {";
    os << "\"connections\": " << options.connections;
    os << ", \"requests_per_connection\": " << options.requests_per_connection;
    os << ", \"pipeline_depth\": " << options.pipeline_depth;
    os << ", \"daemon_threads\": " << threads;
    os << ", \"request_mix\": [";
    for (std::size_t i = 0; i < options.requests.size(); ++i) {
        os << (i == 0 ? "" : ", ") << json::quote(options.requests[i]);
    }
    os << "]},\n";
    os << "  \"records\": [\n";
    bool first = true;
    for (const LoadGenRecord& record : records) {
        for (const char* metric : kRecordMetrics) {
            bool known = false;
            const double value = metric_value(record.result, metric, known);
            os << (first ? "" : ",\n");
            first = false;
            os << "    {\"mode\": " << json::quote(record.mode)
               << ", \"metric\": " << json::quote(metric)
               << ", \"value\": " << json::number(value) << "}";
        }
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::vector<std::string> check_load_thresholds(
    const std::string& thresholds_json,
    const std::vector<LoadGenRecord>& records) {
    gate::RuleDocSpec spec;
    spec.what = "serve thresholds JSON";
    spec.array_key = "rules";
    spec.scope_key = "mode";
    spec.parse_noise = false;   // load rules have no noise dimension
    spec.require_bound = false; // informational rules may carry no bound
    spec.allow_empty = true;
    const std::vector<gate::Rule> rules =
        gate::parse_rules(thresholds_json, spec);

    // Flatten every (mode, known metric) pair into gate samples once; a rule
    // naming an unknown metric is reported as its own violation when at
    // least one record matches its mode (and as an unmatched rule when none
    // does), matching the historical loadgen gate behaviour.
    std::vector<gate::Sample> samples;
    samples.reserve(records.size() * std::size(kRecordMetrics));
    for (const LoadGenRecord& record : records) {
        for (const char* metric : kRecordMetrics) {
            bool known = false;
            const double value = metric_value(record.result, metric, known);
            samples.push_back({record.mode, -1.0, metric, value});
        }
    }

    std::vector<std::string> violations;
    for (const gate::Rule& rule : rules) {
        bool known_metric = false;
        for (const char* metric : kRecordMetrics) {
            known_metric = known_metric || rule.metric == metric;
        }
        if (!known_metric) {
            const bool mode_present =
                rule.scope == "*" ||
                std::any_of(records.begin(), records.end(),
                            [&](const LoadGenRecord& r) {
                                return r.mode == rule.scope;
                            });
            if (mode_present && !records.empty()) {
                violations.push_back("rule references unknown metric '" +
                                     rule.metric + "'");
            } else {
                violations.push_back("rule for " + rule.scope + "/" +
                                     rule.metric +
                                     " matched no measurement record");
            }
            continue;
        }
        const gate::Outcome outcome = gate::check_rules(samples, {rule});
        for (const gate::Violation& v : outcome.violations) {
            if (v.kind == gate::Violation::Kind::Unmatched) {
                violations.push_back("rule for " + rule.scope + "/" +
                                     rule.metric +
                                     " matched no measurement record");
                continue;
            }
            const gate::Sample& s = samples[v.sample];
            violations.push_back(
                s.scope + "/" + s.metric + " = " + json::number(s.value) +
                (v.kind == gate::Violation::Kind::BelowMin ? " below min "
                                                           : " above max ") +
                json::number(v.bound));
        }
    }
    return violations;
}

}  // namespace extradeep::serve
