#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "obs/clock.hpp"
#include "serve/socket_util.hpp"

namespace extradeep::serve {

namespace {

// epoll user-data ids for the two non-connection fds; connections start
// above them and are identified by id (not fd) so a recycled fd number can
// never be confused with a closed connection.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 2;

/// Per-connection event-loop state. Requests are dispatched one at a time
/// per connection (in_flight), which keeps responses in request order
/// without any cross-connection coordination.
struct Conn {
    int fd = -1;
    std::string in;                    ///< received bytes, not yet parsed
    std::deque<std::string> requests;  ///< parsed lines, not yet dispatched
    std::string out;                   ///< response bytes awaiting write
    std::uint32_t events = 0;          ///< epoll interest currently registered
    bool in_flight = false;  ///< one request is running on the worker pool
    bool peer_eof = false;   ///< read side done (trailing line still served)
    bool closing = false;    ///< close once `out` is flushed
    std::uint64_t last_activity_ns = 0;
};

}  // namespace

ServeDaemon::ServeDaemon(std::shared_ptr<QueryEngine> engine,
                         ServerOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {
    if (!engine_) {
        throw InvalidArgumentError("ServeDaemon: null engine");
    }
}

ServeDaemon::~ServeDaemon() {
    stop();
    wait();
}

void ServeDaemon::start() {
    if (running_.load() || listen_fd_ >= 0) {
        throw Error("ServeDaemon: already started");
    }
    // Every fd is guard-owned until the thread is up: any throw below
    // (bind, listen, epoll, eventfd, std::thread construction) closes them.
    FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0));
    if (fd.get() < 0) {
        throw Error("ServeDaemon: socket() failed");
    }
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
        0) {
        throw Error(std::string("ServeDaemon: setsockopt(SO_REUSEADDR) "
                                "failed: ") +
                    std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
        throw Error("ServeDaemon: bad host address '" + options_.host + "'");
    }
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        throw Error(std::string("ServeDaemon: bind failed: ") +
                    std::strerror(errno));
    }
    if (::listen(fd.get(), 128) != 0) {
        throw Error(std::string("ServeDaemon: listen failed: ") +
                    std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
        throw Error("ServeDaemon: getsockname failed");
    }
    FdGuard wake(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (wake.get() < 0) {
        throw Error("ServeDaemon: eventfd() failed");
    }
    listen_fd_ = fd.get();
    wake_fd_ = wake.get();
    port_ = ntohs(bound.sin_port);
    stop_.store(false);
    running_.store(true);
    completions_.clear();
    try {
        loop_thread_ = std::thread([this] { loop(); });
    } catch (...) {
        listen_fd_ = -1;
        wake_fd_ = -1;
        running_.store(false);
        throw;  // the guards close both fds
    }
    fd.release();
    wake.release();
}

void ServeDaemon::wake() {
    const int fd = wake_fd_;
    if (fd >= 0) {
        const std::uint64_t one = 1;
        // write(2) is async-signal-safe; EAGAIN (saturated counter) still
        // leaves the loop woken, so the result is deliberately ignored.
        [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
    }
}

void ServeDaemon::stop() {
    stop_.store(true);
    wake();
}

void ServeDaemon::wait() {
    if (loop_thread_.joinable()) {
        loop_thread_.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
        wake_fd_ = -1;
    }
    running_.store(false);
}

void ServeDaemon::loop() {
    // +1: the event loop is the pool's calling thread and never runs tasks,
    // so options_.threads background workers actually handle requests.
    ThreadPool pool(resolve_num_threads(options_.threads) + 1);
    const obs::Clock& clock = obs::steady_clock_instance();
    const std::uint64_t idle_ns =
        options_.recv_timeout_ms > 0
            ? static_cast<std::uint64_t>(options_.recv_timeout_ms) * 1000000u
            : 0;

    FdGuard epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
    if (epoll_fd.get() < 0) {
        running_.store(false);
        return;
    }
    const auto add_fd = [&](int fd, std::uint64_t id, std::uint32_t events) {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = id;
        return ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
    };
    if (!add_fd(listen_fd_, kListenerId, EPOLLIN) ||
        !add_fd(wake_fd_, kWakeId, EPOLLIN)) {
        running_.store(false);
        return;
    }

    std::unordered_map<std::uint64_t, Conn> conns;
    std::uint64_t next_id = kFirstConnId;
    bool draining = false;
    bool accepting = true;
    std::uint64_t drain_deadline_ns = 0;
    std::uint64_t now_ns = clock.now_ns();

    const auto update_interest = [&](std::uint64_t id, Conn& c) {
        std::uint32_t want = 0;
        // Backpressure: while the peer has not read max_write_buffer bytes
        // of responses, stop reading new requests from it.
        const bool read_gated = c.closing || c.peer_eof ||
                                c.out.size() > options_.max_write_buffer;
        if (!read_gated) {
            want |= EPOLLIN;
        }
        if (!c.out.empty()) {
            want |= EPOLLOUT;
        }
        if (want != c.events) {
            epoll_event ev{};
            ev.events = want;
            ev.data.u64 = id;
            ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, c.fd, &ev);
            c.events = want;
        }
    };

    const auto close_conn = [&](std::uint64_t id) {
        const auto it = conns.find(id);
        if (it == conns.end()) {
            return;
        }
        ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, it->second.fd, nullptr);
        ::close(it->second.fd);
        conns.erase(it);
    };

    /// Writes as much of `out` as the socket accepts. Returns false when
    /// the connection was closed (error, or flushed with closing set).
    const auto flush = [&](std::uint64_t id, Conn& c) -> bool {
        while (!c.out.empty()) {
            const ssize_t n =
                ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
            if (n > 0) {
                c.out.erase(0, static_cast<std::size_t>(n));
                c.last_activity_ns = now_ns;
                continue;
            }
            if (n < 0 && errno == EINTR) {
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                break;  // kernel buffer full: EPOLLOUT will resume us
            }
            close_conn(id);
            return false;
        }
        if (c.out.empty() && c.closing) {
            close_conn(id);
            return false;
        }
        update_interest(id, c);
        return true;
    };

    /// Parses complete lines, dispatches at most one request (per-connection
    /// serialization keeps responses in order), handles transport verbs, and
    /// flushes. Returns false when the connection was closed.
    const auto pump = [&](std::uint64_t id, Conn& c) -> bool {
        while (true) {
            const std::size_t nl = c.in.find('\n');
            if (nl == std::string::npos) {
                if (c.in.size() > options_.max_request_line) {
                    close_conn(id);  // oversized line: protocol violation
                    return false;
                }
                if (c.peer_eof && !c.in.empty()) {
                    // EOF with a trailing unterminated line: still a request.
                    std::string line = std::move(c.in);
                    c.in.clear();
                    if (!line.empty() && line.back() == '\r') {
                        line.pop_back();
                    }
                    c.requests.push_back(std::move(line));
                    continue;
                }
                break;
            }
            if (nl > options_.max_request_line) {
                close_conn(id);
                return false;
            }
            std::string line = c.in.substr(0, nl);
            c.in.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            c.requests.push_back(std::move(line));
        }
        if (!c.in_flight && !c.closing && !c.requests.empty()) {
            std::string line = std::move(c.requests.front());
            c.requests.pop_front();
            if (line == "quit" || line == "shutdown") {
                // Transport verbs, answered here: earlier pipelined requests
                // already got their responses (they were ahead in the
                // queue); later ones are dropped by contract.
                c.out += "ok bye\n";
                c.closing = true;
                c.requests.clear();
                c.in.clear();
                if (line == "shutdown") {
                    stop_.store(true);  // drain starts at the loop top
                }
            } else {
                c.in_flight = true;
                std::shared_ptr<QueryEngine> engine = engine_;
                pool.submit([this, engine, id, line = std::move(line)] {
                    Completion done;
                    done.conn_id = id;
                    done.response = engine->execute(line);
                    done.response += '\n';
                    {
                        std::lock_guard<std::mutex> lock(completions_mutex_);
                        completions_.push_back(std::move(done));
                    }
                    wake();
                });
            }
        }
        if (c.peer_eof && !c.in_flight && c.requests.empty() && c.in.empty()) {
            c.closing = true;  // everything served: close once flushed
        }
        return flush(id, c);
    };

    const auto on_readable = [&](std::uint64_t id, Conn& c) {
        // Bounded reads per event for fairness; level-triggered epoll
        // re-arms for whatever is left.
        for (int i = 0; i < 16; ++i) {
            char chunk[4096];
            const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                c.in.append(chunk, static_cast<std::size_t>(n));
                c.last_activity_ns = now_ns;
                continue;
            }
            if (n < 0 && errno == EINTR) {
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                break;
            }
            if (n == 0) {
                c.peer_eof = true;
                break;
            }
            close_conn(id);  // real error
            return;
        }
        pump(id, c);
    };

    const auto on_accept = [&] {
        while (accepting) {
            const int conn = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (conn < 0) {
                if (errno == EINTR) {
                    continue;
                }
                break;  // EAGAIN, or transient (ECONNABORTED, EMFILE, ...)
            }
            const std::uint64_t id = next_id++;
            if (!add_fd(conn, id, EPOLLIN)) {
                ::close(conn);
                continue;
            }
            Conn c;
            c.fd = conn;
            c.events = EPOLLIN;
            c.last_activity_ns = now_ns;
            conns.emplace(id, std::move(c));
        }
    };

    const auto on_wake = [&] {
        std::uint64_t counter = 0;
        while (::read(wake_fd_, &counter, sizeof(counter)) < 0 &&
               errno == EINTR) {
        }
        std::vector<Completion> done;
        {
            std::lock_guard<std::mutex> lock(completions_mutex_);
            done.swap(completions_);
        }
        for (Completion& comp : done) {
            const auto it = conns.find(comp.conn_id);
            if (it == conns.end()) {
                continue;  // connection went away while the request ran
            }
            Conn& c = it->second;
            c.out += comp.response;
            c.in_flight = false;
            c.last_activity_ns = now_ns;
            pump(comp.conn_id, c);
        }
    };

    std::vector<epoll_event> events(64);
    while (true) {
        now_ns = clock.now_ns();
        if (stop_.load() && !draining) {
            draining = true;
            // Drain contract: stop accepting, keep answering what live
            // connections already sent, bounded so a stalled peer cannot
            // hold the daemon open forever.
            const std::uint64_t bound =
                idle_ns > 0 ? idle_ns : std::uint64_t{5000} * 1000000u;
            drain_deadline_ns = now_ns + bound;
            if (accepting) {
                ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, listen_fd_,
                            nullptr);
                accepting = false;
            }
        }
        if (draining) {
            std::vector<std::uint64_t> drained;
            for (const auto& [id, c] : conns) {
                const bool idle = !c.in_flight && c.requests.empty() &&
                                  c.out.empty() &&
                                  c.in.find('\n') == std::string::npos;
                // A partial line may still be completed before the
                // deadline; everything else is done and can go now.
                if ((idle && c.in.empty()) || now_ns >= drain_deadline_ns) {
                    drained.push_back(id);
                }
            }
            for (const std::uint64_t id : drained) {
                close_conn(id);
            }
            if (conns.empty()) {
                break;
            }
        }

        const int timeout_ms = options_.accept_poll_ms > 0
                                   ? options_.accept_poll_ms
                                   : 50;
        const int n = ::epoll_wait(epoll_fd.get(), events.data(),
                                   static_cast<int>(events.size()),
                                   timeout_ms);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // unrecoverable epoll failure
        }
        now_ns = clock.now_ns();
        for (int i = 0; i < n; ++i) {
            const std::uint64_t id = events[static_cast<std::size_t>(i)]
                                         .data.u64;
            const std::uint32_t ev =
                events[static_cast<std::size_t>(i)].events;
            if (id == kListenerId) {
                on_accept();
                continue;
            }
            if (id == kWakeId) {
                on_wake();
                continue;
            }
            const auto it = conns.find(id);
            if (it == conns.end()) {
                continue;  // closed earlier in this batch
            }
            Conn& c = it->second;
            if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && c.out.empty() &&
                !c.in_flight && c.requests.empty()) {
                close_conn(id);
                continue;
            }
            if ((ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
                on_readable(id, c);
                continue;  // pump() already flushed (and may have closed)
            }
            if ((ev & EPOLLOUT) != 0) {
                flush(id, c);
            }
        }

        // Idle sweep: disconnect peers with no progress and no work, so a
        // stalled connection cannot pin its slot forever. Connections with
        // a request in flight or unflushed output are never idle.
        if (idle_ns > 0) {
            std::vector<std::uint64_t> idle;
            for (const auto& [id, c] : conns) {
                if (!c.in_flight && c.out.empty() &&
                    now_ns >= c.last_activity_ns &&
                    now_ns - c.last_activity_ns > idle_ns) {
                    idle.push_back(id);
                }
            }
            for (const std::uint64_t id : idle) {
                close_conn(id);
            }
        }
    }

    for (auto& [id, c] : conns) {
        ::close(c.fd);
    }
    conns.clear();
    running_.store(false);
    // The pool destructor joins in-flight tasks; their completions land in
    // completions_ and are discarded (every connection is gone).
}

std::vector<std::string> query_daemon(const std::string& host, int port,
                                      const std::vector<std::string>& requests,
                                      int timeout_ms) {
    FdGuard fd(connect_to(host, port, timeout_ms));
    std::string payload;
    for (const auto& r : requests) {
        payload += r;
        payload += '\n';
    }
    if (!send_all(fd.get(), payload)) {
        throw Error("serve client: send failed");
    }
    ::shutdown(fd.get(), SHUT_WR);
    std::vector<std::string> responses;
    // Response lines (e.g. the escaped `metrics` exposition) can be much
    // longer than request lines; cap generously.
    LineReader reader(fd.get(), std::size_t{1} << 22);
    std::string line;
    while (responses.size() < requests.size() && reader.next_line(line)) {
        responses.push_back(line);
    }
    if (responses.size() != requests.size()) {
        const char* why = "connection closed";
        switch (reader.status()) {
            case ReadStatus::Timeout:
                why = "receive timed out";
                break;
            case ReadStatus::TooLong:
                why = "oversized response line";
                break;
            case ReadStatus::Error:
                why = "socket error";
                break;
            default:
                break;
        }
        throw Error(std::string("serve client: ") + why + " after " +
                    std::to_string(responses.size()) + " of " +
                    std::to_string(requests.size()) + " responses");
    }
    return responses;
}

}  // namespace extradeep::serve
