#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel_for.hpp"

namespace extradeep::serve {

namespace {

void set_recv_timeout(int fd, int timeout_ms) {
    if (timeout_ms <= 0) {
        return;
    }
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/// Buffered line reader over a socket. Returns false on EOF, error, or
/// receive timeout. Lines longer than the cap terminate the connection (a
/// legitimate request is always short).
class LineReader {
public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool next_line(std::string& line) {
        static constexpr std::size_t kMaxLine = 1 << 16;
        while (true) {
            const std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r') {
                    line.pop_back();
                }
                return true;
            }
            if (buffer_.size() > kMaxLine) {
                return false;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                // EOF: a trailing unterminated line is still served, so a
                // client may just write requests and shut down the socket.
                if (n == 0 && !buffer_.empty()) {
                    line = std::move(buffer_);
                    buffer_.clear();
                    if (!line.empty() && line.back() == '\r') {
                        line.pop_back();
                    }
                    return true;
                }
                return false;
            }
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

private:
    int fd_;
    std::string buffer_;
};

int connect_to(const std::string& host, int port, int timeout_ms) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error("serve client: socket() failed");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw Error("serve client: bad host address '" + host + "'");
    }
    set_recv_timeout(fd, timeout_ms);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw Error("serve client: cannot connect to " + host + ":" +
                    std::to_string(port));
    }
    return fd;
}

}  // namespace

ServeDaemon::ServeDaemon(std::shared_ptr<QueryEngine> engine,
                         ServerOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {
    if (!engine_) {
        throw InvalidArgumentError("ServeDaemon: null engine");
    }
}

ServeDaemon::~ServeDaemon() {
    stop();
    wait();
}

void ServeDaemon::start() {
    if (running_.load() || listen_fd_ >= 0) {
        throw Error("ServeDaemon: already started");
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error("ServeDaemon: socket() failed");
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw Error("ServeDaemon: bad host address '" + options_.host + "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("ServeDaemon: bind failed: ") +
                    std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        throw Error(std::string("ServeDaemon: listen failed: ") +
                    std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        ::close(fd);
        throw Error("ServeDaemon: getsockname failed");
    }
    listen_fd_ = fd;
    port_ = ntohs(bound.sin_port);
    stop_.store(false);
    running_.store(true);
    loop_thread_ = std::thread([this] { loop(); });
}

void ServeDaemon::loop() {
    ThreadPool pool(options_.threads);
    const int batch_cap = 4 * pool.thread_count();
    while (!stop_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, options_.accept_poll_ms);
        if (ready <= 0) {
            continue;  // timeout or EINTR: re-check the stop flag
        }
        // Drain every pending connection into one batch, then serve the
        // batch concurrently on the pool (one connection per chunk).
        std::vector<int> batch;
        while (static_cast<int>(batch.size()) < batch_cap) {
            const int conn = ::accept(listen_fd_, nullptr, nullptr);
            if (conn < 0) {
                break;
            }
            set_recv_timeout(conn, options_.recv_timeout_ms);
            batch.push_back(conn);
            pollfd more{};
            more.fd = listen_fd_;
            more.events = POLLIN;
            if (::poll(&more, 1, 0) <= 0) {
                break;
            }
        }
        if (batch.empty()) {
            continue;
        }
        pool.parallel_for(batch.size(),
                          [&](int /*chunk*/, std::size_t begin,
                              std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                  handle_connection(batch[i]);
                              }
                          });
    }
    running_.store(false);
    {
        std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    wait_cv_.notify_all();
}

void ServeDaemon::handle_connection(int fd) {
    LineReader reader(fd);
    std::string line;
    while (!stop_.load() && reader.next_line(line)) {
        if (line == "quit" || line == "shutdown") {
            send_all(fd, "ok bye\n");
            if (line == "shutdown") {
                stop_.store(true);
            }
            break;
        }
        const std::string response = engine_->execute(line);
        if (!send_all(fd, response + "\n")) {
            break;
        }
    }
    ::close(fd);
}

void ServeDaemon::stop() {
    stop_.store(true);
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
}

void ServeDaemon::wait() {
    if (loop_thread_.joinable()) {
        loop_thread_.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    running_.store(false);
}

std::vector<std::string> query_daemon(const std::string& host, int port,
                                      const std::vector<std::string>& requests,
                                      int timeout_ms) {
    const int fd = connect_to(host, port, timeout_ms);
    std::string payload;
    for (const auto& r : requests) {
        payload += r;
        payload += '\n';
    }
    if (!send_all(fd, payload)) {
        ::close(fd);
        throw Error("serve client: send failed");
    }
    ::shutdown(fd, SHUT_WR);
    std::vector<std::string> responses;
    LineReader reader(fd);
    std::string line;
    while (responses.size() < requests.size() && reader.next_line(line)) {
        responses.push_back(line);
    }
    ::close(fd);
    if (responses.size() != requests.size()) {
        throw Error("serve client: connection closed after " +
                    std::to_string(responses.size()) + " of " +
                    std::to_string(requests.size()) + " responses");
    }
    return responses;
}

}  // namespace extradeep::serve
