#include "serve/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace extradeep::serve {

namespace {

bool valid_model_name(const std::string& name) {
    if (name.empty() || name.size() > 128) {
        return false;
    }
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok) {
            return false;
        }
    }
    return true;
}

void check_text_field(const std::string& s, const char* what) {
    if (s.find_first_of("\t\n\r") != std::string::npos) {
        throw InvalidArgumentError(std::string("EDPM: ") + what +
                                   " must not contain tabs or line breaks");
    }
}

double checked_finite(double v, const char* what) {
    if (!std::isfinite(v)) {
        throw InvalidArgumentError(std::string("EDPM: non-finite value for ") +
                                   what);
    }
    return v;
}

/// The eight persisted per-step models, in kModelKeys order.
std::array<const modeling::PerformanceModel*, 8> step_models(
    const ServableModel& m) {
    return {
        &m.epoch_time.train_step_model(),
        &m.epoch_time.val_step_model(),
        &m.phase_time[0].train_step_model(),
        &m.phase_time[0].val_step_model(),
        &m.phase_time[1].train_step_model(),
        &m.phase_time[1].val_step_model(),
        &m.phase_time[2].train_step_model(),
        &m.phase_time[2].val_step_model(),
    };
}

void write_model_section(std::ostream& os, const char* key,
                         const modeling::PerformanceModel& pm) {
    os << "MODEL\t" << key << '\n';
    os << "PARAMS\t" << pm.param_names().size();
    for (const auto& name : pm.param_names()) {
        check_text_field(name, "parameter name");
        os << '\t' << name;
    }
    os << '\n';
    os << "CONST\t" << fmt::hexfloat(checked_finite(pm.constant(), "constant"))
       << '\n';
    const modeling::ModelQuality& q = pm.quality();
    // QUALITY is pure reporting metadata and the one record where
    // non-finite values are representable (degenerate fits).
    os << "QUALITY\t" << fmt::hexfloat(q.fit_smape) << '\t'
       << fmt::hexfloat(q.cv_smape) << '\t' << fmt::hexfloat(q.r_squared)
       << '\t' << fmt::hexfloat(q.rss) << '\t' << q.hypotheses_searched
       << '\n';
    for (const auto& term : pm.terms()) {
        os << "TERM\t"
           << fmt::hexfloat(checked_finite(term.coefficient, "coefficient"))
           << '\t' << term.factors.size();
        for (const auto& f : term.factors) {
            if (f.param < 0 ||
                static_cast<std::size_t>(f.param) >= pm.param_names().size()) {
                throw InvalidArgumentError(
                    "EDPM: factor parameter index out of range");
            }
            os << '\t' << f.param << '\t'
               << fmt::hexfloat(checked_finite(f.poly_exp, "poly exponent"))
               << '\t' << f.log_exp;
        }
        os << '\n';
    }
    if (pm.has_fit_info()) {
        const linalg::Matrix& cov = pm.cov_unscaled();
        os << "FIT\t" << pm.degrees_of_freedom() << '\t'
           << fmt::hexfloat(
                  checked_finite(pm.residual_variance(), "residual variance"))
           << '\t' << cov.rows() << '\n';
        for (std::size_t r = 0; r < cov.rows(); ++r) {
            os << "COV";
            for (std::size_t c = 0; c < cov.cols(); ++c) {
                os << '\t'
                   << fmt::hexfloat(checked_finite(cov(r, c), "covariance"));
            }
            os << '\n';
        }
    }
    os << "ENDMODEL\n";
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

std::vector<std::string> split_tabs(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            out.push_back(line.substr(pos));
            break;
        }
        out.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return out;
}

/// Raised internally to abandon a tolerant parse that cannot make progress
/// (e.g. missing header). Converted to a quarantined result at the top.
struct AbortParse {};

struct Reader {
    std::istream& is;
    EdpmReadOptions options;
    DiagnosticLog log;
    long long line_no = 0;

    explicit Reader(std::istream& stream, const EdpmReadOptions& opts)
        : is(stream), options(opts), log(opts.max_diagnostics) {}

    bool strict() const { return options.mode == ParseMode::Strict; }

    /// Records a problem; in strict mode any problem is fatal.
    void problem(Severity severity, const std::string& reason) {
        if (strict()) {
            std::ostringstream os;
            os << "EDPM: " << reason;
            if (line_no > 0) {
                os << " (line " << line_no << ")";
            }
            throw ParseError(os.str());
        }
        log.add(severity, "EDPM: " + reason, line_no);
    }

    bool next_line(std::string& line) {
        if (!std::getline(is, line)) {
            return false;
        }
        ++line_no;
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();  // CRLF tolerance, as in the EDP reader
        }
        return true;
    }
};

bool parse_i64(const std::string& s, std::int64_t& out) {
    try {
        std::size_t idx = 0;
        out = std::stoll(s, &idx);
        return idx == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    if (s.empty() || s[0] == '-') {
        return false;
    }
    try {
        std::size_t idx = 0;
        out = std::stoull(s, &idx);
        return idx == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

/// Finite-only double field (everything except QUALITY).
bool parse_finite(const std::string& s, double& out) {
    return fmt::parse_double(s, out) && std::isfinite(out);
}

/// One parsed MODEL section. `pm` is empty when the section had to be
/// abandoned (Error already recorded).
struct ModelSection {
    std::string key;
    std::optional<modeling::PerformanceModel> pm;
    bool skipped_unknown_key = false;
};

/// Parses one MODEL..ENDMODEL section; the MODEL line itself has already
/// been consumed (fields passed in). Never throws in tolerant mode.
ModelSection read_model_section(Reader& r,
                                const std::vector<std::string>& model_fields) {
    ModelSection out;
    if (model_fields.size() != 2 || model_fields[1].empty()) {
        r.problem(Severity::Error, "malformed MODEL record");
    } else {
        out.key = model_fields[1];
    }
    const bool known_key =
        std::find_if(kModelKeys.begin(), kModelKeys.end(),
                     [&](const char* k) { return out.key == k; }) !=
        kModelKeys.end();
    if (!known_key && !out.key.empty()) {
        // Forward compatibility: a newer writer may persist extra models.
        r.problem(Severity::Warning,
                  "unknown model key '" + out.key + "', section skipped");
        out.skipped_unknown_key = true;
    }

    std::vector<std::string> param_names;
    bool have_params = false;
    bool have_const = false;
    double constant = 0.0;
    modeling::ModelQuality quality;
    bool have_quality = false;
    std::vector<modeling::Term> terms;
    bool section_ok = true;  // CONST/PARAMS/TERM integrity
    bool have_fit = false;
    int dof = 0;
    double residual_variance = 0.0;
    linalg::Matrix cov;

    const auto section_error = [&](const std::string& reason) {
        r.problem(Severity::Error, reason);
        section_ok = false;
    };

    std::string line;
    bool closed = false;
    while (r.next_line(line)) {
        if (line == "ENDMODEL") {
            closed = true;
            break;
        }
        const auto f = split_tabs(line);
        const std::string& tag = f[0];
        if (tag == "PARAMS") {
            std::int64_t n = 0;
            if (have_params) {
                section_error("duplicate PARAMS record");
            } else if (f.size() < 2 || !parse_i64(f[1], n) || n < 1 ||
                       f.size() != static_cast<std::size_t>(n) + 2) {
                section_error("malformed PARAMS record");
            } else {
                param_names.assign(f.begin() + 2, f.end());
                have_params = true;
            }
        } else if (tag == "CONST") {
            double v = 0.0;
            if (have_const) {
                section_error("duplicate CONST record");
            } else if (f.size() != 2 || !parse_finite(f[1], v)) {
                section_error("malformed CONST record");
            } else {
                constant = v;
                have_const = true;
            }
        } else if (tag == "QUALITY") {
            // Reporting metadata only: corruption degrades to defaults.
            std::int64_t hyps = 0;
            modeling::ModelQuality q;
            if (f.size() != 6 || !fmt::parse_double(f[1], q.fit_smape) ||
                !fmt::parse_double(f[2], q.cv_smape) ||
                !fmt::parse_double(f[3], q.r_squared) ||
                !fmt::parse_double(f[4], q.rss) || !parse_i64(f[5], hyps)) {
                r.problem(Severity::Warning,
                          "malformed QUALITY record, using defaults");
            } else if (have_quality) {
                r.problem(Severity::Warning, "duplicate QUALITY record");
            } else {
                q.hypotheses_searched = static_cast<int>(hyps);
                quality = q;
                have_quality = true;
            }
        } else if (tag == "TERM") {
            std::int64_t nfac = 0;
            modeling::Term term;
            if (f.size() < 3 || !parse_finite(f[1], term.coefficient) ||
                !parse_i64(f[2], nfac) || nfac < 0 ||
                f.size() != 3 + static_cast<std::size_t>(nfac) * 3) {
                section_error("malformed TERM record");
                continue;
            }
            bool factors_ok = true;
            for (std::int64_t i = 0; i < nfac; ++i) {
                modeling::Factor factor;
                std::int64_t param = 0;
                std::int64_t log_exp = 0;
                const std::size_t base = 3 + static_cast<std::size_t>(i) * 3;
                if (!parse_i64(f[base], param) || param < 0 ||
                    !parse_finite(f[base + 1], factor.poly_exp) ||
                    !parse_i64(f[base + 2], log_exp)) {
                    factors_ok = false;
                    break;
                }
                factor.param = static_cast<int>(param);
                factor.log_exp = static_cast<int>(log_exp);
                term.factors.push_back(factor);
            }
            if (!factors_ok) {
                section_error("malformed TERM factor");
            } else {
                terms.push_back(std::move(term));
            }
        } else if (tag == "FIT") {
            // Fit info only affects prediction intervals; corruption
            // degrades to point predictions (intervals collapse).
            std::int64_t d = 0;
            std::int64_t dim = 0;
            double resvar = 0.0;
            if (have_fit) {
                r.problem(Severity::Warning,
                          "duplicate FIT record, keeping the first");
                continue;
            }
            if (f.size() != 4 || !parse_i64(f[1], d) || d < 1 ||
                !parse_finite(f[2], resvar) || !parse_i64(f[3], dim) ||
                dim < 1 || dim > 64) {
                r.problem(Severity::Warning,
                          "malformed FIT record, dropping fit info");
                continue;
            }
            linalg::Matrix m(static_cast<std::size_t>(dim),
                             static_cast<std::size_t>(dim));
            bool cov_ok = true;
            for (std::int64_t row = 0; row < dim && cov_ok; ++row) {
                std::string cov_line;
                if (!r.next_line(cov_line)) {
                    cov_ok = false;
                    break;
                }
                const auto cf = split_tabs(cov_line);
                if (cf.empty() || cf[0] != "COV" ||
                    cf.size() != static_cast<std::size_t>(dim) + 1) {
                    cov_ok = false;
                    break;
                }
                for (std::int64_t col = 0; col < dim; ++col) {
                    double v = 0.0;
                    if (!parse_finite(cf[static_cast<std::size_t>(col) + 1],
                                      v)) {
                        cov_ok = false;
                        break;
                    }
                    m(static_cast<std::size_t>(row),
                      static_cast<std::size_t>(col)) = v;
                }
            }
            if (!cov_ok) {
                r.problem(Severity::Warning,
                          "malformed COV rows, dropping fit info");
                continue;
            }
            dof = static_cast<int>(d);
            residual_variance = resvar;
            cov = std::move(m);
            have_fit = true;
        } else if (tag == "COV") {
            r.problem(Severity::Warning, "stray COV record outside FIT");
        } else {
            r.problem(Severity::Warning,
                      "unknown model record '" + tag + "' skipped");
        }
    }
    if (!closed) {
        r.problem(Severity::Error, "truncated MODEL section (missing ENDMODEL)");
        section_ok = false;
    }
    if (out.skipped_unknown_key || out.key.empty()) {
        return out;
    }
    if (!have_params || !have_const) {
        section_error("MODEL section missing PARAMS or CONST");
    }
    for (const auto& term : terms) {
        for (const auto& factor : term.factors) {
            if (static_cast<std::size_t>(factor.param) >= param_names.size()) {
                section_error("TERM factor parameter index out of range");
            }
        }
    }
    if (!section_ok) {
        return out;
    }
    modeling::PerformanceModel pm(constant, std::move(terms),
                                  std::move(param_names));
    pm.set_quality(quality);
    if (have_fit) {
        if (cov.rows() != pm.terms().size() + 1) {
            r.problem(Severity::Warning,
                      "FIT covariance dimension does not match term count, "
                      "dropping fit info");
        } else {
            pm.set_fit_info(std::move(cov), residual_variance, dof);
        }
    }
    out.pm = std::move(pm);
    return out;
}

EdpmReadResult read_edpm_impl(std::istream& is,
                              const EdpmReadOptions& options) {
    Reader r(is, options);
    ServableModel model;
    bool have_name = false;
    bool have_spec = false;
    bool have_xs = false;
    bool have_epochv = false;
    bool structure_ok = true;
    std::map<std::string, modeling::PerformanceModel> models;

    const auto structural_error = [&](const std::string& reason) {
        r.problem(Severity::Error, reason);
        structure_ok = false;
    };

    const auto parse_point_vector = [&](const std::vector<std::string>& f,
                                        std::vector<double>& out,
                                        const char* what) {
        std::int64_t n = 0;
        if (f.size() < 2 || !parse_i64(f[1], n) || n < 1 ||
            f.size() != static_cast<std::size_t>(n) + 2) {
            structural_error(std::string("malformed ") + what + " record");
            return;
        }
        std::vector<double> values;
        values.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            double v = 0.0;
            if (!parse_finite(f[static_cast<std::size_t>(i) + 2], v)) {
                structural_error(std::string("bad number in ") + what +
                                 " record");
                return;
            }
            values.push_back(v);
        }
        out = std::move(values);
    };

    try {
        std::string line;
        if (!r.next_line(line) || line != "EDPM\t1") {
            r.problem(Severity::Error,
                      "missing or unsupported EDPM header (expected "
                      "'EDPM<TAB>1')");
            throw AbortParse{};
        }

        bool saw_end = false;
        while (r.next_line(line)) {
            if (line == "END") {
                saw_end = true;
                break;
            }
            if (line.empty()) {
                r.problem(Severity::Warning, "blank line skipped");
                continue;
            }
            const auto f = split_tabs(line);
            const std::string& tag = f[0];
            if (tag == "NAME") {
                if (have_name) {
                    structural_error("duplicate NAME record");
                } else if (f.size() != 2 || !valid_model_name(f[1])) {
                    structural_error("malformed NAME record (model names are "
                                     "[A-Za-z0-9._-], max 128 chars)");
                } else {
                    model.name = f[1];
                    have_name = true;
                }
            } else if (tag == "PROV") {
                // Free text: everything after the first tab.
                model.provenance =
                    line.size() > 5 ? line.substr(5) : std::string();
            } else if (tag == "SEED") {
                std::uint64_t seed = 0;
                if (f.size() != 2 || !parse_u64(f[1], seed)) {
                    // Provenance only; corruption never blocks serving.
                    r.problem(Severity::Warning,
                              "malformed SEED record, defaulting to 0");
                } else {
                    model.seed = seed;
                }
            } else if (tag == "SPEC") {
                std::int64_t batch = 0;
                std::int64_t m = 0;
                std::int64_t cores = 0;
                if (have_spec) {
                    structural_error("duplicate SPEC record");
                    continue;
                }
                if (f.size() != 8 || f[1].empty() || f[2].empty() ||
                    !parse_i64(f[5], batch) || batch < 1 ||
                    !parse_i64(f[6], m) || m < 1 || !parse_i64(f[7], cores) ||
                    cores < 1) {
                    structural_error("malformed SPEC record");
                    continue;
                }
                try {
                    model.strategy = parallel::parse_strategy(f[3]);
                    model.scaling = parallel::parse_scaling(f[4]);
                } catch (const ParseError& e) {
                    structural_error(e.what());
                    continue;
                }
                model.dataset = f[1];
                model.system_name = f[2];
                model.batch_per_worker = batch;
                model.model_parallel_degree = static_cast<int>(m);
                model.cores_per_rank = static_cast<int>(cores);
                have_spec = true;
            } else if (tag == "XS") {
                if (have_xs) {
                    structural_error("duplicate XS record");
                } else {
                    parse_point_vector(f, model.modeling_xs, "XS");
                    have_xs = !model.modeling_xs.empty();
                }
            } else if (tag == "EPOCHV") {
                if (have_epochv) {
                    structural_error("duplicate EPOCHV record");
                } else {
                    parse_point_vector(f, model.epoch_time_values, "EPOCHV");
                    have_epochv = !model.epoch_time_values.empty();
                }
            } else if (tag == "MODEL") {
                ModelSection section = read_model_section(r, f);
                if (section.skipped_unknown_key) {
                    continue;
                }
                if (!section.pm.has_value()) {
                    structure_ok = false;
                    continue;
                }
                if (models.count(section.key) != 0) {
                    structural_error("duplicate MODEL section '" +
                                     section.key + "'");
                } else {
                    models.emplace(section.key, std::move(*section.pm));
                }
            } else {
                r.problem(Severity::Warning,
                          "unknown record '" + tag + "' skipped");
            }
        }
        if (!saw_end) {
            structural_error("truncated file (missing END)");
        } else {
            long long trailing = 0;
            while (r.next_line(line)) {
                ++trailing;
            }
            if (trailing > 0) {
                std::ostringstream os;
                os << "ignored " << trailing
                   << " line(s) of trailing data after END";
                r.problem(Severity::Warning, os.str());
            }
        }

        // Completeness + semantic validation.
        if (!have_name) structural_error("missing NAME record");
        if (!have_spec) structural_error("missing SPEC record");
        if (!have_xs) structural_error("missing XS record");
        if (!have_epochv) structural_error("missing EPOCHV record");
        for (const char* key : kModelKeys) {
            if (structure_ok && models.count(key) == 0) {
                structural_error(std::string("missing MODEL section '") + key +
                                 "'");
            }
        }
        if (have_xs && have_epochv &&
            model.modeling_xs.size() != model.epoch_time_values.size()) {
            structural_error("XS and EPOCHV lengths differ");
        }
        if (have_xs) {
            for (std::size_t i = 0; i < model.modeling_xs.size(); ++i) {
                if (model.modeling_xs[i] <= 0.0 ||
                    (i > 0 &&
                     model.modeling_xs[i] <= model.modeling_xs[i - 1])) {
                    structural_error(
                        "XS values must be positive and strictly ascending");
                    break;
                }
            }
        }
        if (!structure_ok) {
            throw AbortParse{};
        }

        // Reconstruct the analytical step math from the SPEC parameters and
        // prove it is usable at every modeling point before serving.
        try {
            model.step_math = make_step_math_fn(
                model.dataset, model.strategy, model.model_parallel_degree,
                model.scaling, model.batch_per_worker);
            for (const double x : model.modeling_xs) {
                (void)model.step_math(
                    static_cast<int>(std::llround(x)));
            }
        } catch (const Error& e) {
            structural_error(std::string("step math reconstruction failed: ") +
                             e.what());
            throw AbortParse{};
        }

        model.epoch_time =
            EpochModel(models.at(kModelKeys[0]), models.at(kModelKeys[1]),
                       model.step_math);
        for (int p = 0; p < trace::kPhaseCount; ++p) {
            model.phase_time[p] =
                EpochModel(models.at(kModelKeys[2 + 2 * p]),
                           models.at(kModelKeys[3 + 2 * p]), model.step_math);
        }
    } catch (const AbortParse&) {
        return {std::nullopt, std::move(r.log)};
    }
    return {std::move(model), std::move(r.log)};
}

}  // namespace

ServableModel make_servable(const ExperimentSpec& spec,
                            const ExperimentResult& result, std::string name) {
    if (!valid_model_name(name)) {
        throw InvalidArgumentError(
            "make_servable: model names are [A-Za-z0-9._-], max 128 chars");
    }
    if (!result.step_math_fn || result.modeling_xs.empty()) {
        throw InvalidArgumentError(
            "make_servable: result has no fitted models (run the experiment "
            "first)");
    }
    ServableModel out;
    out.name = std::move(name);
    out.provenance = spec.describe();
    out.seed = spec.seed;
    out.dataset = spec.dataset;
    out.system_name = spec.system.name;
    out.strategy = spec.strategy;
    out.scaling = spec.scaling;
    out.batch_per_worker = spec.batch_per_worker;
    out.model_parallel_degree = spec.model_parallel_degree;
    out.cores_per_rank = spec.system.cores_per_rank;
    out.modeling_xs = result.modeling_xs;
    out.epoch_time_values = result.epoch_time_values;
    out.epoch_time = result.epoch_time;
    out.phase_time = result.phase_time;
    out.step_math = result.step_math_fn;
    return out;
}

void write_edpm(std::ostream& os, const ServableModel& model) {
    if (!valid_model_name(model.name)) {
        throw InvalidArgumentError(
            "EDPM: model names are [A-Za-z0-9._-], max 128 chars");
    }
    check_text_field(model.provenance, "provenance");
    check_text_field(model.dataset, "dataset name");
    check_text_field(model.system_name, "system name");
    if (model.batch_per_worker < 1 || model.model_parallel_degree < 1 ||
        model.cores_per_rank < 1) {
        throw InvalidArgumentError("EDPM: SPEC values must be >= 1");
    }
    if (model.modeling_xs.empty() ||
        model.modeling_xs.size() != model.epoch_time_values.size()) {
        throw InvalidArgumentError(
            "EDPM: modeling points and epoch values must be non-empty and of "
            "equal length");
    }
    for (std::size_t i = 0; i < model.modeling_xs.size(); ++i) {
        checked_finite(model.modeling_xs[i], "modeling point");
        checked_finite(model.epoch_time_values[i], "epoch value");
        if (model.modeling_xs[i] <= 0.0 ||
            (i > 0 && model.modeling_xs[i] <= model.modeling_xs[i - 1])) {
            throw InvalidArgumentError(
                "EDPM: modeling points must be positive and strictly "
                "ascending");
        }
    }

    os << "EDPM\t" << kEdpmVersion << '\n';
    os << "NAME\t" << model.name << '\n';
    os << "PROV\t" << model.provenance << '\n';
    os << "SEED\t" << model.seed << '\n';
    os << "SPEC\t" << model.dataset << '\t' << model.system_name << '\t'
       << parallel::strategy_name(model.strategy) << '\t'
       << parallel::scaling_name(model.scaling) << '\t'
       << model.batch_per_worker << '\t' << model.model_parallel_degree
       << '\t' << model.cores_per_rank << '\n';
    os << "XS\t" << model.modeling_xs.size();
    for (const double x : model.modeling_xs) {
        os << '\t' << fmt::hexfloat(x);
    }
    os << '\n';
    os << "EPOCHV\t" << model.epoch_time_values.size();
    for (const double v : model.epoch_time_values) {
        os << '\t' << fmt::hexfloat(v);
    }
    os << '\n';
    const auto models = step_models(model);
    for (std::size_t i = 0; i < kModelKeys.size(); ++i) {
        write_model_section(os, kModelKeys[i], *models[i]);
    }
    os << "END\n";
    if (!os) {
        throw Error("EDPM: write failed");
    }
}

ServableModel read_edpm(std::istream& is) {
    EdpmReadOptions options;
    options.mode = ParseMode::Strict;
    EdpmReadResult result = read_edpm_impl(is, options);
    // Strict mode throws at the first problem, so reaching here means ok.
    return std::move(*result.model);
}

EdpmReadResult read_edpm(std::istream& is, const EdpmReadOptions& options) {
    return read_edpm_impl(is, options);
}

void write_edpm_file(const std::string& path, const ServableModel& model) {
    std::ofstream os(path);
    if (!os) {
        throw Error("EDPM: cannot open '" + path + "' for writing");
    }
    write_edpm(os, model);
    os.flush();
    if (!os) {
        throw Error("EDPM: write to '" + path + "' failed");
    }
}

ServableModel read_edpm_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDPM: cannot open '" + path + "'");
    }
    return read_edpm(is);
}

EdpmReadResult read_edpm_file(const std::string& path,
                              const EdpmReadOptions& options) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDPM: cannot open '" + path + "'");
    }
    return read_edpm(is, options);
}

}  // namespace extradeep::serve
