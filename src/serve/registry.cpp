#include "serve/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <mutex>

#include "common/error.hpp"

namespace extradeep::serve {

namespace {

namespace fs = std::filesystem;

std::vector<std::string> scan_edpm_files(const std::string& dir) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        throw Error("ModelRegistry: '" + dir + "' is not a readable directory");
    }
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == kEdpmExtension) {
            paths.push_back(entry.path().string());
        }
    }
    if (ec) {
        throw Error("ModelRegistry: cannot scan '" + dir +
                    "': " + ec.message());
    }
    // directory_iterator order is unspecified; sort for determinism.
    std::sort(paths.begin(), paths.end());
    return paths;
}

}  // namespace

RegistryLoadReport ModelRegistry::load_directory(const std::string& dir) {
    RegistryLoadReport report;
    const std::vector<std::string> paths = scan_edpm_files(dir);

    // Parse everything outside the lock; serving continues meanwhile.
    struct Parsed {
        std::string path;
        std::shared_ptr<const ServableModel> model;  // nullptr if quarantined
    };
    std::vector<Parsed> parsed;
    parsed.reserve(paths.size());
    EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    for (const auto& path : paths) {
        EdpmReadResult result;
        try {
            result = read_edpm_file(path, options);
        } catch (const Error& e) {
            // Unreadable file (e.g. removed mid-scan): quarantine, never
            // drop the registry.
            report.diagnostics.add(Severity::Error,
                                   path + ": " + e.what());
            ++report.quarantined;
            parsed.push_back({path, nullptr});
            continue;
        }
        for (const auto& d : result.diagnostics.entries()) {
            Diagnostic tagged = d;
            tagged.reason = path + ": " + tagged.reason;
            report.diagnostics.add(std::move(tagged));
        }
        if (result.ok()) {
            parsed.push_back(
                {path, std::make_shared<const ServableModel>(
                           std::move(*result.model))});
        } else {
            report.diagnostics.add(Severity::Error,
                                   path + ": quarantined (corrupt model file)");
            ++report.quarantined;
            parsed.push_back({path, nullptr});
        }
    }

    std::unique_lock lock(mutex_);
    dir_ = dir;
    // Names claimed by files in this scan, first (lexicographic) file wins.
    std::map<std::string, const Parsed*> by_name;
    for (const auto& p : parsed) {
        if (!p.model) {
            continue;
        }
        const auto [it, inserted] = by_name.emplace(p.model->name, &p);
        if (!inserted) {
            report.diagnostics.add(
                Severity::Warning,
                p.path + ": duplicate model name '" + p.model->name +
                    "' (already provided by " + it->second->path +
                    "), file quarantined");
            ++report.quarantined;
        }
    }
    // Remove file-backed entries under this directory whose file vanished or
    // no longer parses to the same name. Corrupt files keep their old entry.
    std::vector<std::string> quarantined_paths;
    for (const auto& p : parsed) {
        if (!p.model) {
            quarantined_paths.push_back(p.path);
        }
    }
    for (auto it = entries_.begin(); it != entries_.end();) {
        const Entry& e = it->second;
        const bool file_backed = !e.path.empty();
        const bool under_dir =
            file_backed &&
            fs::path(e.path).parent_path() == fs::path(dir);
        if (!file_backed || !under_dir) {
            ++it;
            continue;
        }
        const bool still_claimed = by_name.count(it->first) != 0;
        const bool file_quarantined =
            std::find(quarantined_paths.begin(), quarantined_paths.end(),
                      e.path) != quarantined_paths.end();
        if (still_claimed || file_quarantined) {
            ++it;  // will be replaced below, or kept as the last good version
            continue;
        }
        report.diagnostics.add(Severity::Info,
                               "removed '" + it->first +
                                   "' (file gone: " + e.path + ")");
        ++report.removed;
        it = entries_.erase(it);
    }
    for (const auto& [name, p] : by_name) {
        entries_[name] = Entry{p->model, p->path};
        ++report.loaded;
    }
    return report;
}

RegistryLoadReport ModelRegistry::reload() {
    std::string dir;
    {
        std::shared_lock lock(mutex_);
        dir = dir_;
    }
    if (dir.empty()) {
        throw Error("ModelRegistry: reload() before load_directory()");
    }
    return load_directory(dir);
}

void ModelRegistry::add(std::shared_ptr<const ServableModel> model) {
    if (!model) {
        throw InvalidArgumentError("ModelRegistry: null model");
    }
    // Read the key before the move: in `m[k] = v` the RHS is sequenced
    // first, so `entries_[model->name] = {std::move(model), ...}` would
    // dereference an already-moved-from pointer.
    const std::string name = model->name;
    std::unique_lock lock(mutex_);
    entries_[name] = Entry{std::move(model), std::string()};
}

std::shared_ptr<const ServableModel> ModelRegistry::find(
    const std::string& name) const {
    std::shared_lock lock(mutex_);
    const auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.model;
}

std::vector<std::string> ModelRegistry::names() const {
    std::shared_lock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        out.push_back(name);
    }
    return out;
}

std::size_t ModelRegistry::size() const {
    std::shared_lock lock(mutex_);
    return entries_.size();
}

}  // namespace extradeep::serve
