#include "serve/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <mutex>

#include "common/error.hpp"

namespace extradeep::serve {

namespace {

namespace fs = std::filesystem;

std::vector<std::string> scan_edpm_files(const std::string& dir) {
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        throw Error("ModelRegistry: '" + dir + "' is not a readable directory");
    }
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == kEdpmExtension) {
            paths.push_back(entry.path().string());
        }
    }
    if (ec) {
        throw Error("ModelRegistry: cannot scan '" + dir +
                    "': " + ec.message());
    }
    // directory_iterator order is unspecified; sort for determinism.
    std::sort(paths.begin(), paths.end());
    return paths;
}

}  // namespace

std::size_t ModelRegistry::shard_index(const std::string& name) {
    return std::hash<std::string>{}(name) % kShardCount;
}

RegistryLoadReport ModelRegistry::load_directory(const std::string& dir) {
    RegistryLoadReport report;
    const std::vector<std::string> paths = scan_edpm_files(dir);

    // Parse everything outside all locks; serving continues meanwhile.
    struct Parsed {
        std::string path;
        std::shared_ptr<const ServableModel> model;  // nullptr if quarantined
    };
    std::vector<Parsed> parsed;
    parsed.reserve(paths.size());
    EdpmReadOptions options;
    options.mode = ParseMode::Tolerant;
    for (const auto& path : paths) {
        EdpmReadResult result;
        try {
            result = read_edpm_file(path, options);
        } catch (const Error& e) {
            // Unreadable file (e.g. removed mid-scan): quarantine, never
            // drop the registry.
            report.diagnostics.add(Severity::Error,
                                   path + ": " + e.what());
            ++report.quarantined;
            parsed.push_back({path, nullptr});
            continue;
        }
        for (const auto& d : result.diagnostics.entries()) {
            Diagnostic tagged = d;
            tagged.reason = path + ": " + tagged.reason;
            report.diagnostics.add(std::move(tagged));
        }
        if (result.ok()) {
            parsed.push_back(
                {path, std::make_shared<const ServableModel>(
                           std::move(*result.model))});
        } else {
            report.diagnostics.add(Severity::Error,
                                   path + ": quarantined (corrupt model file)");
            ++report.quarantined;
            parsed.push_back({path, nullptr});
        }
    }

    {
        std::lock_guard<std::mutex> lock(dir_mutex_);
        dir_ = dir;
    }
    // Names claimed by files in this scan, first (lexicographic) file wins.
    std::map<std::string, const Parsed*> by_name;
    for (const auto& p : parsed) {
        if (!p.model) {
            continue;
        }
        const auto [it, inserted] = by_name.emplace(p.model->name, &p);
        if (!inserted) {
            report.diagnostics.add(
                Severity::Warning,
                p.path + ": duplicate model name '" + p.model->name +
                    "' (already provided by " + it->second->path +
                    "), file quarantined");
            ++report.quarantined;
        }
    }
    std::vector<std::string> quarantined_paths;
    for (const auto& p : parsed) {
        if (!p.model) {
            quarantined_paths.push_back(p.path);
        }
    }

    // Apply shard by shard, in index order, exclusive lock per shard. Each
    // shard's update is atomic for its names (keep-last-good included); the
    // pass as a whole is eventually consistent across shards, which is the
    // documented reload contract.
    for (std::size_t s = 0; s < kShardCount; ++s) {
        Shard& shard = shards_[s];
        std::unique_lock lock(shard.mutex);
        // Remove file-backed entries under this directory whose file
        // vanished or no longer parses to the same name. Corrupt files keep
        // their old entry.
        for (auto it = shard.entries.begin(); it != shard.entries.end();) {
            const Entry& e = it->second;
            const bool file_backed = !e.path.empty();
            const bool under_dir =
                file_backed &&
                fs::path(e.path).parent_path() == fs::path(dir);
            if (!file_backed || !under_dir) {
                ++it;
                continue;
            }
            const bool still_claimed = by_name.count(it->first) != 0;
            const bool file_quarantined =
                std::find(quarantined_paths.begin(), quarantined_paths.end(),
                          e.path) != quarantined_paths.end();
            if (still_claimed || file_quarantined) {
                ++it;  // replaced below, or kept as the last good version
                continue;
            }
            report.diagnostics.add(Severity::Info,
                                   "removed '" + it->first +
                                       "' (file gone: " + e.path + ")");
            ++report.removed;
            it = shard.entries.erase(it);
        }
        for (const auto& [name, p] : by_name) {
            if (shard_index(name) != s) {
                continue;
            }
            shard.entries[name] = Entry{p->model, p->path};
            ++report.loaded;
        }
    }
    return report;
}

RegistryLoadReport ModelRegistry::reload() {
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(dir_mutex_);
        dir = dir_;
    }
    if (dir.empty()) {
        throw Error("ModelRegistry: reload() before load_directory()");
    }
    return load_directory(dir);
}

void ModelRegistry::add(std::shared_ptr<const ServableModel> model) {
    if (!model) {
        throw InvalidArgumentError("ModelRegistry: null model");
    }
    // Read the key before the move: in `m[k] = v` the RHS is sequenced
    // first, so `entries[model->name] = {std::move(model), ...}` would
    // dereference an already-moved-from pointer.
    const std::string name = model->name;
    Shard& shard = shards_[shard_index(name)];
    std::unique_lock lock(shard.mutex);
    shard.entries[name] = Entry{std::move(model), std::string()};
}

std::shared_ptr<const ServableModel> ModelRegistry::find(
    const std::string& name) const {
    const Shard& shard = shards_[shard_index(name)];
    std::shared_lock lock(shard.mutex);
    const auto it = shard.entries.find(name);
    return it == shard.entries.end() ? nullptr : it->second.model;
}

std::vector<std::string> ModelRegistry::names() const {
    std::vector<std::string> out;
    for (const Shard& shard : shards_) {
        std::shared_lock lock(shard.mutex);
        for (const auto& [name, entry] : shard.entries) {
            out.push_back(name);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t ModelRegistry::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::shared_lock lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

std::array<std::size_t, ModelRegistry::kShardCount> ModelRegistry::shard_sizes()
    const {
    std::array<std::size_t, kShardCount> sizes{};
    for (std::size_t i = 0; i < kShardCount; ++i) {
        std::shared_lock lock(shards_[i].mutex);
        sizes[i] = shards_[i].entries.size();
    }
    return sizes;
}

}  // namespace extradeep::serve
