#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/serialize.hpp"

namespace extradeep::serve {

/// Outcome of one registry load/reload pass.
struct RegistryLoadReport {
    int loaded = 0;       ///< files parsed into (new or replaced) entries
    int quarantined = 0;  ///< corrupt files rejected (registry unchanged)
    int removed = 0;      ///< entries dropped because their file disappeared
    DiagnosticLog diagnostics;
};

/// Thread-safe in-memory store of servable models, keyed by model name.
///
/// Concurrency contract:
///  - Readers (find/names/size/snapshot) take a shared lock and return
///    shared_ptr<const ServableModel> values; a model handed out stays valid
///    for as long as the caller holds the pointer, even across a reload that
///    replaces or removes the entry. Loaded models are immutable.
///  - load_directory/reload take the exclusive lock only for the final map
///    swap; parsing happens outside the lock, so serving is never blocked on
///    disk I/O.
///  - Corrupt files are quarantined, never dropped silently: the load report
///    carries their diagnostics, and a corrupt *re*load of an existing entry
///    keeps the previous good model (a bad deploy cannot take down serving).
class ModelRegistry {
public:
    ModelRegistry() = default;

    /// Scans `dir` for *.edpm files (lexicographic order, tolerant parse)
    /// and merges them into the registry. Files whose tolerant load is not
    /// ok() are quarantined. Two files claiming the same model name: the
    /// lexicographically first wins, the other is quarantined with a
    /// warning. Remembers `dir` for reload(). Throws Error if the directory
    /// cannot be read.
    RegistryLoadReport load_directory(const std::string& dir);

    /// Re-scans the directory of the last load_directory call: new files are
    /// added, changed files replace their entry, corrupt files keep the
    /// previous entry (quarantined), and entries whose file disappeared are
    /// removed. Programmatic entries (add()) are never touched. Throws Error
    /// if load_directory has not been called or the directory is unreadable.
    RegistryLoadReport reload();

    /// Inserts a model programmatically (no backing file). Replaces any
    /// existing entry with the same name.
    void add(std::shared_ptr<const ServableModel> model);

    /// Looks a model up by name; nullptr if absent.
    std::shared_ptr<const ServableModel> find(const std::string& name) const;

    /// All model names, sorted.
    std::vector<std::string> names() const;

    std::size_t size() const;

private:
    struct Entry {
        std::shared_ptr<const ServableModel> model;
        std::string path;  ///< backing file, empty for programmatic entries
    };

    mutable std::shared_mutex mutex_;
    std::map<std::string, Entry> entries_;
    std::string dir_;
};

}  // namespace extradeep::serve
