#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "serve/serialize.hpp"

namespace extradeep::serve {

/// Outcome of one registry load/reload pass.
struct RegistryLoadReport {
    int loaded = 0;       ///< files parsed into (new or replaced) entries
    int quarantined = 0;  ///< corrupt files rejected (registry unchanged)
    int removed = 0;      ///< entries dropped because their file disappeared
    DiagnosticLog diagnostics;
};

/// Thread-safe in-memory store of servable models, keyed by model name and
/// sharded by name hash so concurrent readers of different models never
/// contend on one lock (the serve plane's lookup path).
///
/// Concurrency contract:
///  - The store is split into kShardCount shards (hash(name) % kShardCount),
///    each with its own shared_mutex and name→entry map. Every single-name
///    operation (find/add) touches exactly one shard.
///  - Readers (find/names/size) take shared locks and return
///    shared_ptr<const ServableModel> values; a model handed out stays valid
///    for as long as the caller holds the pointer, even across a reload that
///    replaces or removes the entry. Loaded models are immutable.
///  - load_directory/reload take exclusive locks only for the final
///    per-shard swaps; parsing happens outside all locks, so serving is
///    never blocked on disk I/O. Shards are updated one at a time in index
///    order: each shard atomically keeps hot-reload and keep-last-good
///    semantics for its names, while a reader racing the reload may observe
///    some shards pre- and some post-reload (each individually consistent).
///  - Corrupt files are quarantined, never dropped silently: the load report
///    carries their diagnostics, and a corrupt *re*load of an existing entry
///    keeps the previous good model (a bad deploy cannot take down serving).
class ModelRegistry {
public:
    static constexpr std::size_t kShardCount = 16;

    ModelRegistry() = default;

    /// Scans `dir` for *.edpm files (lexicographic order, tolerant parse)
    /// and merges them into the registry. Files whose tolerant load is not
    /// ok() are quarantined. Two files claiming the same model name: the
    /// lexicographically first wins, the other is quarantined with a
    /// warning. Remembers `dir` for reload(). Throws Error if the directory
    /// cannot be read.
    RegistryLoadReport load_directory(const std::string& dir);

    /// Re-scans the directory of the last load_directory call: new files are
    /// added, changed files replace their entry, corrupt files keep the
    /// previous entry (quarantined), and entries whose file disappeared are
    /// removed. Programmatic entries (add()) are never touched. Throws Error
    /// if load_directory has not been called or the directory is unreadable.
    RegistryLoadReport reload();

    /// Inserts a model programmatically (no backing file). Replaces any
    /// existing entry with the same name.
    void add(std::shared_ptr<const ServableModel> model);

    /// Looks a model up by name; nullptr if absent. Locks only the name's
    /// shard, shared.
    std::shared_ptr<const ServableModel> find(const std::string& name) const;

    /// All model names, sorted (merged across shards).
    std::vector<std::string> names() const;

    std::size_t size() const;

    /// Entry count of every shard, in shard-index order. The serve metrics
    /// exposition publishes these as per-shard gauges so a skewed name hash
    /// (all hot models contending on one shard lock) is visible at runtime.
    std::array<std::size_t, kShardCount> shard_sizes() const;

private:
    struct Entry {
        std::shared_ptr<const ServableModel> model;
        std::string path;  ///< backing file, empty for programmatic entries
    };

    struct Shard {
        mutable std::shared_mutex mutex;
        std::map<std::string, Entry> entries;
    };

    static std::size_t shard_index(const std::string& name);

    std::array<Shard, kShardCount> shards_;
    mutable std::mutex dir_mutex_;  ///< guards dir_ only
    std::string dir_;
};

}  // namespace extradeep::serve
