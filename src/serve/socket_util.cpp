#include "serve/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace extradeep::serve {

void FdGuard::reset(int fd) {
    if (fd_ >= 0) {
        // Retrying close on EINTR is wrong on Linux (the fd is released
        // even when interrupted); one call is the correct idiom.
        ::close(fd_);
    }
    fd_ = fd;
}

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_cloexec(int fd) {
    const int flags = ::fcntl(fd, F_GETFD, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

void set_recv_timeout(int fd, int timeout_ms) {
    if (timeout_ms <= 0) {
        return;
    }
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<decltype(tv.tv_usec)>((timeout_ms % 1000) * 1000);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
        throw Error(std::string("serve: setsockopt(SO_RCVTIMEO) failed: ") +
                    std::strerror(errno));
    }
}

bool send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
            continue;  // interrupted or briefly full: not EOF, try again
        }
        if (n <= 0) {
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool LineReader::next_line(std::string& line) {
    const auto pop_line = [&line](std::string text) {
        line = std::move(text);
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
    };
    while (true) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            if (nl > max_line_) {
                status_ = ReadStatus::TooLong;
                return false;
            }
            pop_line(buffer_.substr(0, nl));
            buffer_.erase(0, nl + 1);
            status_ = ReadStatus::Line;
            return true;
        }
        if (buffer_.size() > max_line_) {
            status_ = ReadStatus::TooLong;
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;  // interrupted, not EOF: retry
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            status_ = ReadStatus::Timeout;  // SO_RCVTIMEO expired
            return false;
        }
        if (n == 0 && !buffer_.empty()) {
            // EOF: a trailing unterminated line is still served, so a
            // client may just write requests and shut down the socket.
            pop_line(std::move(buffer_));
            buffer_.clear();
            status_ = ReadStatus::Line;
            return true;
        }
        status_ = n == 0 ? ReadStatus::Eof : ReadStatus::Error;
        return false;
    }
}

int connect_to(const std::string& host, int port, int timeout_ms) {
    FdGuard fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (fd.get() < 0) {
        throw Error("serve client: socket() failed");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw Error("serve client: bad host address '" + host + "'");
    }
    set_recv_timeout(fd.get(), timeout_ms);
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINTR) {
            throw Error("serve client: cannot connect to " + host + ":" +
                        std::to_string(port) + ": " + std::strerror(errno));
        }
        // An interrupted connect keeps going in the kernel; wait for the
        // socket to become writable and read the final status.
        pollfd pfd{};
        pfd.fd = fd.get();
        pfd.events = POLLOUT;
        int ready;
        do {
            ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
        } while (ready < 0 && errno == EINTR);
        int err = 0;
        socklen_t len = sizeof(err);
        if (ready <= 0 ||
            ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            throw Error("serve client: cannot connect to " + host + ":" +
                        std::to_string(port) + ": " +
                        (ready <= 0 ? "connect timed out"
                                    : std::strerror(err)));
        }
    }
    return fd.release();
}

}  // namespace extradeep::serve
