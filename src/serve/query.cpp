#include "serve/query.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "advisor/scenario.hpp"
#include "advisor/whatif.hpp"
#include "analysis/config_search.hpp"
#include "analysis/cost.hpp"
#include "analysis/speedup.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/trace.hpp"

namespace extradeep::serve {

namespace {

std::vector<std::string> split_spaces(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ') {
            ++pos;
        }
        const std::size_t start = pos;
        while (pos < line.size() && line[pos] != ' ') {
            ++pos;
        }
        if (pos > start) {
            out.push_back(line.substr(start, pos - start));
        }
    }
    return out;
}

/// Protocol argument: a finite double. Throws InvalidArgumentError with the
/// offending token so the caller's catch turns it into an `err` line.
double arg_double(const std::string& token, const char* what) {
    double v = 0.0;
    if (!fmt::parse_double(token, v) || std::isnan(v)) {
        throw InvalidArgumentError(std::string("bad ") + what + " '" + token +
                                   "'");
    }
    return v;
}

double arg_positive(const std::string& token, const char* what) {
    const double v = arg_double(token, what);
    if (!std::isfinite(v) || v <= 0.0) {
        throw InvalidArgumentError(std::string(what) + " must be positive");
    }
    return v;
}

/// Limits accept "inf" (no limit); otherwise must be positive.
double arg_limit(const std::string& token, const char* what) {
    const double v = arg_double(token, what);
    if (std::isinf(v) && v > 0.0) {
        return v;
    }
    if (v <= 0.0) {
        throw InvalidArgumentError(std::string(what) +
                                   " must be positive or 'inf'");
    }
    return v;
}

std::shared_ptr<const ServableModel> require_model(
    const ModelRegistry& registry, const std::string& name) {
    auto model = registry.find(name);
    if (!model) {
        throw InvalidArgumentError("unknown model '" + name + "'");
    }
    return model;
}

/// Predicted per-epoch runtimes at the given rank counts.
std::vector<double> predicted_runtimes(const ServableModel& model,
                                       const std::vector<double>& xs) {
    std::vector<double> out;
    out.reserve(xs.size());
    for (const double x : xs) {
        out.push_back(model.epoch_time.evaluate(x));
    }
    return out;
}

std::string do_predict(const ServableModel& model,
                       const std::vector<std::string>& args) {
    if (args.size() < 1 || args.size() > 3) {
        throw InvalidArgumentError(
            "usage: predict <model> <x> [epoch|computation|communication|"
            "memory] [confidence]");
    }
    const double x = arg_positive(args[0], "rank count");
    const EpochModel* target = &model.epoch_time;
    std::size_t next = 1;
    if (args.size() > next) {
        const std::string& which = args[next];
        if (which == "epoch") {
            ++next;
        } else if (which == "computation") {
            target = &model.phase_time[0];
            ++next;
        } else if (which == "communication") {
            target = &model.phase_time[1];
            ++next;
        } else if (which == "memory") {
            target = &model.phase_time[2];
            ++next;
        }
    }
    double confidence = 0.95;
    if (args.size() > next) {
        confidence = arg_double(args[next], "confidence");
        if (confidence <= 0.0 || confidence >= 1.0) {
            throw InvalidArgumentError("confidence must be in (0, 1)");
        }
        ++next;
    }
    if (next != args.size()) {
        throw InvalidArgumentError("unexpected argument '" + args[next] + "'");
    }
    const modeling::PredictionInterval pi =
        target->predict_interval(x, confidence);
    std::ostringstream os;
    os << "ok t=" << fmt::shortest(pi.prediction)
       << " lo=" << fmt::shortest(pi.lower)
       << " hi=" << fmt::shortest(pi.upper);
    return os.str();
}

std::string do_speedup(const ServableModel& model,
                       const std::vector<std::string>& args, bool efficiency) {
    if (args.size() < 2) {
        throw InvalidArgumentError(std::string("usage: ") +
                                   (efficiency ? "efficiency" : "speedup") +
                                   " <model> <x1> <x2> [<x> ...]");
    }
    std::vector<double> xs;
    xs.reserve(args.size());
    for (const auto& a : args) {
        xs.push_back(arg_positive(a, "rank count"));
    }
    const std::vector<double> runtimes = predicted_runtimes(model, xs);
    const std::vector<double> values =
        efficiency ? analysis::efficiencies(xs, runtimes)
                   : analysis::speedups(runtimes);
    std::ostringstream os;
    os << "ok";
    for (const double v : values) {
        os << ' ' << fmt::shortest(v);
    }
    return os.str();
}

std::string do_cost(const ServableModel& model,
                    const std::vector<std::string>& args) {
    if (args.size() < 1 || args.size() > 2) {
        throw InvalidArgumentError("usage: cost <model> <x> [cores_per_rank]");
    }
    const double x = arg_positive(args[0], "rank count");
    double rho = static_cast<double>(model.cores_per_rank);
    if (args.size() == 2) {
        rho = arg_positive(args[1], "cores_per_rank");
    }
    const double runtime = model.epoch_time.evaluate(x);
    const double cost = analysis::training_cost_core_hours(runtime, x, rho);
    std::ostringstream os;
    os << "ok cost=" << fmt::shortest(cost)
       << " time=" << fmt::shortest(runtime) << " rho=" << fmt::shortest(rho);
    return os.str();
}

std::string do_search(const ServableModel& model,
                      const std::vector<std::string>& args) {
    if (args.size() < 3) {
        throw InvalidArgumentError(
            "usage: search <model> <max_time_s> <max_cost> <x1> [<x> ...]");
    }
    analysis::ConfigSearchLimits limits;
    limits.max_time_s = arg_limit(args[0], "max_time_s");
    limits.max_cost = arg_limit(args[1], "max_cost");
    std::vector<double> candidates;
    for (std::size_t i = 2; i < args.size(); ++i) {
        candidates.push_back(arg_positive(args[i], "candidate rank count"));
    }
    const analysis::ConfigSearchResult result =
        analysis::find_cost_effective_config(
            [&model](double ranks) {
                return model.epoch_time.evaluate(ranks);
            },
            candidates,
            analysis::core_hours_cost(
                static_cast<double>(model.cores_per_rank)),
            limits, model.scaling);
    std::size_t feasible = 0;
    for (const auto& c : result.candidates) {
        if (c.feasible()) {
            ++feasible;
        }
    }
    std::ostringstream os;
    if (result.best.has_value()) {
        const analysis::ConfigCandidate& best =
            result.candidates[*result.best];
        os << "ok best=" << fmt::shortest(best.ranks)
           << " time=" << fmt::shortest(best.time_s)
           << " cost=" << fmt::shortest(best.cost)
           << " eff=" << fmt::shortest(best.efficiency_pct);
    } else {
        os << "ok best=none";
    }
    os << " feasible=" << feasible << " n=" << result.candidates.size();
    return os.str();
}

/// The advisor consumes the servable model's fields directly — the ModelSet
/// mirror keeps the advisor library independent of the serve layer.
advisor::ModelSet model_set_of(const ServableModel& model) {
    advisor::ModelSet ms;
    ms.dataset = model.dataset;
    ms.system_name = model.system_name;
    ms.strategy = model.strategy;
    ms.scaling = model.scaling;
    ms.batch_per_worker = model.batch_per_worker;
    ms.model_parallel_degree = model.model_parallel_degree;
    ms.epoch_time = model.epoch_time;
    ms.phase_time = model.phase_time;
    ms.step_math = model.step_math;
    return ms;
}

std::string do_whatif(const ServableModel& model,
                      const std::vector<std::string>& args) {
    if (args.size() != 2) {
        throw InvalidArgumentError(
            "usage: whatif <model> <x> <transform>[+<transform>]...");
    }
    const double x = arg_positive(args[0], "rank count");
    const advisor::Scenario sc = advisor::parse_scenario(args[1]);
    const advisor::WhatIfResult r =
        advisor::evaluate_whatif(model_set_of(model), x, sc);
    std::ostringstream os;
    os << "ok base=" << fmt::shortest(r.baseline)
       << " time=" << fmt::shortest(r.scenario_time)
       << " saving=" << fmt::shortest(r.saving)
       << " lo=" << fmt::shortest(r.lower) << " hi=" << fmt::shortest(r.upper);
    return os.str();
}

std::string do_advise(const ServableModel& model,
                      const std::vector<std::string>& args) {
    if (args.size() < 1 || args.size() > 2) {
        throw InvalidArgumentError("usage: advise <model> <x> [top]");
    }
    const double x = arg_positive(args[0], "rank count");
    std::size_t top = 0;
    if (args.size() == 2) {
        const double t = arg_positive(args[1], "top");
        if (t != std::floor(t) || t > 64.0) {
            throw InvalidArgumentError("top must be an integer in [1, 64]");
        }
        top = static_cast<std::size_t>(t);
    }
    const advisor::Advice advice =
        advisor::advise(model_set_of(model), x, top);
    std::ostringstream os;
    os << "ok n=" << advice.ranked.size() << " skipped=" << advice.skipped;
    for (std::size_t i = 0; i < advice.ranked.size(); ++i) {
        const advisor::WhatIfResult& r = advice.ranked[i];
        const std::size_t rank = i + 1;
        os << " s" << rank << '=' << r.spec << " v" << rank << '='
           << fmt::shortest(r.saving) << " lo" << rank << '='
           << fmt::shortest(r.lower) << " hi" << rank << '='
           << fmt::shortest(r.upper);
    }
    return os.str();
}

/// Acquisition view of the adaptive planner (src/planner): score each
/// candidate rank count by the served model's relative prediction-interval
/// half-width and recommend profiling the least certain one next. Ties
/// break toward the earliest candidate, mirroring run_plan's argmax.
std::string do_plan(const ServableModel& model,
                    const std::vector<std::string>& args) {
    if (args.empty()) {
        throw InvalidArgumentError("usage: plan <model> <x1> [<x> ...]");
    }
    std::vector<double> xs;
    xs.reserve(args.size());
    for (const auto& a : args) {
        xs.push_back(arg_positive(a, "candidate rank count"));
    }
    std::size_t next = 0;
    double best = -1.0;
    std::vector<double> widths;
    widths.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double half = model.epoch_time.interval_half_width(xs[i]);
        const double scale =
            std::max(std::abs(model.epoch_time.evaluate(xs[i])), 1e-12);
        const double rel = half / scale;
        widths.push_back(rel);
        if (rel > best) {
            best = rel;
            next = i;
        }
    }
    std::ostringstream os;
    os << "ok next=" << fmt::shortest(xs[next])
       << " rw=" << fmt::shortest(widths[next]) << " n=" << xs.size();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        os << ' ' << fmt::shortest(xs[i]) << '=' << fmt::shortest(widths[i]);
    }
    return os.str();
}

}  // namespace

std::string_view query_kind_name(QueryKind kind) {
    switch (kind) {
        case QueryKind::Predict: return "predict";
        case QueryKind::Speedup: return "speedup";
        case QueryKind::Efficiency: return "efficiency";
        case QueryKind::Cost: return "cost";
        case QueryKind::Search: return "search";
        case QueryKind::Whatif: return "whatif";
        case QueryKind::Advise: return "advise";
        case QueryKind::List: return "list";
        case QueryKind::Stats: return "stats";
        case QueryKind::Metrics: return "metrics";
        case QueryKind::Ping: return "ping";
        case QueryKind::Reload: return "reload";
        case QueryKind::Ingest: return "ingest";
        case QueryKind::FleetStats: return "fleet_stats";
        case QueryKind::Plan: return "plan";
        case QueryKind::Other: return "other";
    }
    throw InvalidArgumentError("query_kind_name: unknown kind");
}

std::string escape_lines(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

std::string unescape_lines(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\\' && i + 1 < text.size()) {
            const char next = text[++i];
            out += next == 'n' ? '\n' : next;
        } else {
            out += text[i];
        }
    }
    return out;
}

QueryEngine::QueryEngine(std::shared_ptr<ModelRegistry> registry,
                         const obs::Clock* clock)
    : registry_(std::move(registry)),
      clock_(clock != nullptr ? clock : &obs::steady_clock_instance()) {
    if (!registry_) {
        throw InvalidArgumentError("QueryEngine: null registry");
    }
    // Register all instruments up front, in enum order, so the exposition
    // layout is fixed and identical across engines.
    for (int k = 0; k < kQueryKindCount; ++k) {
        const std::string kind(query_kind_name(static_cast<QueryKind>(k)));
        const auto i = static_cast<std::size_t>(k);
        request_counters_[i] = &metrics_.counter(
            "extradeep_serve_requests_total", "kind", kind);
        error_counters_[i] =
            &metrics_.counter("extradeep_serve_errors_total", "kind", kind);
        latency_histograms_[i] = &metrics_.histogram(
            "extradeep_serve_query_latency_us",
            obs::MetricsRegistry::default_latency_buckets_us(), "kind", kind);
    }
    // Per-shard registry entry counts, refreshed by the `metrics` verb so
    // fleet hot-swap growth and hash skew are visible in the exposition.
    for (std::size_t s = 0; s < ModelRegistry::kShardCount; ++s) {
        std::string label = std::to_string(s);
        if (label.size() < 2) {
            label.insert(label.begin(), '0');
        }
        shard_gauges_[s] = &metrics_.gauge(
            "extradeep_serve_registry_shard_entries", "shard", label);
    }
}

void QueryEngine::set_fleet_handler(std::shared_ptr<FleetHandler> handler) {
    if (!handler) {
        throw InvalidArgumentError("set_fleet_handler: null handler");
    }
    if (fleet_) {
        throw InvalidArgumentError(
            "set_fleet_handler: a fleet handler is already attached");
    }
    fleet_ = std::move(handler);
    fleet_->attach_metrics(metrics_);
}

std::string QueryEngine::dispatch(const std::string& request,
                                  QueryKind& kind) {
    // `ingest` is routed before tokenisation: its payload is the rest of
    // the line verbatim (escaped EDP bytes legitimately contain spaces and
    // tabs, which the space-splitting grammar would mangle).
    if (request == "ingest" || request.rfind("ingest ", 0) == 0) {
        kind = QueryKind::Ingest;
        const std::size_t name_start = request.find_first_not_of(' ', 6);
        const std::size_t name_end = name_start == std::string::npos
                                         ? std::string::npos
                                         : request.find(' ', name_start);
        if (name_start == std::string::npos || name_end == std::string::npos ||
            request.find_first_not_of(' ', name_end) == std::string::npos) {
            throw InvalidArgumentError(
                "usage: ingest <experiment> <escaped-edp-payload>");
        }
        if (!fleet_) {
            throw InvalidArgumentError("fleet mode disabled");
        }
        const std::string experiment =
            request.substr(name_start, name_end - name_start);
        // The payload starts after exactly one separating space; any
        // further leading spaces belong to the payload bytes.
        return "ok " + fleet_->handle_ingest(experiment,
                                             request.substr(name_end + 1));
    }
    const std::vector<std::string> tokens = split_spaces(request);
    if (tokens.empty()) {
        kind = QueryKind::Other;
        throw InvalidArgumentError("empty request");
    }
    const std::string& cmd = tokens[0];
    const std::vector<std::string> args(tokens.begin() + 1, tokens.end());

    if (cmd == "ping") {
        kind = QueryKind::Ping;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: ping");
        }
        return "ok pong";
    }
    if (cmd == "list") {
        kind = QueryKind::List;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: list");
        }
        const std::vector<std::string> names = registry_->names();
        std::ostringstream os;
        os << "ok " << names.size();
        for (const auto& n : names) {
            os << ' ' << n;
        }
        return os.str();
    }
    if (cmd == "stats") {
        kind = QueryKind::Stats;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: stats");
        }
        const auto snapshot = counters();
        std::ostringstream os;
        os << "ok";
        for (int k = 0; k < kQueryKindCount; ++k) {
            const auto i = static_cast<std::size_t>(k);
            const QueryCounters& c = snapshot[i];
            // p50/p95 are histogram-estimated (bucket upper edges, in us);
            // the four leading fields keep their pre-observability layout.
            os << ' ' << query_kind_name(static_cast<QueryKind>(k)) << '='
               << c.requests << ':' << c.errors << ':' << c.total_latency_us
               << ':' << c.max_latency_us << ':'
               << fmt::shortest(latency_histograms_[i]->quantile(0.50)) << ':'
               << fmt::shortest(latency_histograms_[i]->quantile(0.95));
        }
        return os.str();
    }
    if (cmd == "metrics") {
        kind = QueryKind::Metrics;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: metrics");
        }
        const auto shard_sizes = registry_->shard_sizes();
        for (std::size_t s = 0; s < ModelRegistry::kShardCount; ++s) {
            shard_gauges_[s]->set(static_cast<double>(shard_sizes[s]));
        }
        if (fleet_) {
            fleet_->update_metrics();
        }
        return "ok " + escape_lines(metrics_.exposition());
    }
    if (cmd == "fleet-stats") {
        kind = QueryKind::FleetStats;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: fleet-stats");
        }
        if (!fleet_) {
            throw InvalidArgumentError("fleet mode disabled");
        }
        return "ok " + fleet_->fleet_stats_line();
    }
    if (cmd == "reload") {
        kind = QueryKind::Reload;
        if (!args.empty()) {
            throw InvalidArgumentError("usage: reload");
        }
        const RegistryLoadReport report = registry_->reload();
        std::ostringstream os;
        os << "ok loaded=" << report.loaded
           << " quarantined=" << report.quarantined
           << " removed=" << report.removed;
        return os.str();
    }
    if (cmd == "predict" || cmd == "speedup" || cmd == "efficiency" ||
        cmd == "cost" || cmd == "search" || cmd == "whatif" ||
        cmd == "advise" || cmd == "plan") {
        // Attribute the request to its kind before anything can throw, so
        // errors (unknown model, bad arguments) are counted under the right
        // bucket rather than under `other`.
        kind = cmd == "predict"      ? QueryKind::Predict
               : cmd == "speedup"    ? QueryKind::Speedup
               : cmd == "efficiency" ? QueryKind::Efficiency
               : cmd == "cost"       ? QueryKind::Cost
               : cmd == "whatif"     ? QueryKind::Whatif
               : cmd == "advise"     ? QueryKind::Advise
               : cmd == "plan"       ? QueryKind::Plan
                                     : QueryKind::Search;
        if (args.empty()) {
            throw InvalidArgumentError("usage: " + cmd + " <model> ...");
        }
        const auto model = require_model(*registry_, args[0]);
        const std::vector<std::string> rest(args.begin() + 1, args.end());
        switch (kind) {
            case QueryKind::Predict:
                return do_predict(*model, rest);
            case QueryKind::Speedup:
                return do_speedup(*model, rest, /*efficiency=*/false);
            case QueryKind::Efficiency:
                return do_speedup(*model, rest, /*efficiency=*/true);
            case QueryKind::Cost:
                return do_cost(*model, rest);
            case QueryKind::Whatif:
                return do_whatif(*model, rest);
            case QueryKind::Advise:
                return do_advise(*model, rest);
            case QueryKind::Plan:
                return do_plan(*model, rest);
            default:
                return do_search(*model, rest);
        }
    }
    kind = QueryKind::Other;
    throw InvalidArgumentError("unknown command '" + cmd + "'");
}

std::string QueryEngine::execute(const std::string& request) {
    const obs::Span span{"serve.execute"};
    const std::uint64_t start_ns = clock_->now_ns();
    QueryKind kind = QueryKind::Other;
    std::string response;
    bool failed = false;
    try {
        response = dispatch(request, kind);
    } catch (const Error& e) {
        response = std::string("err ") + e.what();
        failed = true;
    } catch (const std::exception& e) {
        response = std::string("err internal: ") + e.what();
        failed = true;
    }
    const std::uint64_t end_ns = clock_->now_ns();
    const std::uint64_t us =
        end_ns >= start_ns ? (end_ns - start_ns) / 1000 : 0;
    const auto i = static_cast<std::size_t>(kind);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        QueryCounters& c = counters_[i];
        ++c.requests;
        if (failed) {
            ++c.errors;
        }
        c.total_latency_us += us;
        c.max_latency_us = std::max(c.max_latency_us, us);
    }
    request_counters_[i]->increment();
    if (failed) {
        error_counters_[i]->increment();
    }
    latency_histograms_[i]->observe(static_cast<double>(us));
    return response;
}

std::array<QueryCounters, kQueryKindCount> QueryEngine::counters() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return counters_;
}

}  // namespace extradeep::serve
