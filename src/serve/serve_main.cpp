// extradeep-serve: model persistence and query serving.
//
// Five modes over the src/serve subsystem:
//
//   fit     — run one experiment and export the fitted models as a .edpm file
//   serve   — load a directory of .edpm files and answer line-protocol
//             queries over TCP (prints `LISTENING <port>` when ready)
//   query   — client mode: send request lines to a running daemon
//   ask     — offline mode: answer request lines directly from a directory,
//             no daemon (byte-identical responses by construction)
//   loadgen — load-generator client: N connections x M pipelined requests
//             (closed- or open-loop) against a daemon, reporting qps and
//             latency quantiles; drives the BENCH_serve.json regression gate
//
// REQUEST lines follow the grammar in serve/query.hpp: predict, speedup,
// efficiency, cost, search, whatif (scenario evaluation), advise (ranked
// what-if portfolio), plan (adaptive-profiling acquisition), list, stats,
// metrics, ping, reload.
//
// Usage:
//   extradeep-serve fit --out model.edpm [--name NAME] [--dataset D]
//                       [--system DEEP|JURECA] [--strategy data|tensor|pipeline]
//                       [--scaling weak|strong] [--batch B] [--mdegree M]
//                       [--ranks 2,4,6,8,10] [--reps N] [--seed N] [--threads N]
//   extradeep-serve serve --models DIR [--port N] [--threads N]
//   extradeep-serve query --port N [--host H] REQUEST...
//   extradeep-serve ask --models DIR REQUEST...
//   extradeep-serve loadgen (--self | --models DIR | --port N) [--host H]
//                       [--connections N] [--requests M] [--pipeline D]
//                       [--mode closed|open|both] [--threads N] [--timeout MS]
//                       [--out FILE] [--thresholds FILE] [REQUEST...]

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/session.hpp"
#include "serve/loadgen.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"
#include "serve/serialize.hpp"
#include "serve/server.hpp"

using namespace extradeep;

namespace {

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s fit --out FILE [--name NAME] [--trace SPEC] "
                 "[fit options]\n"
                 "       %s serve --models DIR [--port N] [--threads N]\n"
                 "                [--trace SPEC] [--fake-clock STEP_US]\n"
                 "       %s query --port N [--host H] REQUEST...\n"
                 "       %s ask --models DIR [--trace SPEC] "
                 "[--fake-clock STEP_US] REQUEST...\n"
                 "       %s loadgen (--self | --models DIR | --port N) "
                 "[--host H]\n"
                 "               [--connections N] [--requests M] "
                 "[--pipeline D]\n"
                 "               [--mode closed|open|both] [--threads N] "
                 "[--timeout MS]\n"
                 "               [--out FILE] [--thresholds FILE] "
                 "[REQUEST...]\n"
                 "REQUEST verbs: predict speedup efficiency cost search "
                 "whatif advise plan\n"
                 "               list stats metrics ping reload shutdown\n"
                 "               ingest fleet-stats (extradeep-fleet serve "
                 "only)\n",
                 argv0, argv0, argv0, argv0, argv0);
}

std::vector<int> parse_rank_list(const std::string& arg) {
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::string token =
            arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        std::size_t used = 0;
        const int v = std::stoi(token, &used);
        if (token.empty() || used != token.size() || v < 1) {
            throw InvalidArgumentError("--ranks: bad rank count '" + token +
                                       "'");
        }
        out.push_back(v);
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

hw::SystemSpec parse_system(const std::string& name) {
    if (name == "DEEP" || name == "deep") {
        return hw::SystemSpec::deep();
    }
    if (name == "JURECA" || name == "jureca") {
        return hw::SystemSpec::jureca();
    }
    throw InvalidArgumentError("--system: unknown system '" + name +
                               "' (expected DEEP or JURECA)");
}

/// Simple flag cursor shared by all modes.
class Args {
public:
    Args(int argc, char** argv, int first) : argc_(argc), argv_(argv),
                                             i_(first) {}
    bool next(std::string& arg) {
        if (i_ >= argc_) {
            return false;
        }
        arg = argv_[i_++];
        return true;
    }
    std::string value(const std::string& flag) {
        if (i_ >= argc_) {
            throw InvalidArgumentError(flag + " requires a value");
        }
        return argv_[i_++];
    }

private:
    int argc_;
    char** argv_;
    int i_;
};

/// Observability session for one CLI mode: --trace SPEC wins over the
/// EXTRADEEP_TRACE environment; `threads` becomes the self-profile x1
/// parameter unless the spec named one explicitly.
std::unique_ptr<obs::ObsSession> make_obs_session(const std::string& spec,
                                                  bool spec_given,
                                                  int threads) {
    obs::ObsConfig config =
        spec_given ? obs::parse_obs_config(spec) : obs::obs_config_from_env();
    const bool default_x1 = config.params.find("x1") == config.params.end();
    auto session = std::make_unique<obs::ObsSession>(std::move(config));
    if (session->config().enabled && default_x1) {
        session->set_param("x1", static_cast<double>(threads));
    }
    return session;
}

int run_fit(Args args) {
    ExperimentSpec spec;
    std::string out_path;
    std::string name = "model";
    std::string trace_spec;
    bool trace_given = false;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--trace") {
            trace_spec = args.value(arg);
            trace_given = true;
        } else if (arg == "--name") {
            name = args.value(arg);
        } else if (arg == "--dataset") {
            spec.dataset = args.value(arg);
        } else if (arg == "--system") {
            spec.system = parse_system(args.value(arg));
        } else if (arg == "--strategy") {
            spec.strategy = parallel::parse_strategy(args.value(arg));
        } else if (arg == "--scaling") {
            spec.scaling = parallel::parse_scaling(args.value(arg));
        } else if (arg == "--batch") {
            spec.batch_per_worker = std::stoll(args.value(arg));
        } else if (arg == "--mdegree") {
            spec.model_parallel_degree = std::stoi(args.value(arg));
        } else if (arg == "--ranks") {
            spec.modeling_ranks = parse_rank_list(args.value(arg));
        } else if (arg == "--reps") {
            spec.repetitions = std::stoi(args.value(arg));
        } else if (arg == "--seed") {
            spec.seed = std::stoull(args.value(arg));
        } else if (arg == "--threads") {
            spec.fit_threads = std::stoi(args.value(arg));
        } else {
            throw InvalidArgumentError("fit: unknown option '" + arg + "'");
        }
    }
    if (out_path.empty()) {
        throw InvalidArgumentError("fit: --out FILE is required");
    }
    const auto session =
        make_obs_session(trace_spec, trace_given, spec.fit_threads);
    const ExperimentRunner runner(spec);
    const ExperimentResult result = runner.run();
    const serve::ServableModel model =
        serve::make_servable(spec, result, name);
    serve::write_edpm_file(out_path, model);
    std::printf("wrote %s (%s)\n", out_path.c_str(),
                model.provenance.c_str());
    return 0;
}

void print_load_report(const serve::RegistryLoadReport& report) {
    std::printf("loaded %d model(s), %d quarantined, %d removed\n",
                report.loaded, report.quarantined, report.removed);
    for (const auto& d : report.diagnostics.entries()) {
        std::fprintf(stderr, "%s: %s\n", severity_name(d.severity).data(),
                     d.reason.c_str());
    }
}

serve::ServeDaemon* g_daemon = nullptr;

void handle_signal(int) {
    if (g_daemon != nullptr) {
        g_daemon->stop();  // shutdown(2) is async-signal-safe
    }
}

int run_serve(Args args) {
    std::string models_dir;
    serve::ServerOptions options;
    std::string trace_spec;
    bool trace_given = false;
    std::int64_t fake_clock_step_us = -1;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--models") {
            models_dir = args.value(arg);
        } else if (arg == "--port") {
            options.port = std::stoi(args.value(arg));
        } else if (arg == "--threads") {
            options.threads = std::stoi(args.value(arg));
        } else if (arg == "--host") {
            options.host = args.value(arg);
        } else if (arg == "--trace") {
            trace_spec = args.value(arg);
            trace_given = true;
        } else if (arg == "--fake-clock") {
            fake_clock_step_us = std::stoll(args.value(arg));
            if (fake_clock_step_us < 0) {
                throw InvalidArgumentError(
                    "serve: --fake-clock STEP_US must be >= 0");
            }
        } else {
            throw InvalidArgumentError("serve: unknown option '" + arg + "'");
        }
    }
    if (models_dir.empty()) {
        throw InvalidArgumentError("serve: --models DIR is required");
    }
    const auto session =
        make_obs_session(trace_spec, trace_given, options.threads);
    // --fake-clock STEP_US swaps the latency clock for a deterministic one
    // advancing STEP_US microseconds per reading, so `stats`/`metrics`
    // responses are byte-stable across runs and across daemon/ask modes.
    std::unique_ptr<obs::FakeClock> fake_clock;
    if (fake_clock_step_us >= 0) {
        fake_clock = std::make_unique<obs::FakeClock>(
            0, static_cast<std::uint64_t>(fake_clock_step_us) * 1000);
    }
    auto registry = std::make_shared<serve::ModelRegistry>();
    print_load_report(registry->load_directory(models_dir));
    auto engine = std::make_shared<serve::QueryEngine>(std::move(registry),
                                                       fake_clock.get());
    serve::ServeDaemon daemon(std::move(engine), options);
    daemon.start();
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("LISTENING %d\n", daemon.port());
    std::fflush(stdout);
    daemon.wait();
    g_daemon = nullptr;
    std::printf("stopped\n");
    return 0;
}

int run_query(Args args) {
    std::string host = "127.0.0.1";
    int port = 0;
    std::vector<std::string> requests;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--host") {
            host = args.value(arg);
        } else if (arg == "--port") {
            port = std::stoi(args.value(arg));
        } else {
            requests.push_back(arg);
        }
    }
    if (port <= 0) {
        throw InvalidArgumentError("query: --port N is required");
    }
    if (requests.empty()) {
        throw InvalidArgumentError("query: no requests given");
    }
    const std::vector<std::string> responses =
        serve::query_daemon(host, port, requests);
    for (const auto& r : responses) {
        std::printf("%s\n", r.c_str());
    }
    return 0;
}

int run_ask(Args args) {
    std::string models_dir;
    std::vector<std::string> requests;
    std::string trace_spec;
    bool trace_given = false;
    std::int64_t fake_clock_step_us = -1;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--models") {
            models_dir = args.value(arg);
        } else if (arg == "--trace") {
            trace_spec = args.value(arg);
            trace_given = true;
        } else if (arg == "--fake-clock") {
            fake_clock_step_us = std::stoll(args.value(arg));
            if (fake_clock_step_us < 0) {
                throw InvalidArgumentError(
                    "ask: --fake-clock STEP_US must be >= 0");
            }
        } else {
            requests.push_back(arg);
        }
    }
    if (models_dir.empty()) {
        throw InvalidArgumentError("ask: --models DIR is required");
    }
    if (requests.empty()) {
        throw InvalidArgumentError("ask: no requests given");
    }
    const auto session = make_obs_session(trace_spec, trace_given, 1);
    std::unique_ptr<obs::FakeClock> fake_clock;
    if (fake_clock_step_us >= 0) {
        fake_clock = std::make_unique<obs::FakeClock>(
            0, static_cast<std::uint64_t>(fake_clock_step_us) * 1000);
    }
    auto registry = std::make_shared<serve::ModelRegistry>();
    const auto report = registry->load_directory(models_dir);
    for (const auto& d : report.diagnostics.entries()) {
        std::fprintf(stderr, "%s: %s\n", severity_name(d.severity).data(),
                     d.reason.c_str());
    }
    serve::QueryEngine engine(std::move(registry), fake_clock.get());
    for (const auto& r : requests) {
        std::printf("%s\n", engine.execute(r).c_str());
    }
    return 0;
}

std::string read_text_file(const std::string& path, const char* what) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error(std::string(what) + ": cannot read '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int run_loadgen(Args args) {
    serve::LoadGenOptions lg;
    bool self = false;
    std::string models_dir;
    int daemon_threads = 0;
    std::string mode_arg = "closed";
    std::string out_path;
    std::string thresholds_path;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--self") {
            self = true;
        } else if (arg == "--models") {
            models_dir = args.value(arg);
        } else if (arg == "--port") {
            lg.port = std::stoi(args.value(arg));
        } else if (arg == "--host") {
            lg.host = args.value(arg);
        } else if (arg == "--connections") {
            lg.connections = std::stoi(args.value(arg));
        } else if (arg == "--requests") {
            lg.requests_per_connection = std::stoi(args.value(arg));
        } else if (arg == "--pipeline") {
            lg.pipeline_depth = std::stoi(args.value(arg));
        } else if (arg == "--mode") {
            mode_arg = args.value(arg);
        } else if (arg == "--threads") {
            daemon_threads = std::stoi(args.value(arg));
        } else if (arg == "--timeout") {
            lg.timeout_ms = std::stoi(args.value(arg));
        } else if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--thresholds") {
            thresholds_path = args.value(arg);
        } else {
            lg.requests.push_back(arg);
        }
    }
    std::vector<serve::LoadMode> modes;
    if (mode_arg == "closed") {
        modes = {serve::LoadMode::Closed};
    } else if (mode_arg == "open") {
        modes = {serve::LoadMode::Open};
    } else if (mode_arg == "both") {
        modes = {serve::LoadMode::Closed, serve::LoadMode::Open};
    } else {
        throw InvalidArgumentError(
            "loadgen: --mode must be closed, open or both");
    }
    const bool in_process = self || !models_dir.empty();
    if (in_process == (lg.port > 0)) {
        throw InvalidArgumentError(
            "loadgen: exactly one of --self, --models DIR or --port N is "
            "required");
    }
    if (lg.requests.empty()) {
        if (!self) {
            throw InvalidArgumentError(
                "loadgen: REQUEST lines are required unless --self supplies "
                "the default mix");
        }
        // Default --self mix: one request of each hot query kind against the
        // in-process model, mirroring the BM_ServeQuery microbenchmark.
        lg.requests = {
            "predict loadgen 16",
            "speedup loadgen 2 4 8 16 32",
            "efficiency loadgen 2 4 8 16 32",
            "cost loadgen 16",
            "search loadgen inf inf 2 4 8 16 32",
        };
    }

    // In-process target: build a registry (fitted here for --self, loaded
    // from disk for --models) and run a daemon on an ephemeral port so the
    // measurement includes the real socket/event-loop path.
    std::unique_ptr<serve::ServeDaemon> daemon;
    if (in_process) {
        auto registry = std::make_shared<serve::ModelRegistry>();
        if (self) {
            ExperimentSpec spec;
            spec.repetitions = 2;
            registry->add(std::make_shared<const serve::ServableModel>(
                serve::make_servable(spec, ExperimentRunner(spec).run(),
                                     "loadgen")));
        } else {
            print_load_report(registry->load_directory(models_dir));
        }
        serve::ServerOptions options;
        options.port = 0;
        options.threads = daemon_threads;
        auto engine = std::make_shared<serve::QueryEngine>(registry);
        daemon = std::make_unique<serve::ServeDaemon>(std::move(engine),
                                                      options);
        daemon->start();
        lg.host = "127.0.0.1";
        lg.port = daemon->port();
    }

    std::vector<serve::LoadGenRecord> records;
    for (const serve::LoadMode mode : modes) {
        lg.mode = mode;
        serve::LoadGenRecord record;
        record.mode = serve::load_mode_name(mode);
        record.result = serve::run_load(lg);
        std::printf(
            "%-6s %llu/%llu ok (%llu err) qps %.0f p50 %.0fus p95 %.0fus "
            "p99 %.0fus max %.0fus\n",
            record.mode.c_str(),
            static_cast<unsigned long long>(record.result.responses_received),
            static_cast<unsigned long long>(record.result.requests_sent),
            static_cast<unsigned long long>(record.result.error_responses),
            record.result.qps, record.result.latency_p50_us,
            record.result.latency_p95_us, record.result.latency_p99_us,
            record.result.latency_max_us);
        records.push_back(std::move(record));
    }

    if (daemon) {
        daemon->stop();
        daemon->wait();
    }

    if (!out_path.empty()) {
        const std::string report =
            serve::load_report_json(lg, daemon_threads, records);
        std::ofstream out(out_path, std::ios::binary);
        if (!out || !(out << report)) {
            throw Error("loadgen: cannot write '" + out_path + "'");
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!thresholds_path.empty()) {
        const std::vector<std::string> violations =
            serve::check_load_thresholds(
                read_text_file(thresholds_path, "loadgen"), records);
        if (!violations.empty()) {
            for (const auto& v : violations) {
                std::fprintf(stderr, "threshold violation: %s\n", v.c_str());
            }
            return 1;
        }
        std::printf("thresholds ok (%s)\n", thresholds_path.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string mode = argv[1];
    try {
        Args args(argc, argv, 2);
        if (mode == "fit") {
            return run_fit(args);
        }
        if (mode == "serve") {
            return run_serve(args);
        }
        if (mode == "query") {
            return run_query(args);
        }
        if (mode == "ask") {
            return run_ask(args);
        }
        if (mode == "loadgen") {
            return run_loadgen(args);
        }
        if (mode == "-h" || mode == "--help") {
            usage(argv[0]);
            return 0;
        }
        std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
        usage(argv[0]);
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
