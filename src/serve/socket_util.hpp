#pragma once

#include <cstddef>
#include <string>

namespace extradeep::serve {

/// POSIX socket plumbing shared by the serve daemon (server.cpp), the
/// blocking protocol client (query_daemon) and the load generator
/// (loadgen.cpp). Everything here is EINTR-correct: an interrupted syscall
/// is retried, never mistaken for EOF or a fatal error, and a receive
/// timeout (EAGAIN/EWOULDBLOCK on a socket with SO_RCVTIMEO) is reported
/// distinctly from a real error.

/// RAII owner of a file descriptor; closes on destruction unless released.
/// Exists so no constructor/start path can leak an fd when a later step
/// throws (bind, listen, std::thread construction, ...).
class FdGuard {
public:
    FdGuard() = default;
    explicit FdGuard(int fd) : fd_(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(const FdGuard&) = delete;
    FdGuard& operator=(const FdGuard&) = delete;
    FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
    FdGuard& operator=(FdGuard&& other) noexcept {
        if (this != &other) {
            reset(other.release());
        }
        return *this;
    }

    int get() const { return fd_; }

    /// Gives up ownership without closing.
    int release() {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset(int fd = -1);

private:
    int fd_ = -1;
};

/// O_NONBLOCK / FD_CLOEXEC via fcntl, for fds not created with the
/// SOCK_NONBLOCK / SOCK_CLOEXEC creation flags. Return false on failure.
bool set_nonblocking(int fd);
bool set_cloexec(int fd);

/// Applies SO_RCVTIMEO (no-op for timeout_ms <= 0). Throws Error if
/// setsockopt fails: a silently missing timeout would let a dead peer hang
/// the caller forever, which is exactly the failure the timeout exists to
/// prevent.
void set_recv_timeout(int fd, int timeout_ms);

/// Sends the whole buffer (MSG_NOSIGNAL), retrying interrupted and
/// would-block sends on a blocking socket. Returns false on a real error or
/// a closed peer.
bool send_all(int fd, const std::string& data);

/// Why LineReader::next_line returned false (or Line when it returned a
/// line).
enum class ReadStatus {
    Line,     ///< a line was produced
    Eof,      ///< orderly end of stream, no buffered partial line
    Timeout,  ///< SO_RCVTIMEO expired (EAGAIN/EWOULDBLOCK)
    TooLong,  ///< a line exceeded the reader's cap
    Error,    ///< a real socket error
};

/// Buffered line reader over a *blocking* socket (the client side; the
/// daemon's event loop does its own non-blocking buffering). Strips a
/// trailing '\r' per line, serves a trailing unterminated line at EOF, and
/// distinguishes timeout from EOF from error via status(). Lines longer
/// than `max_line` fail with TooLong.
class LineReader {
public:
    explicit LineReader(int fd, std::size_t max_line)
        : fd_(fd), max_line_(max_line) {}

    bool next_line(std::string& line);

    ReadStatus status() const { return status_; }

private:
    int fd_;
    std::size_t max_line_;
    std::string buffer_;
    ReadStatus status_ = ReadStatus::Line;
};

/// Blocking IPv4 connect with SO_RCVTIMEO applied and CLOEXEC set. An
/// interrupted connect() is completed via poll + SO_ERROR (the kernel keeps
/// connecting after EINTR; calling connect() again would fail with
/// EALREADY). Throws Error with the failure reason.
int connect_to(const std::string& host, int port, int timeout_ms);

}  // namespace extradeep::serve
