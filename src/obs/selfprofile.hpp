#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "profiling/profiler.hpp"

namespace extradeep::obs {

/// Self-profiling dogfood (ISSUE 5): converts spans collected from the
/// Extra-Deep pipeline itself into a synthetic ProfiledRun / .edp file, so
/// the toolchain can ingest its *own* execution profile and fit PMNF models
/// of its pipeline stages against e.g. thread count or input size.
///
/// Layout of the synthetic run (rank 0 only):
///  - epoch 0 is a vanishingly small warmup (one train step, one event);
///    AggregationOptions discards it by default (discard_warmup_epochs = 1),
///    mirroring how real profiles treat their warmup epoch,
///  - epoch 1 holds one train step spanning every span, each exported as an
///    NVTX-function TraceEvent named after the span, with times shifted so
///    the earliest span starts at the step boundary.

struct SelfProfileOptions {
    /// Execution parameters naming the measurement point, e.g.
    /// {"x1": threads}. Must be non-empty (the modeling layers need at
    /// least one parameter).
    std::map<std::string, double> params;
    int repetition = 0;
};

/// Builds the synthetic run. Throws InvalidArgumentError if `spans` is
/// empty or options.params is empty.
profiling::ProfiledRun spans_to_run(const std::vector<SpanRecord>& spans,
                                    const SelfProfileOptions& options);

/// Convenience: spans_to_run + write_edp_file. The result round-trips
/// through profiling::read_edp and the ingestion layer unchanged.
void write_selfprofile_edp(const std::string& path,
                           const std::vector<SpanRecord>& spans,
                           const SelfProfileOptions& options);

}  // namespace extradeep::obs
