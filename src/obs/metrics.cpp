#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/format.hpp"

namespace extradeep::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::observe(double value) {
    // First bucket whose upper edge admits the value; everything above the
    // last finite edge lands in the +Inf bucket (index bounds_.size()).
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

double Histogram::quantile(double q) const {
    const std::uint64_t total = count();
    if (total == 0) {
        return 0.0;
    }
    const double rank_exact = q * static_cast<double>(total);
    std::uint64_t rank = static_cast<std::uint64_t>(rank_exact);
    if (static_cast<double>(rank) < rank_exact) {
        ++rank;  // ceil
    }
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i].load(std::memory_order_relaxed);
        if (cumulative >= rank) {
            return i < bounds_.size()
                       ? bounds_[i]
                       : (bounds_.empty() ? 0.0 : bounds_.back());
        }
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

namespace {

bool valid_metric_name(const std::string& name) {
    if (name.empty()) {
        return false;
    }
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    };
    if (!head(name[0])) {
        return false;
    }
    return std::all_of(name.begin() + 1, name.end(), [&](char c) {
        return head(c) || (c >= '0' && c <= '9');
    });
}

const char* kind_name(int kind) {
    switch (kind) {
        case 0: return "counter";
        case 1: return "gauge";
        default: return "histogram";
    }
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& label_key,
    const std::string& label_value, Kind kind,
    const std::vector<double>* bounds) {
    if (!valid_metric_name(name)) {
        throw InvalidArgumentError("metrics: invalid metric name '" + name +
                                   "'");
    }
    if (label_key.empty() != label_value.empty()) {
        throw InvalidArgumentError(
            "metrics: label key and value must be given together for '" +
            name + "'");
    }
    if (!label_key.empty() && !valid_metric_name(label_key)) {
        throw InvalidArgumentError("metrics: invalid label name '" +
                                   label_key + "'");
    }
    if (bounds != nullptr) {
        if (bounds->empty()) {
            throw InvalidArgumentError(
                "metrics: histogram '" + name + "' needs at least one bucket");
        }
        for (std::size_t i = 0; i < bounds->size(); ++i) {
            if (!std::isfinite((*bounds)[i]) ||
                (i > 0 && (*bounds)[i] <= (*bounds)[i - 1])) {
                throw InvalidArgumentError(
                    "metrics: histogram '" + name +
                    "' bucket bounds must be finite and strictly increasing");
            }
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
        if (entry->name != name) {
            continue;
        }
        if (entry->kind != kind) {
            throw InvalidArgumentError(
                std::string("metrics: '") + name + "' is a " +
                kind_name(static_cast<int>(entry->kind)) +
                ", requested as " + kind_name(static_cast<int>(kind)));
        }
        if (entry->label_key == label_key &&
            entry->label_value == label_value) {
            if (bounds != nullptr && entry->histogram->bounds() != *bounds) {
                throw InvalidArgumentError(
                    "metrics: histogram '" + name +
                    "' re-registered with different bucket bounds");
            }
            return *entry;
        }
        if (kind == Kind::Histogram && bounds != nullptr &&
            entry->histogram->bounds() != *bounds) {
            throw InvalidArgumentError(
                "metrics: histogram family '" + name +
                "' must share bucket bounds across labels");
        }
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->label_key = label_key;
    entry->label_value = label_value;
    entry->kind = kind;
    switch (kind) {
        case Kind::Counter:
            entry->counter = std::make_unique<Counter>();
            break;
        case Kind::Gauge:
            entry->gauge = std::make_unique<Gauge>();
            break;
        case Kind::Histogram:
            entry->histogram = std::make_unique<Histogram>(*bounds);
            break;
    }
    entries_.push_back(std::move(entry));
    return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& label_key,
                                  const std::string& label_value) {
    return *find_or_create(name, label_key, label_value, Kind::Counter,
                           nullptr)
                .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& label_key,
                              const std::string& label_value) {
    return *find_or_create(name, label_key, label_value, Kind::Gauge, nullptr)
                .gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& label_key,
                                      const std::string& label_value) {
    return *find_or_create(name, label_key, label_value, Kind::Histogram,
                           &bounds)
                .histogram;
}

namespace {

std::string sample_name(const std::string& name, const std::string& suffix,
                        const std::string& label_key,
                        const std::string& label_value,
                        const std::string& extra_key = "",
                        const std::string& extra_value = "") {
    std::string out = name + suffix;
    if (label_key.empty() && extra_key.empty()) {
        return out;
    }
    out += '{';
    bool first = true;
    if (!label_key.empty()) {
        out += label_key + "=\"" + label_value + "\"";
        first = false;
    }
    if (!extra_key.empty()) {
        if (!first) {
            out += ',';
        }
        out += extra_key + "=\"" + extra_value + "\"";
    }
    out += '}';
    return out;
}

/// Bucket-edge rendering for `le` labels: integral edges in plain fixed
/// notation (le="10", not le="1e+01" - the Prometheus convention), anything
/// else via the round-tripping shortest form.
std::string format_edge(double edge) {
    if (edge == std::floor(edge) && std::abs(edge) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", edge);
        return buf;
    }
    return fmt::shortest(edge);
}

}  // namespace

std::string MetricsRegistry::exposition() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::vector<std::string> families_seen;
    for (const auto& entry : entries_) {
        if (std::find(families_seen.begin(), families_seen.end(),
                      entry->name) == families_seen.end()) {
            families_seen.push_back(entry->name);
            out += "# TYPE " + entry->name + ' ' +
                   kind_name(static_cast<int>(entry->kind)) + '\n';
        }
        switch (entry->kind) {
            case Kind::Counter:
                out += sample_name(entry->name, "", entry->label_key,
                                   entry->label_value) +
                       ' ' + std::to_string(entry->counter->value()) + '\n';
                break;
            case Kind::Gauge:
                out += sample_name(entry->name, "", entry->label_key,
                                   entry->label_value) +
                       ' ' + fmt::shortest(entry->gauge->value()) + '\n';
                break;
            case Kind::Histogram: {
                const Histogram& h = *entry->histogram;
                const std::vector<std::uint64_t> counts = h.bucket_counts();
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < counts.size(); ++i) {
                    cumulative += counts[i];
                    const std::string le =
                        i < h.bounds().size() ? format_edge(h.bounds()[i])
                                              : std::string("+Inf");
                    out += sample_name(entry->name, "_bucket",
                                       entry->label_key, entry->label_value,
                                       "le", le) +
                           ' ' + std::to_string(cumulative) + '\n';
                }
                out += sample_name(entry->name, "_sum", entry->label_key,
                                   entry->label_value) +
                       ' ' + fmt::shortest(h.sum()) + '\n';
                out += sample_name(entry->name, "_count", entry->label_key,
                                   entry->label_value) +
                       ' ' + std::to_string(h.count()) + '\n';
                break;
            }
        }
    }
    return out;
}

std::vector<double> MetricsRegistry::default_latency_buckets_us() {
    std::vector<double> bounds;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
        bounds.push_back(decade);
        bounds.push_back(2.0 * decade);
        bounds.push_back(5.0 * decade);
    }
    bounds.push_back(1e7);
    return bounds;
}

MetricsRegistry& global_metrics() {
    static MetricsRegistry registry;
    return registry;
}

}  // namespace extradeep::obs
