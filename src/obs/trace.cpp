#include "obs/trace.hpp"

#include <algorithm>
#include <map>

#include "common/json.hpp"
#include "common/parallel_for.hpp"
#include "common/table.hpp"
#include "common/format.hpp"

namespace extradeep::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// The ambient current-span id of this thread. parallel_for workers inherit
/// the dispatching thread's value through the TaskContextHook below.
thread_local std::uint64_t t_current_span = 0;

std::uint64_t hook_capture() { return t_current_span; }

std::uint64_t hook_install(std::uint64_t token) {
    const std::uint64_t previous = t_current_span;
    t_current_span = token;
    return previous;
}

void hook_restore(std::uint64_t previous) { t_current_span = previous; }

constexpr TaskContextHook kSpanContextHook{&hook_capture, &hook_install,
                                           &hook_restore};

/// Monotonic tracer uid source, so a thread's cached buffer pointers can
/// never be confused across distinct Tracer instances (address reuse after
/// destruction would otherwise alias them).
std::atomic<std::uint64_t> g_next_tracer_uid{1};

struct CacheEntry {
    std::uint64_t uid = 0;
    std::shared_ptr<void> buffer;  ///< keeps the buffer alive past the tracer
    void* raw = nullptr;
};

thread_local std::vector<CacheEntry> t_buffers;

}  // namespace

std::uint64_t current_span_id() { return t_current_span; }

void set_trace_enabled(bool enabled) {
    if (enabled) {
        set_task_context_hook(&kSpanContextHook);
    }
    detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

Tracer& global_tracer() {
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer(const Clock* clock)
    : uid_(g_next_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      clock_(clock != nullptr ? clock : &steady_clock_instance()) {}

void Tracer::set_clock(const Clock* clock) {
    clock_.store(clock != nullptr ? clock : &steady_clock_instance(),
                 std::memory_order_release);
}

const Clock& Tracer::clock() const {
    return *clock_.load(std::memory_order_acquire);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
    for (const CacheEntry& entry : t_buffers) {
        if (entry.uid == uid_) {
            return *static_cast<ThreadBuffer*>(entry.raw);
        }
    }
    auto buffer = std::make_shared<ThreadBuffer>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffer->index = static_cast<int>(buffers_.size());
        buffers_.push_back(buffer);
    }
    t_buffers.push_back(CacheEntry{uid_, buffer, buffer.get()});
    return *buffer;
}

std::vector<SpanRecord> Tracer::snapshot() const {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::vector<SpanRecord> out;
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        out.insert(out.end(), buffer->completed.begin(),
                   buffer->completed.end());
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                  : a.id < b.id;
              });
    return out;
}

std::size_t Tracer::span_count() const {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    std::size_t n = 0;
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        n += buffer->completed.size();
    }
    return n;
}

void Tracer::clear() {
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers = buffers_;
    }
    for (const auto& buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->completed.clear();
        buffer->completed.shrink_to_fit();
    }
}

void Span::open(Tracer& tracer, std::string_view name) {
    tracer_ = &tracer;
    buffer_ = &tracer.local_buffer();
    name_.assign(name);
    parent_ = t_current_span;
    // Unique across threads without coordination: high bits carry the
    // thread index (+1 so ids are never 0), low 40 bits a per-thread
    // sequence.
    id_ = (static_cast<std::uint64_t>(buffer_->index) + 1) << 40 |
          ++buffer_->next_seq;
    t_current_span = id_;
    start_ns_ = tracer.clock().now_ns();
}

void Span::close() {
    const std::uint64_t end_ns = tracer_->clock().now_ns();
    t_current_span = parent_;
    SpanRecord record;
    record.name = std::move(name_);
    record.id = id_;
    record.parent = parent_;
    record.thread = buffer_->index;
    record.start_ns = start_ns_;
    record.end_ns = end_ns;
    std::lock_guard<std::mutex> lock(buffer_->mutex);
    buffer_->completed.push_back(std::move(record));
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const SpanRecord& span : spans) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += "{\"name\":" + json::quote(span.name) +
               ",\"cat\":\"extradeep\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
               std::to_string(span.thread) +
               ",\"ts\":" + json::number(static_cast<double>(span.start_ns) * 1e-3) +
               ",\"dur\":" + json::number(span.duration_us()) +
               ",\"args\":{\"id\":" + std::to_string(span.id) +
               ",\"parent\":" + std::to_string(span.parent) + "}}";
    }
    out += "]}";
    return out;
}

namespace {

/// Nearest-rank percentile on a sorted sample.
double percentile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) {
        return 0.0;
    }
    const double rank = q * static_cast<double>(sorted.size());
    std::size_t index = static_cast<std::size_t>(rank);
    if (static_cast<double>(index) < rank) {
        ++index;  // ceil
    }
    if (index == 0) {
        index = 1;
    }
    return sorted[std::min(index, sorted.size()) - 1];
}

}  // namespace

std::string text_summary(const std::vector<SpanRecord>& spans) {
    struct Agg {
        std::vector<double> durations_us;
        double total_us = 0.0;
    };
    std::map<std::string, Agg> by_name;
    for (const SpanRecord& span : spans) {
        Agg& agg = by_name[span.name];
        agg.durations_us.push_back(span.duration_us());
        agg.total_us += span.duration_us();
    }
    std::vector<std::pair<std::string, Agg>> rows;
    rows.reserve(by_name.size());
    for (auto& [name, agg] : by_name) {
        std::sort(agg.durations_us.begin(), agg.durations_us.end());
        rows.emplace_back(name, std::move(agg));
    }
    // Descending total time; name breaks ties so output stays deterministic.
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second.total_us != b.second.total_us
                   ? a.second.total_us > b.second.total_us
                   : a.first < b.first;
    });

    Table table({"span", "count", "total_ms", "p50_us", "p95_us"});
    for (const auto& [name, agg] : rows) {
        table.add_row({name, fmt::count(static_cast<std::int64_t>(
                                 agg.durations_us.size())),
                       fmt::fixed(agg.total_us * 1e-3, 3),
                       fmt::fixed(percentile_sorted(agg.durations_us, 0.50), 3),
                       fmt::fixed(percentile_sorted(agg.durations_us, 0.95), 3)});
    }
    return table.to_string();
}

}  // namespace extradeep::obs
