#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace extradeep::obs {

/// Span tracing for the Extra-Deep pipeline itself (ISSUE 5 tentpole).
///
/// A Span is an RAII scope: construction records the start timestamp,
/// destruction the end. Spans nest through a thread-local ambient
/// current-span id, and the nesting survives ThreadPool::parallel_for
/// dispatch via the TaskContextHook registered in common/parallel_for - a
/// span opened inside a worker chunk gets the dispatching call site's span
/// as its parent, so fitter hypothesis-search chunks appear under the
/// per-metric fit span in the exported trace.
///
/// The global entry point is `Span span{"stage.name"};` which records into
/// global_tracer() only while tracing is enabled (set_trace_enabled). The
/// disabled path is a single relaxed atomic load and a branch - cheap
/// enough to leave instrumentation in hot paths permanently (proven by
/// BM_ObsSpanOverhead in bench/).

/// One completed span. Timestamps come from the owning tracer's Clock.
struct SpanRecord {
    std::string name;          ///< stage label, e.g. "fit.metric"
    std::uint64_t id = 0;      ///< unique within the tracer, never 0
    std::uint64_t parent = 0;  ///< enclosing span id, 0 for roots
    int thread = 0;            ///< tracer-assigned dense thread index
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;

    double duration_us() const {
        return static_cast<double>(end_ns - start_ns) * 1e-3;
    }
};

class Span;

/// Collects completed spans from any number of threads. Each thread writes
/// into its own buffer (registered on first use), so recording contends
/// only on that thread's mutex; snapshot() merges all buffers into one
/// deterministic, (start_ns, id)-sorted list.
class Tracer {
public:
    /// `clock == nullptr` means steady_clock_instance().
    explicit Tracer(const Clock* clock = nullptr);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Swaps the time source for spans opened after this call. Intended for
    /// tests to make global_tracer() deterministic; not safe to call while
    /// spans are in flight on other threads.
    void set_clock(const Clock* clock);
    const Clock& clock() const;

    /// All completed spans so far, sorted by (start_ns, id).
    std::vector<SpanRecord> snapshot() const;

    /// Number of completed spans (cheaper than snapshot().size()).
    std::size_t span_count() const;

    /// Discards completed spans. Thread buffers and id sequences survive,
    /// so long-running processes (and the span-overhead benchmark) can cap
    /// memory without perturbing identity assignment.
    void clear();

private:
    friend class Span;

    struct ThreadBuffer {
        int index = 0;               ///< dense registration order
        std::uint64_t next_seq = 0;  ///< owner-thread-only span sequence
        mutable std::mutex mutex;    ///< guards `completed`
        std::vector<SpanRecord> completed;
    };

    /// Returns (registering on first use) the calling thread's buffer.
    ThreadBuffer& local_buffer();

    const std::uint64_t uid_;  ///< distinguishes tracers in thread caches
    std::atomic<const Clock*> clock_;
    mutable std::mutex mutex_;  ///< guards `buffers_`
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

namespace detail {
/// Namespace-scope atomic (constant-initialised - no function-static guard
/// on the hot path). Read via trace_enabled().
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Whether globally-routed spans currently record. Relaxed load: callers
/// need a cheap hint, not an ordering guarantee.
inline bool trace_enabled() {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns global span recording on or off. Enabling also registers the
/// span-context TaskContextHook with common/parallel_for (it stays
/// registered afterwards; the hook is two thread-local accesses per chunk,
/// negligible when tracing is off).
void set_trace_enabled(bool enabled);

/// The process-wide tracer used by `Span{"name"}`.
Tracer& global_tracer();

/// RAII scoped span. Non-copyable, non-movable; open and close must happen
/// on the same thread (it is a *scope*, not a handle).
class Span {
public:
    /// Globally-routed span: records into global_tracer() iff tracing is
    /// enabled at construction. The disabled path does no work beyond one
    /// relaxed atomic load.
    explicit Span(std::string_view name) {
        if (trace_enabled()) [[unlikely]] {
            open(global_tracer(), name);
        }
    }

    /// Explicit-tracer span: always records. Used by tests that own a
    /// Tracer with a FakeClock.
    Span(Tracer& tracer, std::string_view name) { open(tracer, name); }

    ~Span() {
        if (buffer_ != nullptr) {
            close();
        }
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// The span's id (0 when the span is not recording).
    std::uint64_t id() const { return id_; }

private:
    void open(Tracer& tracer, std::string_view name);
    void close();

    Tracer* tracer_ = nullptr;
    Tracer::ThreadBuffer* buffer_ = nullptr;
    std::string name_;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint64_t start_ns_ = 0;
};

/// The thread-local ambient span id (0 when no span is open). Exposed for
/// tests of the parallel_for propagation hook.
std::uint64_t current_span_id();

/// Serialises spans in the Chrome trace-event JSON format (one "X" complete
/// event per span; ts/dur in microseconds, tid = tracer thread index).
/// Loads in Perfetto / chrome://tracing and parses with common/json.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

/// Human-readable per-span-name summary table: count, total ms, p50 us,
/// p95 us - sorted by descending total time. Percentiles use the
/// nearest-rank method (deterministic, no interpolation).
std::string text_summary(const std::vector<SpanRecord>& spans);

}  // namespace extradeep::obs
