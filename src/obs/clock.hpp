#pragma once

#include <atomic>
#include <cstdint>

namespace extradeep::obs {

/// Injectable monotonic time source for the observability subsystem. All
/// span timestamps, latency histograms and self-profiling exports go
/// through this interface so tests can substitute a deterministic clock
/// (FakeClock) and every derived artifact - Chrome traces, text summaries,
/// stats percentiles, synthetic .edp runs - becomes byte-reproducible.
///
/// Implementations must be thread-safe: now_ns() is called concurrently
/// from every traced thread.
class Clock {
public:
    virtual ~Clock() = default;

    /// Nanoseconds on a monotonic timeline. The epoch is arbitrary (only
    /// differences and ordering matter), but values must never decrease.
    virtual std::uint64_t now_ns() const = 0;
};

/// Production clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
public:
    std::uint64_t now_ns() const override;
};

/// Shared process-wide SteadyClock instance (no allocation, safe to take at
/// any time, including during static initialisation).
const Clock& steady_clock_instance();

/// Deterministic manual clock for tests and byte-stable serving modes.
/// Every now_ns() call returns the current reading and then advances the
/// clock by `auto_step_ns` - so a sequence of timed operations yields a
/// fixed, call-count-derived series of latencies regardless of the real
/// machine. auto_step_ns == 0 gives a frozen clock advanced only by
/// advance()/set().
class FakeClock final : public Clock {
public:
    explicit FakeClock(std::uint64_t start_ns = 0,
                       std::uint64_t auto_step_ns = 0)
        : now_ns_(start_ns), auto_step_ns_(auto_step_ns) {}

    std::uint64_t now_ns() const override {
        return now_ns_.fetch_add(auto_step_ns_, std::memory_order_relaxed);
    }

    /// Moves the clock forward by `delta_ns`.
    void advance(std::uint64_t delta_ns) {
        now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
    }

    /// Jumps the clock to an absolute reading. Callers are responsible for
    /// monotonicity (jumping backwards would violate the Clock contract).
    void set(std::uint64_t now_ns) {
        now_ns_.store(now_ns, std::memory_order_relaxed);
    }

private:
    mutable std::atomic<std::uint64_t> now_ns_;
    std::uint64_t auto_step_ns_;
};

}  // namespace extradeep::obs
