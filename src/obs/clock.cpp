#include "obs/clock.hpp"

#include <chrono>

namespace extradeep::obs {

std::uint64_t SteadyClock::now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const Clock& steady_clock_instance() {
    // constinit-style: SteadyClock has no state, so a function-local static
    // is initialised without locking concerns and never destroyed-before-use.
    static const SteadyClock clock;
    return clock;
}

}  // namespace extradeep::obs
