#pragma once

#include <map>
#include <string>

#include "obs/trace.hpp"

namespace extradeep::obs {

/// Observability session wiring for the CLIs (ISSUE 5): one switch -
/// the EXTRADEEP_TRACE environment variable or a --trace flag - enables
/// span tracing and selects output sinks. The spec is a comma-separated
/// sink list:
///
///   EXTRADEEP_TRACE="chrome:trace.json,text:-,metrics:metrics.prom,
///                    edp:self.edp,param:x1=8"
///
///   chrome:PATH   Chrome trace-event JSON (Perfetto-loadable)
///   text:PATH     human per-span summary table ("-" = stderr)
///   metrics:PATH  Prometheus exposition of global_metrics() ("-" = stderr)
///   edp:PATH      self-profiling synthetic .edp run (see selfprofile.hpp)
///   param:K=V     execution parameter of the self-profile point (numeric);
///                 may repeat. Defaults to {"x1": 1} if none given.
///
/// "", "0" and "off" mean disabled; unknown sinks raise
/// InvalidArgumentError (a typo silently disabling tracing would be worse).

struct ObsConfig {
    bool enabled = false;
    std::string chrome_path;
    std::string summary_path;
    std::string metrics_path;
    std::string edp_path;
    std::map<std::string, double> params;
};

/// Parses a sink spec (the EXTRADEEP_TRACE grammar above).
ObsConfig parse_obs_config(const std::string& spec);

/// Reads EXTRADEEP_TRACE; absent means disabled.
ObsConfig obs_config_from_env();

/// RAII session: construction enables tracing (when the config says so) and
/// clears the global tracer; destruction (or an explicit flush()) writes
/// every configured sink and disables tracing. Construct one at the top of
/// main(); a disabled config makes every operation a no-op.
class ObsSession {
public:
    explicit ObsSession(ObsConfig config);
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /// Overrides/sets one self-profile execution parameter (e.g. the
    /// resolved --threads value, so the fitted models have a real x axis).
    void set_param(const std::string& name, double value);

    /// Writes all configured sinks and disables tracing. Idempotent;
    /// called by the destructor. Sink I/O failures are reported to stderr
    /// rather than thrown (observability must not take down the pipeline).
    void flush();

    const ObsConfig& config() const { return config_; }

private:
    ObsConfig config_;
    bool flushed_ = false;
};

}  // namespace extradeep::obs
