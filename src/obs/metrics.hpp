#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace extradeep::obs {

/// Metrics registry (ISSUE 5): named counters, gauges and fixed-bucket
/// latency histograms with Prometheus-style text exposition. Zero
/// dependencies; instruments are created once (registry lookup under a
/// mutex) and then updated lock-free via atomics, so hot paths hold a
/// reference and pay one atomic RMW per update.
///
/// Instruments may carry one optional label pair (e.g. kind="predict").
/// Instruments sharing a name form a family: one # HELP/# TYPE line,
/// several samples. Families must be type-consistent; histograms of one
/// family must share bucket bounds.

/// Monotonically increasing integer counter.
class Counter {
public:
    void increment(std::uint64_t n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins floating point gauge.
class Gauge {
public:
    void set(double value) { value_.store(value, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are upper edges (Prometheus `le`);
/// an implicit +Inf bucket catches the overflow. observe() is lock-free.
class Histogram {
public:
    /// `bounds` must be strictly increasing and finite (validated by the
    /// registry at creation).
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    const std::vector<double>& bounds() const { return bounds_; }

    /// Per-bucket (non-cumulative) counts; the last entry is the +Inf
    /// bucket, so the vector has bounds().size() + 1 entries.
    std::vector<std::uint64_t> bucket_counts() const;

    /// Histogram-estimated quantile (0 < q <= 1): the upper edge of the
    /// first bucket whose cumulative count reaches ceil(q * count). For the
    /// +Inf bucket the largest finite edge is returned (a conservative
    /// lower bound). Returns 0 for an empty histogram. Deterministic - used
    /// by the serve `stats` p50/p95 fields.
    double quantile(double q) const;

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + Inf
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Find-or-create. `name` must match [a-zA-Z_][a-zA-Z0-9_]*; the
    /// optional label is rendered as name{key="value"} in the exposition.
    /// Throws InvalidArgumentError on invalid names, on type conflicts
    /// within a family, and (histograms) on bucket-bound mismatches.
    Counter& counter(const std::string& name, const std::string& label_key = "",
                     const std::string& label_value = "");
    Gauge& gauge(const std::string& name, const std::string& label_key = "",
                 const std::string& label_value = "");
    Histogram& histogram(const std::string& name, std::vector<double> bounds,
                         const std::string& label_key = "",
                         const std::string& label_value = "");

    /// Prometheus text exposition, families in registration order. Numbers
    /// use fmt::shortest so the output round-trips and is byte-stable for
    /// identical update sequences.
    std::string exposition() const;

    /// Default latency bucket edges in microseconds: 1, 2, 5 decades from
    /// 1 us to 1e7 us (10 s), 22 finite buckets.
    static std::vector<double> default_latency_buckets_us();

private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Entry {
        std::string name;
        std::string label_key;
        std::string label_value;
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& find_or_create(const std::string& name,
                          const std::string& label_key,
                          const std::string& label_value, Kind kind,
                          const std::vector<double>* bounds);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Entry>> entries_;
};

/// The process-wide registry used by pipeline instrumentation and the
/// EXTRADEEP_TRACE metrics sink.
MetricsRegistry& global_metrics();

/// RAII latency probe: records the elapsed time between construction and
/// destruction, in microseconds, into a Histogram via an injectable Clock -
/// the scoped analogue of the manual now_ns()/observe() pairs in the serve
/// and planner hot paths. A null histogram disables the probe (and the
/// clock is never read), so call sites can keep one unconditional scope.
class ScopedLatencyTimer {
public:
    ScopedLatencyTimer(const Clock& clock, Histogram* histogram)
        : clock_(clock), histogram_(histogram),
          start_ns_(histogram ? clock.now_ns() : 0) {}
    ~ScopedLatencyTimer() {
        if (histogram_ != nullptr) {
            histogram_->observe(
                static_cast<double>(clock_.now_ns() - start_ns_) / 1000.0);
        }
    }
    ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
    ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

private:
    const Clock& clock_;
    Histogram* histogram_;
    std::uint64_t start_ns_;
};

}  // namespace extradeep::obs
