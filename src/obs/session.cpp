#include "obs/session.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/metrics.hpp"
#include "obs/selfprofile.hpp"

namespace extradeep::obs {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            out.push_back(text.substr(begin));
            break;
        }
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

void write_sink(const std::string& path, const std::string& content,
                const char* what) {
    if (path == "-") {
        std::cerr << content;
        return;
    }
    std::ofstream os(path, std::ios::binary);
    os << content;
    if (!os) {
        std::cerr << "extradeep-obs: failed to write " << what << " to '"
                  << path << "'\n";
    }
}

}  // namespace

ObsConfig parse_obs_config(const std::string& spec) {
    ObsConfig config;
    if (spec.empty() || spec == "0" || spec == "off") {
        return config;
    }
    config.enabled = true;
    if (spec == "1" || spec == "on") {
        // std::string(...) sidesteps a GCC 12 -Wrestrict false positive on
        // literal assignment into a just-default-constructed string.
        config.summary_path = std::string("-");  // bare enable: stderr summary
        return config;
    }
    for (const std::string& part : split(spec, ',')) {
        if (part.empty()) {
            continue;
        }
        const std::size_t colon = part.find(':');
        if (colon == std::string::npos) {
            throw InvalidArgumentError(
                "EXTRADEEP_TRACE: sink '" + part +
                "' has no ':' (expected kind:target)");
        }
        const std::string kind = part.substr(0, colon);
        const std::string target = part.substr(colon + 1);
        if (target.empty()) {
            throw InvalidArgumentError("EXTRADEEP_TRACE: sink '" + part +
                                       "' has an empty target");
        }
        if (kind == "chrome") {
            config.chrome_path = target;
        } else if (kind == "text") {
            config.summary_path = target;
        } else if (kind == "metrics") {
            config.metrics_path = target;
        } else if (kind == "edp") {
            config.edp_path = target;
        } else if (kind == "param") {
            const std::size_t eq = target.find('=');
            double value = 0.0;
            if (eq == std::string::npos || eq == 0 ||
                !fmt::parse_double(target.substr(eq + 1), value)) {
                throw InvalidArgumentError(
                    "EXTRADEEP_TRACE: param '" + target +
                    "' must be NAME=NUMBER");
            }
            config.params[target.substr(0, eq)] = value;
        } else {
            throw InvalidArgumentError("EXTRADEEP_TRACE: unknown sink kind '" +
                                       kind + "'");
        }
    }
    return config;
}

ObsConfig obs_config_from_env() {
    const char* spec = std::getenv("EXTRADEEP_TRACE");
    return parse_obs_config(spec != nullptr ? std::string(spec)
                                            : std::string());
}

ObsSession::ObsSession(ObsConfig config) : config_(std::move(config)) {
    if (!config_.enabled) {
        flushed_ = true;  // nothing to do, ever
        return;
    }
    if (config_.params.empty()) {
        config_.params["x1"] = 1.0;
    }
    global_tracer().clear();
    set_trace_enabled(true);
}

ObsSession::~ObsSession() { flush(); }

void ObsSession::set_param(const std::string& name, double value) {
    config_.params[name] = value;
}

void ObsSession::flush() {
    if (flushed_) {
        return;
    }
    flushed_ = true;
    set_trace_enabled(false);
    const std::vector<SpanRecord> spans = global_tracer().snapshot();
    if (!config_.chrome_path.empty()) {
        write_sink(config_.chrome_path, chrome_trace_json(spans),
                   "chrome trace");
    }
    if (!config_.summary_path.empty()) {
        write_sink(config_.summary_path, text_summary(spans) + "\n",
                   "trace summary");
    }
    if (!config_.metrics_path.empty()) {
        write_sink(config_.metrics_path, global_metrics().exposition(),
                   "metrics exposition");
    }
    if (!config_.edp_path.empty()) {
        if (spans.empty()) {
            std::cerr << "extradeep-obs: no spans recorded, skipping "
                         "self-profile .edp '"
                      << config_.edp_path << "'\n";
        } else {
            try {
                SelfProfileOptions options;
                options.params = config_.params;
                write_selfprofile_edp(config_.edp_path, spans, options);
            } catch (const Error& e) {
                std::cerr << "extradeep-obs: self-profile export failed: "
                          << e.what() << '\n';
            }
        }
    }
}

}  // namespace extradeep::obs
