#include "obs/selfprofile.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "profiling/edp_io.hpp"

namespace extradeep::obs {

namespace {

/// EDP forbids tab/newline/carriage-return in kernel names; span names are
/// library-chosen but sanitise defensively instead of failing the export.
std::string sanitize_name(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        if (c == '\t' || c == '\n' || c == '\r') {
            c = ' ';
        }
    }
    return out.empty() ? std::string("span") : out;
}

trace::NvtxMark mark(trace::NvtxMark::Kind kind, int epoch, int step,
                     double time) {
    trace::NvtxMark m;
    m.kind = kind;
    m.epoch = epoch;
    m.step = step;
    m.step_kind = trace::StepKind::Train;
    m.time = time;
    return m;
}

}  // namespace

profiling::ProfiledRun spans_to_run(const std::vector<SpanRecord>& spans,
                                    const SelfProfileOptions& options) {
    if (spans.empty()) {
        throw InvalidArgumentError(
            "selfprofile: no spans to export (was tracing enabled?)");
    }
    if (options.params.empty()) {
        throw InvalidArgumentError(
            "selfprofile: at least one execution parameter is required to "
            "name the measurement point");
    }

    std::uint64_t t0 = spans.front().start_ns;
    std::uint64_t t_max = spans.front().end_ns;
    for (const SpanRecord& span : spans) {
        t0 = std::min(t0, span.start_ns);
        t_max = std::max(t_max, std::max(span.start_ns, span.end_ns));
    }

    // Warmup epoch 0: [0, kWarmup]; modeled epoch 1 starts at kEpoch1.
    constexpr double kWarmup = 1e-6;
    constexpr double kEpoch1 = 2e-6;
    const double extent =
        static_cast<double>(t_max - t0) * 1e-9 + 1e-9;  // > every span start
    const double epoch1_end = kEpoch1 + extent;

    trace::RankTrace rank;
    rank.rank = 0;
    rank.marks = {
        mark(trace::NvtxMark::Kind::EpochStart, 0, -1, 0.0),
        mark(trace::NvtxMark::Kind::StepStart, 0, 0, 0.0),
        mark(trace::NvtxMark::Kind::StepEnd, 0, 0, kWarmup),
        mark(trace::NvtxMark::Kind::EpochEnd, 0, -1, kWarmup),
        mark(trace::NvtxMark::Kind::EpochStart, 1, -1, kEpoch1),
        mark(trace::NvtxMark::Kind::StepStart, 1, 0, kEpoch1),
        mark(trace::NvtxMark::Kind::StepEnd, 1, 0, epoch1_end),
        mark(trace::NvtxMark::Kind::EpochEnd, 1, -1, epoch1_end),
    };

    trace::TraceEvent warmup;
    warmup.name = "obs_warmup";
    warmup.category = trace::KernelCategory::NvtxFunction;
    warmup.start = 0.0;
    warmup.duration = kWarmup;
    rank.events.push_back(std::move(warmup));

    for (const SpanRecord& span : spans) {
        trace::TraceEvent event;
        event.name = sanitize_name(span.name);
        event.category = trace::KernelCategory::NvtxFunction;
        event.start =
            kEpoch1 + static_cast<double>(span.start_ns - t0) * 1e-9;
        event.duration =
            span.end_ns >= span.start_ns
                ? static_cast<double>(span.end_ns - span.start_ns) * 1e-9
                : 0.0;
        event.visits = 1;
        rank.events.push_back(std::move(event));
    }

    profiling::ProfiledRun run;
    run.params = options.params;
    run.repetition = options.repetition;
    run.profiling_wall_time = epoch1_end;
    run.ranks.push_back(std::move(rank));
    return run;
}

void write_selfprofile_edp(const std::string& path,
                           const std::vector<SpanRecord>& spans,
                           const SelfProfileOptions& options) {
    profiling::write_edp_file(path, spans_to_run(spans, options));
}

}  // namespace extradeep::obs
