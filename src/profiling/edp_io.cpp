#include "profiling/edp_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace extradeep::profiling {

namespace {

using trace::NvtxMark;
using trace::StepKind;

const char* mark_kind_str(NvtxMark::Kind k) {
    switch (k) {
        case NvtxMark::Kind::EpochStart: return "epoch_start";
        case NvtxMark::Kind::EpochEnd: return "epoch_end";
        case NvtxMark::Kind::StepStart: return "step_start";
        case NvtxMark::Kind::StepEnd: return "step_end";
    }
    throw InvalidArgumentError("mark_kind_str: unknown kind");
}

NvtxMark::Kind parse_mark_kind(const std::string& s) {
    if (s == "epoch_start") return NvtxMark::Kind::EpochStart;
    if (s == "epoch_end") return NvtxMark::Kind::EpochEnd;
    if (s == "step_start") return NvtxMark::Kind::StepStart;
    if (s == "step_end") return NvtxMark::Kind::StepEnd;
    throw ParseError("EDP: unknown mark kind '" + s + "'");
}

void check_name(const std::string& name) {
    if (name.find('\t') != std::string::npos ||
        name.find('\n') != std::string::npos) {
        throw InvalidArgumentError("EDP: name contains tab/newline: " + name);
    }
}

std::vector<std::string> split_tabs(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            out.push_back(line.substr(pos));
            break;
        }
        out.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return out;
}

double parse_double(const std::string& s, const char* what) {
    try {
        std::size_t idx = 0;
        const double v = std::stod(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
        return v;
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad number for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: number out of range for ") + what);
    }
}

long long parse_int(const std::string& s, const char* what) {
    try {
        std::size_t idx = 0;
        const long long v = std::stoll(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
        return v;
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad integer for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: integer out of range for ") + what);
    }
}

}  // namespace

void write_edp(std::ostream& os, const ProfiledRun& run) {
    os.precision(12);
    os << "EDP\t1\n";
    for (const auto& [key, value] : run.params) {
        check_name(key);
        os << "P\t" << key << '\t' << value << '\n';
    }
    os << "REP\t" << run.repetition << '\n';
    os << "WALL\t" << run.profiling_wall_time << '\n';
    for (const auto& rank : run.ranks) {
        os << "RANK\t" << rank.rank << '\n';
        for (const auto& m : rank.marks) {
            os << "M\t" << mark_kind_str(m.kind) << '\t' << m.epoch << '\t'
               << m.step << '\t' << trace::step_kind_name(m.step_kind) << '\t'
               << m.time << '\n';
        }
        for (const auto& e : rank.events) {
            check_name(e.name);
            os << "E\t" << e.name << '\t' << trace::category_name(e.category)
               << '\t' << e.start << '\t' << e.duration << '\t' << e.visits
               << '\t' << e.bytes << '\n';
        }
    }
    os << "END\n";
    if (!os) {
        throw Error("EDP: write failed");
    }
}

ProfiledRun read_edp(std::istream& is) {
    ProfiledRun run;
    std::string line;
    if (!std::getline(is, line)) {
        throw ParseError("EDP: empty input");
    }
    {
        const auto f = split_tabs(line);
        if (f.size() != 2 || f[0] != "EDP") {
            throw ParseError("EDP: missing header");
        }
        if (f[1] != "1") {
            throw ParseError("EDP: unsupported version " + f[1]);
        }
    }
    trace::RankTrace* current = nullptr;
    bool saw_end = false;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const auto f = split_tabs(line);
        const std::string& tag = f[0];
        if (tag == "P") {
            if (f.size() != 3) throw ParseError("EDP: malformed P line");
            run.params[f[1]] = parse_double(f[2], "param value");
        } else if (tag == "REP") {
            if (f.size() != 2) throw ParseError("EDP: malformed REP line");
            run.repetition = static_cast<int>(parse_int(f[1], "repetition"));
        } else if (tag == "WALL") {
            if (f.size() != 2) throw ParseError("EDP: malformed WALL line");
            run.profiling_wall_time = parse_double(f[1], "wall time");
        } else if (tag == "RANK") {
            if (f.size() != 2) throw ParseError("EDP: malformed RANK line");
            trace::RankTrace t;
            t.rank = static_cast<int>(parse_int(f[1], "rank"));
            run.ranks.push_back(std::move(t));
            current = &run.ranks.back();
        } else if (tag == "M") {
            if (!current) throw ParseError("EDP: mark before RANK");
            if (f.size() != 6) throw ParseError("EDP: malformed M line");
            NvtxMark m;
            m.kind = parse_mark_kind(f[1]);
            m.epoch = static_cast<int>(parse_int(f[2], "epoch"));
            m.step = static_cast<int>(parse_int(f[3], "step"));
            if (f[4] == "train") {
                m.step_kind = StepKind::Train;
            } else if (f[4] == "validation") {
                m.step_kind = StepKind::Validation;
            } else {
                throw ParseError("EDP: unknown step kind '" + f[4] + "'");
            }
            m.time = parse_double(f[5], "mark time");
            current->marks.push_back(m);
        } else if (tag == "E") {
            if (!current) throw ParseError("EDP: event before RANK");
            if (f.size() != 7) throw ParseError("EDP: malformed E line");
            trace::TraceEvent e;
            e.name = f[1];
            e.category = trace::parse_category(f[2]);
            e.start = parse_double(f[3], "event start");
            e.duration = parse_double(f[4], "event duration");
            e.visits = parse_int(f[5], "event visits");
            e.bytes = parse_double(f[6], "event bytes");
            current->events.push_back(std::move(e));
        } else if (tag == "END") {
            saw_end = true;
            break;
        } else {
            throw ParseError("EDP: unknown record tag '" + tag + "'");
        }
    }
    if (!saw_end) {
        throw ParseError("EDP: truncated file (missing END)");
    }
    return run;
}

void write_edp_file(const std::string& path, const ProfiledRun& run) {
    std::ofstream os(path);
    if (!os) {
        throw Error("EDP: cannot open for writing: " + path);
    }
    write_edp(os, run);
}

ProfiledRun read_edp_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    return read_edp(is);
}

}  // namespace extradeep::profiling
