#include "profiling/edp_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"

namespace extradeep::profiling {

namespace {

using trace::NvtxMark;
using trace::StepKind;

const char* mark_kind_str(NvtxMark::Kind k) {
    switch (k) {
        case NvtxMark::Kind::EpochStart: return "epoch_start";
        case NvtxMark::Kind::EpochEnd: return "epoch_end";
        case NvtxMark::Kind::StepStart: return "step_start";
        case NvtxMark::Kind::StepEnd: return "step_end";
    }
    throw InvalidArgumentError("mark_kind_str: unknown kind");
}

NvtxMark::Kind parse_mark_kind(const std::string& s) {
    if (s == "epoch_start") return NvtxMark::Kind::EpochStart;
    if (s == "epoch_end") return NvtxMark::Kind::EpochEnd;
    if (s == "step_start") return NvtxMark::Kind::StepStart;
    if (s == "step_end") return NvtxMark::Kind::StepEnd;
    throw ParseError("EDP: unknown mark kind '" + s + "'");
}

bool name_is_clean(const std::string& name) {
    return name.find('\t') == std::string::npos &&
           name.find('\n') == std::string::npos &&
           name.find('\r') == std::string::npos;
}

/// Write-path name guard (kept as InvalidArgumentError for compatibility).
void check_name(const std::string& name) {
    if (!name_is_clean(name)) {
        throw InvalidArgumentError("EDP: name contains tab/newline: " + name);
    }
}

/// Read-path name guard: the same rule, but a parse failure. A name with an
/// embedded newline can only come from a hand-edited file and would
/// desynchronise the line-based format.
void check_read_name(const std::string& name, const char* what) {
    if (!name_is_clean(name)) {
        throw ParseError(std::string("EDP: ") + what +
                         " contains tab/newline/carriage-return");
    }
}

std::vector<std::string> split_tabs(const std::string& line) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string::npos) {
            out.push_back(line.substr(pos));
            break;
        }
        out.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return out;
}

double parse_double(const std::string& s, const char* what) {
    double v = 0.0;
    try {
        std::size_t idx = 0;
        v = std::stod(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad number for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: number out of range for ") + what);
    }
    if (!std::isfinite(v)) {
        throw ParseError(std::string("EDP: non-finite value for ") + what +
                         ": '" + s + "'");
    }
    return v;
}

double parse_nonneg_double(const std::string& s, const char* what) {
    const double v = parse_double(s, what);
    if (v < 0.0) {
        throw ParseError(std::string("EDP: negative value for ") + what +
                         ": '" + s + "'");
    }
    return v;
}

long long parse_int(const std::string& s, const char* what) {
    try {
        std::size_t idx = 0;
        const long long v = std::stoll(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
        return v;
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad integer for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: integer out of range for ") + what);
    }
}

/// Integer destined for an `int` field, with semantic bounds.
int parse_bounded_int(const std::string& s, const char* what, long long lo,
                      long long hi = std::numeric_limits<int>::max()) {
    const long long v = parse_int(s, what);
    if (v < lo || v > hi) {
        throw ParseError(std::string("EDP: ") + what + " out of range: '" + s +
                         "'");
    }
    return static_cast<int>(v);
}

/// Shared state of one read_edp pass. Strict mode throws out of
/// process_line on the first problem; tolerant mode catches per line and
/// records diagnostics instead.
struct ParseState {
    ParseMode mode = ParseMode::Strict;
    DiagnosticLog log;
    ProfiledRun run;
    trace::RankTrace* current = nullptr;
    std::set<int> seen_ranks;
    long long line_no = 0;
    bool saw_end = false;
    /// Event/mark records skipped because no usable RANK block is open
    /// (quarantine after a corrupt or duplicate RANK header, or records
    /// before any RANK at all). Reported once per block, not per line.
    std::size_t skipped_records = 0;
    long long skip_start_line = -1;

    explicit ParseState(const EdpReadOptions& o)
        : mode(o.mode), log(o.max_diagnostics) {}

    int current_rank() const { return current ? current->rank : -1; }

    void warn(std::string reason, long long line, int rank = -1) {
        log.add(Severity::Warning, std::move(reason), line, rank);
    }

    void flush_skipped() {
        if (skipped_records > 0) {
            std::ostringstream os;
            os << "EDP: quarantined " << skipped_records
               << " event/mark record(s) with no usable RANK block";
            log.add(Severity::Info, os.str(), skip_start_line);
            skipped_records = 0;
            skip_start_line = -1;
        }
    }

    /// Tolerant-mode bookkeeping for one skipped orphan/quarantined record.
    void count_skipped() {
        if (skipped_records == 0) {
            skip_start_line = line_no;
            warn("EDP: event/mark record outside a usable RANK block", line_no);
        }
        ++skipped_records;
    }
};

/// Parses one non-empty record line into `s`. Throws ParseError on any
/// problem; returns true when the END record was consumed.
bool process_line(ParseState& s, const std::vector<std::string>& f) {
    const std::string& tag = f[0];
    if (tag == "P") {
        if (f.size() != 3) throw ParseError("EDP: malformed P line");
        check_read_name(f[1], "param name");
        s.run.params[f[1]] = parse_double(f[2], "param value");
    } else if (tag == "REP") {
        if (f.size() != 2) throw ParseError("EDP: malformed REP line");
        s.run.repetition = parse_bounded_int(f[1], "repetition", 0);
    } else if (tag == "WALL") {
        if (f.size() != 2) throw ParseError("EDP: malformed WALL line");
        s.run.profiling_wall_time = parse_nonneg_double(f[1], "wall time");
    } else if (tag == "RANK") {
        s.flush_skipped();
        // Any failure below quarantines the whole block in tolerant mode:
        // events of an undecodable or duplicated rank cannot be attributed.
        s.current = nullptr;
        if (f.size() != 2) throw ParseError("EDP: malformed RANK line");
        const int rank = parse_bounded_int(f[1], "rank", 0);
        if (!s.seen_ranks.insert(rank).second) {
            throw ParseError("EDP: duplicate RANK block for rank " + f[1]);
        }
        trace::RankTrace t;
        t.rank = rank;
        s.run.ranks.push_back(std::move(t));
        s.current = &s.run.ranks.back();
    } else if (tag == "M") {
        if (!s.current) {
            if (s.mode == ParseMode::Tolerant) {
                s.count_skipped();
                return false;
            }
            throw ParseError("EDP: mark before RANK");
        }
        if (f.size() != 6) throw ParseError("EDP: malformed M line");
        NvtxMark m;
        m.kind = parse_mark_kind(f[1]);
        m.epoch = parse_bounded_int(f[2], "epoch", 0);
        m.step = parse_bounded_int(f[3], "step", -1);
        if (f[4] == "train") {
            m.step_kind = StepKind::Train;
        } else if (f[4] == "validation") {
            m.step_kind = StepKind::Validation;
        } else {
            throw ParseError("EDP: unknown step kind '" + f[4] + "'");
        }
        m.time = parse_nonneg_double(f[5], "mark time");
        s.current->marks.push_back(m);
    } else if (tag == "E") {
        if (!s.current) {
            if (s.mode == ParseMode::Tolerant) {
                s.count_skipped();
                return false;
            }
            throw ParseError("EDP: event before RANK");
        }
        if (f.size() != 7) throw ParseError("EDP: malformed E line");
        check_read_name(f[1], "event name");
        trace::TraceEvent e;
        e.name = f[1];
        e.category = trace::parse_category(f[2]);
        e.start = parse_nonneg_double(f[3], "event start");
        e.duration = parse_nonneg_double(f[4], "event duration");
        e.visits = parse_int(f[5], "event visits");
        if (e.visits < 0) {
            throw ParseError("EDP: negative value for event visits");
        }
        e.bytes = parse_nonneg_double(f[6], "event bytes");
        s.current->events.push_back(std::move(e));
    } else if (tag == "END") {
        if (f.size() != 1) throw ParseError("EDP: malformed END line");
        s.flush_skipped();
        s.saw_end = true;
        return true;
    } else {
        throw ParseError("EDP: unknown record tag '" + tag + "'");
    }
    return false;
}

/// getline + CRLF tolerance: a trailing carriage return (Windows-edited
/// profile) is stripped so it cannot corrupt the last field of each line.
bool next_line(std::istream& is, std::string& line, long long& line_no) {
    if (!std::getline(is, line)) {
        return false;
    }
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
        line.pop_back();
    }
    return true;
}

EdpReadResult read_edp_impl(std::istream& is, const EdpReadOptions& options) {
    ParseState s(options);
    const bool tolerant = options.mode == ParseMode::Tolerant;
    std::string line;

    bool reprocess_first_line = false;
    if (!next_line(is, line, s.line_no)) {
        if (!tolerant) throw ParseError("EDP: empty input");
        s.log.add(Severity::Error, "EDP: empty input");
        return {std::move(s.run), std::move(s.log)};
    }
    {
        const auto f = split_tabs(line);
        if (f.size() != 2 || f[0] != "EDP") {
            if (!tolerant) throw ParseError("EDP: missing header");
            s.log.add(Severity::Error, "EDP: missing header", s.line_no);
            // Best effort: the first line may itself be a record (e.g. the
            // header was deleted); feed it through the normal dispatch.
            reprocess_first_line = !line.empty();
        } else if (f[1] != "1") {
            if (!tolerant) {
                throw ParseError("EDP: unsupported version " + f[1]);
            }
            s.log.add(Severity::Error, "EDP: unsupported version " + f[1],
                      s.line_no);
        }
    }

    bool have_line = reprocess_first_line;
    while (have_line || next_line(is, line, s.line_no)) {
        have_line = false;
        if (line.empty()) continue;
        const auto f = split_tabs(line);
        if (!tolerant) {
            if (process_line(s, f)) break;
        } else {
            try {
                if (process_line(s, f)) break;
            } catch (const ParseError& e) {
                s.warn(e.what(), s.line_no, s.current_rank());
                if (f[0] == "RANK") {
                    // The block header is unusable; swallow its records.
                    s.current = nullptr;
                }
            }
        }
    }
    s.flush_skipped();

    if (!s.saw_end) {
        if (!tolerant) throw ParseError("EDP: truncated file (missing END)");
        s.log.add(Severity::Error, "EDP: truncated file (missing END)",
                  s.line_no);
    } else {
        // Anything after END indicates a desynchronised or concatenated
        // file; a hand-edited name containing a newline shows up here.
        std::size_t trailing = 0;
        while (next_line(is, line, s.line_no)) {
            if (!line.empty()) ++trailing;
        }
        if (trailing > 0) {
            if (!tolerant) throw ParseError("EDP: trailing data after END");
            std::ostringstream os;
            os << "EDP: ignored " << trailing
               << " line(s) of trailing data after END";
            s.warn(os.str(), s.line_no);
        }
    }
    return {std::move(s.run), std::move(s.log)};
}

}  // namespace

void write_edp(std::ostream& os, const ProfiledRun& run) {
    // Every double is rendered with the shortest decimal that parses back to
    // the identical bit pattern (fmt::shortest). The historical fixed
    // 12-significant-digit encoding silently lost the low bits of any value
    // off the 12-digit grid, so a write/read cycle was not the identity.
    os << "EDP\t1\n";
    for (const auto& [key, value] : run.params) {
        check_name(key);
        os << "P\t" << key << '\t' << fmt::shortest(value) << '\n';
    }
    os << "REP\t" << run.repetition << '\n';
    os << "WALL\t" << fmt::shortest(run.profiling_wall_time) << '\n';
    for (const auto& rank : run.ranks) {
        os << "RANK\t" << rank.rank << '\n';
        for (const auto& m : rank.marks) {
            os << "M\t" << mark_kind_str(m.kind) << '\t' << m.epoch << '\t'
               << m.step << '\t' << trace::step_kind_name(m.step_kind) << '\t'
               << fmt::shortest(m.time) << '\n';
        }
        for (const auto& e : rank.events) {
            check_name(e.name);
            os << "E\t" << e.name << '\t' << trace::category_name(e.category)
               << '\t' << fmt::shortest(e.start) << '\t'
               << fmt::shortest(e.duration) << '\t' << e.visits << '\t'
               << fmt::shortest(e.bytes) << '\n';
        }
    }
    os << "END\n";
    if (!os) {
        throw Error("EDP: write failed");
    }
}

ProfiledRun read_edp(std::istream& is) {
    EdpReadOptions options;
    options.mode = ParseMode::Strict;
    return read_edp_impl(is, options).run;
}

EdpReadResult read_edp(std::istream& is, const EdpReadOptions& options) {
    return read_edp_impl(is, options);
}

void write_edp_file(const std::string& path, const ProfiledRun& run) {
    std::ofstream os(path);
    if (!os) {
        throw Error("EDP: cannot open for writing: " + path);
    }
    write_edp(os, run);
}

ProfiledRun read_edp_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    return read_edp(is);
}

EdpReadResult read_edp_file(const std::string& path,
                            const EdpReadOptions& options) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    return read_edp_impl(is, options);
}

}  // namespace extradeep::profiling
