#include "profiling/edp_io.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "profiling/edp_stream.hpp"

namespace extradeep::profiling {

namespace {

using trace::NvtxMark;

const char* mark_kind_str(NvtxMark::Kind k) {
    switch (k) {
        case NvtxMark::Kind::EpochStart: return "epoch_start";
        case NvtxMark::Kind::EpochEnd: return "epoch_end";
        case NvtxMark::Kind::StepStart: return "step_start";
        case NvtxMark::Kind::StepEnd: return "step_end";
    }
    throw InvalidArgumentError("mark_kind_str: unknown kind");
}

/// Write-path name guard (kept as InvalidArgumentError for compatibility).
void check_name(const std::string& name) {
    if (name.find('\t') != std::string::npos ||
        name.find('\n') != std::string::npos ||
        name.find('\r') != std::string::npos) {
        throw InvalidArgumentError("EDP: name contains tab/newline: " + name);
    }
}

/// The materialising read path is a fold over the streaming reader: every
/// record is appended to a ProfiledRun. The reader is the single
/// implementation of the EDP grammar and the strict/tolerant diagnostic
/// contract, so the streaming ingestion path (which consumes the same
/// records without materialising) is equivalent by construction — every
/// parser/fault-injection test exercising this function validates the
/// reader too. See DESIGN.md §13.
EdpReadResult read_edp_impl(std::istream& is, const EdpReadOptions& options) {
    EdpStreamReader reader(is, options);
    EdpReadResult out;
    EdpRecord rec;
    while (reader.next(rec)) {
        switch (rec.kind) {
            case EdpRecord::Kind::Param:
                out.run.params[rec.param_name] = rec.number;
                break;
            case EdpRecord::Kind::Repetition:
                out.run.repetition = rec.index;
                break;
            case EdpRecord::Kind::WallTime:
                out.run.profiling_wall_time = rec.number;
                break;
            case EdpRecord::Kind::RankBegin: {
                trace::RankTrace t;
                t.rank = rec.index;
                out.run.ranks.push_back(std::move(t));
                break;
            }
            case EdpRecord::Kind::Mark:
                // The reader only emits marks/events inside a usable RANK
                // block, so ranks is never empty here.
                out.run.ranks.back().marks.push_back(rec.mark);
                break;
            case EdpRecord::Kind::Event:
                out.run.ranks.back().events.push_back(rec.event);
                break;
            case EdpRecord::Kind::End:
                break;
        }
    }
    out.diagnostics = reader.take_diagnostics();
    return out;
}

}  // namespace

void write_edp(std::ostream& os, const ProfiledRun& run) {
    // Every double is rendered with the shortest decimal that parses back to
    // the identical bit pattern (fmt::shortest). The historical fixed
    // 12-significant-digit encoding silently lost the low bits of any value
    // off the 12-digit grid, so a write/read cycle was not the identity.
    os << "EDP\t1\n";
    for (const auto& [key, value] : run.params) {
        check_name(key);
        os << "P\t" << key << '\t' << fmt::shortest(value) << '\n';
    }
    os << "REP\t" << run.repetition << '\n';
    os << "WALL\t" << fmt::shortest(run.profiling_wall_time) << '\n';
    for (const auto& rank : run.ranks) {
        os << "RANK\t" << rank.rank << '\n';
        for (const auto& m : rank.marks) {
            os << "M\t" << mark_kind_str(m.kind) << '\t' << m.epoch << '\t'
               << m.step << '\t' << trace::step_kind_name(m.step_kind) << '\t'
               << fmt::shortest(m.time) << '\n';
        }
        for (const auto& e : rank.events) {
            check_name(e.name);
            os << "E\t" << e.name << '\t' << trace::category_name(e.category)
               << '\t' << fmt::shortest(e.start) << '\t'
               << fmt::shortest(e.duration) << '\t' << e.visits << '\t'
               << fmt::shortest(e.bytes) << '\n';
        }
    }
    os << "END\n";
    if (!os) {
        throw Error("EDP: write failed");
    }
}

ProfiledRun read_edp(std::istream& is) {
    EdpReadOptions options;
    options.mode = ParseMode::Strict;
    return read_edp_impl(is, options).run;
}

EdpReadResult read_edp(std::istream& is, const EdpReadOptions& options) {
    return read_edp_impl(is, options);
}

void write_edp_file(const std::string& path, const ProfiledRun& run) {
    std::ofstream os(path);
    if (!os) {
        throw Error("EDP: cannot open for writing: " + path);
    }
    write_edp(os, run);
}

ProfiledRun read_edp_file(const std::string& path) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    return read_edp(is);
}

EdpReadResult read_edp_file(const std::string& path,
                            const EdpReadOptions& options) {
    std::ifstream is(path);
    if (!is) {
        throw Error("EDP: cannot open for reading: " + path);
    }
    return read_edp_impl(is, options);
}

}  // namespace extradeep::profiling
