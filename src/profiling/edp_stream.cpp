#include "profiling/edp_stream.hpp"

#include <cmath>
#include <istream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "trace/kernel.hpp"

namespace extradeep::profiling {

namespace {

using trace::NvtxMark;
using trace::StepKind;

NvtxMark::Kind parse_mark_kind(const std::string& s) {
    if (s == "epoch_start") return NvtxMark::Kind::EpochStart;
    if (s == "epoch_end") return NvtxMark::Kind::EpochEnd;
    if (s == "step_start") return NvtxMark::Kind::StepStart;
    if (s == "step_end") return NvtxMark::Kind::StepEnd;
    throw ParseError("EDP: unknown mark kind '" + s + "'");
}

bool name_is_clean(const std::string& name) {
    return name.find('\t') == std::string::npos &&
           name.find('\n') == std::string::npos &&
           name.find('\r') == std::string::npos;
}

/// Read-path name guard: a name with an embedded tab/newline can only come
/// from a hand-edited file and would desynchronise the line-based format.
void check_read_name(const std::string& name, const char* what) {
    if (!name_is_clean(name)) {
        throw ParseError(std::string("EDP: ") + what +
                         " contains tab/newline/carriage-return");
    }
}

/// Splits on tabs, reusing the output vector's string capacity across calls
/// (this is the per-line hot path of the streaming reader).
void split_tabs_into(const std::string& line, std::vector<std::string>& out) {
    std::size_t n = 0;
    std::size_t pos = 0;
    while (true) {
        const std::size_t tab = line.find('\t', pos);
        const std::size_t end = tab == std::string::npos ? line.size() : tab;
        if (n < out.size()) {
            out[n].assign(line, pos, end - pos);
        } else {
            out.emplace_back(line, pos, end - pos);
        }
        ++n;
        if (tab == std::string::npos) break;
        pos = tab + 1;
    }
    out.resize(n);
}

double parse_double(const std::string& s, const char* what) {
    double v = 0.0;
    try {
        std::size_t idx = 0;
        v = std::stod(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad number for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: number out of range for ") + what);
    }
    if (!std::isfinite(v)) {
        throw ParseError(std::string("EDP: non-finite value for ") + what +
                         ": '" + s + "'");
    }
    return v;
}

double parse_nonneg_double(const std::string& s, const char* what) {
    const double v = parse_double(s, what);
    if (v < 0.0) {
        throw ParseError(std::string("EDP: negative value for ") + what +
                         ": '" + s + "'");
    }
    return v;
}

long long parse_int(const std::string& s, const char* what) {
    try {
        std::size_t idx = 0;
        const long long v = std::stoll(s, &idx);
        if (idx != s.size()) {
            throw ParseError(std::string("EDP: trailing junk in ") + what);
        }
        return v;
    } catch (const std::invalid_argument&) {
        throw ParseError(std::string("EDP: bad integer for ") + what + ": '" +
                         s + "'");
    } catch (const std::out_of_range&) {
        throw ParseError(std::string("EDP: integer out of range for ") + what);
    }
}

/// Integer destined for an `int` field, with semantic bounds.
int parse_bounded_int(const std::string& s, const char* what, long long lo,
                      long long hi = std::numeric_limits<int>::max()) {
    const long long v = parse_int(s, what);
    if (v < lo || v > hi) {
        throw ParseError(std::string("EDP: ") + what + " out of range: '" + s +
                         "'");
    }
    return static_cast<int>(v);
}

}  // namespace

EdpStreamReader::EdpStreamReader(std::istream& is,
                                 const EdpReadOptions& options)
    : is_(is), mode_(options.mode), log_(options.max_diagnostics) {}

/// getline + CRLF tolerance: a trailing carriage return (Windows-edited
/// profile) is stripped so it cannot corrupt the last field of each line.
bool EdpStreamReader::read_line() {
    if (!std::getline(is_, line_)) {
        return false;
    }
    ++line_no_;
    if (!line_.empty() && line_.back() == '\r') {
        line_.pop_back();
    }
    return true;
}

void EdpStreamReader::flush_skipped() {
    if (skipped_records_ > 0) {
        std::ostringstream os;
        os << "EDP: quarantined " << skipped_records_
           << " event/mark record(s) with no usable RANK block";
        log_.add(Severity::Info, os.str(), skip_start_line_);
        skipped_records_ = 0;
        skip_start_line_ = -1;
    }
}

void EdpStreamReader::count_skipped() {
    if (skipped_records_ == 0) {
        skip_start_line_ = line_no_;
        warn("EDP: event/mark record outside a usable RANK block", line_no_);
    }
    ++skipped_records_;
}

void EdpStreamReader::finish_truncated() {
    if (!saw_end_) {
        if (mode_ != ParseMode::Tolerant) {
            throw ParseError("EDP: truncated file (missing END)");
        }
        log_.add(Severity::Error, "EDP: truncated file (missing END)",
                 line_no_);
    }
}

void EdpStreamReader::finish_after_end() {
    // Anything after END indicates a desynchronised or concatenated file;
    // a hand-edited name containing a newline shows up here.
    std::size_t trailing = 0;
    while (read_line()) {
        if (!line_.empty()) ++trailing;
    }
    if (trailing > 0) {
        if (mode_ != ParseMode::Tolerant) {
            throw ParseError("EDP: trailing data after END");
        }
        std::ostringstream os;
        os << "EDP: ignored " << trailing
           << " line(s) of trailing data after END";
        warn(os.str(), line_no_);
    }
}

bool EdpStreamReader::process_fields(EdpRecord& out) {
    const std::string& tag = fields_[0];
    const auto& f = fields_;
    if (tag == "P") {
        if (f.size() != 3) throw ParseError("EDP: malformed P line");
        check_read_name(f[1], "param name");
        out.number = parse_double(f[2], "param value");
        out.param_name = f[1];
        out.kind = EdpRecord::Kind::Param;
    } else if (tag == "REP") {
        if (f.size() != 2) throw ParseError("EDP: malformed REP line");
        out.index = parse_bounded_int(f[1], "repetition", 0);
        out.kind = EdpRecord::Kind::Repetition;
    } else if (tag == "WALL") {
        if (f.size() != 2) throw ParseError("EDP: malformed WALL line");
        out.number = parse_nonneg_double(f[1], "wall time");
        out.kind = EdpRecord::Kind::WallTime;
    } else if (tag == "RANK") {
        flush_skipped();
        // Any failure below quarantines the whole block in tolerant mode:
        // events of an undecodable or duplicated rank cannot be attributed.
        rank_usable_ = false;
        if (f.size() != 2) throw ParseError("EDP: malformed RANK line");
        const int rank = parse_bounded_int(f[1], "rank", 0);
        if (!seen_ranks_.insert(rank).second) {
            throw ParseError("EDP: duplicate RANK block for rank " + f[1]);
        }
        rank_usable_ = true;
        current_rank_ = rank;
        out.index = rank;
        out.kind = EdpRecord::Kind::RankBegin;
    } else if (tag == "M") {
        if (!rank_usable_) {
            if (mode_ == ParseMode::Tolerant) {
                count_skipped();
                return false;
            }
            throw ParseError("EDP: mark before RANK");
        }
        if (f.size() != 6) throw ParseError("EDP: malformed M line");
        NvtxMark m;
        m.kind = parse_mark_kind(f[1]);
        m.epoch = parse_bounded_int(f[2], "epoch", 0);
        m.step = parse_bounded_int(f[3], "step", -1);
        if (f[4] == "train") {
            m.step_kind = StepKind::Train;
        } else if (f[4] == "validation") {
            m.step_kind = StepKind::Validation;
        } else {
            throw ParseError("EDP: unknown step kind '" + f[4] + "'");
        }
        m.time = parse_nonneg_double(f[5], "mark time");
        out.mark = m;
        out.kind = EdpRecord::Kind::Mark;
    } else if (tag == "E") {
        if (!rank_usable_) {
            if (mode_ == ParseMode::Tolerant) {
                count_skipped();
                return false;
            }
            throw ParseError("EDP: event before RANK");
        }
        if (f.size() != 7) throw ParseError("EDP: malformed E line");
        check_read_name(f[1], "event name");
        out.event.category = trace::parse_category(f[2]);
        out.event.start = parse_nonneg_double(f[3], "event start");
        out.event.duration = parse_nonneg_double(f[4], "event duration");
        out.event.visits = parse_int(f[5], "event visits");
        if (out.event.visits < 0) {
            throw ParseError("EDP: negative value for event visits");
        }
        out.event.bytes = parse_nonneg_double(f[6], "event bytes");
        out.event.name = f[1];
        out.kind = EdpRecord::Kind::Event;
    } else if (tag == "END") {
        if (f.size() != 1) throw ParseError("EDP: malformed END line");
        flush_skipped();
        saw_end_ = true;
        out.kind = EdpRecord::Kind::End;
    } else {
        throw ParseError("EDP: unknown record tag '" + tag + "'");
    }
    return true;
}

bool EdpStreamReader::next(EdpRecord& out) {
    if (stage_ == Stage::Done) {
        return false;
    }
    const bool tolerant = mode_ == ParseMode::Tolerant;

    if (stage_ == Stage::Header) {
        stage_ = Stage::Body;
        if (!read_line()) {
            if (!tolerant) throw ParseError("EDP: empty input");
            log_.add(Severity::Error, "EDP: empty input");
            stage_ = Stage::Done;
            return false;
        }
        split_tabs_into(line_, fields_);
        if (fields_.size() != 2 || fields_[0] != "EDP") {
            if (!tolerant) throw ParseError("EDP: missing header");
            log_.add(Severity::Error, "EDP: missing header", line_no_);
            // Best effort: the first line may itself be a record (e.g. the
            // header was deleted); feed it through the normal dispatch.
            have_pending_line_ = !line_.empty();
        } else if (fields_[1] != "1") {
            if (!tolerant) {
                throw ParseError("EDP: unsupported version " + fields_[1]);
            }
            log_.add(Severity::Error, "EDP: unsupported version " + fields_[1],
                     line_no_);
        }
    }

    while (true) {
        if (have_pending_line_) {
            have_pending_line_ = false;
        } else if (!read_line()) {
            flush_skipped();
            finish_truncated();
            stage_ = Stage::Done;
            return false;
        }
        if (line_.empty()) continue;
        split_tabs_into(line_, fields_);
        bool emitted = false;
        if (!tolerant) {
            emitted = process_fields(out);
        } else {
            try {
                emitted = process_fields(out);
            } catch (const ParseError& e) {
                warn(e.what(), line_no_, current_rank());
                if (fields_[0] == "RANK") {
                    // The block header is unusable; swallow its records.
                    rank_usable_ = false;
                }
                continue;
            }
        }
        if (!emitted) continue;
        if (out.kind == EdpRecord::Kind::End) {
            finish_after_end();
            stage_ = Stage::Done;
        }
        return true;
    }
}

}  // namespace extradeep::profiling
