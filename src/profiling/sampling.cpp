#include "profiling/sampling.hpp"

#include <sstream>

namespace extradeep::profiling {

SamplingStrategy SamplingStrategy::efficient() {
    SamplingStrategy s;
    s.kind = Kind::Efficient;
    s.epochs = 2;
    s.train_steps_per_epoch = 5;
    s.val_steps_per_epoch = 5;
    s.discard_warmup_epochs = 1;
    return s;
}

SamplingStrategy SamplingStrategy::standard() {
    SamplingStrategy s;
    s.kind = Kind::Standard;
    s.epochs = 2;
    s.train_steps_per_epoch = -1;
    s.val_steps_per_epoch = -1;
    s.discard_warmup_epochs = 1;
    return s;
}

sim::TraceOptions SamplingStrategy::trace_options(std::uint64_t run_seed) const {
    sim::TraceOptions o;
    o.epochs = epochs;
    o.train_steps_per_epoch = train_steps_per_epoch;
    o.val_steps_per_epoch = val_steps_per_epoch;
    o.run_seed = run_seed;
    return o;
}

std::string SamplingStrategy::describe() const {
    std::ostringstream os;
    os << (kind == Kind::Efficient ? "efficient sampling" : "standard profiling")
       << " (" << epochs << " epochs, ";
    if (train_steps_per_epoch < 0) {
        os << "all";
    } else {
        os << train_steps_per_epoch;
    }
    os << " train steps, " << discard_warmup_epochs << " warm-up epoch(s) discarded)";
    return os.str();
}

}  // namespace extradeep::profiling
