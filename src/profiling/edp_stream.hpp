#pragma once

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "common/diagnostics.hpp"
#include "profiling/edp_io.hpp"
#include "trace/timeline.hpp"

namespace extradeep::profiling {

/// One decoded EDP record, produced by EdpStreamReader::next. The reader
/// reuses the same EdpRecord object across calls when the caller passes the
/// same instance, so string/vector capacity is recycled on the hot path.
struct EdpRecord {
    enum class Kind {
        Param,       ///< P line: param_name + number
        Repetition,  ///< REP line: index
        WallTime,    ///< WALL line: number
        RankBegin,   ///< RANK line: index (opens a new rank block)
        Mark,        ///< M line: mark (inside the current rank block)
        Event,       ///< E line: event (inside the current rank block)
        End,         ///< END line: end of the profile
    };

    Kind kind = Kind::End;
    std::string param_name;        ///< Param
    double number = 0.0;           ///< Param value / WallTime
    int index = 0;                 ///< Repetition / RankBegin rank id
    trace::NvtxMark mark;          ///< Mark
    trace::TraceEvent event;       ///< Event
};

/// Pull-based, record-at-a-time EDP reader: the single implementation of
/// the EDP grammar and of the strict/tolerant Diagnostic contract.
/// read_edp() is a thin fold over this class (materialising the records
/// into a ProfiledRun), and the streaming ingestion path consumes the same
/// records without ever materialising a full run — so the two paths are
/// equivalent by construction (see DESIGN.md §13).
///
/// Memory behaviour: the reader holds one input line, one record, and the
/// set of rank ids seen so far. It never buffers events or marks, so its
/// footprint is independent of the profile size.
///
/// Usage:
///
///   EdpStreamReader reader(is, options);
///   EdpRecord rec;
///   while (reader.next(rec)) { ...switch (rec.kind)... }
///   // reader.diagnostics() now holds the full parse log.
///
/// Strict mode throws ParseError out of next() on the first problem.
/// Tolerant mode records diagnostics instead and keeps going; malformed
/// records are skipped (next() silently advances past them), and rank
/// blocks whose RANK header is unusable are quarantined: their event/mark
/// records are counted and summarised but never emitted. next() returns
/// false once the input is exhausted; the final structural diagnostics
/// (missing END, trailing data after END) are recorded before the End
/// record / the terminating false is returned.
///
/// Mark and Event records are only ever emitted between a RankBegin and the
/// next RankBegin/End, so a consumer may attribute them to the most recent
/// RankBegin without further checks.
class EdpStreamReader {
public:
    explicit EdpStreamReader(std::istream& is, const EdpReadOptions& options);

    EdpStreamReader(const EdpStreamReader&) = delete;
    EdpStreamReader& operator=(const EdpStreamReader&) = delete;

    /// Advances to the next record. Returns false at end of input. In
    /// strict mode throws ParseError on the first malformed construct.
    bool next(EdpRecord& out);

    /// Diagnostics collected so far (complete once next() returned false or
    /// the End record was emitted).
    const DiagnosticLog& diagnostics() const { return log_; }

    /// Moves the collected diagnostics out (for result assembly).
    DiagnosticLog take_diagnostics() { return std::move(log_); }

    /// True once the END record has been consumed.
    bool saw_end() const { return saw_end_; }

    /// True if no Error-severity diagnostic was recorded so far; mirrors
    /// EdpReadResult::ok().
    bool ok() const { return !log_.has_errors(); }

    /// 1-based line number of the most recently read input line.
    long long line_no() const { return line_no_; }

private:
    enum class Stage { Header, Body, Done };

    bool read_line();
    /// Parses fields_ into `out`; returns true if a record was emitted.
    /// Throws ParseError on malformed content.
    bool process_fields(EdpRecord& out);
    void finish_truncated();
    void finish_after_end();
    void flush_skipped();
    void count_skipped();
    int current_rank() const {
        return rank_usable_ ? current_rank_ : -1;
    }
    void warn(std::string reason, long long line, int rank = -1) {
        log_.add(Severity::Warning, std::move(reason), line, rank);
    }

    std::istream& is_;
    ParseMode mode_;
    DiagnosticLog log_;
    Stage stage_ = Stage::Header;
    std::string line_;
    std::vector<std::string> fields_;
    bool have_pending_line_ = false;  ///< reprocess line_ (headerless file)
    std::set<int> seen_ranks_;
    bool rank_usable_ = false;  ///< a usable RANK block is open
    int current_rank_ = -1;
    long long line_no_ = 0;
    bool saw_end_ = false;
    /// Quarantine bookkeeping (see read_edp's historical ParseState).
    std::size_t skipped_records_ = 0;
    long long skip_start_line_ = -1;
};

}  // namespace extradeep::profiling
