#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "profiling/sampling.hpp"
#include "sim/simulator.hpp"
#include "trace/timeline.hpp"

namespace extradeep::profiling {

/// The output of profiling one application configuration once: the traces of
/// all MPI ranks plus the execution parameters that identify the
/// configuration (a measurement point P(x1, ..., xm)) and the repetition
/// index. This is the simulator-backed equivalent of one Nsight Systems
/// report set.
struct ProfiledRun {
    std::map<std::string, double> params;  ///< e.g. {"x1": 8}
    int repetition = 0;
    std::vector<trace::RankTrace> ranks;
    /// Wall time of executing + profiling this run (for Fig. 8 accounting).
    double profiling_wall_time = 0.0;
};

/// Drives the simulator like Nsight Systems drives a real job: runs the
/// configured sampling strategy and collects per-rank traces, accounting for
/// the profiler's own overhead (paper Sec. 4.2.4: ~5.4 % of execution time).
class Profiler {
public:
    explicit Profiler(SamplingStrategy strategy,
                      double overhead_fraction = 0.054);

    const SamplingStrategy& strategy() const { return strategy_; }

    /// Profiles one run of `simulator`'s configuration. `params` names the
    /// measurement point (the aggregation stage models against these
    /// values); `repetition` seeds the run's noise.
    ProfiledRun profile(const sim::TrainingSimulator& simulator,
                        std::map<std::string, double> params, int repetition,
                        std::uint64_t experiment_seed = 0) const;

    /// Predicted wall-clock cost of profiling one run under this strategy,
    /// including profiler overhead - without generating the events.
    double profiling_cost(const sim::TrainingSimulator& simulator) const;

private:
    SamplingStrategy strategy_;
    double overhead_fraction_;
};

/// Derives the per-run noise seed from the measurement point and the
/// repetition, so profiling and ground-truth measurement of the same run
/// agree.
std::uint64_t run_seed_for(const std::map<std::string, double>& params,
                           int repetition, std::uint64_t experiment_seed);

}  // namespace extradeep::profiling
