#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace extradeep::profiling {

/// How much of a training run is executed and profiled to obtain one
/// measurement (paper Sec. 2.2). The *efficient* strategy is the paper's
/// contribution: run only two epochs with five training and five validation
/// steps each, discard the first (warm-up) epoch, and extrapolate - which
/// cuts profiling time by ~95 % versus profiling full epochs.
struct SamplingStrategy {
    enum class Kind { Standard, Efficient };

    Kind kind = Kind::Efficient;
    int epochs = 2;
    std::int64_t train_steps_per_epoch = 5;  ///< -1 = full n_t
    std::int64_t val_steps_per_epoch = 5;    ///< -1 = full n_v
    int discard_warmup_epochs = 1;  ///< leading epochs excluded from modeling

    /// The paper's default: 5 training + 5 validation steps from 2 epochs,
    /// first epoch discarded as warm-up.
    static SamplingStrategy efficient();

    /// Standard profiling: the full epoch is executed and profiled
    /// (2 epochs so the warm-up epoch can still be discarded).
    static SamplingStrategy standard();

    /// Translates into simulator trace options for one repetition.
    sim::TraceOptions trace_options(std::uint64_t run_seed) const;

    std::string describe() const;
};

}  // namespace extradeep::profiling
