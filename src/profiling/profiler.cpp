#include "profiling/profiler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace extradeep::profiling {

Profiler::Profiler(SamplingStrategy strategy, double overhead_fraction)
    : strategy_(strategy), overhead_fraction_(overhead_fraction) {
    if (overhead_fraction < 0.0) {
        throw InvalidArgumentError("Profiler: negative overhead fraction");
    }
}

ProfiledRun Profiler::profile(const sim::TrainingSimulator& simulator,
                              std::map<std::string, double> params,
                              int repetition,
                              std::uint64_t experiment_seed) const {
    ProfiledRun run;
    run.params = std::move(params);
    run.repetition = repetition;
    const std::uint64_t seed = run_seed_for(run.params, repetition, experiment_seed);
    const sim::TraceOptions opts = strategy_.trace_options(seed);
    const int ranks = simulator.workload().parallel.total_ranks;
    run.ranks.reserve(ranks);
    for (int r = 0; r < ranks; ++r) {
        run.ranks.push_back(simulator.trace_rank(r, opts));
    }
    double wall = 0.0;
    for (const auto& t : run.ranks) {
        wall = std::max(wall, t.wall_time());
    }
    run.profiling_wall_time = wall * (1.0 + overhead_fraction_);
    return run;
}

double Profiler::profiling_cost(const sim::TrainingSimulator& simulator) const {
    const sim::TraceOptions opts = strategy_.trace_options(1);
    return simulator.run_wall_time(opts) * (1.0 + overhead_fraction_);
}

std::uint64_t run_seed_for(const std::map<std::string, double>& params,
                           int repetition, std::uint64_t experiment_seed) {
    std::uint64_t h = mix64(experiment_seed, 0x45445250ULL);  // "EDRP"
    for (const auto& [key, value] : params) {
        std::uint64_t kh = 1469598103934665603ULL;
        for (char c : key) {
            kh = (kh ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
        }
        h = mix64(h, kh);
        h = mix64(h, static_cast<std::uint64_t>(std::llround(value * 1e6)));
    }
    return mix64(h, static_cast<std::uint64_t>(repetition));
}

}  // namespace extradeep::profiling
