#pragma once

#include <iosfwd>
#include <string>

#include "common/diagnostics.hpp"
#include "profiling/profiler.hpp"

namespace extradeep::profiling {

/// EDP ("Extra-Deep Profile") is this library's on-disk profile format - the
/// substitute for Nsight Systems report exports. It is a versioned,
/// tab-separated text format, one file per profiled run, containing the
/// execution parameters, repetition index, and every rank's NVTX marks and
/// kernel events:
///
///   EDP<TAB>1
///   P<TAB>x1<TAB>8
///   REP<TAB>0
///   WALL<TAB>12.34
///   RANK<TAB>0
///   M<TAB>epoch_start<TAB>0<TAB>-1<TAB>train<TAB>0
///   E<TAB>EigenMetaKernel<TAB>CUDA kernel<TAB>0.1<TAB>0.02<TAB>53<TAB>0
///   ...
///   END
///
/// Kernel names must not contain tab/newline/carriage-return characters;
/// both write_edp and read_edp enforce this (a hand-edited name containing a
/// newline would desynchronise the line-based parser).
///
/// Numeric fields are validated at this boundary: NaN and infinity are
/// rejected everywhere, and values that are semantically non-negative
/// (times, durations, byte counts, visits, rank and repetition indices)
/// must be >= 0. Nothing downstream of read_edp ever sees a non-finite
/// metric.

/// How read_edp reacts to malformed input. See DESIGN.md, "EDP
/// error-handling contract". The enum itself lives in common/diagnostics so
/// every versioned format (EDP profiles, .edpm models) shares one contract.
using ParseMode = ::extradeep::ParseMode;

struct EdpReadOptions {
    ParseMode mode = ParseMode::Strict;
    /// Storage cap for collected diagnostics (counts keep accumulating).
    std::size_t max_diagnostics = DiagnosticLog::kDefaultCapacity;
};

/// Outcome of a tolerant (or strict) parse.
struct EdpReadResult {
    ProfiledRun run;
    DiagnosticLog diagnostics;

    /// True if no Error-severity diagnostic was recorded, i.e. the run as a
    /// whole is structurally sound (individual records may still have been
    /// skipped with warnings). Callers should treat ok() == false runs as
    /// quarantined: usable for inspection, not for modeling.
    bool ok() const { return !diagnostics.has_errors(); }
};

/// Serialises a profiled run. Throws InvalidArgumentError on names
/// containing tabs/newlines and Error if the stream write fails.
void write_edp(std::ostream& os, const ProfiledRun& run);

/// Parses a profiled run in strict mode; throws ParseError on malformed
/// input, including version mismatches, truncated files (missing END), and
/// trailing data after END.
ProfiledRun read_edp(std::istream& is);

/// Parses a profiled run under the given options. In Tolerant mode this
/// never throws on malformed content; problems are returned as diagnostics
/// instead. In Strict mode it behaves exactly like read_edp(is).
EdpReadResult read_edp(std::istream& is, const EdpReadOptions& options);

/// File-based convenience wrappers. Throw Error on I/O failure (in both
/// modes: an unopenable file is an environment problem, not dirty data).
void write_edp_file(const std::string& path, const ProfiledRun& run);
ProfiledRun read_edp_file(const std::string& path);
EdpReadResult read_edp_file(const std::string& path,
                            const EdpReadOptions& options);

}  // namespace extradeep::profiling
