#pragma once

#include <iosfwd>
#include <string>

#include "profiling/profiler.hpp"

namespace extradeep::profiling {

/// EDP ("Extra-Deep Profile") is this library's on-disk profile format - the
/// substitute for Nsight Systems report exports. It is a versioned,
/// tab-separated text format, one file per profiled run, containing the
/// execution parameters, repetition index, and every rank's NVTX marks and
/// kernel events:
///
///   EDP<TAB>1
///   P<TAB>x1<TAB>8
///   REP<TAB>0
///   WALL<TAB>12.34
///   RANK<TAB>0
///   M<TAB>epoch_start<TAB>0<TAB>-1<TAB>train<TAB>0
///   E<TAB>EigenMetaKernel<TAB>CUDA kernel<TAB>0.1<TAB>0.02<TAB>53<TAB>0
///   ...
///   END
///
/// Kernel names must not contain tab characters; write_edp enforces this.

/// Serialises a profiled run. Throws InvalidArgumentError on names
/// containing tabs/newlines.
void write_edp(std::ostream& os, const ProfiledRun& run);

/// Parses a profiled run; throws ParseError on malformed input, including
/// version mismatches and truncated files (missing END).
ProfiledRun read_edp(std::istream& is);

/// File-based convenience wrappers. Throw Error on I/O failure.
void write_edp_file(const std::string& path, const ProfiledRun& run);
ProfiledRun read_edp_file(const std::string& path);

}  // namespace extradeep::profiling
