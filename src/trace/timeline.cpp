#include "trace/timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace extradeep::trace {

std::string_view step_kind_name(StepKind kind) {
    switch (kind) {
        case StepKind::Train: return "train";
        case StepKind::Validation: return "validation";
    }
    throw InvalidArgumentError("step_kind_name: unknown kind");
}

double RankTrace::wall_time() const {
    double t = 0.0;
    for (const auto& e : events) {
        t = std::max(t, e.end());
    }
    for (const auto& m : marks) {
        t = std::max(t, m.time);
    }
    return t;
}

std::vector<StepWindow> segment_steps(const RankTrace& trace) {
    // Sort marks by time; the simulator emits them ordered, but external
    // profiles (EDP files) may not be.
    std::vector<NvtxMark> marks = trace.marks;
    // Ties in time are resolved by nesting order: an epoch opens before its
    // first step, a step closes before the next one opens, and all steps
    // close before their epoch does. This makes back-to-back marks with
    // identical timestamps parse correctly.
    auto kind_rank = [](NvtxMark::Kind k) {
        switch (k) {
            case NvtxMark::Kind::EpochStart: return 0;
            case NvtxMark::Kind::StepEnd: return 1;
            case NvtxMark::Kind::StepStart: return 2;
            case NvtxMark::Kind::EpochEnd: return 3;
        }
        return 4;
    };
    std::stable_sort(marks.begin(), marks.end(),
                     [&](const NvtxMark& a, const NvtxMark& b) {
                         if (a.time != b.time) {
                             return a.time < b.time;
                         }
                         return kind_rank(a.kind) < kind_rank(b.kind);
                     });

    std::vector<StepWindow> windows;
    bool in_epoch = false;
    bool in_step = false;
    int current_epoch = -1;
    StepWindow current;
    // Pending async gap between two steps of the same epoch.
    bool have_prev_step_end = false;
    StepWindow gap;

    auto flush_gap = [&](double gap_end) {
        if (have_prev_step_end) {
            gap.end = gap_end;
            windows.push_back(gap);
            have_prev_step_end = false;
        }
    };

    for (const auto& m : marks) {
        switch (m.kind) {
            case NvtxMark::Kind::EpochStart:
                if (in_epoch) {
                    throw ParseError("segment_steps: nested epoch start");
                }
                in_epoch = true;
                current_epoch = m.epoch;
                break;
            case NvtxMark::Kind::EpochEnd:
                if (!in_epoch || m.epoch != current_epoch) {
                    throw ParseError("segment_steps: unmatched epoch end");
                }
                if (in_step) {
                    throw ParseError("segment_steps: epoch end inside a step");
                }
                // Async work after the last step of the epoch still belongs
                // to this epoch.
                flush_gap(m.time);
                in_epoch = false;
                break;
            case NvtxMark::Kind::StepStart:
                if (!in_epoch) {
                    throw ParseError("segment_steps: step start outside an epoch");
                }
                if (in_step) {
                    throw ParseError("segment_steps: nested step start");
                }
                flush_gap(m.time);
                in_step = true;
                current = StepWindow{};
                current.epoch = current_epoch;
                current.step = m.step;
                current.kind = m.step_kind;
                current.start = m.time;
                break;
            case NvtxMark::Kind::StepEnd:
                if (!in_step || m.step != current.step) {
                    throw ParseError("segment_steps: unmatched step end");
                }
                current.end = m.time;
                windows.push_back(current);
                // Open an async-gap window that will be closed by the next
                // step start or the epoch end.
                gap = StepWindow{};
                gap.epoch = current_epoch;
                gap.step = current.step;
                gap.kind = current.kind;
                gap.async_gap = true;
                gap.start = m.time;
                have_prev_step_end = true;
                in_step = false;
                break;
        }
    }
    if (in_epoch || in_step) {
        throw ParseError("segment_steps: trace ends inside an open epoch/step");
    }

    // Assign events to windows by start time. Windows are disjoint and
    // ordered, so a single merge pass suffices.
    std::vector<std::size_t> order(trace.events.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return trace.events[a].start < trace.events[b].start;
                     });

    std::size_t w = 0;
    for (std::size_t idx : order) {
        const double t = trace.events[idx].start;
        while (w < windows.size() && windows[w].end <= t) {
            ++w;
        }
        if (w == windows.size()) {
            break;  // event after the last epoch: teardown, ignored
        }
        if (t >= windows[w].start) {
            windows[w].event_indices.push_back(idx);
        }
        // else: event before the first window of its region (e.g. program
        // initialisation before epoch 0) -> ignored here.
    }
    return windows;
}

std::vector<StepWindow> windows_of_epoch(const std::vector<StepWindow>& windows,
                                         int epoch) {
    std::vector<StepWindow> out;
    for (const auto& w : windows) {
        if (w.epoch == epoch) {
            out.push_back(w);
        }
    }
    return out;
}

int epoch_count(const RankTrace& trace) {
    int max_epoch = -1;
    for (const auto& m : trace.marks) {
        max_epoch = std::max(max_epoch, m.epoch);
    }
    return max_epoch + 1;
}

int step_count(const RankTrace& trace, int epoch, StepKind kind) {
    int n = 0;
    for (const auto& m : trace.marks) {
        if (m.kind == NvtxMark::Kind::StepStart && m.epoch == epoch &&
            m.step_kind == kind) {
            ++n;
        }
    }
    return n;
}

}  // namespace extradeep::trace
