#pragma once

#include <cstdint>
#include <string>

#include "trace/kernel.hpp"

namespace extradeep::trace {

/// One recorded kernel/function execution on a single rank's timeline.
/// Times are in seconds since the start of the run on that rank.
struct TraceEvent {
    std::string name;        ///< kernel/function name, e.g. "EigenMetaKernel"
    KernelCategory category = KernelCategory::CudaKernel;
    double start = 0.0;      ///< start timestamp [s]
    double duration = 0.0;   ///< total duration [s] over all collapsed visits
    double bytes = 0.0;      ///< transferred bytes (memcpy/memset/comm), else 0
    /// Number of executions this record represents. Profiles may
    /// pre-aggregate repeated executions of a kernel within one step into a
    /// single record whose duration/bytes are the totals; visits preserves
    /// the execution count for the paper's visits metric.
    std::int64_t visits = 1;

    double end() const { return start + duration; }
};

/// Whether a step processes training data (gradient update) or validation
/// data (no gradient update).
enum class StepKind {
    Train,
    Validation,
};

std::string_view step_kind_name(StepKind kind);

/// One NVTX timestamp mark injected by the instrumentation tool into the
/// step/epoch callbacks (Sec. 2.2 and Fig. 2, step 1).
struct NvtxMark {
    enum class Kind {
        EpochStart,
        EpochEnd,
        StepStart,
        StepEnd,
    };
    Kind kind = Kind::EpochStart;
    int epoch = 0;  ///< 0-based epoch index
    int step = -1;  ///< 0-based step index within the epoch, -1 for epoch marks
    StepKind step_kind = StepKind::Train;  ///< valid for step marks only
    double time = 0.0;
};

}  // namespace extradeep::trace
