#pragma once

#include <string>
#include <string_view>

namespace extradeep::trace {

/// The kernel/function categories that the paper's toolchain distinguishes
/// (Sec. 2.1, step 2): CUDA kernels, memset, memcopy and NCCL operations on
/// the GPU; CUDA API, cuBLAS, cuDNN, MPI, OS, and user-defined (NVTX
/// annotated) function calls on the CPU.
enum class KernelCategory {
    CudaKernel,    ///< GPU compute kernel
    Memcpy,        ///< cudaMemcpy (HtoD / DtoH / DtoD)
    Memset,        ///< cudaMemset
    Nccl,          ///< NCCL collective on GPU
    CudaApi,       ///< CUDA runtime/driver API call on CPU
    Cublas,        ///< cuBLAS call
    Cudnn,         ///< cuDNN call
    Mpi,           ///< MPI function call
    Os,            ///< OS library call (I/O, threading, ...)
    NvtxFunction,  ///< user-defined function covered by NVTX instrumentation
};

/// Number of distinct kernel categories (for array-indexed tables).
inline constexpr int kKernelCategoryCount = 10;

/// Training-phase classification used for application models (Sec. 2.2,
/// step 4 of Fig. 2): every kernel is either computation, communication, or
/// a memory operation.
enum class Phase {
    Computation,
    Communication,
    MemoryOp,
};

inline constexpr int kPhaseCount = 3;

/// Maps a kernel category to its application-model phase. Communication is
/// MPI + NCCL; memory operations are memcpy + memset; everything else
/// (CUDA kernels, cuBLAS, cuDNN, CUDA API, OS, user functions) counts as
/// computation, following the paper's category totals.
Phase phase_of(KernelCategory category);

/// Human-readable category name ("CUDA kernel", "MPI", ...). Matches the
/// model-type rows of the paper's Table 2.
std::string_view category_name(KernelCategory category);

/// Parses the output of category_name back into the enum. Throws
/// ParseError for unknown names (used by the EDP profile reader).
KernelCategory parse_category(std::string_view name);

/// Human-readable phase name ("computation", ...).
std::string_view phase_name(Phase phase);

}  // namespace extradeep::trace
