#pragma once

#include <cstddef>
#include <vector>

#include "trace/event.hpp"

namespace extradeep::trace {

/// The complete profile of a single MPI rank for one application run:
/// a flat list of kernel events plus the NVTX epoch/step marks.
struct RankTrace {
    int rank = 0;
    std::vector<TraceEvent> events;
    std::vector<NvtxMark> marks;

    /// Wall time of the rank's timeline: max event/mark end time.
    double wall_time() const;
};

/// A window of a rank timeline corresponding to one training/validation
/// step, or to the asynchronous gap between two steps.
struct StepWindow {
    int epoch = 0;
    int step = 0;               ///< step index; for async windows, the index
                                ///< of the *preceding* step
    StepKind kind = StepKind::Train;
    bool async_gap = false;     ///< true if this window covers the time
                                ///< between step `step` end and the next start
    double start = 0.0;
    double end = 0.0;
    std::vector<std::size_t> event_indices;  ///< indices into RankTrace::events
};

/// Splits a rank trace into per-step windows using the NVTX marks, as in
/// Fig. 2 step (1). Events whose start time falls inside [step start, step
/// end) are assigned to that step; events falling between two steps of the
/// same epoch (asynchronously executed kernels) are collected into dedicated
/// async-gap windows so they can be aggregated the same way (Sec. 2.2).
/// Events before the first epoch or after the last are ignored (program
/// initialisation / teardown, modeled separately).
/// Throws ParseError if the marks are not properly nested/ordered.
std::vector<StepWindow> segment_steps(const RankTrace& trace);

/// Convenience filter: all windows of a given epoch.
std::vector<StepWindow> windows_of_epoch(const std::vector<StepWindow>& windows,
                                         int epoch);

/// Number of epochs covered by a set of marks (max epoch index + 1).
int epoch_count(const RankTrace& trace);

/// Number of steps of the given kind recorded in the given epoch.
int step_count(const RankTrace& trace, int epoch, StepKind kind);

}  // namespace extradeep::trace
