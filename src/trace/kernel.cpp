#include "trace/kernel.hpp"

#include "common/error.hpp"

namespace extradeep::trace {

Phase phase_of(KernelCategory category) {
    switch (category) {
        case KernelCategory::Mpi:
        case KernelCategory::Nccl:
            return Phase::Communication;
        case KernelCategory::Memcpy:
        case KernelCategory::Memset:
            return Phase::MemoryOp;
        case KernelCategory::CudaKernel:
        case KernelCategory::CudaApi:
        case KernelCategory::Cublas:
        case KernelCategory::Cudnn:
        case KernelCategory::Os:
        case KernelCategory::NvtxFunction:
            return Phase::Computation;
    }
    throw InvalidArgumentError("phase_of: unknown category");
}

std::string_view category_name(KernelCategory category) {
    switch (category) {
        case KernelCategory::CudaKernel: return "CUDA kernel";
        case KernelCategory::Memcpy: return "Memcpy";
        case KernelCategory::Memset: return "Memset";
        case KernelCategory::Nccl: return "NCCL";
        case KernelCategory::CudaApi: return "CUDA API";
        case KernelCategory::Cublas: return "cuBLAS";
        case KernelCategory::Cudnn: return "cuDNN";
        case KernelCategory::Mpi: return "MPI";
        case KernelCategory::Os: return "OS";
        case KernelCategory::NvtxFunction: return "NVTX function";
    }
    throw InvalidArgumentError("category_name: unknown category");
}

KernelCategory parse_category(std::string_view name) {
    if (name == "CUDA kernel") return KernelCategory::CudaKernel;
    if (name == "Memcpy") return KernelCategory::Memcpy;
    if (name == "Memset") return KernelCategory::Memset;
    if (name == "NCCL") return KernelCategory::Nccl;
    if (name == "CUDA API") return KernelCategory::CudaApi;
    if (name == "cuBLAS") return KernelCategory::Cublas;
    if (name == "cuDNN") return KernelCategory::Cudnn;
    if (name == "MPI") return KernelCategory::Mpi;
    if (name == "OS") return KernelCategory::Os;
    if (name == "NVTX function") return KernelCategory::NvtxFunction;
    throw ParseError("parse_category: unknown category name '" +
                     std::string(name) + "'");
}

std::string_view phase_name(Phase phase) {
    switch (phase) {
        case Phase::Computation: return "computation";
        case Phase::Communication: return "communication";
        case Phase::MemoryOp: return "memory ops";
    }
    throw InvalidArgumentError("phase_name: unknown phase");
}

}  // namespace extradeep::trace
