#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/report.hpp"
#include "extradeep/runner.hpp"
#include "fleet/continuous.hpp"
#include "sim/drift.hpp"

namespace extradeep::fleet {

/// Configuration of the end-to-end continuous-modeling drift scenario (the
/// `fleet_drift_gate` ctest and `extradeep-fleet --quick`).
struct ScenarioOptions {
    /// One run per rank count per round (so each round refreshes every
    /// modeling point once).
    std::vector<int> ranks = {2, 4, 6, 8, 10};
    /// Rounds pushed under the base system before the drift is injected.
    int pre_rounds = 3;
    /// Round budget for re-convergence after the injection.
    int max_drift_rounds = 10;
    /// The injected mid-stream change (onset is implied by the phases).
    /// Hardware degradation hits communication, the dominant phase at the
    /// probe scale, so the ground-truth shift is large (~1.5x at hw:2) and
    /// a stale model is unambiguously outside the convergence tolerance.
    sim::DriftKind drift_kind = sim::DriftKind::HardwareDegrade;
    double drift_severity = 2.0;
    /// Probe point for convergence checks (a modeling point, so model error
    /// against ground truth is small once the window has turned over).
    int probe_x = 10;
    /// Served prediction within this relative error of the drifted ground
    /// truth, sustained for `sustain` consecutive rounds, counts as
    /// converged.
    double rel_tol = 0.12;
    int sustain = 2;
    /// Deterministically corrupted payloads pushed after convergence; every
    /// one must be rejected without perturbing the exported model bytes.
    int corrupt_pushes = 5;
    /// Template experiment (system = the base fleet before drift).
    ExperimentSpec spec;
    int serve_threads = 4;
    int window = 6;
    int fit_threads = 2;
    /// Scratch directory; empty = a per-process directory under the system
    /// temp dir, removed afterwards.
    std::string work_dir;
    /// Progress lines on stderr.
    bool verbose = false;
};

/// Outcome plus the BENCH_fleet.json records (schema extradeep-fleet/1).
struct ScenarioReport {
    bool converged = false;
    /// Runs pushed after the injection until convergence was first sustained
    /// (the paper-facing tracking metric; ranks.size() runs per round).
    int convergence_lag_runs = 0;
    FleetStats stats;
    std::vector<eval::MetricRecord> records;
};

/// Runs the full loop end to end, all over real TCP: daemon with an
/// attached FleetService → baseline rounds pushed via the `ingest` verb →
/// drift injection (every later run generated on the degraded system) →
/// per-round re-fit + hot swap → served `predict` probes until the answer
/// tracks the new ground truth — with a concurrent query client running the
/// whole time (its error/drop counts are records: both must be zero, the
/// zero-downtime half of the acceptance criteria) and a corrupt-push batch
/// at the end (quarantine without model perturbation). Throws Error on
/// infrastructure failures; scenario outcomes are reported as records, not
/// exceptions, so the gate decides.
ScenarioReport run_drift_scenario(const ScenarioOptions& options);

}  // namespace extradeep::fleet
