#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aggregation/stream.hpp"
#include "common/parallel_for.hpp"
#include "extradeep/runner.hpp"
#include "fleet/spool.hpp"
#include "obs/clock.hpp"
#include "serve/query.hpp"
#include "serve/registry.hpp"

namespace extradeep::fleet {

/// Policy knobs of the continuous-modeling loop (DESIGN.md §14).
struct FleetOptions {
    /// Export directory: one `<experiment>.edpm` per fitted experiment,
    /// written atomically (tmp + rename) and hot-swapped into the registry
    /// via reload(). Created if missing.
    std::string models_dir;
    /// Spool directory watched by poll_once (`<spool>/<experiment>/*.edp`);
    /// empty = push-only (runs arrive via the `ingest` verb exclusively).
    std::string spool_dir;
    /// Template experiment: defines the step math, provenance, sampling
    /// (warmup discard), and seed recorded in exported models. The runs
    /// themselves arrive at ingest time; modeling_ranks/repetitions of the
    /// template are not used.
    ExperimentSpec spec;
    /// Debounce: a refit is dispatched once an experiment has at least this
    /// many un-fitted runs ...
    int min_runs = 3;
    /// ... or at least one un-fitted run that has been waiting longer than
    /// this quiescence window (no newer arrival since), ...
    std::uint64_t quiescence_ns = 200'000'000;
    /// ... or the un-fitted backlog reaches this hard cap (dispatch
    /// immediately regardless of arrival rate).
    int max_pending = 16;
    /// Sliding window: newest runs retained per configuration (x1 value).
    /// Re-fits aggregate over the window, so the model tracks drift with a
    /// memory of `window` runs per point.
    int window = 6;
    /// Background fit workers (the refit ThreadPool). >= 1.
    int fit_threads = 2;
    /// Upper bound on one `ingest` payload (escaped bytes).
    std::size_t max_payload_bytes = 8u << 20;
    /// Time source for debounce and latency metrics; nullptr = steady clock.
    /// Inject an obs::FakeClock to make debounce decisions deterministic.
    const obs::Clock* clock = nullptr;
};

/// Counter snapshot behind the `fleet-stats` verb (all totals since start).
struct FleetStats {
    std::uint64_t accepted = 0;     ///< runs folded into a window
    std::uint64_t quarantined = 0;  ///< runs rejected (parse/validate/params)
    std::uint64_t refits = 0;       ///< fit jobs that produced a model
    std::uint64_t refits_skipped = 0;  ///< jobs skipped (< 5 configs)
    std::uint64_t refit_failures = 0;  ///< jobs that threw (kept loop alive)
    std::uint64_t swaps = 0;           ///< models exported + hot-swapped
    std::uint64_t stale_discarded = 0;  ///< fits outrun by a newer install
    std::uint64_t spool_files = 0;      ///< spool files ingested
    std::uint64_t staleness_runs = 0;  ///< Σ accepted-but-not-yet-served runs
    std::size_t experiments = 0;
};

/// The continuous-modeling fleet daemon core: accepts profile runs while
/// serving, incrementally re-aggregates them, re-fits affected experiments
/// on a background pool, and hot-swaps the exported models into the shared
/// ModelRegistry — predictions keep flowing from the last good model during
/// every re-fit (keep-last-good, DESIGN.md §14).
///
/// Ingest path (push via the serve `ingest` verb, or spool files picked up
/// by poll_once — both run the identical pipeline): tolerant EDP parse →
/// validate_run → per-run reduction (RunAggregator, O(kernels) retained) →
/// sliding window per configuration. A run that fails any stage is
/// quarantined: counted, reported as an `err` line (or a diagnostic), and
/// guaranteed to leave the aggregate untouched — corrupt input can never
/// poison the models.
///
/// Debounce and generations: every accepted run bumps the experiment's
/// ingest generation. poll_once dispatches a refit when the un-fitted
/// backlog reaches min_runs, a run has waited out the quiescence window, or
/// the backlog hits max_pending. Each fit job carries the generation it
/// observed; an install only proceeds if its generation exceeds the highest
/// installed one, so a slow stale fit can never overwrite a newer model
/// (it is counted as stale_discarded instead). Staleness — the total number
/// of accepted runs not yet reflected in served models — is exported as a
/// gauge and reaches zero exactly when the loop has caught up (drain()).
///
/// Thread safety: all public methods are thread-safe; fits run without any
/// service lock held.
class FleetService final : public serve::FleetHandler,
                           public std::enable_shared_from_this<FleetService> {
public:
    /// Creates models_dir if missing and primes `registry` from it
    /// (load_directory), so a restarted daemon serves its previous exports
    /// immediately. Throws InvalidArgumentError on bad options.
    FleetService(FleetOptions options,
                 std::shared_ptr<serve::ModelRegistry> registry);
    ~FleetService() override;

    FleetService(const FleetService&) = delete;
    FleetService& operator=(const FleetService&) = delete;

    // serve::FleetHandler ----------------------------------------------------
    std::string handle_ingest(const std::string& experiment,
                              const std::string& payload) override;
    std::string fleet_stats_line() override;
    void attach_metrics(obs::MetricsRegistry& metrics) override;
    void update_metrics() override;

    /// One tick of the continuous loop: scans the spool (if configured) for
    /// new runs, then applies the debounce policy and dispatches due refit
    /// jobs to the pool. Returns the number of jobs dispatched. Never
    /// throws: quarantined spool files are counted and skipped.
    int poll_once();

    /// Runs poll_once every `interval_ms` on a background thread until
    /// stop(). Idempotent start; stop() is called by the destructor.
    void start(int interval_ms);
    void stop();

    /// Force-dispatches every pending run and blocks until all dispatched
    /// fits have completed and installed (staleness 0 unless skipped/failed).
    void drain();

    /// Counter snapshot (also the data behind fleet_stats_line()).
    FleetStats stats() const;

    /// Installs an already-fitted model under the generation protocol: the
    /// atomic export + registry hot swap happens only if `generation`
    /// exceeds the experiment's highest installed generation; otherwise the
    /// model is discarded as stale. Returns true if installed. Public as the
    /// deterministic test seam for the stale-fit guard (the refit jobs go
    /// through exactly this path).
    bool install_model(const std::string& experiment, std::uint64_t generation,
                       const serve::ServableModel& model);

    const std::shared_ptr<serve::ModelRegistry>& registry() const {
        return registry_;
    }
    const FleetOptions& options() const { return options_; }

private:
    /// Sliding per-configuration window of reduced runs.
    struct ConfigSlot {
        std::map<std::string, double> params;
        std::deque<aggregation::RunAggregate> window;
    };

    /// All mutable state of one experiment (guarded by mutex_).
    struct ExperimentState {
        std::map<double, ConfigSlot> configs;  ///< keyed by x1
        std::uint64_t ingest_gen = 0;      ///< accepted runs, monotonically
        std::uint64_t dispatched_gen = 0;  ///< highest gen handed to a fit
        std::uint64_t fitted_gen = 0;      ///< highest gen whose fit finished
        std::uint64_t installed_gen = 0;   ///< highest gen serving traffic
        std::uint64_t last_arrival_ns = 0;
    };

    /// Immutable inputs of one fit job, snapshotted under the lock.
    struct FitJob {
        std::string experiment;
        std::uint64_t generation = 0;
        std::vector<ConfigSlot> configs;  ///< ascending x1
    };

    /// Shared ingest pipeline; `source` labels diagnostics ("push"/path).
    /// Returns the response payload; throws Error on quarantine.
    std::string ingest_bytes(const std::string& experiment,
                             const std::string& edp_bytes,
                             const std::string& source);
    [[noreturn]] void quarantine(const std::string& reason);

    /// Applies the debounce policy and submits due jobs. Caller holds no
    /// lock. Returns jobs dispatched.
    int dispatch_due(bool force);

    /// Runs one fit job on a pool worker (never throws).
    void run_fit_job(FitJob job);
    /// Marks a job's generation as fitted and wakes drain().
    void finish_job(const std::string& experiment, std::uint64_t generation);

    std::uint64_t staleness_locked() const;

    FleetOptions options_;
    std::shared_ptr<serve::ModelRegistry> registry_;
    const obs::Clock* clock_;
    SpoolScanner spool_;

    mutable std::mutex mutex_;
    std::condition_variable drain_cv_;
    std::map<std::string, ExperimentState> experiments_;
    FleetStats stats_;
    int jobs_in_flight_ = 0;

    std::mutex install_mutex_;  ///< serialises export + reload, not fits

    std::mutex poller_mutex_;
    std::thread poller_;
    std::condition_variable poller_cv_;
    bool poller_stop_ = false;

    // Instruments (engine registry); null until attach_metrics.
    obs::Counter* accepted_counter_ = nullptr;
    obs::Counter* quarantined_counter_ = nullptr;
    obs::Counter* refit_counter_ = nullptr;
    obs::Counter* swap_counter_ = nullptr;
    obs::Counter* stale_counter_ = nullptr;
    obs::Gauge* queued_gauge_ = nullptr;
    obs::Gauge* staleness_gauge_ = nullptr;
    obs::Histogram* refit_latency_ = nullptr;
    obs::Histogram* swap_latency_ = nullptr;

    /// Declared last so it is destroyed first: destruction drops queued fit
    /// jobs and waits for running ones, which still use the members above.
    ThreadPool pool_;
};

}  // namespace extradeep::fleet
