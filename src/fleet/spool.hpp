#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace extradeep::fleet {

/// One spool file discovered by a scan, attributed to its experiment.
struct SpoolFile {
    std::string experiment;  ///< subdirectory name == registry model name
    std::string path;        ///< absolute path of the .edp file
};

/// Watches a spool directory for profile runs dropped by fleet collectors.
///
/// Layout contract: `<spool>/<experiment>/<run>.edp`, one EDP profile per
/// file, where `<experiment>` is the model name the runs belong to
/// ([A-Za-z0-9._-], the registry-key alphabet). Crash consistency is the
/// writer's half of the bargain: write to a temporary name (`*.tmp`, or any
/// name not ending in `.edp`) in the SAME directory, then rename(2) into
/// place — the scanner only ever sees complete files because rename is
/// atomic on POSIX. Dotfiles and non-`.edp` names are ignored; a top-level
/// file or an invalidly named subdirectory is counted as skipped (once per
/// scan) but never touched.
///
/// The scanner never moves, renames, or deletes spool files; it remembers
/// processed paths in memory. After a daemon restart the set is empty and
/// every file is handed out again in the same deterministic order
/// (experiment, then filename, both lexicographic) — re-ingesting the full
/// spool rebuilds the identical aggregation state, which is the fleet
/// loop's crash-recovery story (DESIGN.md §14).
class SpoolScanner {
public:
    /// `dir` may not exist yet (e.g. created by a collector later): a scan
    /// of a missing directory yields nothing. Not thread-safe; the fleet
    /// service serialises scans.
    explicit SpoolScanner(std::string dir);

    const std::string& dir() const { return dir_; }

    /// Returns the spool files not seen by any previous scan, ordered by
    /// (experiment, filename), and marks them seen.
    std::vector<SpoolFile> scan();

    /// Paths handed out so far.
    std::size_t seen() const { return seen_.size(); }

    /// Entries skipped for layout violations over all scans (top-level
    /// files, subdirectories whose name is not a valid model name).
    std::uint64_t skipped() const { return skipped_; }

private:
    std::string dir_;
    std::set<std::string> seen_;
    std::uint64_t skipped_ = 0;
};

/// True if `name` is usable as a registry model name ([A-Za-z0-9._-],
/// 1..128 chars) — the fleet's experiment-name contract for both spool
/// subdirectories and the `ingest` verb.
bool valid_experiment_name(const std::string& name);

}  // namespace extradeep::fleet
