#include "fleet/continuous.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "aggregation/validate.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "obs/trace.hpp"
#include "profiling/edp_io.hpp"
#include "serve/serialize.hpp"

namespace extradeep::fleet {

namespace fs = std::filesystem;

namespace {

/// First Error-severity diagnostic (fallback: summary) as a single-line
/// reason for quarantine messages.
std::string first_error_reason(const DiagnosticLog& log) {
    for (const auto& d : log.entries()) {
        if (d.severity == Severity::Error) {
            std::string reason = d.reason;
            std::replace(reason.begin(), reason.end(), '\n', ' ');
            return reason;
        }
    }
    return log.summary();
}

}  // namespace

FleetService::FleetService(FleetOptions options,
                           std::shared_ptr<serve::ModelRegistry> registry)
    : options_(std::move(options)),
      registry_(std::move(registry)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &obs::steady_clock_instance()),
      spool_(options_.spool_dir),
      pool_(std::max(options_.fit_threads, 1) + 1) {
    if (registry_ == nullptr) {
        throw InvalidArgumentError("FleetService: null registry");
    }
    if (options_.models_dir.empty()) {
        throw InvalidArgumentError("FleetService: models_dir required");
    }
    if (options_.min_runs < 1 || options_.window < 1 ||
        options_.max_pending < options_.min_runs) {
        throw InvalidArgumentError(
            "FleetService: require min_runs >= 1, window >= 1, "
            "max_pending >= min_runs");
    }
    std::error_code ec;
    fs::create_directories(options_.models_dir, ec);
    if (ec) {
        throw Error("FleetService: cannot create models dir " +
                    options_.models_dir + ": " + ec.message());
    }
    // Restart story: previous exports come back immediately (keep-last-good
    // across process restarts); the spool is re-ingested by poll_once.
    registry_->load_directory(options_.models_dir);
}

FleetService::~FleetService() { stop(); }

void FleetService::quarantine(const std::string& reason) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
    }
    if (quarantined_counter_ != nullptr) {
        quarantined_counter_->increment();
    }
    throw Error("quarantined: " + reason);
}

std::string FleetService::handle_ingest(const std::string& experiment,
                                        const std::string& payload) {
    if (!valid_experiment_name(experiment)) {
        throw Error("invalid experiment name (want [A-Za-z0-9._-], max 128)");
    }
    if (payload.size() > options_.max_payload_bytes) {
        throw Error("payload too large (" + std::to_string(payload.size()) +
                    " > " + std::to_string(options_.max_payload_bytes) +
                    " bytes)");
    }
    return ingest_bytes(experiment, serve::unescape_lines(payload), "push");
}

std::string FleetService::ingest_bytes(const std::string& experiment,
                                       const std::string& edp_bytes,
                                       const std::string& source) {
    const obs::Span span{"fleet.ingest"};
    profiling::EdpReadResult parsed;
    try {
        std::istringstream is(edp_bytes);
        parsed = profiling::read_edp(
            is, profiling::EdpReadOptions{ParseMode::Tolerant, 64});
    } catch (const Error& e) {
        quarantine(source + ": " + e.what());
    }
    if (!parsed.ok()) {
        quarantine(source + ": parse: " +
                   first_error_reason(parsed.diagnostics));
    }
    const aggregation::RunVerdict verdict =
        aggregation::validate_run(parsed.run);
    if (!verdict.keep) {
        quarantine(source + ": validation: " +
                   first_error_reason(verdict.diagnostics));
    }
    const auto x1_it = parsed.run.params.find("x1");
    if (x1_it == parsed.run.params.end()) {
        quarantine(source + ": missing parameter x1");
    }
    const double x1 = x1_it->second;
    if (!std::isfinite(x1) || x1 < 1.0 || x1 != std::floor(x1)) {
        quarantine(source + ": parameter x1 must be a positive integer");
    }

    // Per-run reduction (Fig. 2 steps (1)-(2)); only O(kernels) survives.
    aggregation::RunAggregate reduced;
    try {
        aggregation::RunAggregator run_agg;
        for (const auto& rank : parsed.run.ranks) {
            run_agg.add_rank(rank,
                             options_.spec.sampling.discard_warmup_epochs);
        }
        reduced = run_agg.finish();
    } catch (const Error& e) {
        quarantine(source + ": aggregation: " + std::string(e.what()));
    }

    const std::uint64_t now = clock_->now_ns();
    std::uint64_t gen = 0;
    std::uint64_t pending = 0;
    std::size_t ranks = parsed.run.ranks.size();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ExperimentState& st = experiments_[experiment];
        auto slot_it = st.configs.find(x1);
        if (slot_it == st.configs.end()) {
            ConfigSlot fresh;
            fresh.params = parsed.run.params;
            slot_it = st.configs.emplace(x1, std::move(fresh)).first;
        } else if (slot_it->second.params != parsed.run.params) {
            ++stats_.quarantined;
            if (quarantined_counter_ != nullptr) {
                quarantined_counter_->increment();
            }
            throw Error("quarantined: " + source +
                        ": params mismatch with configuration x1=" +
                        fmt::shortest(x1));
        }
        ConfigSlot& slot = slot_it->second;
        slot.window.push_back(std::move(reduced));
        while (slot.window.size() >
               static_cast<std::size_t>(options_.window)) {
            slot.window.pop_front();
        }
        gen = ++st.ingest_gen;
        st.last_arrival_ns = now;
        pending = st.ingest_gen - st.dispatched_gen;
        ++stats_.accepted;
        drain_cv_.notify_all();
    }
    if (accepted_counter_ != nullptr) {
        accepted_counter_->increment();
    }
    return "accepted=1 experiment=" + experiment +
           " x1=" + fmt::shortest(x1) + " ranks=" + std::to_string(ranks) +
           " pending=" + std::to_string(pending) +
           " gen=" + std::to_string(gen);
}

int FleetService::poll_once() {
    if (!options_.spool_dir.empty()) {
        for (const SpoolFile& file : spool_.scan()) {
            try {
                std::ifstream is(file.path, std::ios::binary);
                if (!is) {
                    throw Error("cannot open " + file.path);
                }
                std::ostringstream bytes;
                bytes << is.rdbuf();
                ingest_bytes(file.experiment, bytes.str(), file.path);
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.spool_files;
            } catch (const Error&) {
                // Quarantined (already counted) or unreadable: the loop
                // must survive any single bad spool file.
            }
        }
    }
    return dispatch_due(false);
}

int FleetService::dispatch_due(bool force) {
    const std::uint64_t now = clock_->now_ns();
    std::vector<FitJob> jobs;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [name, st] : experiments_) {
            const std::uint64_t pending = st.ingest_gen - st.dispatched_gen;
            if (pending == 0) {
                continue;
            }
            const bool due =
                force ||
                pending >= static_cast<std::uint64_t>(options_.min_runs) ||
                pending >= static_cast<std::uint64_t>(options_.max_pending) ||
                now - st.last_arrival_ns >= options_.quiescence_ns;
            if (!due) {
                continue;
            }
            FitJob job;
            job.experiment = name;
            job.generation = st.ingest_gen;
            job.configs.reserve(st.configs.size());
            for (const auto& [x1, slot] : st.configs) {
                (void)x1;
                job.configs.push_back(slot);  // deep copy: fits hold no lock
            }
            st.dispatched_gen = st.ingest_gen;
            ++jobs_in_flight_;
            jobs.push_back(std::move(job));
        }
    }
    for (auto& job : jobs) {
        auto shared_job = std::make_shared<FitJob>(std::move(job));
        pool_.submit([this, shared_job]() { run_fit_job(*shared_job); });
    }
    return static_cast<int>(jobs.size());
}

void FleetService::run_fit_job(FitJob job) {
    const obs::Span span{"fleet.refit"};
    const std::uint64_t start_ns = clock_->now_ns();
    try {
        aggregation::ExperimentData data{"x1"};
        for (const ConfigSlot& slot : job.configs) {
            aggregation::ConfigAggregator agg;
            for (const aggregation::RunAggregate& run : slot.window) {
                agg.add_run(slot.params, run);
            }
            data.add(agg.finish());
        }
        if (data.size() <
            static_cast<std::size_t>(aggregation::kMinModelingPoints)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.refits_skipped;
        } else {
            const ExperimentSpec& spec = options_.spec;
            ExperimentResult result;
            result.step_math_fn = make_step_math_fn(
                spec.dataset, spec.strategy, spec.model_parallel_degree,
                spec.scaling, spec.batch_per_worker);
            std::array<std::vector<double>, trace::kPhaseCount> phase_train;
            std::array<std::vector<double>, trace::kPhaseCount> phase_val;
            std::vector<double> total_train;
            std::vector<double> total_val;
            result.data = std::move(data);
            for (const auto& config : result.data.configs()) {
                const int ranks = static_cast<int>(config.params.at("x1"));
                const parallel::StepMath sm = result.step_math_fn(ranks);
                result.step_math[ranks] = sm;
                result.modeling_xs.push_back(static_cast<double>(ranks));
                result.epoch_time_values.push_back(
                    aggregation::derived_epoch_total(
                        config, sm, aggregation::Metric::Time));
                double train_sum = 0.0;
                double val_sum = 0.0;
                for (int p = 0; p < trace::kPhaseCount; ++p) {
                    const auto phase = static_cast<trace::Phase>(p);
                    const double t = config.phase_metric(
                        phase, aggregation::Metric::Time, true);
                    const double v = config.phase_metric(
                        phase, aggregation::Metric::Time, false);
                    phase_train[p].push_back(t);
                    phase_val[p].push_back(v);
                    train_sum += t;
                    val_sum += v;
                }
                total_train.push_back(train_sum);
                total_val.push_back(val_sum);
            }
            // Serial fit per job: refit parallelism comes from concurrent
            // jobs on the pool, and serial fits are bit-deterministic.
            modeling::FitOptions fit_opts;
            fit_opts.num_threads = 1;
            const modeling::ModelGenerator generator(fit_opts);
            result.epoch_time =
                EpochModel(generator.fit(result.modeling_xs, total_train),
                           generator.fit(result.modeling_xs, total_val),
                           result.step_math_fn);
            for (int p = 0; p < trace::kPhaseCount; ++p) {
                result.phase_time[p] = EpochModel(
                    generator.fit(result.modeling_xs, phase_train[p]),
                    generator.fit(result.modeling_xs, phase_val[p]),
                    result.step_math_fn);
            }
            const serve::ServableModel servable =
                serve::make_servable(spec, result, job.experiment);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.refits;
            }
            if (refit_counter_ != nullptr) {
                refit_counter_->increment();
            }
            if (refit_latency_ != nullptr) {
                refit_latency_->observe(
                    static_cast<double>(clock_->now_ns() - start_ns) / 1000.0);
            }
            install_model(job.experiment, job.generation, servable);
        }
    } catch (const std::exception&) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.refit_failures;
    }
    finish_job(job.experiment, job.generation);
}

bool FleetService::install_model(const std::string& experiment,
                                 std::uint64_t generation,
                                 const serve::ServableModel& model) {
    // One install at a time: the generation check below stays valid until
    // installed_gen is advanced, and export + reload never interleave.
    std::lock_guard<std::mutex> install_lock(install_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const ExperimentState& st = experiments_[experiment];
        if (generation <= st.installed_gen) {
            ++stats_.stale_discarded;
            if (stale_counter_ != nullptr) {
                stale_counter_->increment();
            }
            return false;  // a newer fit already serves; discard, no export
        }
    }
    const std::uint64_t swap_start = clock_->now_ns();
    const std::string path =
        options_.models_dir + "/" + experiment + serve::kEdpmExtension;
    const std::string tmp = path + ".tmp";
    serve::write_edpm_file(tmp, model);
    std::error_code ec;
    fs::rename(tmp, path, ec);  // atomic on POSIX: readers see old or new
    if (ec) {
        fs::remove(tmp, ec);
        throw Error("fleet: export rename failed for " + path);
    }
    registry_->reload();  // keep-last-good hot swap
    const std::uint64_t swap_ns = clock_->now_ns() - swap_start;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ExperimentState& st = experiments_[experiment];
        st.installed_gen = std::max(st.installed_gen, generation);
        ++stats_.swaps;
    }
    if (swap_counter_ != nullptr) {
        swap_counter_->increment();
    }
    if (swap_latency_ != nullptr) {
        swap_latency_->observe(static_cast<double>(swap_ns) / 1000.0);
    }
    return true;
}

void FleetService::finish_job(const std::string& experiment,
                              std::uint64_t generation) {
    std::lock_guard<std::mutex> lock(mutex_);
    ExperimentState& st = experiments_[experiment];
    st.fitted_gen = std::max(st.fitted_gen, generation);
    --jobs_in_flight_;
    drain_cv_.notify_all();
}

void FleetService::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        bool pending = false;
        bool fitted = true;
        for (const auto& [name, st] : experiments_) {
            (void)name;
            if (st.ingest_gen > st.dispatched_gen) {
                pending = true;
            }
            if (st.fitted_gen < st.ingest_gen) {
                fitted = false;
            }
        }
        if (pending) {
            lock.unlock();
            dispatch_due(true);
            lock.lock();
            continue;
        }
        if (jobs_in_flight_ == 0 && fitted) {
            return;
        }
        drain_cv_.wait(lock);
    }
}

void FleetService::start(int interval_ms) {
    std::lock_guard<std::mutex> lock(poller_mutex_);
    if (poller_.joinable()) {
        return;
    }
    poller_stop_ = false;
    const auto interval = std::chrono::milliseconds(std::max(interval_ms, 1));
    poller_ = std::thread([this, interval]() {
        std::unique_lock<std::mutex> lock(poller_mutex_);
        while (!poller_stop_) {
            lock.unlock();
            poll_once();
            lock.lock();
            poller_cv_.wait_for(lock, interval,
                                [this]() { return poller_stop_; });
        }
    });
}

void FleetService::stop() {
    {
        std::lock_guard<std::mutex> lock(poller_mutex_);
        poller_stop_ = true;
        poller_cv_.notify_all();
    }
    if (poller_.joinable()) {
        poller_.join();
    }
}

std::uint64_t FleetService::staleness_locked() const {
    std::uint64_t total = 0;
    for (const auto& [name, st] : experiments_) {
        (void)name;
        total += st.ingest_gen - st.installed_gen;
    }
    return total;
}

FleetStats FleetService::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    FleetStats out = stats_;
    out.staleness_runs = staleness_locked();
    out.experiments = experiments_.size();
    return out;
}

std::string FleetService::fleet_stats_line() {
    const FleetStats s = stats();
    std::ostringstream os;
    os << "accepted=" << s.accepted << " quarantined=" << s.quarantined
       << " refits=" << s.refits << " skipped=" << s.refits_skipped
       << " failed=" << s.refit_failures << " swaps=" << s.swaps
       << " stale=" << s.stale_discarded << " spool=" << s.spool_files
       << " staleness=" << s.staleness_runs
       << " experiments=" << s.experiments
       << " queued=" << pool_.queued_tasks();
    return os.str();
}

void FleetService::attach_metrics(obs::MetricsRegistry& metrics) {
    accepted_counter_ = &metrics.counter("extradeep_fleet_runs_total", "state",
                                         "accepted");
    quarantined_counter_ = &metrics.counter("extradeep_fleet_runs_total",
                                            "state", "quarantined");
    refit_counter_ = &metrics.counter("extradeep_fleet_refits_total");
    swap_counter_ = &metrics.counter("extradeep_fleet_swaps_total");
    stale_counter_ = &metrics.counter("extradeep_fleet_stale_fits_total");
    queued_gauge_ = &metrics.gauge("extradeep_fleet_pool_queued_tasks");
    staleness_gauge_ = &metrics.gauge("extradeep_fleet_staleness_runs");
    refit_latency_ = &metrics.histogram(
        "extradeep_fleet_refit_latency_us",
        obs::MetricsRegistry::default_latency_buckets_us());
    swap_latency_ = &metrics.histogram(
        "extradeep_fleet_swap_latency_us",
        obs::MetricsRegistry::default_latency_buckets_us());
}

void FleetService::update_metrics() {
    if (queued_gauge_ != nullptr) {
        queued_gauge_->set(static_cast<double>(pool_.queued_tasks()));
    }
    if (staleness_gauge_ != nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        staleness_gauge_->set(static_cast<double>(staleness_locked()));
    }
}

}  // namespace extradeep::fleet
