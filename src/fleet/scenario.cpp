#include "fleet/scenario.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/format.hpp"
#include "profiling/edp_io.hpp"
#include "serve/server.hpp"

namespace extradeep::fleet {

namespace fs = std::filesystem;

namespace {

constexpr char kModelName[] = "fleet-demo";

/// One profiled run of `ranks` on `spec`'s system, as raw EDP bytes.
std::string run_edp_bytes(const ExperimentSpec& spec, int ranks, int rep) {
    const ExperimentRunner runner(spec);
    const sim::TrainingSimulator simulator(runner.workload_for(ranks));
    const profiling::Profiler profiler(spec.sampling);
    const profiling::ProfiledRun run = profiler.profile(
        simulator, {{"x1", static_cast<double>(ranks)}}, rep, spec.seed);
    std::ostringstream os;
    profiling::write_edp(os, run);
    return os.str();
}

double parse_predict_t(const std::string& response) {
    // "ok t=<v> lo=<v> hi=<v>"
    constexpr char kPrefix[] = "ok t=";
    if (response.rfind(kPrefix, 0) != 0) {
        throw Error("scenario: unexpected predict response '" + response +
                    "'");
    }
    const std::size_t start = sizeof(kPrefix) - 1;
    const std::size_t end = response.find(' ', start);
    double v = 0.0;
    if (!fmt::parse_double(response.substr(start, end - start), v)) {
        throw Error("scenario: bad predict value in '" + response + "'");
    }
    return v;
}

std::string read_file_bytes(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw Error("scenario: cannot read " + path);
    }
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Deterministic corruptions that the tolerant parser must reject whole
/// (Error severity), not merely warn about.
std::vector<std::string> corrupt_variants(const std::string& good, int count) {
    std::vector<std::string> out;
    out.push_back(good.substr(0, good.size() / 2));       // truncated: no END
    out.push_back("EDP\t9" + good.substr(good.find('\n')));  // bad version
    out.push_back("not an edp payload at all");           // garbage
    {
        std::string no_end = good;
        const std::size_t end_pos = no_end.rfind("END");
        if (end_pos != std::string::npos) {
            no_end.erase(end_pos);
        }
        out.push_back(no_end);  // complete records, missing terminator
    }
    out.push_back(std::string());  // empty payload
    while (static_cast<int>(out.size()) < count) {
        // Further variants: progressively shorter truncations.
        out.push_back(good.substr(0, good.size() / (out.size() + 1)));
    }
    out.resize(count);
    return out;
}

double p95(std::vector<double> values) {
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.95 * static_cast<double>(values.size())));
    return values[std::min(idx == 0 ? 0 : idx - 1, values.size() - 1)];
}

}  // namespace

ScenarioReport run_drift_scenario(const ScenarioOptions& options) {
    if (options.ranks.empty() || options.pre_rounds < 1 ||
        options.max_drift_rounds < 1) {
        throw InvalidArgumentError("scenario: bad options");
    }
    const auto log = [&](const std::string& line) {
        if (options.verbose) {
            std::cerr << "[fleet-scenario] " << line << "\n";
        }
    };

    // Scratch layout: <work>/models (exports + hot-swap source).
    std::string work = options.work_dir;
    const bool own_work = work.empty();
    if (own_work) {
        work = (fs::temp_directory_path() /
                ("extradeep-fleet-scn-" + std::to_string(::getpid())))
                   .string();
    }
    fs::remove_all(work);
    fs::create_directories(work);
    const std::string models_dir = work + "/models";

    // Ground truth on both sides of the injection.
    ExperimentSpec base_spec = options.spec;
    const sim::DriftSpec drift{options.drift_kind, options.drift_severity, 0};
    ExperimentSpec drift_spec = base_spec;
    drift_spec.system = sim::apply_drift(base_spec.system, drift);
    const double truth_base =
        ExperimentRunner(base_spec).measured_epoch_time(options.probe_x);
    const double truth_drift =
        ExperimentRunner(drift_spec).measured_epoch_time(options.probe_x);
    log("truth at x=" + std::to_string(options.probe_x) + ": base " +
        fmt::shortest(truth_base) + "s, drifted " + fmt::shortest(truth_drift) +
        "s (" + drift.describe() + ")");

    // Fleet service + engine + real TCP daemon.
    auto registry = std::make_shared<serve::ModelRegistry>();
    FleetOptions fleet_opts;
    fleet_opts.models_dir = models_dir;
    fleet_opts.spec = base_spec;
    fleet_opts.min_runs = static_cast<int>(options.ranks.size());
    fleet_opts.quiescence_ns = 10'000'000'000ULL;  // drain() paces refits
    fleet_opts.max_pending = 4 * fleet_opts.min_runs;
    fleet_opts.window = options.window;
    fleet_opts.fit_threads = options.fit_threads;
    auto service = std::make_shared<FleetService>(fleet_opts, registry);
    auto engine = std::make_shared<serve::QueryEngine>(registry);
    engine->set_fleet_handler(service);
    serve::ServerOptions server_opts;
    server_opts.threads = options.serve_threads;
    server_opts.max_request_line = 32u << 20;  // ingest lines carry whole runs
    serve::ServeDaemon daemon(engine, server_opts);
    daemon.start();
    const std::string host = server_opts.host;
    const int port = daemon.port();

    const std::string predict_req = "predict " + std::string(kModelName) +
                                    " " + std::to_string(options.probe_x);
    std::vector<double> drain_us;
    int rep = 0;

    const auto push_round = [&](const ExperimentSpec& spec) {
        std::vector<std::string> requests;
        requests.reserve(options.ranks.size());
        for (const int ranks : options.ranks) {
            requests.push_back("ingest " + std::string(kModelName) + " " +
                               serve::escape_lines(
                                   run_edp_bytes(spec, ranks, rep)));
        }
        ++rep;
        const auto responses = serve::query_daemon(host, port, requests);
        for (const auto& r : responses) {
            if (r.rfind("ok ", 0) != 0) {
                throw Error("scenario: ingest rejected: " + r);
            }
        }
        const auto t0 = std::chrono::steady_clock::now();
        service->drain();
        const auto t1 = std::chrono::steady_clock::now();
        drain_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
    };
    const auto served_probe = [&]() {
        return parse_predict_t(
            serve::query_daemon(host, port, {predict_req}).at(0));
    };

    // Phase 1: baseline rounds. The first drain installs the first model.
    for (int round = 0; round < options.pre_rounds; ++round) {
        push_round(base_spec);
    }
    const double baseline_pred = served_probe();
    const double baseline_err =
        std::abs(baseline_pred - truth_base) / truth_base;
    log("baseline prediction " + fmt::shortest(baseline_pred) + "s, rel err " +
        fmt::shortest(baseline_err));

    // Concurrent query client: runs for the entire drift phase; every
    // response must arrive and be an `ok` (zero downtime across hot swaps).
    std::atomic<bool> load_stop{false};
    std::atomic<std::uint64_t> load_queries{0};
    std::atomic<std::uint64_t> load_errors{0};
    std::atomic<std::uint64_t> load_drops{0};
    std::thread load_thread([&]() {
        const std::vector<std::string> reqs = {predict_req, "ping",
                                               "fleet-stats"};
        while (!load_stop.load()) {
            try {
                const auto responses = serve::query_daemon(host, port, reqs);
                for (const auto& r : responses) {
                    ++load_queries;
                    if (r.rfind("ok", 0) != 0) {
                        ++load_errors;
                    }
                }
            } catch (const std::exception&) {
                ++load_drops;
            }
        }
    });

    // Phase 2: inject the drift mid-stream; every subsequent run is
    // generated on the degraded system. Count runs until the served answer
    // tracks the new truth.
    bool converged = false;
    int convergence_lag_runs = 0;
    int streak = 0;
    const int runs_per_round = static_cast<int>(options.ranks.size());
    for (int round = 0; round < options.max_drift_rounds; ++round) {
        push_round(drift_spec);
        const double pred = served_probe();
        const double rel_err = std::abs(pred - truth_drift) / truth_drift;
        log("drift round " + std::to_string(round + 1) + ": served " +
            fmt::shortest(pred) + "s, rel err vs drifted truth " +
            fmt::shortest(rel_err));
        if (rel_err <= options.rel_tol) {
            ++streak;
            if (streak >= options.sustain && !converged) {
                converged = true;
                convergence_lag_runs =
                    (round + 1 - (options.sustain - 1)) * runs_per_round;
            }
            if (converged && streak >= options.sustain) {
                break;
            }
        } else {
            streak = 0;
        }
    }
    if (!converged) {
        convergence_lag_runs = options.max_drift_rounds * runs_per_round;
    }
    load_stop.store(true);
    load_thread.join();

    // Phase 3: corrupt-push batch. Every payload must be rejected with an
    // err line, and the exported model bytes must be untouched.
    const std::string model_path =
        models_dir + "/" + std::string(kModelName) + serve::kEdpmExtension;
    const std::string model_bytes_before = read_file_bytes(model_path);
    const FleetStats stats_before = service->stats();
    const std::string good_payload =
        run_edp_bytes(base_spec, options.ranks.front(), rep++);
    int corrupt_rejected = 0;
    for (const std::string& bad :
         corrupt_variants(good_payload, options.corrupt_pushes)) {
        const auto responses = serve::query_daemon(
            host, port, {"ingest " + std::string(kModelName) + " " +
                         serve::escape_lines(bad)});
        if (responses.at(0).rfind("err", 0) == 0) {
            ++corrupt_rejected;
        }
    }
    service->drain();
    const std::string model_bytes_after = read_file_bytes(model_path);
    const FleetStats stats_after = service->stats();
    const bool bytes_changed = model_bytes_before != model_bytes_after;
    log("corrupt batch: " + std::to_string(corrupt_rejected) + "/" +
        std::to_string(options.corrupt_pushes) + " rejected, model bytes " +
        (bytes_changed ? "CHANGED" : "unchanged"));

    // Shut the daemon down cleanly before tearing the service down.
    try {
        serve::query_daemon(host, port, {"shutdown"});
    } catch (const std::exception&) {
        daemon.stop();
    }
    daemon.wait();
    service->stop();

    ScenarioReport report;
    report.converged = converged;
    report.convergence_lag_runs = convergence_lag_runs;
    report.stats = stats_after;
    const std::uint64_t seed = options.spec.seed;
    const auto record = [&](const std::string& case_name,
                            const std::string& metric, double value) {
        report.records.push_back(
            eval::MetricRecord{case_name, 0.0, metric, value, seed});
    };
    record("drift", "converged", converged ? 1.0 : 0.0);
    record("drift", "convergence_lag_runs",
           static_cast<double>(convergence_lag_runs));
    record("drift", "baseline_rel_err", baseline_err);
    record("drift", "swap_count", static_cast<double>(stats_after.swaps));
    record("drift", "refit_count", static_cast<double>(stats_after.refits));
    record("drift", "final_staleness",
           static_cast<double>(stats_after.staleness_runs));
    record("loadgen", "queries", static_cast<double>(load_queries.load()));
    record("loadgen", "error_responses",
           static_cast<double>(load_errors.load()));
    record("loadgen", "dropped_queries",
           static_cast<double>(load_drops.load()));
    record("corrupt", "rejected", static_cast<double>(corrupt_rejected));
    record("corrupt", "model_bytes_changed", bytes_changed ? 1.0 : 0.0);
    // No corrupt payload may reach the aggregate: accepted must not move.
    record("corrupt", "accepted_delta",
           static_cast<double>(stats_after.accepted - stats_before.accepted));
    record("corrupt", "quarantined",
           static_cast<double>(stats_after.quarantined -
                               stats_before.quarantined));
    record("perf", "drain_p95_us", p95(drain_us));

    if (own_work) {
        std::error_code ec;
        fs::remove_all(work, ec);
    }
    return report;
}

}  // namespace extradeep::fleet
