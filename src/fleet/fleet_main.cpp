// extradeep-fleet: the continuous-modeling fleet daemon and its drivers.
//
// Four modes over the src/fleet subsystem:
//
//   serve   — run the full continuous loop: a query daemon (all serve verbs
//             plus `ingest`/`fleet-stats`) with an attached FleetService
//             that watches a spool directory, re-fits arriving runs on a
//             background pool, and hot-swaps exported models. Prints
//             `LISTENING <port>` when ready.
//   drive   — fleet collector client: generates profile runs (optionally
//             switching to a drifted system mid-stream), pushes them over
//             the `ingest` verb (or drops them into a spool directory),
//             waits for the loop to catch up (fleet-stats staleness), and
//             checks that served predictions converge to the new ground
//             truth. Prints `CONVERGED runs=N` on success.
//   query   — client passthrough: send request lines to a running daemon.
//   --quick — in-process end-to-end drift scenario (daemon + concurrent
//             load client + corrupt-push batch) feeding the
//             fleet_drift_gate thresholds and BENCH_fleet.json.

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/format.hpp"
#include "eval/report.hpp"
#include "fleet/continuous.hpp"
#include "fleet/scenario.hpp"
#include "obs/session.hpp"
#include "profiling/edp_io.hpp"
#include "serve/server.hpp"
#include "sim/drift.hpp"

using namespace extradeep;

namespace {

namespace stdfs = std::filesystem;

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s serve --models DIR [--spool DIR] [--port N] [--threads N]\n"
        "               [--fit-threads N] [--min-runs N] [--quiescence-ms N]\n"
        "               [--window N] [--max-pending N] [--poll-ms N]\n"
        "               [--max-line BYTES] [--trace SPEC] [spec options]\n"
        "       %s drive (--port N [--host H] | --spool DIR) "
        "--experiment NAME\n"
        "               [--ranks 2,4,6,8,10] [--pre N] [--post N]\n"
        "               [--drift none|hw:SEV[@R]|sw:SEV[@R]] [--probe X]\n"
        "               [--tol F] [--window N] [--wait-ms N] [spec options]\n"
        "       %s query --port N [--host H] REQUEST...\n"
        "       %s --quick --thresholds FILE [--out FILE] [--verbose]\n"
        "spec options: --dataset D --system DEEP|JURECA "
        "--strategy data|tensor|pipeline\n"
        "              --scaling weak|strong --batch B --mdegree M --seed N\n",
        argv0, argv0, argv0, argv0);
}

std::vector<int> parse_rank_list(const std::string& arg) {
    std::vector<int> out;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        const std::size_t comma = arg.find(',', pos);
        const std::string token =
            arg.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        std::size_t used = 0;
        const int v = std::stoi(token, &used);
        if (token.empty() || used != token.size() || v < 1) {
            throw InvalidArgumentError("--ranks: bad rank count '" + token +
                                       "'");
        }
        out.push_back(v);
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return out;
}

hw::SystemSpec parse_system(const std::string& name) {
    if (name == "DEEP" || name == "deep") {
        return hw::SystemSpec::deep();
    }
    if (name == "JURECA" || name == "jureca") {
        return hw::SystemSpec::jureca();
    }
    throw InvalidArgumentError("--system: unknown system '" + name +
                               "' (expected DEEP or JURECA)");
}

/// Simple flag cursor shared by all modes (same shape as extradeep-serve).
class Args {
public:
    Args(int argc, char** argv, int first)
        : argc_(argc), argv_(argv), i_(first) {}
    bool next(std::string& arg) {
        if (i_ >= argc_) {
            return false;
        }
        arg = argv_[i_++];
        return true;
    }
    std::string value(const std::string& flag) {
        if (i_ >= argc_) {
            throw InvalidArgumentError(flag + " requires a value");
        }
        return argv_[i_++];
    }

private:
    int argc_;
    char** argv_;
    int i_;
};

/// Spec flags shared by serve and drive (daemon and collector must agree on
/// the experiment template). Returns true if `arg` was consumed.
bool parse_spec_flag(const std::string& arg, Args& args, ExperimentSpec& spec) {
    if (arg == "--dataset") {
        spec.dataset = args.value(arg);
    } else if (arg == "--system") {
        spec.system = parse_system(args.value(arg));
    } else if (arg == "--strategy") {
        spec.strategy = parallel::parse_strategy(args.value(arg));
    } else if (arg == "--scaling") {
        spec.scaling = parallel::parse_scaling(args.value(arg));
    } else if (arg == "--batch") {
        spec.batch_per_worker = std::stoll(args.value(arg));
    } else if (arg == "--mdegree") {
        spec.model_parallel_degree = std::stoi(args.value(arg));
    } else if (arg == "--seed") {
        spec.seed = std::stoull(args.value(arg));
    } else {
        return false;
    }
    return true;
}

std::string git_revision() {
    std::string rev = "unknown";
    if (FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (fgets(buf, sizeof(buf), p) != nullptr) {
            rev = buf;
            while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
                rev.pop_back();
            }
        }
        pclose(p);
        if (rev.empty()) {
            rev = "unknown";
        }
    }
    return rev;
}

std::string read_text_file(const std::string& path, const char* what) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error(std::string(what) + ": cannot read '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

serve::ServeDaemon* g_daemon = nullptr;

void handle_signal(int) {
    if (g_daemon != nullptr) {
        g_daemon->stop();  // shutdown(2) is async-signal-safe
    }
}

int run_serve(Args args) {
    fleet::FleetOptions fleet_opts;
    serve::ServerOptions server_opts;
    server_opts.max_request_line = 32u << 20;  // ingest payloads
    int poll_ms = 100;
    std::string trace_spec;
    bool trace_given = false;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--models") {
            fleet_opts.models_dir = args.value(arg);
        } else if (arg == "--spool") {
            fleet_opts.spool_dir = args.value(arg);
        } else if (arg == "--port") {
            server_opts.port = std::stoi(args.value(arg));
        } else if (arg == "--host") {
            server_opts.host = args.value(arg);
        } else if (arg == "--threads") {
            server_opts.threads = std::stoi(args.value(arg));
        } else if (arg == "--fit-threads") {
            fleet_opts.fit_threads = std::stoi(args.value(arg));
        } else if (arg == "--min-runs") {
            fleet_opts.min_runs = std::stoi(args.value(arg));
        } else if (arg == "--quiescence-ms") {
            fleet_opts.quiescence_ns =
                std::stoull(args.value(arg)) * 1'000'000ULL;
        } else if (arg == "--window") {
            fleet_opts.window = std::stoi(args.value(arg));
        } else if (arg == "--max-pending") {
            fleet_opts.max_pending = std::stoi(args.value(arg));
        } else if (arg == "--poll-ms") {
            poll_ms = std::stoi(args.value(arg));
        } else if (arg == "--max-line") {
            server_opts.max_request_line = std::stoull(args.value(arg));
        } else if (arg == "--trace") {
            trace_spec = args.value(arg);
            trace_given = true;
        } else if (parse_spec_flag(arg, args, fleet_opts.spec)) {
        } else {
            throw InvalidArgumentError("serve: unknown option '" + arg + "'");
        }
    }
    if (fleet_opts.models_dir.empty()) {
        throw InvalidArgumentError("serve: --models DIR is required");
    }
    obs::ObsConfig obs_config = trace_given ? obs::parse_obs_config(trace_spec)
                                            : obs::obs_config_from_env();
    const obs::ObsSession session(std::move(obs_config));

    auto registry = std::make_shared<serve::ModelRegistry>();
    auto service = std::make_shared<fleet::FleetService>(fleet_opts, registry);
    auto engine = std::make_shared<serve::QueryEngine>(registry);
    engine->set_fleet_handler(service);
    serve::ServeDaemon daemon(engine, server_opts);
    daemon.start();
    service->start(poll_ms);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("LISTENING %d\n", daemon.port());
    std::fflush(stdout);
    daemon.wait();
    g_daemon = nullptr;
    service->stop();
    service->drain();  // finish in-flight fits before reporting
    std::printf("stopped: %s\n", service->fleet_stats_line().c_str());
    return 0;
}

/// Extracts `key=<value>` from a fleet-stats line; -1 if absent.
long long stats_field(const std::string& line, const std::string& key) {
    const std::string needle = key + "=";
    std::size_t pos = line.find(" " + needle);
    if (pos == std::string::npos) {
        if (line.rfind(needle, 0) != 0) {
            return -1;
        }
        pos = 0;
    } else {
        ++pos;
    }
    pos += needle.size();
    const std::size_t end = line.find(' ', pos);
    try {
        return std::stoll(line.substr(pos, end - pos));
    } catch (const std::exception&) {
        return -1;
    }
}

int run_drive(Args args) {
    std::string host = "127.0.0.1";
    int port = 0;
    std::string spool_dir;
    std::string experiment;
    std::vector<int> ranks = {2, 4, 6, 8, 10};
    int pre = 1;
    int post = 4;
    sim::DriftSpec drift;
    drift.kind = sim::DriftKind::HardwareDegrade;
    drift.severity = 2.0;
    int probe = 10;
    double tol = 0.2;
    int wait_ms = 30000;
    ExperimentSpec spec;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--host") {
            host = args.value(arg);
        } else if (arg == "--port") {
            port = std::stoi(args.value(arg));
        } else if (arg == "--spool") {
            spool_dir = args.value(arg);
        } else if (arg == "--experiment") {
            experiment = args.value(arg);
        } else if (arg == "--ranks") {
            ranks = parse_rank_list(args.value(arg));
        } else if (arg == "--pre") {
            pre = std::stoi(args.value(arg));
        } else if (arg == "--post") {
            post = std::stoi(args.value(arg));
        } else if (arg == "--drift") {
            drift = sim::parse_drift(args.value(arg));
        } else if (arg == "--probe") {
            probe = std::stoi(args.value(arg));
        } else if (arg == "--tol") {
            double v = 0.0;
            if (!fmt::parse_double(args.value(arg), v) || v <= 0.0) {
                throw InvalidArgumentError("drive: bad --tol");
            }
            tol = v;
        } else if (arg == "--wait-ms") {
            wait_ms = std::stoi(args.value(arg));
        } else if (parse_spec_flag(arg, args, spec)) {
        } else {
            throw InvalidArgumentError("drive: unknown option '" + arg + "'");
        }
    }
    if (experiment.empty()) {
        throw InvalidArgumentError("drive: --experiment NAME is required");
    }
    const bool via_spool = !spool_dir.empty();
    if (via_spool == (port > 0)) {
        throw InvalidArgumentError(
            "drive: exactly one of --port N or --spool DIR is required");
    }

    ExperimentSpec drifted = spec;
    drifted.system = sim::apply_drift(spec.system, drift);
    const double truth =
        ExperimentRunner(drift.kind == sim::DriftKind::None ? spec : drifted)
            .measured_epoch_time(probe);
    std::printf("drive: %s, target truth at x=%d: %ss\n",
                drift.describe().c_str(), probe,
                fmt::shortest(truth).c_str());

    int rep = 0;
    int spool_seq = 0;
    const auto push_run = [&](const ExperimentSpec& s, int r) {
        const ExperimentRunner runner(s);
        const sim::TrainingSimulator simulator(runner.workload_for(r));
        const profiling::Profiler profiler(s.sampling);
        const profiling::ProfiledRun run = profiler.profile(
            simulator, {{"x1", static_cast<double>(r)}}, rep, s.seed);
        if (via_spool) {
            // Crash-consistent drop: write *.tmp, then rename into place.
            const stdfs::path dir = stdfs::path(spool_dir) / experiment;
            stdfs::create_directories(dir);
            char name[32];
            std::snprintf(name, sizeof(name), "run-%06d", spool_seq++);
            const stdfs::path tmp = dir / (std::string(name) + ".tmp");
            const stdfs::path final_path = dir / (std::string(name) + ".edp");
            profiling::write_edp_file(tmp.string(), run);
            stdfs::rename(tmp, final_path);
        } else {
            std::ostringstream os;
            profiling::write_edp(os, run);
            const auto responses = serve::query_daemon(
                host, port,
                {"ingest " + experiment + " " + serve::escape_lines(os.str())});
            if (responses.at(0).rfind("ok ", 0) != 0) {
                throw Error("drive: ingest rejected: " + responses.at(0));
            }
        }
    };
    const auto query1 = [&](const std::string& request) {
        return serve::query_daemon(host, port, {request}).at(0);
    };
    const auto wait_caught_up = [&]() {
        if (via_spool) {
            return;  // no daemon connection to poll
        }
        for (int waited = 0; waited < wait_ms; waited += 50) {
            const std::string line = query1("fleet-stats");
            if (line.rfind("ok ", 0) == 0 &&
                stats_field(line.substr(3), "staleness") == 0) {
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        throw Error("drive: fleet loop did not catch up within " +
                    std::to_string(wait_ms) + " ms");
    };

    int runs_pushed_post = 0;
    for (int round = 0; round < pre; ++round) {
        for (const int r : ranks) {
            push_run(spec, r);
        }
        ++rep;
    }
    bool converged = drift.kind == sim::DriftKind::None;
    for (int round = 0; round < post && !converged; ++round) {
        for (const int r : ranks) {
            push_run(drifted, r);
            ++runs_pushed_post;
        }
        ++rep;
        if (via_spool) {
            continue;
        }
        wait_caught_up();
        const std::string response =
            query1("predict " + experiment + " " + std::to_string(probe));
        if (response.rfind("ok t=", 0) != 0) {
            throw Error("drive: predict failed: " + response);
        }
        double pred = 0.0;
        const std::size_t end = response.find(' ', 5);
        if (!fmt::parse_double(response.substr(5, end - 5), pred)) {
            throw Error("drive: bad predict value: " + response);
        }
        const double rel_err = std::abs(pred - truth) / truth;
        std::printf("drive: round %d served %ss rel_err %s\n", round + 1,
                    fmt::shortest(pred).c_str(),
                    fmt::shortest(rel_err).c_str());
        if (rel_err <= tol) {
            converged = true;
        }
    }
    if (via_spool) {
        std::printf("SPOOLED runs=%d\n", pre * static_cast<int>(ranks.size()) +
                                             runs_pushed_post);
        return 0;
    }
    if (!converged) {
        std::fprintf(stderr,
                     "drive: no convergence within %d post-drift rounds\n",
                     post);
        return 1;
    }
    std::printf("CONVERGED runs=%d\n", runs_pushed_post);
    return 0;
}

int run_query(Args args) {
    std::string host = "127.0.0.1";
    int port = 0;
    std::vector<std::string> requests;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--host") {
            host = args.value(arg);
        } else if (arg == "--port") {
            port = std::stoi(args.value(arg));
        } else {
            requests.push_back(arg);
        }
    }
    if (port <= 0 || requests.empty()) {
        throw InvalidArgumentError("query: --port N and REQUEST... required");
    }
    for (const auto& r : serve::query_daemon(host, port, requests)) {
        std::printf("%s\n", r.c_str());
    }
    return 0;
}

int run_quick(Args args) {
    fleet::ScenarioOptions options;
    std::string thresholds_path;
    std::string out_path;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--thresholds") {
            thresholds_path = args.value(arg);
        } else if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (parse_spec_flag(arg, args, options.spec)) {
        } else {
            throw InvalidArgumentError("--quick: unknown option '" + arg +
                                       "'");
        }
    }
    const fleet::ScenarioReport report = fleet::run_drift_scenario(options);
    for (const auto& r : report.records) {
        std::printf("%-8s %-24s %s\n", r.case_name.c_str(), r.metric.c_str(),
                    fmt::shortest(r.value).c_str());
    }
    std::printf("fleet-stats: accepted=%llu quarantined=%llu refits=%llu "
                "swaps=%llu stale=%llu\n",
                static_cast<unsigned long long>(report.stats.accepted),
                static_cast<unsigned long long>(report.stats.quarantined),
                static_cast<unsigned long long>(report.stats.refits),
                static_cast<unsigned long long>(report.stats.swaps),
                static_cast<unsigned long long>(report.stats.stale_discarded));
    if (!out_path.empty()) {
        const std::string doc = eval::bench_json(report.records,
                                                 git_revision(),
                                                 "extradeep-fleet/1");
        std::ofstream out(out_path, std::ios::binary);
        if (!out || !(out << doc)) {
            throw Error("--quick: cannot write '" + out_path + "'");
        }
        std::printf("wrote %s\n", out_path.c_str());
    }
    if (!thresholds_path.empty()) {
        const auto thresholds = eval::parse_thresholds(
            read_text_file(thresholds_path, "--quick"));
        const eval::GateResult gate =
            eval::check_gate(report.records, thresholds);
        if (!gate.pass) {
            for (const auto& v : gate.violations) {
                std::fprintf(stderr, "threshold violation: %s\n", v.c_str());
            }
            return 1;
        }
        std::printf("thresholds ok (%zu rules, %s)\n", gate.rules_checked,
                    thresholds_path.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(argv[0]);
        return 2;
    }
    const std::string mode = argv[1];
    try {
        Args args(argc, argv, 2);
        if (mode == "serve") {
            return run_serve(args);
        }
        if (mode == "drive") {
            return run_drive(args);
        }
        if (mode == "query") {
            return run_query(args);
        }
        if (mode == "--quick") {
            return run_quick(args);
        }
        if (mode == "-h" || mode == "--help") {
            usage(argv[0]);
            return 0;
        }
        std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
        usage(argv[0]);
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
