#include "fleet/spool.hpp"

#include <algorithm>
#include <filesystem>

namespace extradeep::fleet {

namespace fs = std::filesystem;

namespace {

bool has_edp_extension(const std::string& name) {
    constexpr const char kExt[] = ".edp";
    constexpr std::size_t kExtLen = sizeof(kExt) - 1;
    return name.size() > kExtLen &&
           name.compare(name.size() - kExtLen, kExtLen, kExt) == 0;
}

}  // namespace

bool valid_experiment_name(const std::string& name) {
    if (name.empty() || name.size() > 128) {
        return false;
    }
    return std::all_of(name.begin(), name.end(), [](unsigned char c) {
        return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
               (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    });
}

SpoolScanner::SpoolScanner(std::string dir) : dir_(std::move(dir)) {}

std::vector<SpoolFile> SpoolScanner::scan() {
    std::vector<SpoolFile> fresh;
    std::error_code ec;
    if (dir_.empty() || !fs::is_directory(dir_, ec)) {
        return fresh;
    }
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        const std::string experiment = entry.path().filename().string();
        if (!experiment.empty() && experiment.front() == '.') {
            continue;
        }
        std::error_code sub_ec;
        if (!entry.is_directory(sub_ec)) {
            ++skipped_;  // top-level stray file: layout violation
            continue;
        }
        if (!valid_experiment_name(experiment)) {
            ++skipped_;
            continue;
        }
        for (const auto& file : fs::directory_iterator(entry.path(), sub_ec)) {
            const std::string filename = file.path().filename().string();
            if (filename.empty() || filename.front() == '.' ||
                !has_edp_extension(filename)) {
                continue;  // dotfiles and in-progress writes (*.tmp)
            }
            if (!file.is_regular_file(sub_ec)) {
                continue;
            }
            std::string path = file.path().string();
            if (seen_.count(path) != 0) {
                continue;
            }
            fresh.push_back(SpoolFile{experiment, std::move(path)});
        }
    }
    std::sort(fresh.begin(), fresh.end(),
              [](const SpoolFile& a, const SpoolFile& b) {
                  if (a.experiment != b.experiment) {
                      return a.experiment < b.experiment;
                  }
                  return a.path < b.path;
              });
    for (const auto& f : fresh) {
        seen_.insert(f.path);
    }
    return fresh;
}

}  // namespace extradeep::fleet
