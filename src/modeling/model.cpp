#include "modeling/model.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/student_t.hpp"

namespace extradeep::modeling {

namespace {

std::string exp_to_string(double e) {
    // Render common fractional exponents as fractions for readability.
    const struct {
        double value;
        const char* repr;
    } known[] = {{1.0 / 4.0, "(1/4)"}, {1.0 / 3.0, "(1/3)"}, {1.0 / 2.0, "(1/2)"},
                 {2.0 / 3.0, "(2/3)"}, {3.0 / 4.0, "(3/4)"}, {4.0 / 3.0, "(4/3)"},
                 {3.0 / 2.0, "(3/2)"}, {5.0 / 3.0, "(5/3)"}, {5.0 / 4.0, "(5/4)"},
                 {7.0 / 4.0, "(7/4)"}, {7.0 / 3.0, "(7/3)"}, {5.0 / 2.0, "(5/2)"},
                 {8.0 / 3.0, "(8/3)"}, {9.0 / 4.0, "(9/4)"}, {11.0 / 4.0, "(11/4)"}};
    for (const auto& k : known) {
        if (std::abs(e - k.value) < 1e-12) {
            return k.repr;
        }
    }
    if (e == static_cast<long long>(e)) {
        return std::to_string(static_cast<long long>(e));
    }
    return fmt::coeff(e);
}

}  // namespace

double Factor::evaluate(double value) const {
    if (poly_exp == 0.0 && log_exp == 0) {
        return 1.0;
    }
    if (value <= 0.0) {
        throw InvalidArgumentError(
            "Factor::evaluate: parameter value must be positive");
    }
    double v = 1.0;
    if (poly_exp != 0.0) {
        v *= std::pow(value, poly_exp);
    }
    if (log_exp != 0) {
        v *= std::pow(std::log2(value), log_exp);
    }
    return v;
}

std::string Factor::to_string(const std::string& param_name) const {
    std::ostringstream os;
    bool first = true;
    if (poly_exp != 0.0) {
        os << param_name;
        if (poly_exp != 1.0) {
            os << "^" << exp_to_string(poly_exp);
        }
        first = false;
    }
    if (log_exp != 0) {
        if (!first) os << " * ";
        os << "log2(" << param_name << ")";
        if (log_exp != 1) {
            os << "^" << log_exp;
        }
        first = false;
    }
    if (first) {
        os << "1";
    }
    return os.str();
}

double Term::basis(std::span<const double> point) const {
    double v = 1.0;
    for (const auto& f : factors) {
        if (f.param < 0 || static_cast<std::size_t>(f.param) >= point.size()) {
            throw InvalidArgumentError("Term::basis: parameter index out of range");
        }
        v *= f.evaluate(point[f.param]);
    }
    return v;
}

double Term::evaluate(std::span<const double> point) const {
    return coefficient * basis(point);
}

PerformanceModel::PerformanceModel(double constant, std::vector<Term> terms,
                                   std::vector<std::string> param_names)
    : constant_(constant),
      terms_(std::move(terms)),
      param_names_(std::move(param_names)) {}

double PerformanceModel::evaluate(std::span<const double> point) const {
    double v = constant_;
    for (const auto& t : terms_) {
        v += t.evaluate(point);
    }
    return v;
}

double PerformanceModel::evaluate(double x) const {
    return evaluate(std::span<const double>(&x, 1));
}

void PerformanceModel::set_fit_info(linalg::Matrix cov_unscaled,
                                    double residual_variance,
                                    int degrees_of_freedom) {
    cov_unscaled_ = std::move(cov_unscaled);
    residual_variance_ = residual_variance;
    dof_ = degrees_of_freedom;
    has_fit_info_ = cov_unscaled_.rows() == terms_.size() + 1 && dof_ >= 1;
}

double PerformanceModel::prediction_stddev(std::span<const double> point) const {
    if (!has_fit_info_) {
        return 0.0;
    }
    // Basis vector b0 = (1, basis_1(x), ..., basis_k(x)).
    const std::size_t k = terms_.size() + 1;
    std::vector<double> b0(k, 1.0);
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        b0[i + 1] = terms_[i].basis(point);
    }
    double quad = 0.0;
    for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
            quad += b0[r] * cov_unscaled_(r, c) * b0[c];
        }
    }
    return std::sqrt(residual_variance_ * (1.0 + std::max(0.0, quad)));
}

double PerformanceModel::prediction_stddev(double x) const {
    return prediction_stddev(std::span<const double>(&x, 1));
}

double PerformanceModel::interval_half_width(std::span<const double> point,
                                             double confidence) const {
    if (!has_fit_info_) {
        return 0.0;
    }
    const double se = prediction_stddev(point);
    const double tcrit = stats::student_t_critical(confidence, dof_);
    return tcrit * se;
}

double PerformanceModel::interval_half_width(double x, double confidence) const {
    return interval_half_width(std::span<const double>(&x, 1), confidence);
}

linalg::Matrix PerformanceModel::coefficient_covariance() const {
    if (!has_fit_info_) {
        return linalg::Matrix();
    }
    const std::size_t k = terms_.size() + 1;
    linalg::Matrix cov(k, k);
    for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
            cov(r, c) = residual_variance_ * cov_unscaled_(r, c);
        }
    }
    return cov;
}

PredictionInterval PerformanceModel::predict_interval(
    std::span<const double> point, double confidence) const {
    PredictionInterval out;
    out.prediction = evaluate(point);
    out.lower = out.prediction;
    out.upper = out.prediction;
    if (!has_fit_info_) {
        return out;
    }
    // tcrit * se is computed in the same operation order as the historical
    // inline implementation, so persisted models keep reproducing intervals
    // bit-for-bit (the .edpm round-trip tests rely on it).
    const double half = interval_half_width(point, confidence);
    out.lower = out.prediction - half;
    out.upper = out.prediction + half;
    return out;
}

PredictionInterval PerformanceModel::predict_interval(double x,
                                                      double confidence) const {
    return predict_interval(std::span<const double>(&x, 1), confidence);
}

std::pair<double, int> PerformanceModel::dominant_growth(int param) const {
    std::pair<double, int> best{0.0, 0};
    for (const auto& t : terms_) {
        if (t.coefficient <= 0.0) {
            continue;  // negative terms do not drive asymptotic cost upward
        }
        double poly = 0.0;
        int log = 0;
        for (const auto& f : t.factors) {
            if (f.param == param) {
                poly += f.poly_exp;
                log += f.log_exp;
            }
        }
        if (poly > best.first ||
            (poly == best.first && log > best.second)) {
            best = {poly, log};
        }
    }
    return best;
}

int PerformanceModel::compare_growth(const PerformanceModel& other,
                                     int param) const {
    const auto a = dominant_growth(param);
    const auto b = other.dominant_growth(param);
    if (a.first != b.first) {
        return a.first < b.first ? -1 : 1;
    }
    if (a.second != b.second) {
        return a.second < b.second ? -1 : 1;
    }
    return 0;
}

std::string PerformanceModel::growth_to_string(int param) const {
    const auto [poly, log] = dominant_growth(param);
    const std::string& name = param_names_.size() > static_cast<std::size_t>(param)
                                  ? param_names_[param]
                                  : "x";
    if (poly == 0.0 && log == 0) {
        return "O(1)";
    }
    Factor f;
    f.param = param;
    f.poly_exp = poly;
    f.log_exp = log;
    return "O(" + f.to_string(name) + ")";
}

std::string PerformanceModel::to_string() const {
    std::ostringstream os;
    os << fmt::coeff(constant_);
    for (const auto& t : terms_) {
        if (t.coefficient >= 0.0) {
            os << " + " << fmt::coeff(t.coefficient);
        } else {
            os << " - " << fmt::coeff(-t.coefficient);
        }
        for (const auto& f : t.factors) {
            const std::string& name =
                param_names_.size() > static_cast<std::size_t>(f.param)
                    ? param_names_[f.param]
                    : "x";
            os << " * " << f.to_string(name);
        }
    }
    return os.str();
}

}  // namespace extradeep::modeling
