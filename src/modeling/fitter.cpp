#include "modeling/fitter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "common/simd.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace extradeep::modeling {

namespace {

struct HypothesisFit {
    bool valid = false;
    std::vector<double> coefficients;  ///< [constant, c_1, ..., c_k]
    double fit_smape = std::numeric_limits<double>::infinity();
    double cv_smape = std::numeric_limits<double>::infinity();
    double rss = 0.0;
    linalg::Matrix cov_unscaled;
};

/// Shared per-point-set cache of factor basis columns. Across the PMNF
/// hypothesis space the same factor x^i log2(x)^j appears in many hypotheses
/// (every 2-term combination re-uses the single factors); evaluating each
/// distinct factor once per point set and assembling hypothesis basis
/// matrices from the cached columns removes the repeated pow/log work from
/// the search hot loop. Multiplication order when combining a term's factor
/// columns matches Term::basis exactly, so cached and direct evaluation are
/// bit-identical.
class FactorColumnCache {
public:
    FactorColumnCache(const std::vector<std::vector<Term>>& hypotheses,
                      const std::vector<std::vector<double>>& points)
        : num_points_(points.size()) {
        for (const auto& h : hypotheses) {
            for (const auto& t : h) {
                for (const auto& f : t.factors) {
                    if (find(f) != nullptr) {
                        continue;
                    }
                    if (f.param < 0 ||
                        static_cast<std::size_t>(f.param) >=
                            (points.empty() ? 0 : points.front().size())) {
                        throw InvalidArgumentError(
                            "FactorColumnCache: parameter index out of range");
                    }
                    std::vector<double> column;
                    column.reserve(points.size());
                    for (const auto& p : points) {
                        column.push_back(f.evaluate(p[f.param]));
                    }
                    factors_.push_back(f);
                    columns_.push_back(std::move(column));
                }
            }
        }
    }

    std::size_t num_points() const { return num_points_; }

    const std::vector<double>& column(const Factor& f) const {
        const std::vector<double>* col = find(f);
        if (col == nullptr) {
            throw InvalidArgumentError("FactorColumnCache: unknown factor");
        }
        return *col;
    }

private:
    const std::vector<double>* find(const Factor& f) const {
        // The distinct-factor count is small (~100 for the default space), so
        // a linear scan beats hashing here.
        for (std::size_t i = 0; i < factors_.size(); ++i) {
            if (factors_[i] == f) {
                return &columns_[i];
            }
        }
        return nullptr;
    }

    std::size_t num_points_ = 0;
    std::vector<Factor> factors_;
    std::vector<std::vector<double>> columns_;
};

/// Per-thread scratch buffers for the hypothesis-fit loop: the basis matrix,
/// the row-subset system of the leave-one-out refits, and the prediction
/// vectors are reused across hypotheses instead of reallocated per fit.
/// Every cell the fit reads is overwritten first, so reuse cannot leak state
/// between hypotheses (and results stay bit-identical to fresh buffers).
struct FitScratch {
    linalg::Matrix basis;
    linalg::Matrix a;
    std::vector<double> b;
    std::vector<double> term_col;
    std::vector<double> predicted;
    std::vector<double> cv_pred;
};

void ensure_shape(linalg::Matrix& m, std::size_t rows, std::size_t cols) {
    if (m.rows() != rows || m.cols() != cols) {
        m = linalg::Matrix(rows, cols);
    }
}

/// Assembles a hypothesis's basis matrix from cached factor columns into
/// `scratch.basis`: column 0 is the constant, column t+1 the t-th term's
/// basis value at each point.
void basis_matrix(const std::vector<Term>& terms,
                  const FactorColumnCache& cache, FitScratch& scratch) {
    const std::size_t n = cache.num_points();
    ensure_shape(scratch.basis, n, terms.size() + 1);
    linalg::Matrix& b = scratch.basis;
    for (std::size_t r = 0; r < n; ++r) {
        b(r, 0) = 1.0;
    }
    // The term column is built in a contiguous buffer (simd::mul_inplace
    // over the cached factor columns, in Term::basis factor order — the same
    // per-element multiply chain as before) and then scattered into the
    // strided basis column.
    for (std::size_t t = 0; t < terms.size(); ++t) {
        scratch.term_col.assign(n, 1.0);
        for (const auto& f : terms[t].factors) {
            const std::vector<double>& col = cache.column(f);
            simd::mul_inplace(scratch.term_col.data(), col.data(), n);
        }
        for (std::size_t r = 0; r < n; ++r) {
            b(r, t + 1) = scratch.term_col[r];
        }
    }
}

/// Least squares on a row subset (rows with index == excluded_row excluded).
linalg::LeastSquaresResult fit_rows(const linalg::Matrix& basis,
                                    const std::vector<double>& values,
                                    std::size_t excluded_row,
                                    FitScratch& scratch) {
    const std::size_t n = basis.rows();
    const std::size_t k = basis.cols();
    const std::size_t rows = excluded_row < n ? n - 1 : n;
    ensure_shape(scratch.a, rows, k);
    scratch.b.resize(rows);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (i == excluded_row) {
            continue;
        }
        std::memcpy(scratch.a.row(r), basis.row(i), k * sizeof(double));
        scratch.b[r] = values[i];
        ++r;
    }
    return linalg::least_squares(scratch.a, scratch.b);
}

/// Whether a hypothesis with `num_terms` terms can be judged on n points.
/// Exact-interpolation fits (n == k with at least one term) are rejected:
/// they leave no residual, so every such hypothesis scores a near-zero SMAPE
/// regardless of its functional form and selection among them would be
/// arbitrary. Only the degenerate constant-through-one-point case is kept as
/// an ultimate fallback.
bool enough_points(std::size_t n, std::size_t num_terms) {
    const std::size_t k = num_terms + 1;
    return n >= k + 1 || (n == k && num_terms == 0);
}

/// Fits one hypothesis given its prebuilt basis matrix (in scratch.basis).
/// The caller must have checked enough_points already.
HypothesisFit fit_basis(std::size_t num_terms,
                        const std::vector<double>& values,
                        FitScratch& scratch) {
    HypothesisFit out;
    const linalg::Matrix& basis = scratch.basis;
    const std::size_t n = basis.rows();
    const std::size_t k = num_terms + 1;
    for (std::size_t r = 0; r < basis.rows(); ++r) {
        for (std::size_t c = 0; c < basis.cols(); ++c) {
            if (!std::isfinite(basis(r, c))) {
                return out;
            }
        }
    }
    const auto full = fit_rows(basis, values, n, scratch);
    if (full.rank_deficient) {
        return out;
    }
    for (const double c : full.coefficients) {
        if (!std::isfinite(c)) {
            return out;
        }
    }

    scratch.predicted.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            v += basis(i, c) * full.coefficients[c];
        }
        scratch.predicted[i] = v;
    }
    out.fit_smape = stats::smape(scratch.predicted, values);
    out.rss = full.residual_norm * full.residual_norm;
    out.coefficients = full.coefficients;
    out.cov_unscaled = full.covariance_unscaled;

    // Leave-one-out cross-validation, the paper's selection criterion.
    if (n >= k + 1) {
        scratch.cv_pred.resize(n);
        bool cv_ok = true;
        for (std::size_t leave = 0; leave < n; ++leave) {
            const auto part = fit_rows(basis, values, leave, scratch);
            if (part.rank_deficient) {
                cv_ok = false;
                break;
            }
            double v = 0.0;
            for (std::size_t c = 0; c < k; ++c) {
                v += basis(leave, c) * part.coefficients[c];
            }
            if (!std::isfinite(v)) {
                cv_ok = false;
                break;
            }
            scratch.cv_pred[leave] = v;
        }
        if (cv_ok) {
            out.cv_smape = stats::smape(scratch.cv_pred, values);
        } else {
            return out;
        }
    } else {
        // Only reachable for the constant hypothesis at n == 1 (see
        // enough_points): no spare point for cross-validation, fall back to
        // the fit error with a stiff penalty so validated models win.
        out.cv_smape = out.fit_smape * 4.0 + 1.0;
    }
    out.valid = true;
    return out;
}

HypothesisFit fit_hypothesis(const std::vector<Term>& terms,
                             const FactorColumnCache& cache,
                             const std::vector<double>& values,
                             FitScratch& scratch) {
    if (!enough_points(cache.num_points(), terms.size())) {
        return {};
    }
    basis_matrix(terms, cache, scratch);
    return fit_basis(terms.size(), values, scratch);
}

/// Canonical order-independent key of a hypothesis, used to deduplicate the
/// multi-parameter candidate list: the multi-parameter generator can re-emit
/// hypotheses that are already present as single-parameter candidates (e.g.
/// when a parameter contributes no usable factor), and term order within a
/// hypothesis carries no meaning. Exponent doubles come verbatim from the
/// search space, so comparing them exactly is well defined.
using FactorKey = std::tuple<int, double, int>;
using HypothesisKey = std::vector<std::vector<FactorKey>>;

HypothesisKey hypothesis_key(const std::vector<Term>& h) {
    HypothesisKey key;
    key.reserve(h.size());
    for (const auto& t : h) {
        std::vector<FactorKey> factors;
        factors.reserve(t.factors.size());
        for (const auto& f : t.factors) {
            factors.emplace_back(f.param, f.poly_exp, f.log_exp);
        }
        std::sort(factors.begin(), factors.end());
        key.push_back(std::move(factors));
    }
    std::sort(key.begin(), key.end());
    return key;
}

void dedupe_hypotheses(std::vector<std::vector<Term>>& hypotheses) {
    std::set<HypothesisKey> seen;
    std::vector<std::vector<Term>> unique;
    unique.reserve(hypotheses.size());
    for (auto& h : hypotheses) {
        if (seen.insert(hypothesis_key(h)).second) {
            unique.push_back(std::move(h));
        }
    }
    hypotheses = std::move(unique);
}

}  // namespace

ModelGenerator::ModelGenerator(FitOptions options) : options_(std::move(options)) {}

PerformanceModel ModelGenerator::fit(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values,
    std::vector<std::string> param_names) const {
    const obs::Span fit_span{"fit.model"};
    if (points.size() != values.size()) {
        throw InvalidArgumentError("ModelGenerator::fit: size mismatch");
    }
    if (points.size() < static_cast<std::size_t>(options_.min_points)) {
        throw InvalidArgumentError(
            "ModelGenerator::fit: at least " +
            std::to_string(options_.min_points) +
            " measurement points are required (got " +
            std::to_string(points.size()) + ")");
    }
    const std::size_t dims = points.front().size();
    if (dims == 0) {
        throw InvalidArgumentError("ModelGenerator::fit: zero-dimensional points");
    }
    for (const auto& p : points) {
        if (p.size() != dims) {
            throw InvalidArgumentError(
                "ModelGenerator::fit: inconsistent point dimensions");
        }
    }
    param_names.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
        if (param_names[d].empty()) {
            param_names[d] = std::string("x") + std::to_string(d + 1);
        }
    }
    for (const double v : values) {
        if (!std::isfinite(v)) {
            throw InvalidArgumentError("ModelGenerator::fit: non-finite value");
        }
    }

    // Collect hypotheses: single-parameter spaces per parameter, plus
    // multi-parameter combinations of each parameter's best factors.
    std::vector<std::vector<Term>> hypotheses;
    if (dims == 1) {
        hypotheses = options_.space.single_parameter_hypotheses(0);
    } else {
        hypotheses.push_back({});  // constant
        std::vector<std::vector<Factor>> best_factors(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            auto single = options_.space.single_parameter_hypotheses(
                static_cast<int>(d));
            // Extra-P's heuristic: rank this parameter's factors on the
            // subset of points where all *other* parameters are held at
            // their most frequent combination, so the other parameters'
            // influence does not distort the ranking.
            std::vector<std::vector<double>> rank_points;
            std::vector<double> rank_values;
            {
                std::map<std::vector<double>, int> combos;
                for (const auto& p : points) {
                    std::vector<double> key = p;
                    key[d] = 0.0;
                    ++combos[key];
                }
                const auto best_combo = std::max_element(
                    combos.begin(), combos.end(),
                    [](const auto& a, const auto& b) {
                        return a.second < b.second;
                    });
                for (std::size_t i = 0; i < points.size(); ++i) {
                    std::vector<double> key = points[i];
                    key[d] = 0.0;
                    if (key == best_combo->first) {
                        rank_points.push_back(points[i]);
                        rank_values.push_back(values[i]);
                    }
                }
                if (rank_points.size() < 3) {
                    rank_points = points;  // fall back to the full data
                    rank_values = values;
                }
            }
            // Rank this parameter's 1-term hypotheses by CV error, sharing
            // one factor-column cache over the ranking subset.
            const FactorColumnCache rank_cache(single, rank_points);
            FitScratch rank_scratch;
            std::vector<std::pair<double, Factor>> ranked;
            for (const auto& h : single) {
                if (h.size() != 1) {
                    continue;
                }
                const auto f =
                    fit_hypothesis(h, rank_cache, rank_values, rank_scratch);
                if (f.valid) {
                    ranked.emplace_back(f.cv_smape, h.front().factors.front());
                }
                hypotheses.push_back(h);  // keep single-param candidates too
            }
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
            const std::size_t top = std::min<std::size_t>(
                ranked.size(),
                static_cast<std::size_t>(options_.multi_param_top_factors));
            for (std::size_t i = 0; i < top; ++i) {
                best_factors[d].push_back(ranked[i].second);
            }
        }
        const auto multi =
            options_.space.multi_parameter_hypotheses(best_factors);
        hypotheses.insert(hypotheses.end(), multi.begin(), multi.end());
        // Only the multi-parameter generator can emit duplicates; the
        // single-parameter spaces are duplicate-free by construction.
        dedupe_hypotheses(hypotheses);
    }

    // Fit all hypotheses and select by (penalised) cross-validated SMAPE.
    // The loop is embarrassingly parallel: every hypothesis fit only reads
    // the shared factor-column cache, and each chunk reduces into its own
    // (score, index, fit) slot. Chunks are merged in index order with ties
    // broken by the smaller hypothesis index, which reproduces the serial
    // first-strict-minimum selection bit for bit at any thread count.
    const FactorColumnCache cache(hypotheses, points);
    const int threads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(resolve_num_threads(options_.num_threads)),
        std::max<std::size_t>(hypotheses.size(), 1)));
    struct ChunkBest {
        double score = std::numeric_limits<double>::infinity();
        std::size_t index = 0;
        HypothesisFit fit;
        bool any = false;
    };
    std::vector<ChunkBest> chunk_best(static_cast<std::size_t>(threads));
    std::vector<FitScratch> scratch(static_cast<std::size_t>(threads));
    if (obs::trace_enabled()) {
        obs::global_metrics()
            .counter("extradeep_fit_hypotheses_total")
            .increment(hypotheses.size());
        obs::global_metrics().counter("extradeep_fit_models_total").increment();
    }
    ThreadPool pool(threads);
    pool.parallel_for(
        hypotheses.size(),
        [&](int chunk, std::size_t begin, std::size_t end) {
            // Per-chunk span: under the TaskContextHook these nest below
            // fit.model even on worker threads, so the exported trace shows
            // the search's parallel structure per thread.
            const obs::Span chunk_span{"fit.hypothesis_chunk"};
            ChunkBest& best = chunk_best[static_cast<std::size_t>(chunk)];
            FitScratch& chunk_scratch = scratch[static_cast<std::size_t>(chunk)];
            for (std::size_t i = begin; i < end; ++i) {
                auto f = fit_hypothesis(hypotheses[i], cache, values,
                                        chunk_scratch);
                if (!f.valid) {
                    continue;
                }
                const double score =
                    f.cv_smape *
                    (1.0 + options_.term_penalty *
                               static_cast<double>(hypotheses[i].size()));
                if (!best.any || score < best.score) {
                    best.score = score;
                    best.index = i;
                    best.fit = std::move(f);
                    best.any = true;
                }
            }
        });
    const ChunkBest* winner = nullptr;
    for (const auto& b : chunk_best) {
        if (!b.any) {
            continue;
        }
        if (winner == nullptr || b.score < winner->score ||
            (b.score == winner->score && b.index < winner->index)) {
            winner = &b;
        }
    }
    if (winner == nullptr) {
        throw NumericalError("ModelGenerator::fit: no hypothesis could be fitted");
    }
    const HypothesisFit& best_fit = winner->fit;
    const int searched = static_cast<int>(hypotheses.size());

    std::vector<Term> terms = hypotheses[winner->index];
    for (std::size_t t = 0; t < terms.size(); ++t) {
        terms[t].coefficient = best_fit.coefficients[t + 1];
    }
    PerformanceModel model(best_fit.coefficients[0], std::move(terms),
                           std::move(param_names));

    ModelQuality q;
    q.fit_smape = best_fit.fit_smape;
    q.cv_smape = best_fit.cv_smape;
    q.rss = best_fit.rss;
    q.hypotheses_searched = searched;
    {
        std::vector<double> predicted(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            predicted[i] = model.evaluate(points[i]);
        }
        q.r_squared = stats::r_squared(predicted, values);
    }
    model.set_quality(q);

    const int dof = static_cast<int>(points.size()) -
                    static_cast<int>(model.terms().size()) - 1;
    if (dof >= 1) {
        model.set_fit_info(best_fit.cov_unscaled, best_fit.rss / dof, dof);
    }
    return model;
}

PerformanceModel ModelGenerator::fit(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     const std::string& param_name) const {
    std::vector<std::vector<double>> points;
    points.reserve(xs.size());
    for (const double x : xs) {
        points.push_back({x});
    }
    return fit(points, ys, {param_name});
}

}  // namespace extradeep::modeling
