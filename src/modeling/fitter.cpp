#include "modeling/fitter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace extradeep::modeling {

namespace {

struct HypothesisFit {
    bool valid = false;
    std::vector<double> coefficients;  ///< [constant, c_1, ..., c_k]
    double fit_smape = std::numeric_limits<double>::infinity();
    double cv_smape = std::numeric_limits<double>::infinity();
    double rss = 0.0;
    linalg::Matrix cov_unscaled;
};

/// Basis matrix of a hypothesis: column 0 is the constant, column t+1 the
/// t-th term's basis value at each point.
linalg::Matrix basis_matrix(const std::vector<Term>& terms,
                            const std::vector<std::vector<double>>& points) {
    linalg::Matrix b(points.size(), terms.size() + 1);
    for (std::size_t r = 0; r < points.size(); ++r) {
        b(r, 0) = 1.0;
        for (std::size_t t = 0; t < terms.size(); ++t) {
            b(r, t + 1) = terms[t].basis(points[r]);
        }
    }
    return b;
}

/// Least squares on a row subset (mask[i] == false rows excluded).
linalg::LeastSquaresResult fit_rows(const linalg::Matrix& basis,
                                    const std::vector<double>& values,
                                    const std::vector<bool>* exclude,
                                    std::size_t excluded_row) {
    const std::size_t n = basis.rows();
    const std::size_t k = basis.cols();
    std::size_t rows = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if ((exclude == nullptr || !(*exclude)[i]) && i != excluded_row) {
            ++rows;
        }
    }
    linalg::Matrix a(rows, k);
    std::vector<double> b(rows);
    std::size_t r = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if ((exclude != nullptr && (*exclude)[i]) || i == excluded_row) {
            continue;
        }
        for (std::size_t c = 0; c < k; ++c) {
            a(r, c) = basis(i, c);
        }
        b[r] = values[i];
        ++r;
    }
    return linalg::least_squares(a, b);
}

HypothesisFit fit_hypothesis(const std::vector<Term>& terms,
                             const std::vector<std::vector<double>>& points,
                             const std::vector<double>& values) {
    HypothesisFit out;
    const std::size_t n = points.size();
    const std::size_t k = terms.size() + 1;
    if (n < k + 1 && !(n == k && terms.empty())) {
        // Not enough points to fit and still have a residual to judge by;
        // require at least one spare point (the constant model always fits).
        if (n < k) {
            return out;
        }
    }
    const linalg::Matrix basis = basis_matrix(terms, points);
    for (std::size_t r = 0; r < basis.rows(); ++r) {
        for (std::size_t c = 0; c < basis.cols(); ++c) {
            if (!std::isfinite(basis(r, c))) {
                return out;
            }
        }
    }
    const auto full = fit_rows(basis, values, nullptr, n);
    if (full.rank_deficient) {
        return out;
    }
    for (const double c : full.coefficients) {
        if (!std::isfinite(c)) {
            return out;
        }
    }

    std::vector<double> predicted(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double v = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
            v += basis(i, c) * full.coefficients[c];
        }
        predicted[i] = v;
    }
    out.fit_smape = stats::smape(predicted, values);
    out.rss = full.residual_norm * full.residual_norm;
    out.coefficients = full.coefficients;
    out.cov_unscaled = full.covariance_unscaled;

    // Leave-one-out cross-validation, the paper's selection criterion.
    if (n >= k + 1) {
        std::vector<double> cv_pred(n, 0.0);
        bool cv_ok = true;
        for (std::size_t leave = 0; leave < n; ++leave) {
            const auto part = fit_rows(basis, values, nullptr, leave);
            if (part.rank_deficient) {
                cv_ok = false;
                break;
            }
            double v = 0.0;
            for (std::size_t c = 0; c < k; ++c) {
                v += basis(leave, c) * part.coefficients[c];
            }
            if (!std::isfinite(v)) {
                cv_ok = false;
                break;
            }
            cv_pred[leave] = v;
        }
        if (cv_ok) {
            out.cv_smape = stats::smape(cv_pred, values);
        } else {
            return out;
        }
    } else {
        // No spare point for cross-validation (only possible for the
        // richest hypotheses at the minimum point count): fall back to the
        // fit error with a stiff penalty so simpler models win.
        out.cv_smape = out.fit_smape * 4.0 + 1.0;
    }
    out.valid = true;
    return out;
}

}  // namespace

ModelGenerator::ModelGenerator(FitOptions options) : options_(std::move(options)) {}

PerformanceModel ModelGenerator::fit(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& values,
    std::vector<std::string> param_names) const {
    if (points.size() != values.size()) {
        throw InvalidArgumentError("ModelGenerator::fit: size mismatch");
    }
    if (points.size() < static_cast<std::size_t>(options_.min_points)) {
        throw InvalidArgumentError(
            "ModelGenerator::fit: at least " +
            std::to_string(options_.min_points) +
            " measurement points are required (got " +
            std::to_string(points.size()) + ")");
    }
    const std::size_t dims = points.front().size();
    if (dims == 0) {
        throw InvalidArgumentError("ModelGenerator::fit: zero-dimensional points");
    }
    for (const auto& p : points) {
        if (p.size() != dims) {
            throw InvalidArgumentError(
                "ModelGenerator::fit: inconsistent point dimensions");
        }
    }
    if (param_names.size() != dims) {
        param_names.resize(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            if (param_names[d].empty()) {
                param_names[d] = "x" + std::to_string(d + 1);
            }
        }
    }
    for (const double v : values) {
        if (!std::isfinite(v)) {
            throw InvalidArgumentError("ModelGenerator::fit: non-finite value");
        }
    }

    // Collect hypotheses: single-parameter spaces per parameter, plus
    // multi-parameter combinations of each parameter's best factors.
    std::vector<std::vector<Term>> hypotheses;
    if (dims == 1) {
        hypotheses = options_.space.single_parameter_hypotheses(0);
    } else {
        hypotheses.push_back({});  // constant
        std::vector<std::vector<Factor>> best_factors(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            auto single = options_.space.single_parameter_hypotheses(
                static_cast<int>(d));
            // Extra-P's heuristic: rank this parameter's factors on the
            // subset of points where all *other* parameters are held at
            // their most frequent combination, so the other parameters'
            // influence does not distort the ranking.
            std::vector<std::vector<double>> rank_points;
            std::vector<double> rank_values;
            {
                std::map<std::vector<double>, int> combos;
                for (const auto& p : points) {
                    std::vector<double> key = p;
                    key[d] = 0.0;
                    ++combos[key];
                }
                const auto best_combo = std::max_element(
                    combos.begin(), combos.end(),
                    [](const auto& a, const auto& b) {
                        return a.second < b.second;
                    });
                for (std::size_t i = 0; i < points.size(); ++i) {
                    std::vector<double> key = points[i];
                    key[d] = 0.0;
                    if (key == best_combo->first) {
                        rank_points.push_back(points[i]);
                        rank_values.push_back(values[i]);
                    }
                }
                if (rank_points.size() < 3) {
                    rank_points = points;  // fall back to the full data
                    rank_values = values;
                }
            }
            // Rank this parameter's 1-term hypotheses by CV error.
            std::vector<std::pair<double, Factor>> ranked;
            for (const auto& h : single) {
                if (h.size() != 1) {
                    continue;
                }
                const auto f = fit_hypothesis(h, rank_points, rank_values);
                if (f.valid) {
                    ranked.emplace_back(f.cv_smape, h.front().factors.front());
                }
                hypotheses.push_back(h);  // keep single-param candidates too
            }
            std::sort(ranked.begin(), ranked.end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
            const std::size_t top = std::min<std::size_t>(
                ranked.size(),
                static_cast<std::size_t>(options_.multi_param_top_factors));
            for (std::size_t i = 0; i < top; ++i) {
                best_factors[d].push_back(ranked[i].second);
            }
        }
        const auto multi =
            options_.space.multi_parameter_hypotheses(best_factors);
        hypotheses.insert(hypotheses.end(), multi.begin(), multi.end());
    }

    // Fit all hypotheses and select by (penalised) cross-validated SMAPE.
    double best_score = std::numeric_limits<double>::infinity();
    const std::vector<Term>* best_terms = nullptr;
    HypothesisFit best_fit;
    int searched = 0;
    for (const auto& h : hypotheses) {
        const auto f = fit_hypothesis(h, points, values);
        ++searched;
        if (!f.valid) {
            continue;
        }
        const double score =
            f.cv_smape * (1.0 + options_.term_penalty * h.size());
        if (score < best_score) {
            best_score = score;
            best_terms = &h;
            best_fit = f;
        }
    }
    if (best_terms == nullptr) {
        throw NumericalError("ModelGenerator::fit: no hypothesis could be fitted");
    }

    std::vector<Term> terms = *best_terms;
    for (std::size_t t = 0; t < terms.size(); ++t) {
        terms[t].coefficient = best_fit.coefficients[t + 1];
    }
    PerformanceModel model(best_fit.coefficients[0], std::move(terms),
                           std::move(param_names));

    ModelQuality q;
    q.fit_smape = best_fit.fit_smape;
    q.cv_smape = best_fit.cv_smape;
    q.rss = best_fit.rss;
    q.hypotheses_searched = searched;
    {
        std::vector<double> predicted(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            predicted[i] = model.evaluate(points[i]);
        }
        q.r_squared = stats::r_squared(predicted, values);
    }
    model.set_quality(q);

    const int dof = static_cast<int>(points.size()) -
                    static_cast<int>(model.terms().size()) - 1;
    if (dof >= 1) {
        model.set_fit_info(best_fit.cov_unscaled, best_fit.rss / dof, dof);
    }
    return model;
}

PerformanceModel ModelGenerator::fit(const std::vector<double>& xs,
                                     const std::vector<double>& ys,
                                     const std::string& param_name) const {
    std::vector<std::vector<double>> points;
    points.reserve(xs.size());
    for (const double x : xs) {
        points.push_back({x});
    }
    return fit(points, ys, {param_name});
}

}  // namespace extradeep::modeling
